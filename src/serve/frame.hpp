#pragma once
// Length-prefixed frame IO over a connected stream socket (the transport
// half of wire.hpp). Shared by Server and Client.

#include <cstddef>
#include <span>
#include <vector>

namespace sweep::serve {

/// Reads one frame into `payload`. Returns false on a clean EOF at a frame
/// boundary (peer closed). Throws std::runtime_error on mid-frame EOF, IO
/// errors, or a length prefix above kMaxFrameBytes.
bool read_frame(int fd, std::vector<std::byte>& payload);

/// Writes the 4-byte length prefix + payload. Throws std::runtime_error on
/// IO errors (including a peer that closed early; SIGPIPE is suppressed).
void write_frame(int fd, std::span<const std::byte> payload);

}  // namespace sweep::serve
