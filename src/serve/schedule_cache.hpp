#pragma once
// Concurrent schedule cache + single-flight executor for the serve path
// (DESIGN.md §15). Serving workloads are dominated by repeats — the same
// (artifact, scheme, m, seed) tuple asked again and again, exactly as in
// iterative transport solvers where one sweep schedule is reused across
// source iterations — so ServeService probes this cache between the decode
// and schedule phases and only runs list_schedule on a genuine miss.
//
// Design (in the spirit of ucset's partitioned.hpp):
//  - The key space is sharded by hash across independent shards, each with
//    its own mutex, LRU list, and hash map, so concurrent probes on
//    different keys never contend on one lock.
//  - Values are immutable shared_ptr<const QueryResponse> payloads with the
//    start array ALWAYS populated, so a want_starts probe hits the same
//    entry as a scalar one; the response assembler copies starts only when
//    asked. A hit is byte-identical to the cold path by construction: both
//    paths assemble the wire response from the same payload fields.
//  - Memory is bounded per shard (total bounds divided across shards):
//    entries over the count bound or bytes over the byte bound evict from
//    the shard's LRU tail. A payload bigger than one shard's byte budget is
//    never admitted, so total residency never exceeds max_bytes.
//  - Single flight: the first prober of an absent key becomes the leader
//    (kMiss + Ticket) and MUST resolve the ticket with fill() or fail();
//    concurrent probers of the same key park on a shared_future and wake
//    with the leader's value (kJoined) — N identical queries cost one
//    list_schedule. A leader failure rethrows the SAME exception in every
//    waiter, so coalesced errors are indistinguishable from solo ones.
//  - Epoch invalidation keyed off the artifact content hash: the key
//    embeds the content hash of the artifact snapshot the query ran
//    against, and the cache tracks the hash of the CURRENTLY installed
//    artifact. invalidate(new_hash) flips the current hash first, then
//    sweeps every shard; fill() re-checks the current hash under the shard
//    lock and drops stale insertions. Why no stale entry can survive a
//    swap: an entry under hash H is admitted only while current == H
//    (checked under the same shard mutex the sweep takes), so it either
//    lands before the sweep locks that shard — and is erased by it — or
//    after, in which case the release-store of the new hash happens-before
//    the admission check (mutex edge) and the insert is dropped. A probe
//    for the new artifact carries the new hash in its key and can never
//    match an old-hash entry anyway; the sweep is about reclaiming memory
//    promptly, not correctness.
//
// The cache never throws on the probe path except to propagate a leader's
// computation failure; allocation failures aside, fill/fail are noexcept
// in spirit (fail is noexcept in letter).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/wire.hpp"

namespace sweep::serve {

/// Identity of one cacheable query against one artifact snapshot. `m` is
/// normalized to 0 when `partition >= 0` (the computation ignores it), so
/// (m=7, partition=2) and (m=9, partition=2) share an entry.
struct CacheKey {
  std::uint64_t content_hash = 0;  ///< artifact snapshot the query ran on
  std::uint32_t scheme = 0;        ///< wire value of serve::Scheme
  std::uint32_t m = 0;             ///< processors; 0 when partition >= 0
  std::int64_t partition = -1;     ///< embedded partition index or -1
  std::uint64_t seed = 0;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept;
};

struct ScheduleCacheOptions {
  /// Total entry bound across all shards. 0 disables caching entirely
  /// (every probe is a kMiss with an inert ticket; no coalescing).
  std::size_t max_entries = 4096;
  /// Total approximate byte bound across all shards. 0 disables.
  std::size_t max_bytes = std::size_t{256} << 20;
  /// Lock shards; clamped to [1, 256] and rounded up to a power of two.
  std::size_t shards = 16;

  [[nodiscard]] bool enabled() const {
    return max_entries > 0 && max_bytes > 0;
  }
};

/// Point-in-time view of the cache counters (monotonic except entries and
/// bytes, which are current residency).
struct ScheduleCacheStats {
  std::uint64_t hits = 0;            ///< probe found a resident entry
  std::uint64_t misses = 0;          ///< probe became the compute leader
  std::uint64_t inflight_waits = 0;  ///< probe parked on a leader in flight
  std::uint64_t evictions = 0;       ///< entries dropped by LRU bounds
  std::uint64_t invalidations = 0;   ///< entries dropped by epoch sweeps
  std::uint64_t entries = 0;         ///< resident entries right now
  std::uint64_t bytes = 0;           ///< approximate resident bytes

  /// Hit rate over decided probes (waits excluded: they neither computed
  /// nor found a resident entry). Percent in [0, 100]; 0 when idle.
  [[nodiscard]] std::uint64_t hit_rate_pct() const {
    const std::uint64_t decided = hits + misses;
    return decided == 0 ? 0 : (hits * 100) / decided;
  }
};

class ScheduleCache {
 public:
  /// Immutable cached payload; `starts` is always populated.
  using Value = std::shared_ptr<const QueryResponse>;

  explicit ScheduleCache(ScheduleCacheOptions options);
  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

 private:
  /// One in-flight computation; waiters share the future.
  struct Inflight {
    std::promise<Value> promise;
    std::shared_future<Value> future;
  };

 public:
  /// Leader token for a kMiss. Move-only; the holder MUST resolve it with
  /// fill() or fail(). If it is destroyed unresolved (leader unwound past
  /// both), the destructor fails it so waiters never hang.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept;
    ~Ticket();
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    /// True while this ticket still owes a fill()/fail().
    [[nodiscard]] bool armed() const { return cache_ != nullptr; }

   private:
    friend class ScheduleCache;
    Ticket(ScheduleCache* cache, std::size_t shard, const CacheKey& key,
           std::shared_ptr<Inflight> inflight)
        : cache_(cache),
          shard_(shard),
          key_(key),
          inflight_(std::move(inflight)) {}

    ScheduleCache* cache_ = nullptr;
    std::size_t shard_ = 0;
    CacheKey key_{};
    std::shared_ptr<Inflight> inflight_;  ///< null when caching is disabled
  };

  enum class ProbeKind {
    kHit,     ///< resident entry; `value` set
    kJoined,  ///< parked on a leader and woke with its `value`
    kMiss,    ///< caller is the leader; `ticket` must be resolved
  };

  struct Probe {
    ProbeKind kind = ProbeKind::kMiss;
    Value value;    ///< set iff kind != kMiss
    Ticket ticket;  ///< armed iff kind == kMiss
  };

  /// Probes `key`. May block (kJoined) until the leader resolves, and
  /// rethrows the leader's exception if it fail()ed — identical queries
  /// fail identically, so waiters surface the same error the leader did.
  Probe lookup_or_join(const CacheKey& key);

  /// Publishes the leader's value: wakes every waiter, then admits the
  /// entry unless it is oversized or its epoch went stale (see header).
  void fill(Ticket&& ticket, Value value);

  /// Propagates the leader's failure to every waiter; nothing is cached.
  void fail(Ticket&& ticket, std::exception_ptr error) noexcept;

  /// Epoch flip after a hot swap: `current_hash` is the content hash of
  /// the artifact now being served. Entries under any other hash are
  /// swept; stale fills racing the sweep are dropped on admission.
  void invalidate(std::uint64_t current_hash);

  [[nodiscard]] ScheduleCacheStats stats() const;

  [[nodiscard]] bool enabled() const { return !shards_.empty(); }

 private:
  struct Node {
    CacheKey key;
    Value value;
    std::uint64_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Node> lru;  ///< front = most recently used
    std::unordered_map<CacheKey, std::list<Node>::iterator, CacheKeyHash> map;
    std::unordered_map<CacheKey, std::shared_ptr<Inflight>, CacheKeyHash>
        inflight;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] std::size_t shard_of(const CacheKey& key) const;
  /// Admission + LRU eviction; caller holds shard.mutex.
  void insert_locked(Shard& shard, const CacheKey& key, Value value);
  void abandon(Ticket& ticket) noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;  ///< empty when disabled
  std::size_t shard_mask_ = 0;
  std::size_t entries_per_shard_ = 0;
  std::size_t bytes_per_shard_ = 0;

  /// Content hash of the artifact currently being served; admission gate.
  std::atomic<std::uint64_t> current_hash_{0};

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inflight_waits_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace sweep::serve
