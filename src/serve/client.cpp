#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "serve/frame.hpp"

namespace sweep::serve {

Client::Client(const std::string& socket_path, ClientOptions options) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("serve client: socket: ") +
                             std::strerror(errno));
  }
  if (options.timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(options.timeout_ms / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((options.timeout_ms % 1000) * 1000);
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error(std::string("serve client: SO_RCVTIMEO: ") +
                               std::strerror(err));
    }
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: socket path too long");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: connect " + socket_path + ": " +
                             std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Response Client::call(const Request& request) {
  SWEEP_OBS_SPAN_ARGS("client.call", "type",
                      static_cast<std::int64_t>(request.type));
#if !defined(SWEEP_OBS_DISABLE)
  const bool obs_armed = obs::metrics_enabled();
  const std::uint64_t t0 = obs_armed ? obs::detail::now_ns() : 0;
#endif
  write_frame(fd_, encode_request(request));
  std::vector<std::byte> payload;
  if (!read_frame(fd_, payload)) {
    throw std::runtime_error("serve client: server closed the connection");
  }
  Response response = decode_response(payload);
#if !defined(SWEEP_OBS_DISABLE)
  if (obs_armed) {
    SWEEP_OBS_HIST_RECORD("client.rtt_ns", obs::detail::now_ns() - t0);
  }
#endif
  return response;
}

}  // namespace sweep::serve
