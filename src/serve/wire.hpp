#pragma once
// sweep_serve wire protocol (DESIGN.md §13).
//
// Transport framing: every message is a 4-byte native-endian length prefix
// followed by that many payload bytes (length excludes the prefix, capped at
// kMaxFrameBytes so a hostile peer cannot demand an unbounded allocation).
// The payload encoding lives entirely in encode_*/decode_* below — pure
// byte-vector functions with no socket anywhere in sight, so the fuzz
// harness drives decode_request/decode_response on raw garbage without a
// file descriptor (the kWireGarbage hostility channel).
//
// Payload layout: u32 message type, then type-specific fixed-width fields.
// Strings are u32 length + raw bytes. Every decoder is bounds-checked and
// throws WireError on truncation, trailing bytes, unknown types, or
// out-of-range enums; it never reads past the span it was given.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sweep::serve {

/// Every malformed-message path throws this.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Frame payload ceiling: a full schedule response for a bench-scale
/// instance (~3M tasks * 4 bytes) fits with room to spare.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 26;

enum class MsgType : std::uint32_t {
  kPing = 1,      ///< liveness check; empty body
  kInfo = 2,      ///< describe the currently served artifact
  kQuery = 3,     ///< schedule + cost evaluation
  kSwap = 4,      ///< hot-swap to a new artifact file
  kStats = 5,     ///< daemon counters
  kShutdown = 6,  ///< stop the daemon (responds before exiting)
};

/// Priority schemes the daemon can evaluate. Values are wire format.
enum class Scheme : std::uint32_t {
  kLevel = 0,        ///< Gamma(v,i) = level_i(v)
  kRandomDelay = 1,  ///< Algorithm 2: level + per-direction random delay
  kDescendant = 2,   ///< exact descendant counts (needs the packed section)
};

struct QueryRequest {
  Scheme scheme = Scheme::kLevel;
  std::uint32_t m = 1;        ///< processors (ignored when partition >= 0)
  std::uint64_t seed = 1;     ///< drives assignment + priority randomness
  /// < 0: uniform random assignment of n_cells to m from `seed`.
  /// >= 0: use the artifact's embedded partition with this index (m becomes
  /// that partition's part count).
  std::int64_t partition = -1;
  bool want_starts = false;   ///< return the full per-task start array
};

struct SwapRequest {
  std::string path;  ///< artifact file to map and switch to
};

struct Request {
  MsgType type = MsgType::kPing;
  QueryRequest query;  ///< meaningful iff type == kQuery
  SwapRequest swap;    ///< meaningful iff type == kSwap
};

struct InfoResponse {
  std::string name;
  std::uint64_t n_cells = 0;
  std::uint64_t n_directions = 0;
  std::uint64_t n_edges = 0;
  std::uint64_t content_hash = 0;
  std::uint64_t n_partitions = 0;
  bool has_descendants = false;
};

struct QueryResponse {
  std::uint64_t makespan = 0;
  std::uint64_t c1_cross_edges = 0;
  std::uint64_t c1_total_edges = 0;
  std::uint64_t c2_total_delay = 0;
  std::uint64_t c2_max_step_degree = 0;
  std::uint64_t c2_busy_steps = 0;
  /// FNV-1a over the schedule's start array then its assignment — the
  /// fingerprint the smoke test compares against the in-process path.
  std::uint64_t schedule_hash = 0;
  std::vector<std::uint32_t> starts;  ///< filled iff want_starts
};

struct StatsResponse {
  std::vector<std::pair<std::string, std::uint64_t>> entries;
};

struct Response {
  std::uint32_t status = 0;  ///< 0 = ok; anything else carries `error`
  MsgType type = MsgType::kPing;
  std::string error;
  InfoResponse info;    ///< meaningful iff ok and type == kInfo
  QueryResponse query;  ///< meaningful iff ok and type == kQuery
  StatsResponse stats;  ///< meaningful iff ok and type == kStats
};

std::vector<std::byte> encode_request(const Request& request);
Request decode_request(std::span<const std::byte> payload);

std::vector<std::byte> encode_response(const Response& response);
Response decode_response(std::span<const std::byte> payload);

}  // namespace sweep::serve
