#pragma once
// sweep_serve wire protocol (DESIGN.md §13).
//
// Transport framing: every message is a 4-byte native-endian length prefix
// followed by that many payload bytes (length excludes the prefix, capped at
// kMaxFrameBytes so a hostile peer cannot demand an unbounded allocation).
// The payload encoding lives entirely in encode_*/decode_* below — pure
// byte-vector functions with no socket anywhere in sight, so the fuzz
// harness drives decode_request/decode_response on raw garbage without a
// file descriptor (the kWireGarbage hostility channel).
//
// Payload layout: u32 message type, then type-specific fixed-width fields.
// Strings are u32 length + raw bytes. Every decoder is bounds-checked and
// throws WireError on truncation, trailing bytes, unknown types, or
// out-of-range enums; it never reads past the span it was given.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sweep::serve {

/// Every malformed-message path throws this.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Frame payload ceiling: a full schedule response for a bench-scale
/// instance (~3M tasks * 4 bytes) fits with room to spare.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 26;

enum class MsgType : std::uint32_t {
  kPing = 1,      ///< liveness check; empty body
  kInfo = 2,      ///< describe the currently served artifact
  kQuery = 3,     ///< schedule + cost evaluation
  kSwap = 4,      ///< hot-swap to a new artifact file
  kStats = 5,     ///< daemon counters
  kShutdown = 6,  ///< stop the daemon (responds before exiting)
};

/// Priority schemes the daemon can evaluate. Values are wire format.
enum class Scheme : std::uint32_t {
  kLevel = 0,        ///< Gamma(v,i) = level_i(v)
  kRandomDelay = 1,  ///< Algorithm 2: level + per-direction random delay
  kDescendant = 2,   ///< exact descendant counts (needs the packed section)
};

struct QueryRequest {
  Scheme scheme = Scheme::kLevel;
  std::uint32_t m = 1;        ///< processors (ignored when partition >= 0)
  std::uint64_t seed = 1;     ///< drives assignment + priority randomness
  /// < 0: uniform random assignment of n_cells to m from `seed`.
  /// >= 0: use the artifact's embedded partition with this index (m becomes
  /// that partition's part count).
  std::int64_t partition = -1;
  bool want_starts = false;   ///< return the full per-task start array
};

struct SwapRequest {
  std::string path;  ///< artifact file to map and switch to
};

struct Request {
  MsgType type = MsgType::kPing;
  QueryRequest query;  ///< meaningful iff type == kQuery
  SwapRequest swap;    ///< meaningful iff type == kSwap
};

struct InfoResponse {
  std::string name;
  std::uint64_t n_cells = 0;
  std::uint64_t n_directions = 0;
  std::uint64_t n_edges = 0;
  std::uint64_t content_hash = 0;
  std::uint64_t n_partitions = 0;
  bool has_descendants = false;
};

struct QueryResponse {
  std::uint64_t makespan = 0;
  std::uint64_t c1_cross_edges = 0;
  std::uint64_t c1_total_edges = 0;
  std::uint64_t c2_total_delay = 0;
  std::uint64_t c2_max_step_degree = 0;
  std::uint64_t c2_busy_steps = 0;
  /// FNV-1a over the schedule's start array then its assignment — the
  /// fingerprint the smoke test compares against the in-process path.
  std::uint64_t schedule_hash = 0;
  std::vector<std::uint32_t> starts;  ///< filled iff want_starts
};

/// Stats wire evolution (v2). The only stats payload on the wire is the
/// count-prefixed (key, u64) entry list — that is the invariant old
/// decoders enforce with expect_end(), so new telemetry NEVER appends
/// typed fields after it. Instead, a v2 daemon appends *namespaced
/// entries* to the same list:
///   "proto.version"          = kStatsProtoVersion
///   "gauge.<name>"           = gauge value (two's-complement int64)
///   "hist.<name>.count|p50|p90|p99|p999|max" = histogram quantiles (ns)
/// A pre-bump client decodes a v2 daemon's response unchanged (the extra
/// entries are just more pairs, every one length-checked); a v2 client
/// decoding a pre-bump daemon sees no namespaced entries and reports
/// proto_version = 1 with empty typed views. decode_response() lifts the
/// namespaced entries into the typed fields below and removes them from
/// `entries`; encode_response() folds them back, so v2<->v2 round trips
/// are exact and the v1 byte stream is a strict prefix shape of v2.
/// Non-empty typed views force the v2 block on encode even if
/// proto_version was left at 1 — carrying telemetry is speaking v2 —
/// which keeps encode(decode(bytes)) stable for hostile peers that send
/// namespaced keys without announcing a version.
inline constexpr std::uint64_t kStatsProtoVersion = 2;
inline constexpr const char* kStatsVersionKey = "proto.version";

/// Quantile ladder of one serve-side latency histogram (values in ns).
struct StatsHistogram {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t max = 0;

  bool operator==(const StatsHistogram&) const = default;
};

struct StatsResponse {
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  /// Typed views of the namespaced entries (see above). proto_version is
  /// 1 when the peer never announced one (pre-bump daemon).
  std::uint64_t proto_version = 1;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<StatsHistogram> histograms;
};

struct Response {
  std::uint32_t status = 0;  ///< 0 = ok; anything else carries `error`
  MsgType type = MsgType::kPing;
  std::string error;
  InfoResponse info;    ///< meaningful iff ok and type == kInfo
  QueryResponse query;  ///< meaningful iff ok and type == kQuery
  StatsResponse stats;  ///< meaningful iff ok and type == kStats
};

std::vector<std::byte> encode_request(const Request& request);
Request decode_request(std::span<const std::byte> payload);

std::vector<std::byte> encode_response(const Response& response);
Response decode_response(std::span<const std::byte> payload);

}  // namespace sweep::serve
