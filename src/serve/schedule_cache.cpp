#include "serve/schedule_cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/hash.hpp"

namespace sweep::serve {
namespace {

/// Approximate residency cost of one entry: the payload struct, the start
/// array's heap block, both map nodes (LRU + hash bucket), and the key
/// copies. Deliberately rounded up — the byte bound is a memory budget,
/// not an accounting exercise.
std::uint64_t approx_entry_bytes(const QueryResponse& payload) {
  return sizeof(QueryResponse) +
         payload.starts.capacity() * sizeof(std::uint32_t) +
         2 * sizeof(CacheKey) + 96;
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::size_t CacheKeyHash::operator()(const CacheKey& k) const noexcept {
  // Field-wise FNV-1a (never the struct's object representation: padding
  // would hash indeterminate bytes).
  std::uint64_t h = util::kFnv1aOffsetBasis;
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= util::kFnv1aPrime;
    }
  };
  fold(k.content_hash);
  fold((static_cast<std::uint64_t>(k.scheme) << 32) | k.m);
  fold(static_cast<std::uint64_t>(k.partition));
  fold(k.seed);
  return static_cast<std::size_t>(h);
}

ScheduleCache::ScheduleCache(ScheduleCacheOptions options) {
  if (!options.enabled()) return;
  const std::size_t shards = round_up_pow2(
      std::clamp<std::size_t>(options.shards, 1, 256));
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards - 1;
  entries_per_shard_ = std::max<std::size_t>(1, options.max_entries / shards);
  bytes_per_shard_ = options.max_bytes / shards;
}

ScheduleCache::Ticket& ScheduleCache::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr) cache_->abandon(*this);
    cache_ = std::exchange(other.cache_, nullptr);
    shard_ = other.shard_;
    key_ = other.key_;
    inflight_ = std::move(other.inflight_);
  }
  return *this;
}

ScheduleCache::Ticket::~Ticket() {
  if (cache_ != nullptr) cache_->abandon(*this);
}

std::size_t ScheduleCache::shard_of(const CacheKey& key) const {
  return CacheKeyHash{}(key)&shard_mask_;
}

ScheduleCache::Probe ScheduleCache::lookup_or_join(const CacheKey& key) {
  Probe probe;
  if (!enabled()) {
    // Disabled cache: every probe computes; no coalescing, no admission.
    misses_.fetch_add(1, std::memory_order_relaxed);
    probe.kind = ProbeKind::kMiss;
    probe.ticket = Ticket(this, 0, key, nullptr);
    return probe;
  }
  const std::size_t index = shard_of(key);
  Shard& shard = *shards_[index];
  std::shared_future<Value> wait_on;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      // Touch: splice the node to the LRU front without invalidating the
      // map's iterator.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      probe.kind = ProbeKind::kHit;
      probe.value = it->second->value;
      return probe;
    }
    if (const auto it = shard.inflight.find(key); it != shard.inflight.end()) {
      wait_on = it->second->future;  // park outside the lock
    } else {
      auto inflight = std::make_shared<Inflight>();
      inflight->future = inflight->promise.get_future().share();
      shard.inflight.emplace(key, inflight);
      misses_.fetch_add(1, std::memory_order_relaxed);
      probe.kind = ProbeKind::kMiss;
      probe.ticket = Ticket(this, index, key, std::move(inflight));
      return probe;
    }
  }
  inflight_waits_.fetch_add(1, std::memory_order_relaxed);
  probe.kind = ProbeKind::kJoined;
  probe.value = wait_on.get();  // rethrows the leader's failure
  return probe;
}

void ScheduleCache::insert_locked(Shard& shard, const CacheKey& key,
                                  Value value) {
  // Epoch gate (see header): admitting under the shard mutex makes "stale
  // entry survives a swap" impossible — either the invalidate sweep runs
  // after us and erases it, or it ran before us and the new current hash
  // is visible here, so we drop the insert.
  if (current_hash_.load(std::memory_order_acquire) != key.content_hash) {
    return;
  }
  const std::uint64_t bytes = approx_entry_bytes(*value);
  if (bytes > bytes_per_shard_) return;  // never admissible; don't thrash
  if (shard.map.contains(key)) return;   // a racing leader beat us to it
  shard.lru.push_front(Node{key, std::move(value), bytes});
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  while (shard.map.size() > entries_per_shard_ ||
         shard.bytes > bytes_per_shard_) {
    const Node& tail = shard.lru.back();
    shard.bytes -= tail.bytes;
    shard.map.erase(tail.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ScheduleCache::fill(Ticket&& ticket, Value value) {
  if (ticket.cache_ != this) return;  // empty or foreign ticket
  ticket.cache_ = nullptr;
  if (ticket.inflight_ == nullptr) return;  // disabled-cache ticket
  Shard& shard = *shards_[ticket.shard_];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.inflight.erase(ticket.key_);
    insert_locked(shard, ticket.key_, value);
  }
  // Wake waiters after the entry is resident, so a waiter that re-probes
  // immediately sees a hit rather than becoming a second leader.
  ticket.inflight_->promise.set_value(std::move(value));
}

void ScheduleCache::fail(Ticket&& ticket, std::exception_ptr error) noexcept {
  if (ticket.cache_ != this) return;
  ticket.cache_ = nullptr;
  if (ticket.inflight_ == nullptr) return;
  Shard& shard = *shards_[ticket.shard_];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.inflight.erase(ticket.key_);
  }
  ticket.inflight_->promise.set_exception(std::move(error));
}

void ScheduleCache::abandon(Ticket& ticket) noexcept {
  // A leader unwound without resolving its ticket (should not happen —
  // ServeService resolves on every path). Fail the waiters rather than
  // letting them block forever.
  Ticket local = std::move(ticket);  // clears ticket.cache_
  fail(std::move(local),
       std::make_exception_ptr(
           std::runtime_error("schedule cache: computation abandoned")));
}

void ScheduleCache::invalidate(std::uint64_t current_hash) {
  // Flip the admission gate FIRST (release pairs with the acquire in
  // insert_locked through the shard mutexes), then sweep.
  current_hash_.store(current_hash, std::memory_order_release);
  if (!enabled()) return;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.content_hash != current_hash) {
        shard.bytes -= it->bytes;
        shard.map.erase(it->key);
        it = shard.lru.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

ScheduleCacheStats ScheduleCache::stats() const {
  ScheduleCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inflight_waits = inflight_waits_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.entries += shard.map.size();
    out.bytes += shard.bytes;
  }
  return out;
}

}  // namespace sweep::serve
