#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "obs/obs.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace sweep::serve {
namespace {

Response error_response(MsgType type, std::string what) {
  Response response;
  response.status = 1;
  response.type = type;
  response.error = std::move(what);
  return response;
}

/// Builds the wire response from a (possibly cached) payload. Both the hit
/// and the cold path go through here, so a hit is byte-identical to a cold
/// response by construction: same fields, same assembly, starts included
/// exactly when asked for.
Response assemble_query_response(const QueryResponse& payload,
                                 bool want_starts) {
  Response response;
  response.type = MsgType::kQuery;
  response.query.makespan = payload.makespan;
  response.query.c1_cross_edges = payload.c1_cross_edges;
  response.query.c1_total_edges = payload.c1_total_edges;
  response.query.c2_total_delay = payload.c2_total_delay;
  response.query.c2_max_step_degree = payload.c2_max_step_degree;
  response.query.c2_busy_steps = payload.c2_busy_steps;
  response.query.schedule_hash = payload.schedule_hash;
  if (want_starts) response.query.starts = payload.starts;
  return response;
}

}  // namespace

ServeService::ServeService(std::shared_ptr<const dag::Artifact> artifact,
                           ScheduleCacheOptions cache_options)
    : artifact_(std::move(artifact)) {
  if (artifact_ == nullptr) {
    throw std::invalid_argument("ServeService: null artifact");
  }
  if (cache_options.enabled()) {
    cache_ = std::make_unique<ScheduleCache>(cache_options);
    cache_->invalidate(artifact_->content_hash());
  }
}

ServeService ServeService::from_file(const std::string& path,
                                     ScheduleCacheOptions cache_options) {
  SWEEP_OBS_TIMER("serve.load_ns");
  return ServeService(dag::Artifact::map_file(path), cache_options);
}

std::shared_ptr<const dag::Artifact> ServeService::artifact() const {
  std::lock_guard<std::mutex> lock(artifact_mutex_);
  return artifact_;
}

void ServeService::swap_to(const std::string& path) {
  // Map and fully validate BEFORE touching the served pointer: a corrupt
  // replacement throws here and the old artifact keeps serving.
  std::shared_ptr<const dag::Artifact> fresh;
  {
    SWEEP_OBS_TIMER("serve.load_ns");
    fresh = dag::Artifact::map_file(path);
  }
  const std::uint64_t new_hash = fresh->content_hash();
  {
    std::lock_guard<std::mutex> lock(artifact_mutex_);
    artifact_.swap(fresh);
  }
  // `fresh` now holds the OLD artifact; it unmaps when the last in-flight
  // query that grabbed it before the flip finishes. The cache epoch flips
  // AFTER the pointer: a probe that already snapshotted the old artifact
  // keys under the old hash (consistent with its snapshot, same semantics
  // as an in-flight query), while every post-swap probe keys under the new
  // hash and can never match an old entry.
  if (cache_ != nullptr) cache_->invalidate(new_hash);
  swaps_.fetch_add(1, std::memory_order_relaxed);
  SWEEP_OBS_COUNTER_ADD("serve.swaps", 1);
}

void ServeService::record_protocol_error() {
  errors_.fetch_add(1, std::memory_order_relaxed);
  SWEEP_OBS_COUNTER_ADD("serve.errors", 1);
}

ScheduleCacheStats ServeService::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : ScheduleCacheStats{};
}

Response ServeService::handle(const Request& request) {
  try {
    switch (request.type) {
      case MsgType::kPing:
      case MsgType::kShutdown: {
        // Shutdown acks like a ping; actually stopping the accept loop is
        // the Server's job (it sees the type after sending the ack).
        Response response;
        response.type = request.type;
        return response;
      }
      case MsgType::kInfo:
        return handle_info();
      case MsgType::kQuery:
        return handle_query(request.query);
      case MsgType::kSwap: {
        swap_to(request.swap.path);
        Response response;
        response.type = MsgType::kSwap;
        return response;
      }
      case MsgType::kStats:
        return handle_stats();
    }
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(request.type, "unhandled message type");
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    SWEEP_OBS_COUNTER_ADD("serve.errors", 1);
    return error_response(request.type, e.what());
  }
}

Response ServeService::handle_info() {
  const std::shared_ptr<const dag::Artifact> a = artifact();
  Response response;
  response.type = MsgType::kInfo;
  response.info.name = std::string(a->name());
  response.info.n_cells = a->n_cells();
  response.info.n_directions = a->n_directions();
  response.info.n_edges = a->n_edges();
  response.info.content_hash = a->content_hash();
  response.info.n_partitions = a->n_partitions();
  response.info.has_descendants = a->has_descendants();
  return response;
}

Response ServeService::handle_query(const QueryRequest& query) {
  SWEEP_OBS_TIMER("serve.query_ns");
  SWEEP_OBS_SPAN_ARGS("serve.query", "scheme",
                      static_cast<std::int64_t>(query.scheme), "m",
                      static_cast<std::int64_t>(query.m));
  // Snapshot once: this whole query (cache key included) runs against one
  // artifact even if a swap lands mid-flight.
  const std::shared_ptr<const dag::Artifact> a = artifact();
  if (cache_ == nullptr) {
    const QueryResponse payload = compute_query(*a, query);
    queries_.fetch_add(1, std::memory_order_relaxed);
    SWEEP_OBS_COUNTER_ADD("serve.queries", 1);
    return assemble_query_response(payload, query.want_starts);
  }

  CacheKey key;
  key.content_hash = a->content_hash();
  key.scheme = static_cast<std::uint32_t>(query.scheme);
  // The computation ignores m when an embedded partition is selected;
  // normalize it out of the key so such queries share one entry.
  key.m = query.partition >= 0 ? 0u : query.m;
  key.partition = query.partition;
  key.seed = query.seed;

  // May block on a leader in flight and rethrows the leader's failure —
  // handle() turns it into the same error response a solo query gets.
  ScheduleCache::Probe probe = cache_->lookup_or_join(key);
  if (probe.kind == ScheduleCache::ProbeKind::kMiss) {
    QueryResponse payload;
    try {
      payload = compute_query(*a, query);
    } catch (...) {
      cache_->fail(std::move(probe.ticket), std::current_exception());
      throw;
    }
    probe.value = std::make_shared<const QueryResponse>(std::move(payload));
    cache_->fill(std::move(probe.ticket), probe.value);
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  SWEEP_OBS_COUNTER_ADD("serve.queries", 1);
  return assemble_query_response(*probe.value, query.want_starts);
}

QueryResponse ServeService::compute_query(const dag::Artifact& artifact,
                                          const QueryRequest& query) {
#if !defined(SWEEP_OBS_DISABLE)
  // Phase laps share one clock read per boundary; everything below the
  // `armed` check vanishes when metrics are off.
  const bool obs_armed = obs::metrics_enabled();
  std::uint64_t obs_lap_t0 = obs_armed ? obs::detail::now_ns() : 0;
  const auto obs_lap = [&obs_lap_t0]() {
    const std::uint64_t t1 = obs::detail::now_ns();
    const std::uint64_t dt = t1 - obs_lap_t0;
    obs_lap_t0 = t1;
    return dt;
  };
#endif
  const dag::Artifact& a = artifact;
  const dag::TaskGraph& tg = a.task_graph();
  const std::size_t n = tg.n_cells();
  const std::size_t k = tg.n_directions();

  util::Rng rng(query.seed);
  core::Assignment assignment;
  std::size_t m = query.m;
  if (query.partition >= 0) {
    const auto j = static_cast<std::uint64_t>(query.partition);
    if (j >= a.n_partitions()) {
      throw std::invalid_argument("query: partition index out of range");
    }
    m = static_cast<std::size_t>(a.partition_parts(j));
    const std::span<const std::uint32_t> part = a.partition(j);
    assignment.assign(part.begin(), part.end());
  } else {
    if (m == 0) throw std::invalid_argument("query: m must be positive");
    assignment = core::random_assignment(n, m, rng);
  }
#if !defined(SWEEP_OBS_DISABLE)
  if (obs_armed) SWEEP_OBS_HIST_RECORD("serve.lookup_ns", obs_lap());
#endif

  // Priority vectors replicate core/priorities.cpp exactly, including rng
  // stream consumption, so the result is bit-identical to the in-process
  // path (see the contract in service.hpp).
  std::vector<std::int64_t> priorities(tg.n_tasks());
  switch (query.scheme) {
    case Scheme::kLevel: {
      const std::span<const std::uint32_t> level = tg.levels();
      for (std::size_t t = 0; t < priorities.size(); ++t) {
        priorities[t] = static_cast<std::int64_t>(level[t]);
      }
      break;
    }
    case Scheme::kRandomDelay: {
      const std::vector<core::TimeStep> delays = core::random_delays(k, rng);
      const std::span<const std::uint32_t> level = tg.levels();
      for (std::size_t t = 0; t < priorities.size(); ++t) {
        priorities[t] = static_cast<std::int64_t>(level[t]) +
                        static_cast<std::int64_t>(delays[t / n]);
      }
      break;
    }
    case Scheme::kDescendant: {
      if (!a.has_descendants()) {
        throw std::invalid_argument(
            "query: artifact was packed without descendant counts");
      }
      // Consume the stream-split draw exactly like descendant_priorities
      // (which burns it even on the exact path) to keep rng state aligned.
      (void)rng();
      const std::span<const std::uint64_t> counts = a.descendant_counts_flat();
      for (std::size_t t = 0; t < priorities.size(); ++t) {
        priorities[t] = -static_cast<std::int64_t>(counts[t]);
      }
      break;
    }
  }

  core::ListScheduleOptions options;
  options.priorities = priorities;
  const core::Schedule schedule =
      core::list_schedule(tg, assignment, m, options);
#if !defined(SWEEP_OBS_DISABLE)
  if (obs_armed) SWEEP_OBS_HIST_RECORD("serve.schedule_ns", obs_lap());
#endif
  const core::C1Cost c1 = core::comm_cost_c1(tg, assignment);
  const core::C2Cost c2 = core::comm_cost_c2(tg, schedule);
  // makespan() scans every task's start time; computed once and shared by
  // the quality telemetry and the response (a second scan would make the
  // armed path visibly slower than disarmed — the overhead bench caught
  // exactly that).
  const std::uint64_t makespan = schedule.makespan();
#if !defined(SWEEP_OBS_DISABLE)
  if (obs_armed) {
    SWEEP_OBS_HIST_RECORD("serve.cost_ns", obs_lap());
    // Schedule-quality telemetry for daemon-served queries. The lower
    // bound is the coarse closed-form one (work / m, direction count,
    // critical path) — computable from the task graph alone, no
    // SweepInstance needed.
    const auto n_tasks = static_cast<std::uint64_t>(tg.n_tasks());
    const std::uint64_t lb =
        std::max({(n_tasks + m - 1) / m, static_cast<std::uint64_t>(k),
                  static_cast<std::uint64_t>(tg.max_level()) + 1});
    SWEEP_OBS_OBSERVE("quality.makespan", makespan);
    if (lb > 0) {
      SWEEP_OBS_OBSERVE("quality.makespan_over_lb",
                        static_cast<double>(makespan) /
                            static_cast<double>(lb));
    }
    if (makespan > 0) {
      SWEEP_OBS_OBSERVE(
          "quality.idle_fraction",
          1.0 - static_cast<double>(n_tasks) /
                    (static_cast<double>(makespan) * static_cast<double>(m)));
    }
    if (c1.total_edges > 0) {
      SWEEP_OBS_OBSERVE("quality.c1_fraction",
                        static_cast<double>(c1.cross_edges) /
                            static_cast<double>(c1.total_edges));
    }
    SWEEP_OBS_OBSERVE("quality.c2_total_delay", c2.total_delay);
  }
#endif

  QueryResponse payload;
  payload.makespan = makespan;
  payload.c1_cross_edges = c1.cross_edges;
  payload.c1_total_edges = c1.total_edges;
  payload.c2_total_delay = c2.total_delay;
  payload.c2_max_step_degree = c2.max_step_degree;
  payload.c2_busy_steps = c2.busy_steps;
  payload.schedule_hash = util::fnv1a_span<core::TimeStep>(
      schedule.starts(),
      util::fnv1a_span<core::ProcessorId>(schedule.assignment()));
  // Starts are ALWAYS materialized: the cache stores the full payload so a
  // want_starts probe hits the same entry a scalar probe filled.
  payload.starts = schedule.starts();
  return payload;
}

Response ServeService::handle_stats() {
  Response response;
  response.type = MsgType::kStats;
  // The daemon always speaks stats v2; the extra telemetry below it is
  // populated only when the obs layer is compiled in AND armed, so an
  // obs-off build answers with the legacy entries plus the version tag.
  response.stats.proto_version = kStatsProtoVersion;
  response.stats.entries = {
      {"queries", queries_.load(std::memory_order_relaxed)},
      {"swaps", swaps_.load(std::memory_order_relaxed)},
      {"errors", errors_.load(std::memory_order_relaxed)},
  };
  // Cache counters come from the cache's own atomics (present even in
  // obs-off builds), never from the obs registry — the serve.-prefix copy
  // below would otherwise duplicate them.
  if (cache_ != nullptr) {
    const ScheduleCacheStats cs = cache_->stats();
    response.stats.entries.emplace_back("serve.cache.hits", cs.hits);
    response.stats.entries.emplace_back("serve.cache.misses", cs.misses);
    response.stats.entries.emplace_back("serve.cache.inflight_waits",
                                        cs.inflight_waits);
    response.stats.entries.emplace_back("serve.cache.evictions", cs.evictions);
    response.stats.entries.emplace_back("serve.cache.invalidations",
                                        cs.invalidations);
    response.stats.entries.emplace_back("serve.cache.entries", cs.entries);
    response.stats.entries.emplace_back("serve.cache.bytes", cs.bytes);
    response.stats.entries.emplace_back("serve.cache.hit_rate_pct",
                                        cs.hit_rate_pct());
    // Mirror the hit rate as an obs gauge (armed builds only) so exporters
    // that scrape the registry see it without parsing the stats frame.
    SWEEP_OBS_GAUGE_SET("serve.cache.hit_rate_pct",
                        static_cast<std::int64_t>(cs.hit_rate_pct()));
  }
#if !defined(SWEEP_OBS_DISABLE)
  if (obs::metrics_enabled()) {
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    for (const auto& [name, value] : snap.counters) {
      if (name.starts_with("serve.")) {
        response.stats.entries.emplace_back(name, value);
      }
    }
    response.stats.gauges = snap.gauges;
    response.stats.histograms.reserve(snap.histograms.size());
    for (const obs::HistogramSnapshot& h : snap.histograms) {
      StatsHistogram out;
      out.name = h.name;
      out.count = h.count;
      out.p50 = h.quantile(0.50);
      out.p90 = h.quantile(0.90);
      out.p99 = h.quantile(0.99);
      out.p999 = h.quantile(0.999);
      out.max = h.max_estimate();
      response.stats.histograms.push_back(std::move(out));
    }
  }
#endif
  return response;
}

}  // namespace sweep::serve
