#pragma once
// Unix-domain-socket front end for ServeService.
//
// One accept thread takes connections on an AF_UNIX stream socket; each
// connection becomes one job on a util::ThreadPool, which loops reading
// length-prefixed frames, dispatches them through ServeService::handle, and
// writes the framed response — so N pool workers serve N connections
// concurrently while the hot-swap machinery in ServeService keeps every
// in-flight query on the artifact it started with.
//
// A connection job blocks on its own socket only (never on other queued
// jobs), which satisfies the pool's no-deadlock contract. A kShutdown frame
// is acked first, then stops the accept loop and wakes every open
// connection; stop() does the same from the owning thread. Both paths are
// idempotent.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "util/thread_pool.hpp"

namespace sweep::serve {

/// True for accept(2) errnos that mean "this connection (or this moment)
/// failed, the listener is still fine": the peer aborted the handshake, or
/// a resource (fds, buffers, memory) is temporarily exhausted. The accept
/// loop retries these with backoff; anything else (EBADF, EINVAL after
/// shutdown, ...) is fatal and ends the loop.
[[nodiscard]] bool is_transient_accept_error(int err);

struct ServerOptions {
  std::string socket_path;     ///< filesystem path of the AF_UNIX socket
  std::size_t threads = 0;     ///< pool workers; 0 = hardware concurrency
  bool unlink_existing = true; ///< remove a stale socket file before bind
  /// Requests slower than this get a sampled structured warn line (the
  /// first, then every 8th per server). 0 disables; ignored when the obs
  /// layer is compiled out or metrics are unarmed.
  std::uint64_t slow_request_ns = 50'000'000;
};

class Server {
 public:
  /// Binds and listens (throws std::runtime_error on socket errors) but
  /// does not accept yet; call start().
  Server(ServeService& service, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launches the accept thread. Idempotent.
  void start();

  /// Stops accepting, wakes and drains every open connection, joins the
  /// pool, and unlinks the socket file. Idempotent; safe from any thread
  /// except a connection handler's own.
  void stop();

  /// Blocks until a kShutdown frame (or stop()) terminates the server.
  void wait();

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

  /// Transient accept(2) failures survived so far (also exported as the
  /// serve.accept_errors counter).
  [[nodiscard]] std::uint64_t accept_errors() const {
    return accept_errors_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void close_listener();

  ServeService& service_;
  ServerOptions options_;
  /// Atomic because the accept thread reads it while close_listener()
  /// shuts it down from a pool worker. The fd stays open (shutdown only)
  /// until stop() has joined the accept thread, so the number can't be
  /// recycled under a blocked accept4().
  std::atomic<int> listen_fd_{-1};
  util::ThreadPool pool_;
  std::thread accept_thread_;

  std::mutex state_mutex_;
  std::condition_variable stopped_cv_;
  bool stopping_ = false;
  bool accept_done_ = false;
  std::vector<int> open_fds_;  ///< live connection sockets (for wakeup)

  /// Monotonic per-server request id (trace spans + slow-request lines).
  std::atomic<std::uint64_t> next_request_id_{0};
  /// Slow requests seen so far; drives the 1st-then-every-8th log sampling.
  std::atomic<std::uint64_t> slow_requests_{0};
  /// Transient accept(2) errnos survived (see is_transient_accept_error).
  std::atomic<std::uint64_t> accept_errors_{0};
  /// Connections currently inside a frame handler. Lock-free source for
  /// serve.queue_depth — the old implementation sampled open_fds_.size()
  /// under state_mutex_ on every frame, which measured open connections
  /// (not queued work) and put a mutex on the hot path.
  std::atomic<std::int64_t> active_frames_{0};
};

}  // namespace sweep::serve
