#include "serve/frame.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "serve/wire.hpp"

namespace sweep::serve {
namespace {

/// Reads exactly `len` bytes. Returns false only on EOF before the FIRST
/// byte when `eof_ok`; any other short read throws.
bool read_exact(int fd, void* buf, std::size_t len, bool eof_ok) {
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t r = ::recv(fd, p + got, len - got, 0);
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw std::runtime_error("serve: connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Only reachable when the caller armed SO_RCVTIMEO (Client's
        // receive deadline); plain blocking sockets never return these.
        throw std::runtime_error("serve: receive timed out");
      }
      throw std::runtime_error(std::string("serve: recv: ") +
                               std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_exact(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t r = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: send: ") +
                               std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

}  // namespace

bool read_frame(int fd, std::vector<std::byte>& payload) {
  std::uint32_t len = 0;
  if (!read_exact(fd, &len, sizeof(len), /*eof_ok=*/true)) return false;
  if (len > kMaxFrameBytes) {
    throw std::runtime_error("serve: frame length " + std::to_string(len) +
                             " exceeds the cap");
  }
  payload.resize(len);
  if (len > 0) read_exact(fd, payload.data(), len, /*eof_ok=*/false);
  return true;
}

void write_frame(int fd, std::span<const std::byte> payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("serve: refusing to send oversized frame");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  write_exact(fd, &len, sizeof(len));
  if (!payload.empty()) write_exact(fd, payload.data(), payload.size());
}

}  // namespace sweep::serve
