#include "serve/wire.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <string_view>

namespace sweep::serve {
namespace {

/// Append-only byte writer (encoders cannot fail).
class Writer {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(T value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    out_.insert(out_.end(), p, p + sizeof(T));
  }
  void put_string(const std::string& s) {
    put(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    out_.insert(out_.end(), p, p + s.size());
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_array(const std::vector<T>& values) {
    put(static_cast<std::uint64_t>(values.size()));
    const auto* p = reinterpret_cast<const std::byte*>(values.data());
    out_.insert(out_.end(), p, p + values.size() * sizeof(T));
  }
  std::vector<std::byte> take() { return std::move(out_); }

 private:
  std::vector<std::byte> out_;
};

/// Bounds-checked byte reader; every decode failure throws WireError.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get(const char* what) {
    if (bytes_.size() - pos_ < sizeof(T)) {
      throw WireError(std::string("wire: truncated ") + what);
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }
  std::string get_string(const char* what) {
    const auto len = get<std::uint32_t>(what);
    if (len > kMaxFrameBytes || bytes_.size() - pos_ < len) {
      throw WireError(std::string("wire: truncated ") + what);
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_array(const char* what) {
    const auto count = get<std::uint64_t>(what);
    if (count > kMaxFrameBytes / sizeof(T) ||
        bytes_.size() - pos_ < count * sizeof(T)) {
      throw WireError(std::string("wire: truncated ") + what);
    }
    std::vector<T> values(static_cast<std::size_t>(count));
    std::memcpy(values.data(), bytes_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return values;
  }
  /// A message with bytes past its declared fields is malformed, not
  /// forward-compatible — reject it so garbage cannot hide in the tail.
  void expect_end(const char* what) const {
    if (pos_ != bytes_.size()) {
      throw WireError(std::string("wire: trailing bytes after ") + what);
    }
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

/// Routes one decoded stats entry: namespaced keys (wire.hpp) land in the
/// typed views, everything else stays a plain entry. Purely syntactic on
/// already length-checked strings, so hostile keys (empty names, bogus
/// suffixes, duplicates) degrade to plain entries or overwrites — never a
/// throw beyond allocation, never a read out of bounds. `hist_index` maps
/// histogram name -> position in stats.histograms; the caller owns it so
/// a frame stuffed with millions of distinct hist.* keys stays O(n log n)
/// instead of quadratic.
void lift_stats_entry(StatsResponse& stats,
                      std::map<std::string, std::size_t>& hist_index,
                      std::string key, std::uint64_t value) {
  constexpr std::string_view kGaugePrefix = "gauge.";
  constexpr std::string_view kHistPrefix = "hist.";
  if (key == kStatsVersionKey) {
    stats.proto_version = value;
    return;
  }
  if (key.size() > kGaugePrefix.size() && key.starts_with(kGaugePrefix)) {
    stats.gauges.emplace_back(key.substr(kGaugePrefix.size()),
                              static_cast<std::int64_t>(value));
    return;
  }
  if (key.size() > kHistPrefix.size() && key.starts_with(kHistPrefix)) {
    const std::size_t dot = key.rfind('.');
    if (dot > kHistPrefix.size() && dot != std::string::npos) {
      const std::string name =
          key.substr(kHistPrefix.size(), dot - kHistPrefix.size());
      const std::string_view suffix = std::string_view(key).substr(dot + 1);
      std::uint64_t StatsHistogram::*field = nullptr;
      if (suffix == "count") field = &StatsHistogram::count;
      else if (suffix == "p50") field = &StatsHistogram::p50;
      else if (suffix == "p90") field = &StatsHistogram::p90;
      else if (suffix == "p99") field = &StatsHistogram::p99;
      else if (suffix == "p999") field = &StatsHistogram::p999;
      else if (suffix == "max") field = &StatsHistogram::max;
      if (field != nullptr) {
        auto [it, inserted] =
            hist_index.try_emplace(name, stats.histograms.size());
        if (inserted) {
          StatsHistogram fresh;
          fresh.name = name;
          stats.histograms.push_back(std::move(fresh));
        }
        stats.histograms[it->second].*field = value;
        return;
      }
    }
  }
  stats.entries.emplace_back(std::move(key), value);
}

MsgType decode_type(std::uint32_t raw) {
  if (raw < static_cast<std::uint32_t>(MsgType::kPing) ||
      raw > static_cast<std::uint32_t>(MsgType::kShutdown)) {
    throw WireError("wire: unknown message type " + std::to_string(raw));
  }
  return static_cast<MsgType>(raw);
}

}  // namespace

std::vector<std::byte> encode_request(const Request& request) {
  Writer w;
  w.put(static_cast<std::uint32_t>(request.type));
  switch (request.type) {
    case MsgType::kQuery:
      w.put(static_cast<std::uint32_t>(request.query.scheme));
      w.put(request.query.m);
      w.put(request.query.seed);
      w.put(request.query.partition);
      w.put(static_cast<std::uint8_t>(request.query.want_starts ? 1 : 0));
      break;
    case MsgType::kSwap:
      w.put_string(request.swap.path);
      break;
    default:
      break;  // ping/info/stats/shutdown have empty bodies
  }
  return w.take();
}

Request decode_request(std::span<const std::byte> payload) {
  Reader r(payload);
  Request request;
  request.type = decode_type(r.get<std::uint32_t>("request type"));
  switch (request.type) {
    case MsgType::kQuery: {
      const auto scheme = r.get<std::uint32_t>("scheme");
      if (scheme > static_cast<std::uint32_t>(Scheme::kDescendant)) {
        throw WireError("wire: unknown scheme " + std::to_string(scheme));
      }
      request.query.scheme = static_cast<Scheme>(scheme);
      request.query.m = r.get<std::uint32_t>("m");
      request.query.seed = r.get<std::uint64_t>("seed");
      request.query.partition = r.get<std::int64_t>("partition");
      request.query.want_starts = r.get<std::uint8_t>("want_starts") != 0;
      break;
    }
    case MsgType::kSwap:
      request.swap.path = r.get_string("swap path");
      break;
    default:
      break;
  }
  r.expect_end("request");
  return request;
}

std::vector<std::byte> encode_response(const Response& response) {
  Writer w;
  w.put(response.status);
  w.put(static_cast<std::uint32_t>(response.type));
  if (response.status != 0) {
    w.put_string(response.error);
    return w.take();
  }
  switch (response.type) {
    case MsgType::kInfo:
      w.put_string(response.info.name);
      w.put(response.info.n_cells);
      w.put(response.info.n_directions);
      w.put(response.info.n_edges);
      w.put(response.info.content_hash);
      w.put(response.info.n_partitions);
      w.put(static_cast<std::uint8_t>(response.info.has_descendants ? 1 : 0));
      break;
    case MsgType::kQuery:
      w.put(response.query.makespan);
      w.put(response.query.c1_cross_edges);
      w.put(response.query.c1_total_edges);
      w.put(response.query.c2_total_delay);
      w.put(response.query.c2_max_step_degree);
      w.put(response.query.c2_busy_steps);
      w.put(response.query.schedule_hash);
      w.put_array(response.query.starts);
      break;
    case MsgType::kStats: {
      // Fold the typed views back into namespaced entries (wire.hpp). The
      // plain entries go first, unchanged, so a pre-bump consumer decodes
      // the same pairs it always did; a version-1 response with empty
      // views encodes byte-identically to the pre-bump writer. Non-empty
      // views force the v2 block regardless of the version field —
      // carrying typed telemetry IS speaking v2 — which keeps
      // decode(encode(x)) idempotent.
      const StatsResponse& stats = response.stats;
      const bool v2 = stats.proto_version >= 2 || !stats.gauges.empty() ||
                      !stats.histograms.empty();
      const std::uint64_t extra =
          v2 ? 1 + stats.gauges.size() + stats.histograms.size() * 6 : 0;
      w.put(static_cast<std::uint64_t>(stats.entries.size()) + extra);
      for (const auto& [key, value] : stats.entries) {
        w.put_string(key);
        w.put(value);
      }
      if (v2) {
        w.put_string(kStatsVersionKey);
        w.put(std::max(stats.proto_version, kStatsProtoVersion));
        for (const auto& [name, value] : stats.gauges) {
          w.put_string("gauge." + name);
          w.put(static_cast<std::uint64_t>(value));
        }
        for (const StatsHistogram& h : stats.histograms) {
          const auto put_field = [&](const char* suffix,
                                     std::uint64_t value) {
            w.put_string("hist." + h.name + suffix);
            w.put(value);
          };
          put_field(".count", h.count);
          put_field(".p50", h.p50);
          put_field(".p90", h.p90);
          put_field(".p99", h.p99);
          put_field(".p999", h.p999);
          put_field(".max", h.max);
        }
      }
      break;
    }
    default:
      break;  // ping/swap/shutdown acks carry no body
  }
  return w.take();
}

Response decode_response(std::span<const std::byte> payload) {
  Reader r(payload);
  Response response;
  response.status = r.get<std::uint32_t>("status");
  response.type = decode_type(r.get<std::uint32_t>("response type"));
  if (response.status != 0) {
    response.error = r.get_string("error");
    r.expect_end("error response");
    return response;
  }
  switch (response.type) {
    case MsgType::kInfo:
      response.info.name = r.get_string("name");
      response.info.n_cells = r.get<std::uint64_t>("n_cells");
      response.info.n_directions = r.get<std::uint64_t>("n_directions");
      response.info.n_edges = r.get<std::uint64_t>("n_edges");
      response.info.content_hash = r.get<std::uint64_t>("content_hash");
      response.info.n_partitions = r.get<std::uint64_t>("n_partitions");
      response.info.has_descendants =
          r.get<std::uint8_t>("has_descendants") != 0;
      break;
    case MsgType::kQuery:
      response.query.makespan = r.get<std::uint64_t>("makespan");
      response.query.c1_cross_edges = r.get<std::uint64_t>("c1_cross");
      response.query.c1_total_edges = r.get<std::uint64_t>("c1_total");
      response.query.c2_total_delay = r.get<std::uint64_t>("c2_delay");
      response.query.c2_max_step_degree = r.get<std::uint64_t>("c2_max");
      response.query.c2_busy_steps = r.get<std::uint64_t>("c2_busy");
      response.query.schedule_hash = r.get<std::uint64_t>("schedule_hash");
      response.query.starts = r.get_array<std::uint32_t>("starts");
      break;
    case MsgType::kStats: {
      const auto count = r.get<std::uint64_t>("stats count");
      if (count > kMaxFrameBytes / 12) {  // each entry is >= 12 bytes
        throw WireError("wire: stats count too large");
      }
      response.stats.entries.reserve(static_cast<std::size_t>(count));
      std::map<std::string, std::size_t> hist_index;
      for (std::uint64_t i = 0; i < count; ++i) {
        std::string key = r.get_string("stats key");
        const auto value = r.get<std::uint64_t>("stats value");
        lift_stats_entry(response.stats, hist_index, std::move(key), value);
      }
      break;
    }
    default:
      break;
  }
  r.expect_end("response");
  return response;
}

}  // namespace sweep::serve
