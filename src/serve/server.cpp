#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/obs.hpp"
#include "serve/frame.hpp"
#include "util/log.hpp"

namespace sweep::serve {
namespace {

/// Balances active_frames_ on every exit path of a frame iteration
/// (normal completion, WireError response, IO exception unwinding).
class FrameCountGuard {
 public:
  explicit FrameCountGuard(std::atomic<std::int64_t>& count) : count_(count) {}
  ~FrameCountGuard() { count_.fetch_sub(1, std::memory_order_relaxed); }
  FrameCountGuard(const FrameCountGuard&) = delete;
  FrameCountGuard& operator=(const FrameCountGuard&) = delete;

 private:
  std::atomic<std::int64_t>& count_;
};

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

bool is_transient_accept_error(int err) {
  switch (err) {
    case ECONNABORTED:  // peer gave up mid-handshake; next accept is fine
    case EAGAIN:        // spurious wakeup / kernel-level retry hint
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EMFILE:   // process fd table full — recoverable once one closes
    case ENFILE:   // system fd table full
    case ENOBUFS:  // transient kernel buffer exhaustion
    case ENOMEM:
      return true;
    default:
      return false;
  }
}

Server::Server(ServeService& service, ServerOptions options)
    : service_(service), options_(std::move(options)), pool_(options_.threads) {
  if (options_.unlink_existing) ::unlink(options_.socket_path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket: ") +
                             std::strerror(errno));
  }
  const sockaddr_un addr = make_address(options_.socket_path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("serve: bind " + options_.socket_path + ": " +
                             std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    throw std::runtime_error(std::string("serve: listen: ") +
                             std::strerror(err));
  }
  listen_fd_.store(fd, std::memory_order_release);
}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (accept_thread_.joinable() || stopping_) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  const int lfd = listen_fd_.load(std::memory_order_acquire);
  // Doubling backoff for transient accept failures (fd/buffer exhaustion):
  // long enough to let a connection close and free a slot, short enough
  // that the daemon recovers promptly. Reset on every successful accept.
  constexpr std::chrono::milliseconds kBackoffFloor{1};
  constexpr std::chrono::milliseconds kBackoffCeiling{100};
  std::chrono::milliseconds backoff = kBackoffFloor;
  for (;;) {
    const int fd = ::accept4(lfd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (is_transient_accept_error(err)) {
        // EMFILE/ENFILE/ECONNABORTED/ENOMEM/... must not kill the accept
        // loop — the daemon would look alive but never take another
        // connection. Count it, back off, retry; bail early if stop()
        // lands during the wait.
        accept_errors_.fetch_add(1, std::memory_order_relaxed);
        SWEEP_OBS_COUNTER_ADD("serve.accept_errors", 1);
        util::log_warn(std::string("serve accept retry: ") +
                       std::strerror(err));
        std::unique_lock<std::mutex> lock(state_mutex_);
        if (stopped_cv_.wait_for(lock, backoff,
                                 [this] { return stopping_; })) {
          break;
        }
        backoff = std::min(backoff * 2, kBackoffCeiling);
        continue;
      }
      // EINVAL after close_listener() shut the socket down, or a real
      // error: either way the loop is done (stop() owns cleanup).
      break;
    }
    backoff = kBackoffFloor;
    SWEEP_OBS_COUNTER_ADD("serve.connections", 1);
    bool submitted = false;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (!stopping_) {
        open_fds_.push_back(fd);
        submitted = true;
      }
    }
    if (!submitted) {
      ::close(fd);
      continue;
    }
    try {
      pool_.submit([this, fd] { serve_connection(fd); });
    } catch (const std::exception&) {
      // Pool already shut down (stop raced us): drop the connection.
      std::lock_guard<std::mutex> lock(state_mutex_);
      open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                      open_fds_.end());
      ::close(fd);
    }
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    accept_done_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::serve_connection(int fd) {
#if !defined(SWEEP_OBS_DISABLE)
  obs::TraceSpan connection_span("serve.connection", "fd",
                                 static_cast<std::int64_t>(fd));
  SWEEP_OBS_GAUGE_ADD("serve.open_connections", 1);
#endif
  bool shutdown_requested = false;
#if !defined(SWEEP_OBS_DISABLE)
  bool obs_inflight = false;  // rebalances the gauge if a frame throws
#endif
  try {
    std::vector<std::byte> payload;
    while (read_frame(fd, payload)) {
      // Queue depth = connections currently inside a frame handler RIGHT
      // NOW (this one included) — actual in-flight work, not open sockets.
      // One lock-free atomic bump per frame; the old implementation took
      // state_mutex_ here and sampled open_fds_.size(), which counted idle
      // connections as load.
      const std::int64_t depth =
          active_frames_.fetch_add(1, std::memory_order_relaxed) + 1;
      const FrameCountGuard depth_guard(active_frames_);
      SWEEP_OBS_OBSERVE("serve.queue_depth", static_cast<double>(depth));
      SWEEP_OBS_GAUGE_SET("serve.queue_depth", depth);
#if !defined(SWEEP_OBS_DISABLE)
      // Phase clocks share one read per boundary; `armed` is captured once
      // per frame so a mid-request arm/disarm cannot tear the laps.
      const bool obs_armed = obs::metrics_enabled();
      const std::uint64_t request_id =
          next_request_id_.fetch_add(1, std::memory_order_relaxed);
      obs::TraceSpan request_span("serve.request", "id",
                                  static_cast<std::int64_t>(request_id));
      std::uint64_t t_start = 0;
      std::uint64_t t_lap = 0;
      if (obs_armed) {
        SWEEP_OBS_GAUGE_ADD("serve.inflight_requests", 1);
        obs_inflight = true;
        t_start = obs::detail::now_ns();
        t_lap = t_start;
      }
      const auto obs_lap = [&t_lap]() {
        const std::uint64_t t1 = obs::detail::now_ns();
        const std::uint64_t dt = t1 - t_lap;
        t_lap = t1;
        return dt;
      };
#endif
      Response response;
      MsgType type = MsgType::kPing;
      try {
        const Request request = decode_request(payload);
#if !defined(SWEEP_OBS_DISABLE)
        if (obs_armed) SWEEP_OBS_HIST_RECORD("serve.decode_ns", obs_lap());
#endif
        type = request.type;
        response = service_.handle(request);
      } catch (const WireError& e) {
        SWEEP_OBS_COUNTER_ADD("serve.wire_errors", 1);
        // Count against the service's `errors` total too: the stats
        // frame's `errors` entry must agree with serve.status.error, and
        // this malformed frame is about to go on the wire as status=1.
        service_.record_protocol_error();
        response.status = 1;
        response.type = MsgType::kPing;
        response.error = e.what();
      }
#if !defined(SWEEP_OBS_DISABLE)
      if (obs_armed) (void)obs_lap();  // reset the lap clock post-handle
#endif
      std::vector<std::byte> encoded = encode_response(response);
#if !defined(SWEEP_OBS_DISABLE)
      if (obs_armed) SWEEP_OBS_HIST_RECORD("serve.encode_ns", obs_lap());
#endif
      write_frame(fd, encoded);
#if !defined(SWEEP_OBS_DISABLE)
      if (obs_armed) {
        SWEEP_OBS_HIST_RECORD("serve.write_ns", obs_lap());
        const std::uint64_t total_ns = t_lap - t_start;
        SWEEP_OBS_HIST_RECORD("serve.request_ns", total_ns);
        if (response.status == 0) {
          SWEEP_OBS_COUNTER_ADD("serve.status.ok", 1);
        } else {
          SWEEP_OBS_COUNTER_ADD("serve.status.error", 1);
        }
        SWEEP_OBS_GAUGE_ADD("serve.inflight_requests", -1);
        obs_inflight = false;
        if (options_.slow_request_ns != 0 &&
            total_ns >= options_.slow_request_ns) {
          // Sampled: the first slow request always logs, then every 8th,
          // so a persistently slow daemon cannot flood stderr.
          const std::uint64_t seen =
              slow_requests_.fetch_add(1, std::memory_order_relaxed);
          if (seen % 8 == 0) {
            util::log_warn(
                "serve slow request id=" + std::to_string(request_id) +
                " type=" + std::to_string(static_cast<std::uint32_t>(type)) +
                " status=" + std::to_string(response.status) +
                " total_ns=" + std::to_string(total_ns) +
                " sampled=1/8");
          }
        }
      }
#endif
      if (type == MsgType::kShutdown && response.status == 0) {
        shutdown_requested = true;
        break;
      }
    }
  } catch (const std::exception&) {
    // IO error or hostile framing: drop this connection, keep serving.
    SWEEP_OBS_COUNTER_ADD("serve.dropped_connections", 1);
  }
#if !defined(SWEEP_OBS_DISABLE)
  if (obs_inflight) SWEEP_OBS_GAUGE_ADD("serve.inflight_requests", -1);
  SWEEP_OBS_GAUGE_ADD("serve.open_connections", -1);
#endif
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                    open_fds_.end());
  }
  ::close(fd);
  // After the ack is on the wire: stop accepting and wake wait()ers. Must
  // not join the pool from inside one of its own jobs — initiation only;
  // the owning thread finishes shutdown via stop().
  if (shutdown_requested) close_listener();
}

void Server::close_listener() {
  std::vector<int> to_wake;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stopping_) return;
    stopping_ = true;
    to_wake = open_fds_;
  }
  // shutdown() unblocks a concurrent accept(); the fd itself is closed by
  // stop() only after the accept thread has been joined, so its number
  // can't be recycled while accept4 still references it.
  const int lfd = listen_fd_.load(std::memory_order_acquire);
  if (lfd >= 0) ::shutdown(lfd, SHUT_RDWR);
  // Wake blocked readers; SHUT_RD leaves in-flight responses flushing.
  for (int fd : to_wake) ::shutdown(fd, SHUT_RD);
  stopped_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  stopped_cv_.wait(lock, [this] {
    return stopping_ && (accept_done_ || !accept_thread_.joinable());
  });
}

void Server::stop() {
  close_listener();
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_.shutdown();  // drains connection jobs; they all see EOF/SHUT_RD
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) ::close(lfd);
  ::unlink(options_.socket_path.c_str());
}

}  // namespace sweep::serve
