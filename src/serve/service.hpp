#pragma once
// ServeService: the transport-independent brain of sweep_serve. Holds the
// currently served artifact behind a shared_ptr and turns decoded wire
// Requests into Responses. The Server (server.hpp) owns the sockets; tests
// and the fuzz harness call handle() directly.
//
// Hot swap (the OSRM datastore pattern): swap() maps and validates the new
// artifact FIRST, then flips the shared_ptr under a mutex. Queries grab
// their own reference at entry, so in-flight work keeps reading the old
// mapping; the munmap happens automatically when the last such reference
// drops. No reader ever blocks on a swap and no swap ever waits for
// readers.
//
// Bit-identity contract: a query (scheme, m, seed) reproduces exactly what
// the in-process path computes on the instance the artifact was packed
// from —
//   util::Rng rng(seed);
//   assignment = core::random_assignment(n, m, rng);
//   priorities = level / random-delay / descendant priorities from the SAME
//                rng stream position;
//   core::list_schedule(task_graph, assignment, m, {priorities});
// The descendant scheme uses the artifact's packed exact counts and matches
// core::descendant_priorities when that function takes its exact path
// (n_cells <= dag::kDefaultExactThreshold).
//
// Schedule cache (DESIGN.md §15): handle_query probes a sharded concurrent
// ScheduleCache keyed by (artifact content hash, scheme, m-or-partition,
// seed) before computing. A hit assembles the wire response from the same
// cached payload fields the cold path produced, so hits are byte-identical
// to cold responses; concurrent identical misses coalesce onto one
// list_schedule via the cache's single-flight tickets. swap_to() flips the
// cache's epoch to the new content hash, so a hot swap can never serve a
// stale schedule.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "serve/schedule_cache.hpp"
#include "serve/wire.hpp"
#include "sweep/artifact.hpp"

namespace sweep::serve {

class ServeService {
 public:
  explicit ServeService(std::shared_ptr<const dag::Artifact> artifact,
                        ScheduleCacheOptions cache_options = {});

  /// Convenience: map_file + construct.
  static ServeService from_file(const std::string& path,
                                ScheduleCacheOptions cache_options = {});

  /// Answers one request. Never throws: every failure (bad scheme, missing
  /// section, unloadable swap target) becomes a status != 0 response so the
  /// daemon survives hostile queries.
  Response handle(const Request& request);

  /// Current artifact snapshot (what new queries will see).
  [[nodiscard]] std::shared_ptr<const dag::Artifact> artifact() const;

  /// Validates and installs a replacement artifact. Throws (ArtifactError /
  /// runtime_error) if `path` cannot be loaded — the old artifact keeps
  /// serving in that case.
  void swap_to(const std::string& path);

  /// Lifetime counters (also mirrored into the obs registry).
  [[nodiscard]] std::uint64_t queries_served() const {
    return queries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t swaps_completed() const {
    return swaps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t errors_returned() const {
    return errors_.load(std::memory_order_relaxed);
  }

  /// Counts a transport-layer protocol failure (malformed frame) against
  /// the same `errors` total that handler failures feed, so the stats
  /// frame's `errors` entry agrees with serve.status.error: both count
  /// every non-ok response the daemon puts on the wire.
  void record_protocol_error();

  /// Schedule-cache counters; all zeros when the cache is disabled.
  [[nodiscard]] ScheduleCacheStats cache_stats() const;
  [[nodiscard]] bool cache_enabled() const {
    return cache_ != nullptr && cache_->enabled();
  }

 private:
  Response handle_query(const QueryRequest& query);
  Response handle_info();
  Response handle_stats();

  /// The cold path: one full schedule + cost evaluation against `artifact`.
  /// Always populates `starts` (the cache stores the full payload so
  /// want_starts probes hit the same entry).
  QueryResponse compute_query(const dag::Artifact& artifact,
                              const QueryRequest& query);

  mutable std::mutex artifact_mutex_;
  std::shared_ptr<const dag::Artifact> artifact_;
  std::unique_ptr<ScheduleCache> cache_;  ///< null when disabled by options

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace sweep::serve
