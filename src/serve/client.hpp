#pragma once
// Blocking client for the sweep_serve socket: connect, call, close. Used by
// the sweep_query CLI, the smoke test, and anything else that wants typed
// request/response instead of raw frames.

#include <cstdint>
#include <string>

#include "serve/wire.hpp"

namespace sweep::serve {

struct ClientOptions {
  /// Receive deadline per recv(2), in milliseconds (SO_RCVTIMEO). 0 means
  /// block forever — the historical behavior, where a stalled daemon hangs
  /// the caller. With a deadline, a stalled read throws
  /// "serve: receive timed out" instead.
  std::uint64_t timeout_ms = 0;
};

class Client {
 public:
  /// Connects to the daemon's AF_UNIX socket; throws std::runtime_error if
  /// the daemon is not there.
  explicit Client(const std::string& socket_path, ClientOptions options = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// One round trip: encode, frame, await the framed response, decode.
  /// Throws on transport errors or a malformed response; a daemon-side
  /// failure comes back as Response::status != 0, not an exception.
  Response call(const Request& request);

  /// Convenience wrappers.
  Response ping() { return call(typed_request(MsgType::kPing)); }
  Response info() { return call(typed_request(MsgType::kInfo)); }
  Response stats() { return call(typed_request(MsgType::kStats)); }
  Response shutdown_server() {
    return call(typed_request(MsgType::kShutdown));
  }

 private:
  static Request typed_request(MsgType type) {
    Request request;
    request.type = type;
    return request;
  }

  int fd_ = -1;
};

}  // namespace sweep::serve
