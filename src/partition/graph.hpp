#pragma once
// Weighted undirected graph in CSR form — the input to the partitioners.
// Built from a mesh's cell adjacency or assembled directly from edge lists
// (as coarsening does).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "mesh/mesh.hpp"

namespace sweep::partition {

using VertexId = std::uint32_t;

class Graph {
 public:
  Graph() = default;

  /// From an undirected edge list (each pair stored once). Vertex weights
  /// default to 1, edge weights to 1. Parallel edges are merged by weight.
  Graph(std::size_t n_vertices,
        std::span<const std::pair<VertexId, VertexId>> edges);

  /// Full constructor used by coarsening (adjacency supplied directly;
  /// `neighbors`/`edge_weights` must list each undirected edge from both
  /// endpoints).
  Graph(std::vector<std::uint32_t> offsets, std::vector<VertexId> neighbors,
        std::vector<std::int64_t> edge_weights,
        std::vector<std::int64_t> vertex_weights);

  [[nodiscard]] std::size_t n_vertices() const {
    return vertex_weights_.size();
  }
  [[nodiscard]] std::size_t n_edges() const { return neighbors_.size() / 2; }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  [[nodiscard]] std::span<const std::int64_t> edge_weights(VertexId v) const {
    return {edge_weights_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  [[nodiscard]] std::int64_t vertex_weight(VertexId v) const {
    return vertex_weights_[v];
  }
  [[nodiscard]] std::int64_t total_vertex_weight() const { return total_weight_; }
  [[nodiscard]] std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  void compute_total();

  std::vector<std::uint32_t> offsets_ = {0};
  std::vector<VertexId> neighbors_;
  std::vector<std::int64_t> edge_weights_;
  std::vector<std::int64_t> vertex_weights_;
  std::int64_t total_weight_ = 0;
};

/// The cell-adjacency graph of a mesh (unit weights).
Graph graph_from_mesh(const mesh::UnstructuredMesh& mesh);

/// Partition = block id per vertex.
using Partition = std::vector<std::uint32_t>;

/// Sum of weights of edges whose endpoints lie in different blocks.
std::int64_t edge_cut(const Graph& graph, const Partition& part);

/// max block weight / (total weight / n_parts); 1.0 = perfectly balanced.
double imbalance(const Graph& graph, const Partition& part, std::size_t n_parts);

/// Number of distinct non-empty blocks.
std::size_t count_blocks(const Partition& part);

}  // namespace sweep::partition
