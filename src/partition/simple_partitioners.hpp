#pragma once
// Baseline partitioners used as ablation comparators for the multilevel
// partitioner: random blocks (no locality), contiguous BFS blocks (cheap
// locality), and recursive coordinate bisection (geometric locality).

#include <cstdint>

#include "mesh/vec3.hpp"
#include "partition/graph.hpp"

namespace sweep::partition {

/// Each vertex independently assigned to a uniform random block.
Partition random_partition(std::size_t n_vertices, std::size_t n_parts,
                           std::uint64_t seed);

/// Grows blocks of ~block_size vertices by BFS over the graph; a new block
/// starts whenever the current one fills (or the frontier empties).
Partition bfs_blocks(const Graph& graph, std::size_t block_size);

/// Recursive coordinate bisection on 3D points (cell centroids): split the
/// widest axis at the weighted median, recurse. Produces n_parts blocks.
Partition coordinate_bisection(const std::vector<mesh::Vec3>& points,
                               std::size_t n_parts);

}  // namespace sweep::partition
