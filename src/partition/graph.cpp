#include "partition/graph.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace sweep::partition {

Graph::Graph(std::size_t n_vertices,
             std::span<const std::pair<VertexId, VertexId>> edges) {
  vertex_weights_.assign(n_vertices, 1);
  // Merge parallel edges: canonicalize, sort, accumulate.
  std::vector<std::pair<VertexId, VertexId>> canon;
  canon.reserve(edges.size());
  for (auto [u, v] : edges) {
    if (u >= n_vertices || v >= n_vertices) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    if (u == v) continue;  // ignore self loops
    canon.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(canon.begin(), canon.end());
  std::vector<std::pair<std::pair<VertexId, VertexId>, std::int64_t>> merged;
  for (const auto& e : canon) {
    if (!merged.empty() && merged.back().first == e) {
      ++merged.back().second;
    } else {
      merged.push_back({e, 1});
    }
  }

  offsets_.assign(n_vertices + 1, 0);
  for (const auto& [e, w] : merged) {
    ++offsets_[e.first + 1];
    ++offsets_[e.second + 1];
  }
  for (std::size_t i = 0; i < n_vertices; ++i) offsets_[i + 1] += offsets_[i];
  neighbors_.resize(offsets_[n_vertices]);
  edge_weights_.resize(offsets_[n_vertices]);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [e, w] : merged) {
    neighbors_[cursor[e.first]] = e.second;
    edge_weights_[cursor[e.first]++] = w;
    neighbors_[cursor[e.second]] = e.first;
    edge_weights_[cursor[e.second]++] = w;
  }
  compute_total();
}

Graph::Graph(std::vector<std::uint32_t> offsets, std::vector<VertexId> neighbors,
             std::vector<std::int64_t> edge_weights,
             std::vector<std::int64_t> vertex_weights)
    : offsets_(std::move(offsets)),
      neighbors_(std::move(neighbors)),
      edge_weights_(std::move(edge_weights)),
      vertex_weights_(std::move(vertex_weights)) {
  if (offsets_.size() != vertex_weights_.size() + 1 ||
      neighbors_.size() != edge_weights_.size() ||
      offsets_.back() != neighbors_.size()) {
    throw std::invalid_argument("Graph: inconsistent CSR arrays");
  }
  compute_total();
}

void Graph::compute_total() {
  total_weight_ = 0;
  for (std::int64_t w : vertex_weights_) total_weight_ += w;
}

Graph graph_from_mesh(const mesh::UnstructuredMesh& mesh) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(mesh.n_interior_faces());
  for (const mesh::Face& f : mesh.faces()) {
    if (!f.is_boundary()) edges.emplace_back(f.cell_a, f.cell_b);
  }
  return Graph(mesh.n_cells(), edges);
}

std::int64_t edge_cut(const Graph& graph, const Partition& part) {
  std::int64_t cut = 0;
  for (VertexId v = 0; v < graph.n_vertices(); ++v) {
    const auto nbrs = graph.neighbors(v);
    const auto weights = graph.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v && part[nbrs[i]] != part[v]) cut += weights[i];
    }
  }
  return cut;
}

double imbalance(const Graph& graph, const Partition& part, std::size_t n_parts) {
  if (n_parts == 0) return 0.0;
  std::vector<std::int64_t> weight(n_parts, 0);
  for (VertexId v = 0; v < graph.n_vertices(); ++v) {
    weight[part[v] % n_parts] += graph.vertex_weight(v);
  }
  const double avg = static_cast<double>(graph.total_vertex_weight()) /
                     static_cast<double>(n_parts);
  std::int64_t max_weight = 0;
  for (std::int64_t w : weight) max_weight = std::max(max_weight, w);
  return avg > 0.0 ? static_cast<double>(max_weight) / avg : 0.0;
}

std::size_t count_blocks(const Partition& part) {
  if (part.empty()) return 0;
  std::vector<std::uint32_t> sorted(part);
  std::sort(sorted.begin(), sorted.end());
  return static_cast<std::size_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

}  // namespace sweep::partition
