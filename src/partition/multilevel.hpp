#pragma once
// Multilevel k-way graph partitioner — the from-scratch METIS substitute
// (DESIGN.md, substitution table). Pipeline per bisection:
//
//   coarsen (heavy-edge matching)  ->  initial partition (greedy graph
//   growing, best of several seeds)  ->  uncoarsen + boundary FM refinement
//
// k-way partitions come from recursive bisection with proportional weight
// targets, so any k (not just powers of two) is supported — the paper's
// experiments sweep block counts derived from block sizes 64/128/256.
//
// Parallelism (DESIGN.md §11): the two branches of every recursive bisection
// are independent subproblems over disjoint vertex sets, so they run as
// thread-pool tasks. Determinism is preserved by seeding every subproblem
// from its position in the bisection tree — node `id` (root 1, children
// 2*id and 2*id+1) draws from util::split_seed(options.seed, id) — instead
// of threading one Rng through the recursion. Within a subproblem the
// coarsening/matching visit order is fixed by that stream, so cuts are
// bit-identical to multilevel_partition_reference (the preserved serial
// recursion over the same primitives) for any `jobs`.

#include <cstdint>

#include "partition/graph.hpp"

namespace sweep::partition {

struct MultilevelOptions {
  std::size_t n_parts = 2;
  double balance_tolerance = 1.05;  ///< max part weight vs. proportional target
  std::size_t coarsest_size = 96;   ///< stop coarsening below this many vertices
  std::size_t initial_tries = 6;    ///< greedy-graph-growing restarts
  std::size_t fm_passes = 6;        ///< refinement passes per level
  std::uint64_t seed = 12345;
  /// Bisection-branch fan-out width: 0 = all pool workers, 1 = serial.
  /// The produced partition is byte-identical for any value.
  std::size_t jobs = 0;
};

/// Partitions `graph` into options.n_parts blocks (ids 0..n_parts-1),
/// running independent bisection branches on the global thread pool.
Partition multilevel_partition(const Graph& graph,
                               const MultilevelOptions& options);

/// Preserved serial recursion (same primitives, same per-subproblem seeds,
/// original hash-map subgraph extraction); differential baseline for tests
/// and bench/pipeline_throughput. Bit-identical to multilevel_partition for
/// every seed.
Partition multilevel_partition_reference(const Graph& graph,
                                         const MultilevelOptions& options);

/// Convenience used by the paper's experiments: partition into
/// ceil(n / block_size) blocks of ~block_size cells each.
Partition partition_into_blocks(const Graph& graph, std::size_t block_size,
                                MultilevelOptions options = {});

}  // namespace sweep::partition
