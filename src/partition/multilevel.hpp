#pragma once
// Multilevel k-way graph partitioner — the from-scratch METIS substitute
// (DESIGN.md, substitution table). Pipeline per bisection:
//
//   coarsen (heavy-edge matching)  ->  initial partition (greedy graph
//   growing, best of several seeds)  ->  uncoarsen + boundary FM refinement
//
// k-way partitions come from recursive bisection with proportional weight
// targets, so any k (not just powers of two) is supported — the paper's
// experiments sweep block counts derived from block sizes 64/128/256.

#include <cstdint>

#include "partition/graph.hpp"

namespace sweep::partition {

struct MultilevelOptions {
  std::size_t n_parts = 2;
  double balance_tolerance = 1.05;  ///< max part weight vs. proportional target
  std::size_t coarsest_size = 96;   ///< stop coarsening below this many vertices
  std::size_t initial_tries = 6;    ///< greedy-graph-growing restarts
  std::size_t fm_passes = 6;        ///< refinement passes per level
  std::uint64_t seed = 12345;
};

/// Partitions `graph` into options.n_parts blocks (ids 0..n_parts-1).
Partition multilevel_partition(const Graph& graph,
                               const MultilevelOptions& options);

/// Convenience used by the paper's experiments: partition into
/// ceil(n / block_size) blocks of ~block_size cells each.
Partition partition_into_blocks(const Graph& graph, std::size_t block_size,
                                MultilevelOptions options = {});

}  // namespace sweep::partition
