#include "partition/simple_partitioners.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace sweep::partition {

Partition random_partition(std::size_t n_vertices, std::size_t n_parts,
                           std::uint64_t seed) {
  if (n_parts == 0) {
    throw std::invalid_argument("random_partition: n_parts must be >= 1");
  }
  util::Rng rng(seed);
  Partition part(n_vertices);
  for (auto& p : part) p = static_cast<std::uint32_t>(rng.next_below(n_parts));
  return part;
}

Partition bfs_blocks(const Graph& graph, std::size_t block_size) {
  SWEEP_OBS_SCOPE("partition.bfs_blocks");
  if (block_size == 0) {
    throw std::invalid_argument("bfs_blocks: block_size must be >= 1");
  }
  const std::size_t n = graph.n_vertices();
  Partition part(n, 0);
  std::vector<char> visited(n, 0);
  std::uint32_t block = 0;
  std::size_t in_block = 0;
  std::queue<VertexId> queue;
  std::size_t scan = 0;

  auto next_unvisited = [&]() -> VertexId {
    while (scan < n && visited[scan]) ++scan;
    return static_cast<VertexId>(scan);
  };

  for (;;) {
    if (queue.empty()) {
      const VertexId v = next_unvisited();
      if (v >= n) break;
      queue.push(v);
      visited[v] = 1;
    }
    const VertexId v = queue.front();
    queue.pop();
    if (in_block == block_size) {
      ++block;
      in_block = 0;
    }
    part[v] = block;
    ++in_block;
    for (VertexId w : graph.neighbors(v)) {
      if (!visited[w]) {
        visited[w] = 1;
        queue.push(w);
      }
    }
  }
  return part;
}

namespace {

void rcb_recurse(const std::vector<mesh::Vec3>& points,
                 std::vector<VertexId>& ids, std::size_t begin, std::size_t end,
                 std::size_t n_parts, std::uint32_t first_block,
                 Partition& part) {
  if (n_parts <= 1 || end - begin <= 1) {
    for (std::size_t i = begin; i < end; ++i) part[ids[i]] = first_block;
    return;
  }
  // Widest axis of the current point set.
  mesh::Vec3 lo = points[ids[begin]];
  mesh::Vec3 hi = lo;
  for (std::size_t i = begin; i < end; ++i) {
    const mesh::Vec3& p = points[ids[i]];
    lo.x = std::min(lo.x, p.x); hi.x = std::max(hi.x, p.x);
    lo.y = std::min(lo.y, p.y); hi.y = std::max(hi.y, p.y);
    lo.z = std::min(lo.z, p.z); hi.z = std::max(hi.z, p.z);
  }
  const mesh::Vec3 span = hi - lo;
  int axis = 0;
  if (span.y > span.x && span.y >= span.z) axis = 1;
  else if (span.z > span.x && span.z > span.y) axis = 2;
  auto coord = [&](VertexId v) {
    const mesh::Vec3& p = points[v];
    return axis == 0 ? p.x : axis == 1 ? p.y : p.z;
  };

  const std::size_t k0 = n_parts / 2;
  const std::size_t split =
      begin + (end - begin) * k0 / n_parts;
  std::nth_element(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                   ids.begin() + static_cast<std::ptrdiff_t>(split),
                   ids.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](VertexId a, VertexId b) { return coord(a) < coord(b); });
  rcb_recurse(points, ids, begin, split, k0, first_block, part);
  rcb_recurse(points, ids, split, end, n_parts - k0,
              first_block + static_cast<std::uint32_t>(k0), part);
}

}  // namespace

Partition coordinate_bisection(const std::vector<mesh::Vec3>& points,
                               std::size_t n_parts) {
  SWEEP_OBS_SCOPE("partition.coordinate_bisection");
  if (n_parts == 0) {
    throw std::invalid_argument("coordinate_bisection: n_parts must be >= 1");
  }
  const std::size_t n = points.size();
  Partition part(n, 0);
  std::vector<VertexId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  rcb_recurse(points, ids, 0, n, std::min(n_parts, std::max<std::size_t>(n, 1)),
              0, part);
  return part;
}

}  // namespace sweep::partition
