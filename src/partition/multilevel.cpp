#include "partition/multilevel.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace sweep::partition {
namespace {

using util::Rng;
constexpr VertexId kUnmatched = 0xffffffffu;

// ---------------------------------------------------------------------------
// Coarsening: heavy-edge matching + contraction.
// ---------------------------------------------------------------------------

struct CoarseLevel {
  Graph graph;
  std::vector<VertexId> fine_to_coarse;
};

CoarseLevel coarsen_once(const Graph& fine, Rng& rng) {
  SWEEP_OBS_COUNTER_ADD("partition.coarsen_levels", 1);
  const std::size_t n = fine.n_vertices();
  std::vector<VertexId> match(n, kUnmatched);
  std::vector<std::uint32_t> visit_order(n);
  for (std::size_t i = 0; i < n; ++i) visit_order[i] = static_cast<VertexId>(i);
  rng.shuffle(visit_order);

  for (VertexId v : visit_order) {
    if (match[v] != kUnmatched) continue;
    const auto nbrs = fine.neighbors(v);
    const auto weights = fine.edge_weights(v);
    VertexId best = kUnmatched;
    std::int64_t best_weight = -1;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId w = nbrs[i];
      if (w == v || match[w] != kUnmatched) continue;
      if (weights[i] > best_weight) {
        best_weight = weights[i];
        best = w;
      }
    }
    if (best != kUnmatched) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // singleton
    }
  }

  CoarseLevel level;
  level.fine_to_coarse.assign(n, kUnmatched);
  std::vector<std::int64_t> coarse_vwgt;
  for (VertexId v = 0; v < n; ++v) {
    if (level.fine_to_coarse[v] != kUnmatched) continue;
    const VertexId partner = match[v];
    const auto cid = static_cast<VertexId>(coarse_vwgt.size());
    level.fine_to_coarse[v] = cid;
    std::int64_t weight = fine.vertex_weight(v);
    if (partner != v) {
      level.fine_to_coarse[partner] = cid;
      weight += fine.vertex_weight(partner);
    }
    coarse_vwgt.push_back(weight);
  }

  // Contract edges: accumulate weights between coarse endpoints.
  const std::size_t nc = coarse_vwgt.size();
  std::vector<std::unordered_map<VertexId, std::int64_t>> adj(nc);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = level.fine_to_coarse[v];
    const auto nbrs = fine.neighbors(v);
    const auto weights = fine.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId cw = level.fine_to_coarse[nbrs[i]];
      if (cw == cv) continue;
      adj[cv][cw] += weights[i];
    }
  }
  std::vector<std::uint32_t> offsets(nc + 1, 0);
  for (std::size_t c = 0; c < nc; ++c) {
    offsets[c + 1] = offsets[c] + static_cast<std::uint32_t>(adj[c].size());
  }
  std::vector<VertexId> neighbors(offsets[nc]);
  std::vector<std::int64_t> edge_weights(offsets[nc]);
  for (std::size_t c = 0; c < nc; ++c) {
    std::size_t cursor = offsets[c];
    for (const auto& [w, wgt] : adj[c]) {
      neighbors[cursor] = w;
      edge_weights[cursor] = wgt;
      ++cursor;
    }
  }
  level.graph = Graph(std::move(offsets), std::move(neighbors),
                      std::move(edge_weights), std::move(coarse_vwgt));
  return level;
}

// ---------------------------------------------------------------------------
// Initial bisection: greedy graph growing from a random seed, best of tries.
// part[v] in {0,1}; grows side 0 until it reaches target0.
// ---------------------------------------------------------------------------

Partition greedy_grow_bisection(const Graph& graph, std::int64_t target0,
                                std::size_t tries, Rng& rng) {
  const std::size_t n = graph.n_vertices();
  Partition best(n, 1);
  std::int64_t best_cut = std::numeric_limits<std::int64_t>::max();

  for (std::size_t attempt = 0; attempt < std::max<std::size_t>(tries, 1);
       ++attempt) {
    Partition part(n, 1);
    std::vector<char> in_frontier(n, 0);
    // Max-gain frontier: prefer vertices with most connectivity to side 0.
    using Entry = std::pair<std::int64_t, VertexId>;
    std::priority_queue<Entry> frontier;
    std::vector<std::int64_t> gain(n, 0);

    const auto seed_vertex = static_cast<VertexId>(rng.next_below(n));
    frontier.push({0, seed_vertex});
    in_frontier[seed_vertex] = 1;
    std::int64_t weight0 = 0;

    while (weight0 < target0 && !frontier.empty()) {
      const auto [g, v] = frontier.top();
      frontier.pop();
      if (part[v] == 0 || g != gain[v]) continue;  // stale entry
      part[v] = 0;
      weight0 += graph.vertex_weight(v);
      const auto nbrs = graph.neighbors(v);
      const auto weights = graph.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId w = nbrs[i];
        if (part[w] == 0) continue;
        gain[w] += weights[i];
        frontier.push({gain[w], w});
        in_frontier[w] = 1;
      }
      // Disconnected graph: restart growth from a random unassigned vertex.
      if (frontier.empty() && weight0 < target0) {
        for (std::size_t probe = 0; probe < n; ++probe) {
          const auto u = static_cast<VertexId>(rng.next_below(n));
          if (part[u] == 1) {
            frontier.push({gain[u], u});
            break;
          }
        }
      }
    }
    const std::int64_t cut = edge_cut(graph, part);
    if (cut < best_cut) {
      best_cut = cut;
      best = part;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// FM refinement with move rollback (bisection only).
// ---------------------------------------------------------------------------

void fm_refine(const Graph& graph, Partition& part, std::int64_t target0,
               double tolerance, std::size_t passes) {
  SWEEP_OBS_COUNTER_ADD("partition.fm_refines", 1);
  const std::size_t n = graph.n_vertices();
  const std::int64_t total = graph.total_vertex_weight();
  const std::int64_t target1 = total - target0;
  const auto max0 = static_cast<std::int64_t>(static_cast<double>(target0) * tolerance) + 1;
  const auto max1 = static_cast<std::int64_t>(static_cast<double>(target1) * tolerance) + 1;

  std::vector<std::int64_t> gain(n);
  auto compute_gain = [&](VertexId v) {
    std::int64_t g = 0;
    const auto nbrs = graph.neighbors(v);
    const auto weights = graph.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      g += part[nbrs[i]] == part[v] ? -weights[i] : weights[i];
    }
    return g;
  };

  // Balance repair before hill climbing. The starting partition (greedy
  // growing on the coarsest graph, or a projection of a coarser solution)
  // may violate the tolerance, and the gain-driven passes below cannot fix
  // that: rollback keeps only gain-positive prefixes. Force-move the
  // cheapest (max-gain) vertices off the heavy side until both sides fit;
  // each vertex moves at most once, so the loop terminates even when the
  // tolerance is infeasible for the given vertex weights.
  {
    std::int64_t weight0 = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (part[v] == 0) weight0 += graph.vertex_weight(v);
    }
    std::vector<char> moved(n, 0);
    using Entry = std::pair<std::int64_t, VertexId>;
    while (weight0 > max0 || total - weight0 > max1) {
      const std::uint32_t heavy = weight0 > max0 ? 0 : 1;
      std::priority_queue<Entry> heap;
      for (VertexId v = 0; v < n; ++v) {
        if (part[v] == heavy && !moved[v]) heap.push({compute_gain(v), v});
      }
      if (heap.empty()) break;
      const VertexId v = heap.top().second;
      moved[v] = 1;
      part[v] = 1 - heavy;
      weight0 += heavy == 0 ? -graph.vertex_weight(v) : graph.vertex_weight(v);
    }
  }

  for (std::size_t pass = 0; pass < passes; ++pass) {
    std::int64_t weight0 = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (part[v] == 0) weight0 += graph.vertex_weight(v);
    }

    using Entry = std::pair<std::int64_t, VertexId>;
    std::priority_queue<Entry> heap;
    std::vector<char> locked(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      gain[v] = compute_gain(v);
      heap.push({gain[v], v});
    }

    std::vector<VertexId> move_sequence;
    move_sequence.reserve(n);
    std::int64_t cumulative = 0;
    std::int64_t best_cumulative = 0;
    std::size_t best_prefix = 0;

    while (!heap.empty()) {
      const auto [g, v] = heap.top();
      heap.pop();
      if (locked[v] || g != gain[v]) continue;
      // Balance feasibility of moving v to the other side.
      const std::int64_t vw = graph.vertex_weight(v);
      const std::int64_t new_w0 = part[v] == 0 ? weight0 - vw : weight0 + vw;
      if (new_w0 > max0 || total - new_w0 > max1) continue;

      locked[v] = 1;
      part[v] = 1 - part[v];
      weight0 = new_w0;
      cumulative += g;
      move_sequence.push_back(v);
      if (cumulative > best_cumulative) {
        best_cumulative = cumulative;
        best_prefix = move_sequence.size();
      }
      const auto nbrs = graph.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId w = nbrs[i];
        if (locked[w]) continue;
        gain[w] = compute_gain(w);
        heap.push({gain[w], w});
      }
    }

    // Roll back past the best prefix.
    for (std::size_t i = move_sequence.size(); i > best_prefix; --i) {
      const VertexId v = move_sequence[i - 1];
      part[v] = 1 - part[v];
    }
    if (best_cumulative <= 0) break;  // no improvement this pass
  }
}

// ---------------------------------------------------------------------------
// Multilevel bisection (recursive through coarsening levels).
// ---------------------------------------------------------------------------

Partition multilevel_bisect(const Graph& graph, std::int64_t target0,
                            const MultilevelOptions& options, Rng& rng) {
  const std::size_t n = graph.n_vertices();
  if (n <= std::max<std::size_t>(options.coarsest_size, 8)) {
    Partition part =
        greedy_grow_bisection(graph, target0, options.initial_tries, rng);
    fm_refine(graph, part, target0, options.balance_tolerance,
              options.fm_passes);
    return part;
  }
  CoarseLevel level = coarsen_once(graph, rng);
  if (level.graph.n_vertices() >
      static_cast<std::size_t>(0.95 * static_cast<double>(n))) {
    // Coarsening stalled (e.g. star graphs): partition directly.
    Partition part =
        greedy_grow_bisection(graph, target0, options.initial_tries, rng);
    fm_refine(graph, part, target0, options.balance_tolerance,
              options.fm_passes);
    return part;
  }
  const Partition coarse_part =
      multilevel_bisect(level.graph, target0, options, rng);
  Partition part(n);
  for (VertexId v = 0; v < n; ++v) {
    part[v] = coarse_part[level.fine_to_coarse[v]];
  }
  fm_refine(graph, part, target0, options.balance_tolerance, options.fm_passes);
  return part;
}

// ---------------------------------------------------------------------------
// Recursive bisection to k parts.
//
// Every tree node derives its Rng from util::split_seed(options.seed, id)
// where the root is id 1 and node id's children are 2*id and 2*id+1 — no
// state is threaded through the recursion, so sibling subproblems are
// independent and can run as pool tasks while staying bit-identical to the
// serial reference recursion.
// ---------------------------------------------------------------------------

struct Subgraph {
  Graph graph;
  std::vector<VertexId> to_global;
};

Subgraph extract(const Graph& graph, const std::vector<VertexId>& vertices) {
  Subgraph sub;
  sub.to_global = vertices;
  // Flat parent-local -> sub-local map (the parent ids are dense); the
  // old unordered_map lookup dominated extraction at bench scale.
  std::vector<VertexId> to_local(graph.n_vertices(), kUnmatched);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    to_local[vertices[i]] = static_cast<VertexId>(i);
  }
  std::vector<std::uint32_t> offsets(vertices.size() + 1, 0);
  std::vector<VertexId> neighbors;
  std::vector<std::int64_t> edge_weights;
  std::vector<std::int64_t> vertex_weights(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId g = vertices[i];
    vertex_weights[i] = graph.vertex_weight(g);
    const auto nbrs = graph.neighbors(g);
    const auto weights = graph.edge_weights(g);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const VertexId local = to_local[nbrs[e]];
      if (local == kUnmatched) continue;
      neighbors.push_back(local);
      edge_weights.push_back(weights[e]);
    }
    offsets[i + 1] = static_cast<std::uint32_t>(neighbors.size());
  }
  sub.graph = Graph(std::move(offsets), std::move(neighbors),
                    std::move(edge_weights), std::move(vertex_weights));
  return sub;
}

/// The original hash-map extraction, kept verbatim as the reference
/// recursion's implementation so bench/pipeline_throughput measures the
/// production pipeline against the preserved baseline. Produces exactly the
/// same subgraph as extract() — vertices and edges are visited in the same
/// order; only the id-lookup structure differs.
Subgraph extract_reference(const Graph& graph,
                           const std::vector<VertexId>& vertices) {
  Subgraph sub;
  sub.to_global = vertices;
  std::unordered_map<VertexId, VertexId> to_local;
  to_local.reserve(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    to_local[vertices[i]] = static_cast<VertexId>(i);
  }
  std::vector<std::uint32_t> offsets(vertices.size() + 1, 0);
  std::vector<VertexId> neighbors;
  std::vector<std::int64_t> edge_weights;
  std::vector<std::int64_t> vertex_weights(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId g = vertices[i];
    vertex_weights[i] = graph.vertex_weight(g);
    const auto nbrs = graph.neighbors(g);
    const auto weights = graph.edge_weights(g);
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const auto it = to_local.find(nbrs[e]);
      if (it == to_local.end()) continue;
      neighbors.push_back(it->second);
      edge_weights.push_back(weights[e]);
    }
    offsets[i + 1] = static_cast<std::uint32_t>(neighbors.size());
  }
  sub.graph = Graph(std::move(offsets), std::move(neighbors),
                    std::move(edge_weights), std::move(vertex_weights));
  return sub;
}

/// Don't spawn a pool task for subproblems below this many vertices: the
/// submit + wake cost exceeds the bisection work (value is not tuned finely;
/// determinism does not depend on it).
constexpr std::size_t kParallelBranchMinVertices = 512;

void recursive_bisect(const Graph& graph, const std::vector<VertexId>& to_global,
                      std::size_t k, std::uint32_t first_block,
                      std::uint64_t node_id, const MultilevelOptions& options,
                      Partition& global_part, bool parallel,
                      bool reference_extract) {
  if (k <= 1) {
    for (VertexId v : to_global) global_part[v] = first_block;
    return;
  }
  Rng rng = Rng::for_stream(options.seed, node_id);
  const std::size_t k0 = k / 2;
  const std::int64_t target0 =
      graph.total_vertex_weight() * static_cast<std::int64_t>(k0) /
      static_cast<std::int64_t>(k);
  const Partition part = multilevel_bisect(graph, target0, options, rng);

  std::vector<VertexId> side0;
  std::vector<VertexId> side1;
  for (VertexId v = 0; v < graph.n_vertices(); ++v) {
    (part[v] == 0 ? side0 : side1).push_back(v);
  }
  // Degenerate split guard: force at least one vertex per side when k > 1.
  if (side0.empty() && !side1.empty()) {
    side0.push_back(side1.back());
    side1.pop_back();
  } else if (side1.empty() && !side0.empty()) {
    side1.push_back(side0.back());
    side0.pop_back();
  }

  auto descend = [&](const std::vector<VertexId>& side, std::size_t kk,
                     std::uint32_t base, std::uint64_t child_id) {
    if (side.empty()) return;
    Subgraph sub = reference_extract ? extract_reference(graph, side)
                                     : extract(graph, side);
    std::vector<VertexId> global_ids(side.size());
    for (std::size_t i = 0; i < side.size(); ++i) {
      global_ids[i] = to_global[side[i]];
    }
    sub.to_global = std::move(global_ids);
    recursive_bisect(sub.graph, sub.to_global, kk, base, child_id, options,
                     global_part, parallel, reference_extract);
  };

  // The two branches touch disjoint global_part entries and only read the
  // shared parent graph, so they can run concurrently.
  if (parallel && std::min(side0.size(), side1.size()) >=
                      kParallelBranchMinVertices) {
    SWEEP_OBS_COUNTER_ADD("partition.parallel_branches", 1);
    util::parallel_for(
        2,
        [&](std::size_t side) {
          if (side == 0) {
            descend(side0, k0, first_block, 2 * node_id);
          } else {
            descend(side1, k - k0,
                    first_block + static_cast<std::uint32_t>(k0),
                    2 * node_id + 1);
          }
        },
        options.jobs);
  } else {
    descend(side0, k0, first_block, 2 * node_id);
    descend(side1, k - k0, first_block + static_cast<std::uint32_t>(k0),
            2 * node_id + 1);
  }
}

}  // namespace

Partition multilevel_partition(const Graph& graph,
                               const MultilevelOptions& options) {
  SWEEP_OBS_SPAN_ARGS("partition.multilevel", "n_vertices",
                      static_cast<std::int64_t>(graph.n_vertices()), "n_parts",
                      static_cast<std::int64_t>(options.n_parts));
  SWEEP_OBS_TIMER("partition.multilevel");
  SWEEP_OBS_COUNTER_ADD("partition.multilevel.runs", 1);
  if (options.n_parts == 0) {
    throw std::invalid_argument("multilevel_partition: n_parts must be >= 1");
  }
  const std::size_t n = graph.n_vertices();
  Partition part(n, 0);
  if (options.n_parts == 1 || n == 0) return part;
  std::vector<VertexId> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<VertexId>(i);
  recursive_bisect(graph, all, std::min(options.n_parts, n), 0, /*node_id=*/1,
                   options, part, /*parallel=*/options.jobs != 1,
                   /*reference_extract=*/false);
  return part;
}

Partition multilevel_partition_reference(const Graph& graph,
                                         const MultilevelOptions& options) {
  if (options.n_parts == 0) {
    throw std::invalid_argument(
        "multilevel_partition_reference: n_parts must be >= 1");
  }
  const std::size_t n = graph.n_vertices();
  Partition part(n, 0);
  if (options.n_parts == 1 || n == 0) return part;
  std::vector<VertexId> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<VertexId>(i);
  recursive_bisect(graph, all, std::min(options.n_parts, n), 0, /*node_id=*/1,
                   options, part, /*parallel=*/false,
                   /*reference_extract=*/true);
  return part;
}

Partition partition_into_blocks(const Graph& graph, std::size_t block_size,
                                MultilevelOptions options) {
  if (block_size == 0) {
    throw std::invalid_argument("partition_into_blocks: block_size must be >= 1");
  }
  const std::size_t n = graph.n_vertices();
  options.n_parts = std::max<std::size_t>(1, (n + block_size - 1) / block_size);
  return multilevel_partition(graph, options);
}

}  // namespace sweep::partition
