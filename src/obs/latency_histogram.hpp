#pragma once
// HDR-style log-linear latency histogram with per-thread shards.
//
// Bucket layout: values below kHistSubBuckets (32) get one exact bucket
// each; every octave above contributes kHistSubBuckets/2 log-linear
// buckets (the upper half of the mantissa range), up to kHistMaxValueBits
// bits (~18 minutes in nanoseconds — larger values clamp into the top
// bucket). A bucket holding [lo, lo + 2^e - 1] is reported at its
// midpoint, so any quantile estimate is within 2^-kHistSubBits (~3.1%)
// relative error of the true sample — the bound test_latency_histogram
// checks against a sorted-reference oracle.
//
// Hot-path design mirrors the counter shards (metrics.hpp): record() is a
// relaxed fetch_add on a bucket array owned by the calling thread, so
// concurrent recording never takes a lock and never contends a cache line
// with another thread. Shard blocks are allocated lazily on a thread's
// first record into a given histogram and folded into a retired
// accumulator when the thread exits, so no sample is ever lost. Snapshots
// merge live shards + retired values and are themselves mergeable
// (bucket-wise addition), which is how multi-phase benches and the wire
// layer combine them.
//
// Obtain handles via MetricsRegistry::latency_histogram() (or the
// SWEEP_OBS_HIST_RECORD macro, which caches one per call site and gates
// on metrics_enabled()). The registry state is leaked for the same
// static-destruction-order reason as the counters.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sweep::obs {

namespace detail {

/// 2^kHistSubBits sub-buckets per octave: worst-case relative error of a
/// midpoint representative is 2^-kHistSubBits ~ 3.1%.
constexpr unsigned kHistSubBits = 5;
constexpr std::uint64_t kHistSubBuckets = 1ull << kHistSubBits;  // 32
/// Value ceiling: 2^40 ns ~ 18.3 minutes. Larger values clamp.
constexpr unsigned kHistMaxValueBits = 40;
constexpr std::uint64_t kHistMaxValue = (1ull << kHistMaxValueBits) - 1;
/// 32 exact buckets + 16 per octave above: 592 total (4.6 KiB per shard).
constexpr std::size_t kHistBuckets =
    kHistSubBuckets +
    (kHistMaxValueBits - kHistSubBits) * (kHistSubBuckets / 2);
/// Upper bound on distinct histogram names; registering more throws.
constexpr std::size_t kMaxHistograms = 64;

[[nodiscard]] constexpr std::size_t hist_bucket(std::uint64_t value) noexcept {
  if (value > kHistMaxValue) value = kHistMaxValue;
  const unsigned width = static_cast<unsigned>(std::bit_width(value | 1));
  if (width <= kHistSubBits) return static_cast<std::size_t>(value);
  const unsigned e = width - kHistSubBits;
  return static_cast<std::size_t>(e) * (kHistSubBuckets / 2) +
         static_cast<std::size_t>(value >> e);
}

[[nodiscard]] constexpr std::uint64_t hist_bucket_lower(
    std::size_t bucket) noexcept {
  if (bucket < kHistSubBuckets) return bucket;
  const std::uint64_t e = bucket / (kHistSubBuckets / 2) - 1;
  const std::uint64_t mantissa = bucket - e * (kHistSubBuckets / 2);
  return mantissa << e;
}

/// Midpoint representative: halves the worst-case quantile error vs the
/// lower bound.
[[nodiscard]] constexpr std::uint64_t hist_bucket_mid(
    std::size_t bucket) noexcept {
  if (bucket < kHistSubBuckets) return bucket;  // exact
  const std::uint64_t e = bucket / (kHistSubBuckets / 2) - 1;
  const std::uint64_t lower = hist_bucket_lower(bucket);
  return lower + ((1ull << e) >> 1);
}

void hist_record(std::uint32_t id, std::uint64_t value) noexcept;

}  // namespace detail

/// Merged view of one histogram: raw bucket counts plus the value sum.
/// Mergeable: merge() is bucket-wise addition, so snapshots taken on
/// different processes/phases combine exactly (counts are integers).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;  ///< total samples (== sum of buckets)
  std::uint64_t sum = 0;    ///< sum of recorded (clamped) values
  std::vector<std::uint64_t> buckets;  ///< detail::kHistBuckets entries

  [[nodiscard]] double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  /// Value at quantile q in [0, 1]: the midpoint representative of the
  /// bucket containing sample rank ceil(q * count) (rank 1 for q = 0).
  /// Returns 0 on an empty histogram. Relative error <= 2^-kHistSubBits.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Upper edge of the highest non-empty bucket (0 when empty): an upper
  /// bound on the largest recorded (clamped) sample.
  [[nodiscard]] std::uint64_t max_estimate() const;

  /// Bucket-wise addition; `other` must have the same layout.
  void merge(const HistogramSnapshot& other);
};

/// Cheap handle for a registered histogram; copyable, trivially
/// destructible. record() is lock-free on the calling thread's shard and
/// never throws (a sample is dropped if its shard cannot be allocated).
class LatencyHistogram {
 public:
  void record(std::uint64_t value) noexcept { detail::hist_record(id_, value); }

 private:
  friend class MetricsRegistry;
  explicit LatencyHistogram(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

namespace detail {
std::uint32_t hist_register(const std::string& name);
void hist_snapshot_into(std::vector<HistogramSnapshot>& out);
void hist_reset();
}  // namespace detail

}  // namespace sweep::obs
