#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <stdexcept>

namespace sweep::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

struct StatAccum {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void observe(double v) noexcept {
    if (count == 0) {
      min = max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    ++count;
    sum += v;
  }
};

/// All registry state, behind one mutex except the counter slots themselves
/// (relaxed atomics written lock-free by their owning threads). Leaked — see
/// metrics.hpp.
struct RegistryState {
  std::mutex mutex;
  std::map<std::string, std::uint32_t> counter_ids;       // name -> slot
  std::vector<detail::CounterShard*> live_shards;
  std::array<std::uint64_t, detail::kMaxCounters> retired{};
  std::map<std::string, StatAccum> stats;
  std::map<std::string, StatAccum> timers;
};

RegistryState& state() {
  static RegistryState* s = new RegistryState();
  return *s;
}

/// Thread-local shard owner: registers on first use, folds the shard's
/// values into `retired` when the thread exits so no count is lost.
struct ShardOwner {
  detail::CounterShard shard;

  ShardOwner() {
    RegistryState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.live_shards.push_back(&shard);
  }

  ~ShardOwner() {
    RegistryState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (std::size_t i = 0; i < detail::kMaxCounters; ++i) {
      s.retired[i] += shard.slots[i].load(std::memory_order_relaxed);
    }
    s.live_shards.erase(
        std::find(s.live_shards.begin(), s.live_shards.end(), &shard));
  }
};

StatValue to_value(const std::string& name, const StatAccum& a) {
  StatValue v;
  v.name = name;
  v.count = a.count;
  v.sum = a.sum;
  v.min = a.min;
  v.max = a.max;
  return v;
}

void write_json_escaped(std::ostream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace detail {

CounterShard& tls_counter_shard() {
  thread_local ShardOwner owner;
  return owner.shard;
}

}  // namespace detail

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter MetricsRegistry::counter(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.counter_ids.find(name);
  if (it == s.counter_ids.end()) {
    const auto id = static_cast<std::uint32_t>(s.counter_ids.size());
    if (id >= detail::kMaxCounters) {
      throw std::runtime_error("MetricsRegistry: too many counters");
    }
    it = s.counter_ids.emplace(name, id).first;
  }
  return Counter(it->second);
}

void MetricsRegistry::add(const std::string& name, std::uint64_t n) {
  counter(name).add(n);
}

void MetricsRegistry::observe(const std::string& name, double value) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.stats[name].observe(value);
}

void MetricsRegistry::observe_duration_ns(const std::string& name, double ns) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.timers[name].observe(ns);
}

MetricsSnapshot MetricsRegistry::snapshot() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(s.counter_ids.size());
  for (const auto& [name, id] : s.counter_ids) {
    std::uint64_t total = s.retired[id];
    for (const detail::CounterShard* shard : s.live_shards) {
      total += shard->slots[id].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(name, total);
  }
  for (const auto& [name, accum] : s.stats) {
    snap.stats.push_back(to_value(name, accum));
  }
  for (const auto& [name, accum] : s.timers) {
    snap.timers.push_back(to_value(name, accum));
  }
  return snap;
}

void MetricsRegistry::reset() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.retired.fill(0);
  for (detail::CounterShard* shard : s.live_shards) {
    for (auto& slot : shard->slots) slot.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, accum] : s.stats) accum = StatAccum{};
  for (auto& [name, accum] : s.timers) accum = StatAccum{};
}

namespace {

void write_stat_block(
    std::ostream& out, const std::vector<StatValue>& values, bool as_timer) {
  bool first = true;
  for (const StatValue& v : values) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    write_json_escaped(out, v.name);
    // Timers are recorded in nanoseconds; report milliseconds.
    const double unit = as_timer ? 1e-6 : 1.0;
    out << "\":{\"count\":" << v.count
        << (as_timer ? ",\"total_ms\":" : ",\"sum\":") << v.sum * unit
        << (as_timer ? ",\"mean_ms\":" : ",\"mean\":") << v.mean() * unit
        << (as_timer ? ",\"min_ms\":" : ",\"min\":") << v.min * unit
        << (as_timer ? ",\"max_ms\":" : ",\"max\":") << v.max * unit << "}";
  }
}

}  // namespace

void write_metrics_json(std::ostream& out) {
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    write_json_escaped(out, name);
    out << "\":" << value;
  }
  out << "},\"stats\":{";
  write_stat_block(out, snap.stats, /*as_timer=*/false);
  out << "},\"timers\":{";
  write_stat_block(out, snap.timers, /*as_timer=*/true);
  out << "}}\n";
}

bool write_metrics_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_json(out);
  return out.good();
}

}  // namespace sweep::obs
