#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

namespace sweep::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

struct StatAccum {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void observe(double v) noexcept {
    if (count == 0) {
      min = max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    ++count;
    sum += v;
  }
};

/// All registry state, behind one mutex except the counter slots themselves
/// (relaxed atomics written lock-free by their owning threads). Leaked — see
/// metrics.hpp.
struct RegistryState {
  std::mutex mutex;
  std::map<std::string, std::uint32_t> counter_ids;       // name -> slot
  std::vector<detail::CounterShard*> live_shards;
  std::array<std::uint64_t, detail::kMaxCounters> retired{};
  std::map<std::string, std::uint32_t> stat_ids;          // name -> cell
  std::array<detail::StatCell, detail::kMaxStats> stat_cells;
  std::map<std::string, StatAccum> timers;
  std::map<std::string, std::uint32_t> gauge_ids;         // name -> cell
  std::array<std::atomic<std::int64_t>, detail::kMaxGauges> gauge_cells{};
};

RegistryState& state() {
  static RegistryState* s = new RegistryState();
  return *s;
}

/// Thread-local shard owner: registers on first use, folds the shard's
/// values into `retired` when the thread exits so no count is lost.
struct ShardOwner {
  detail::CounterShard shard;

  ShardOwner() {
    RegistryState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.live_shards.push_back(&shard);
  }

  ~ShardOwner() {
    RegistryState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (std::size_t i = 0; i < detail::kMaxCounters; ++i) {
      s.retired[i] += shard.slots[i].load(std::memory_order_relaxed);
    }
    s.live_shards.erase(
        std::find(s.live_shards.begin(), s.live_shards.end(), &shard));
  }
};

StatValue to_value(const std::string& name, const StatAccum& a) {
  StatValue v;
  v.name = name;
  v.count = a.count;
  v.sum = a.sum;
  v.min = a.min;
  v.max = a.max;
  return v;
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace detail {

CounterShard& tls_counter_shard() {
  thread_local ShardOwner owner;
  return owner.shard;
}

}  // namespace detail

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter MetricsRegistry::counter(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.counter_ids.find(name);
  if (it == s.counter_ids.end()) {
    const auto id = static_cast<std::uint32_t>(s.counter_ids.size());
    if (id >= detail::kMaxCounters) {
      throw std::runtime_error("MetricsRegistry: too many counters");
    }
    it = s.counter_ids.emplace(name, id).first;
  }
  return Counter(it->second);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.gauge_ids.find(name);
  if (it == s.gauge_ids.end()) {
    const auto id = static_cast<std::uint32_t>(s.gauge_ids.size());
    if (id >= detail::kMaxGauges) {
      throw std::runtime_error("MetricsRegistry: too many gauges");
    }
    it = s.gauge_ids.emplace(name, id).first;
  }
  return Gauge(&s.gauge_cells[it->second]);
}

LatencyHistogram MetricsRegistry::latency_histogram(const std::string& name) {
  return LatencyHistogram(detail::hist_register(name));
}

void MetricsRegistry::add(const std::string& name, std::uint64_t n) {
  counter(name).add(n);
}

Stat MetricsRegistry::stat(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.stat_ids.find(name);
  if (it == s.stat_ids.end()) {
    const auto id = static_cast<std::uint32_t>(s.stat_ids.size());
    if (id >= detail::kMaxStats) {
      throw std::runtime_error("MetricsRegistry: too many stats");
    }
    it = s.stat_ids.emplace(name, id).first;
  }
  return Stat(&s.stat_cells[it->second]);
}

void MetricsRegistry::observe(const std::string& name, double value) {
  stat(name).observe(value);
}

void MetricsRegistry::observe_duration_ns(const std::string& name, double ns) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.timers[name].observe(ns);
}

MetricsSnapshot MetricsRegistry::snapshot() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(s.counter_ids.size());
  for (const auto& [name, id] : s.counter_ids) {
    std::uint64_t total = s.retired[id];
    for (const detail::CounterShard* shard : s.live_shards) {
      total += shard->slots[id].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(name, total);
  }
  for (const auto& [name, id] : s.stat_ids) {
    detail::StatCell& cell = s.stat_cells[id];
    const std::lock_guard<std::mutex> cell_lock(cell.mutex);
    StatAccum accum;
    accum.count = cell.count;
    accum.sum = cell.sum;
    accum.min = cell.min;
    accum.max = cell.max;
    snap.stats.push_back(to_value(name, accum));
  }
  for (const auto& [name, accum] : s.timers) {
    snap.timers.push_back(to_value(name, accum));
  }
  snap.gauges.reserve(s.gauge_ids.size());
  for (const auto& [name, id] : s.gauge_ids) {
    snap.gauges.emplace_back(
        name, s.gauge_cells[id].load(std::memory_order_relaxed));
  }
  detail::hist_snapshot_into(snap.histograms);
  return snap;
}

void MetricsRegistry::reset() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.retired.fill(0);
  for (detail::CounterShard* shard : s.live_shards) {
    for (auto& slot : shard->slots) slot.store(0, std::memory_order_relaxed);
  }
  for (auto& cell : s.stat_cells) {
    const std::lock_guard<std::mutex> cell_lock(cell.mutex);
    cell.count = 0;
    cell.sum = cell.min = cell.max = 0.0;
  }
  for (auto& [name, accum] : s.timers) accum = StatAccum{};
  for (auto& cell : s.gauge_cells) cell.store(0, std::memory_order_relaxed);
  detail::hist_reset();
}

}  // namespace sweep::obs
