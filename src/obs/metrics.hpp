#pragma once
// Process-wide metrics registry: named counters, value stats, timers,
// gauges, and latency histograms (latency_histogram.hpp).
//
// Hot-path design: counters write to a per-thread shard (a fixed array of
// relaxed atomics indexed by counter id), so concurrent add() never takes a
// lock; a snapshot merges the live shards plus the values folded in from
// exited threads. Value stats keep min/max, which relaxed atomics cannot,
// so each stat owns a tiny per-cell mutex; a cached Stat handle observes
// with one uncontended ~20ns lock and no name lookup. Timers are observed
// at call granularity (one schedule run, one trial) and go through the
// single registry mutex — the simplicity is worth far more than the lock
// at that rate.
//
// Collection is off by default: every instrumentation macro first checks
// metrics_enabled() (one relaxed atomic load), so an un-instrumented run
// pays essentially nothing. Compiling with SWEEP_OBS_DISABLE turns the
// macros in obs.hpp into true no-ops; this registry still links (writers
// then emit empty documents) so call sites never need #ifdefs.
//
// The registry singleton is intentionally leaked: worker threads merge
// their shards from thread_local destructors, which may run during static
// destruction (util::ThreadPool joins its workers then) — a destroyed
// registry would be a use-after-free, a leaked one is always valid.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/latency_histogram.hpp"

namespace sweep::obs {

/// Global collection switch (default off). Relaxed; flip before the work
/// you want measured, not concurrently with a snapshot you care about.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

namespace detail {
/// Upper bound on distinct counter names; registering more throws. Each
/// thread that touches a counter owns one shard (8 KiB).
constexpr std::size_t kMaxCounters = 1024;

/// Upper bound on distinct gauge names; registering more throws. Gauges
/// are single process-wide cells (set() semantics cannot shard).
constexpr std::size_t kMaxGauges = 256;

/// Upper bound on distinct value-stat names; registering more throws.
constexpr std::size_t kMaxStats = 256;

struct CounterShard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> slots{};
};

CounterShard& tls_counter_shard();

/// One value stat's accumulator behind its own tiny mutex, so a cached
/// handle can observe without the registry mutex or a name lookup. min/max
/// cannot be maintained with relaxed atomics, and the uncontended lock is
/// ~20ns — cheap enough for per-request call sites.
struct StatCell {
  std::mutex mutex;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};
}  // namespace detail

/// Cheap value handle for a registered counter; copyable, trivially
/// destructible. Obtain via MetricsRegistry::counter() (or the
/// SWEEP_OBS_COUNTER_ADD macro, which caches one in a function-local
/// static so the name lookup happens once per call site).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    detail::tls_counter_shard().slots[id_].fetch_add(
        n, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

/// Last-value metric (in-flight requests, queue depth, ...). Unlike
/// counters, a gauge is one process-wide relaxed atomic: set() overwrites
/// and add() is a fetch_add, so concurrent +1/-1 pairs balance exactly.
/// Obtain via MetricsRegistry::gauge() (or the SWEEP_OBS_GAUGE_* macros).
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    cell_->store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    cell_->fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<std::int64_t>* cell) noexcept : cell_(cell) {}
  std::atomic<std::int64_t>* cell_;
};

/// Cheap handle for a registered value stat (merged count/sum/min/max).
/// Obtain via MetricsRegistry::stat() (or the SWEEP_OBS_OBSERVE macro,
/// which caches one in a function-local static per call site).
class Stat {
 public:
  void observe(double v) noexcept {
    const std::lock_guard<std::mutex> lock(cell_->mutex);
    if (cell_->count == 0) {
      cell_->min = cell_->max = v;
    } else {
      cell_->min = cell_->min < v ? cell_->min : v;
      cell_->max = cell_->max > v ? cell_->max : v;
    }
    ++cell_->count;
    cell_->sum += v;
  }

 private:
  friend class MetricsRegistry;
  explicit Stat(detail::StatCell* cell) noexcept : cell_(cell) {}
  detail::StatCell* cell_;
};

/// Merged view of one stat/timer: count plus sum/min/max of the observed
/// values (nanoseconds for timers).
struct StatValue {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  [[nodiscard]] double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<StatValue> stats;                                 // name-sorted
  std::vector<StatValue> timers;                                // name-sorted
  std::vector<std::pair<std::string, std::int64_t>> gauges;     // name-sorted
  std::vector<HistogramSnapshot> histograms;                    // name-sorted
};

class MetricsRegistry {
 public:
  /// The process-wide registry (leaked, see header comment).
  static MetricsRegistry& instance();

  /// Registers `name` (idempotent) and returns its counter handle.
  Counter counter(const std::string& name);

  /// Registers `name` (idempotent) and returns its gauge handle.
  Gauge gauge(const std::string& name);

  /// Registers `name` (idempotent) and returns its value-stat handle.
  Stat stat(const std::string& name);

  /// Registers `name` (idempotent) and returns its histogram handle (see
  /// latency_histogram.hpp for the bucket layout and error bound).
  LatencyHistogram latency_histogram(const std::string& name);

  /// Slow-path conveniences: name lookup under the registry mutex on every
  /// call. Fine at per-run granularity; use Counter/Stat handles in loops.
  void add(const std::string& name, std::uint64_t n);
  void observe(const std::string& name, double value);
  void observe_duration_ns(const std::string& name, double ns);

  /// Merges all live thread shards + retired values. Safe to call while
  /// other threads keep counting (their in-flight adds may or may not be
  /// included — relaxed loads).
  [[nodiscard]] MetricsSnapshot snapshot();

  /// Zeroes every value, keeping registrations. Only meaningful while no
  /// other thread is actively recording (tests, bench phase boundaries).
  void reset();

 private:
  MetricsRegistry() = default;
};

// Snapshot writers (JSON + Prometheus text exposition) live in
// obs/export.hpp; obs/obs.hpp includes both.

}  // namespace sweep::obs
