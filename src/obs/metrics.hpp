#pragma once
// Process-wide metrics registry: named counters, value stats, and timers.
//
// Hot-path design: counters write to a per-thread shard (a fixed array of
// relaxed atomics indexed by counter id), so concurrent add() never takes a
// lock; a snapshot merges the live shards plus the values folded in from
// exited threads. Stats and timers are observed at call granularity (one
// schedule run, one trial) and go through a single registry mutex — the
// simplicity is worth far more than the ~20ns lock at that rate.
//
// Collection is off by default: every instrumentation macro first checks
// metrics_enabled() (one relaxed atomic load), so an un-instrumented run
// pays essentially nothing. Compiling with SWEEP_OBS_DISABLE turns the
// macros in obs.hpp into true no-ops; this registry still links (writers
// then emit empty documents) so call sites never need #ifdefs.
//
// The registry singleton is intentionally leaked: worker threads merge
// their shards from thread_local destructors, which may run during static
// destruction (util::ThreadPool joins its workers then) — a destroyed
// registry would be a use-after-free, a leaked one is always valid.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sweep::obs {

/// Global collection switch (default off). Relaxed; flip before the work
/// you want measured, not concurrently with a snapshot you care about.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

namespace detail {
/// Upper bound on distinct counter names; registering more throws. Each
/// thread that touches a counter owns one shard (8 KiB).
constexpr std::size_t kMaxCounters = 1024;

struct CounterShard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> slots{};
};

CounterShard& tls_counter_shard();
}  // namespace detail

/// Cheap value handle for a registered counter; copyable, trivially
/// destructible. Obtain via MetricsRegistry::counter() (or the
/// SWEEP_OBS_COUNTER_ADD macro, which caches one in a function-local
/// static so the name lookup happens once per call site).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    detail::tls_counter_shard().slots[id_].fetch_add(
        n, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

/// Merged view of one stat/timer: count plus sum/min/max of the observed
/// values (nanoseconds for timers).
struct StatValue {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  [[nodiscard]] double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<StatValue> stats;                                 // name-sorted
  std::vector<StatValue> timers;                                // name-sorted
};

class MetricsRegistry {
 public:
  /// The process-wide registry (leaked, see header comment).
  static MetricsRegistry& instance();

  /// Registers `name` (idempotent) and returns its counter handle.
  Counter counter(const std::string& name);

  /// Slow-path conveniences: name lookup under the registry mutex on every
  /// call. Fine at per-run granularity; use Counter handles in loops.
  void add(const std::string& name, std::uint64_t n);
  void observe(const std::string& name, double value);
  void observe_duration_ns(const std::string& name, double ns);

  /// Merges all live thread shards + retired values. Safe to call while
  /// other threads keep counting (their in-flight adds may or may not be
  /// included — relaxed loads).
  [[nodiscard]] MetricsSnapshot snapshot();

  /// Zeroes every value, keeping registrations. Only meaningful while no
  /// other thread is actively recording (tests, bench phase boundaries).
  void reset();

 private:
  MetricsRegistry() = default;
};

/// Writes the current snapshot as a JSON object:
///   {"counters":{...},"stats":{name:{count,sum,mean,min,max}},
///    "timers":{name:{count,total_ms,mean_ms,min_ms,max_ms}}}
void write_metrics_json(std::ostream& out);
/// Returns false (and logs nothing) if the file cannot be opened.
bool write_metrics_json(const std::string& path);

}  // namespace sweep::obs
