#pragma once
// Unified snapshot exposition: one MetricsSnapshot (counters + stats +
// timers + gauges + latency histograms, see metrics.hpp), two writers.
//
// JSON keeps the exact shape PR 2 shipped — the "counters"/"stats"/
// "timers" sections are byte-identical to the old writer — with two new
// sections appended at the end ("gauges", "histograms"), so old consumers
// keep parsing unchanged (wire-evolution rule: existing keys never move
// or change meaning; new telemetry only ever appends).
//
// Prometheus is the text exposition format (v0.0.4): metric names are
// sanitized (dots -> underscores) and prefixed "sweep_", counters/gauges
// map 1:1, stats and timers emit <name>_count/_sum (+_min/_max gauges;
// timers converted to seconds), and each latency histogram emits a
// classic cumulative histogram — `_bucket{le="..."}` at every non-empty
// bucket's upper edge plus `le="+Inf"`, `_sum`, and `_count` — which any
// Prometheus scraper of a metrics dump ingests directly.

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace sweep::obs {

/// Writes `snap` as a JSON object:
///   {"counters":{...},"stats":{name:{count,sum,mean,min,max}},
///    "timers":{name:{count,total_ms,mean_ms,min_ms,max_ms}},
///    "gauges":{...},
///    "histograms":{name:{count,mean,p50,p90,p99,p999,max,sum}}}
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap);
/// Snapshot-then-write convenience on the process registry.
void write_metrics_json(std::ostream& out);
/// Returns false (and writes nothing) if the file cannot be opened.
bool write_metrics_json(const std::string& path);

/// Writes `snap` in the Prometheus text exposition format.
void write_metrics_prometheus(std::ostream& out, const MetricsSnapshot& snap);
void write_metrics_prometheus(std::ostream& out);
bool write_metrics_prometheus(const std::string& path);

}  // namespace sweep::obs
