#pragma once
// Umbrella header for the observability layer: metrics registry + trace
// spans, plus the instrumentation macros the rest of the library uses.
//
// Compile-time switch: building with -DSWEEP_OBS_DISABLE (CMake option
// SWEEP_OBS=OFF) turns every macro below into a true no-op — zero code in
// the instrumented functions. At runtime, macros are additionally gated on
// obs::metrics_enabled() / obs::trace_enabled(), so a default run of an
// instrumented binary pays one relaxed atomic load per macro site.
//
// Instrumentation rules of thumb:
//  - Counters are cheap (thread-local atomic add) but still: accumulate in
//    a local in inner loops and emit once per call.
//  - Stats/timers/spans take an uncontended lock or two; use them at call
//    granularity (one schedule, one trial, one partition), never per-task.
//  - Names must be string literals (spans store the pointer).

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#define SWEEP_OBS_CONCAT_IMPL(a, b) a##b
#define SWEEP_OBS_CONCAT(a, b) SWEEP_OBS_CONCAT_IMPL(a, b)

namespace sweep::obs {

#if defined(SWEEP_OBS_DISABLE)

/// Compiled-out stand-in; see the enabled definition below.
class PhaseSpan {
 public:
  explicit PhaseSpan(const char*) noexcept {}
  void done() noexcept {}
};

#else

/// Explicit-end phase marker for code where a phase boundary falls in the
/// middle of a scope: emits both a trace span and a timer observation when
/// done() (or the destructor) runs. `name` must be a string literal.
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name) noexcept
      : name_(name),
        traced_(trace_enabled()),
        timed_(metrics_enabled()) {
    if (traced_ || timed_) t0_ns_ = detail::now_ns();
  }
  ~PhaseSpan() { done(); }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  void done() {
    if (!traced_ && !timed_) return;
    const std::uint64_t t1_ns = detail::now_ns();
    if (traced_) detail::record_event(name_, t0_ns_, t1_ns, 0, {}, {});
    if (timed_) {
      MetricsRegistry::instance().observe_duration_ns(
          name_, static_cast<double>(t1_ns - t0_ns_));
    }
    traced_ = timed_ = false;
  }

 private:
  const char* name_;
  bool traced_;
  bool timed_;
  std::uint64_t t0_ns_ = 0;
};

#endif  // SWEEP_OBS_DISABLE

}  // namespace sweep::obs

#if defined(SWEEP_OBS_DISABLE)

#define SWEEP_OBS_COUNTER_ADD(name, n) \
  do {                                 \
    (void)sizeof(n);                   \
  } while (0)
#define SWEEP_OBS_OBSERVE(name, value) \
  do {                                 \
    (void)sizeof(value);               \
  } while (0)
#define SWEEP_OBS_GAUGE_ADD(name, delta) \
  do {                                   \
    (void)sizeof(delta);                 \
  } while (0)
#define SWEEP_OBS_GAUGE_SET(name, value) \
  do {                                   \
    (void)sizeof(value);                 \
  } while (0)
#define SWEEP_OBS_HIST_RECORD(name, value) \
  do {                                     \
    (void)sizeof(value);                   \
  } while (0)
#define SWEEP_OBS_TIMER(name) \
  do {                        \
  } while (0)
#define SWEEP_OBS_SPAN(name)
#define SWEEP_OBS_SPAN_ARGS(name, ...)
#define SWEEP_OBS_SCOPE(name)

#else

/// Adds `n` to counter `name`. The registry lookup happens once per call
/// site (function-local static handle); the add is a relaxed atomic
/// increment on a thread-local shard.
#define SWEEP_OBS_COUNTER_ADD(name, n)                              \
  do {                                                              \
    if (::sweep::obs::metrics_enabled()) {                          \
      static ::sweep::obs::Counter sweep_obs_counter =              \
          ::sweep::obs::MetricsRegistry::instance().counter(name);  \
      sweep_obs_counter.add(static_cast<std::uint64_t>(n));         \
    }                                                               \
  } while (0)

/// Records one observation of value stat `name` (merged min/mean/max).
/// The name lookup happens once per call site; the observe is one
/// uncontended per-cell lock.
#define SWEEP_OBS_OBSERVE(name, value)                           \
  do {                                                           \
    if (::sweep::obs::metrics_enabled()) {                       \
      static ::sweep::obs::Stat sweep_obs_stat =                 \
          ::sweep::obs::MetricsRegistry::instance().stat(name);  \
      sweep_obs_stat.observe(static_cast<double>(value));        \
    }                                                            \
  } while (0)

/// Adds `delta` (signed) to gauge `name`; +1/-1 pairs balance exactly.
#define SWEEP_OBS_GAUGE_ADD(name, delta)                          \
  do {                                                            \
    if (::sweep::obs::metrics_enabled()) {                        \
      static ::sweep::obs::Gauge sweep_obs_gauge =                \
          ::sweep::obs::MetricsRegistry::instance().gauge(name);  \
      sweep_obs_gauge.add(static_cast<std::int64_t>(delta));      \
    }                                                             \
  } while (0)

/// Overwrites gauge `name` with `value`.
#define SWEEP_OBS_GAUGE_SET(name, value)                          \
  do {                                                            \
    if (::sweep::obs::metrics_enabled()) {                        \
      static ::sweep::obs::Gauge sweep_obs_gauge =                \
          ::sweep::obs::MetricsRegistry::instance().gauge(name);  \
      sweep_obs_gauge.set(static_cast<std::int64_t>(value));      \
    }                                                             \
  } while (0)

/// Records one sample into latency histogram `name` (lock-free on the
/// calling thread's shard; see latency_histogram.hpp).
#define SWEEP_OBS_HIST_RECORD(name, value)                             \
  do {                                                                 \
    if (::sweep::obs::metrics_enabled()) {                             \
      static ::sweep::obs::LatencyHistogram sweep_obs_hist =           \
          ::sweep::obs::MetricsRegistry::instance().latency_histogram( \
              name);                                                   \
      sweep_obs_hist.record(static_cast<std::uint64_t>(value));        \
    }                                                                  \
  } while (0)

namespace sweep::obs::detail {

/// RAII timer feeding MetricsRegistry::observe_duration_ns.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept
      : name_(metrics_enabled() ? name : nullptr) {
    if (name_ != nullptr) t0_ns_ = now_ns();
  }
  ~ScopedTimer() {
    if (name_ != nullptr) {
      MetricsRegistry::instance().observe_duration_ns(
          name_, static_cast<double>(now_ns() - t0_ns_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  std::uint64_t t0_ns_ = 0;
};

}  // namespace sweep::obs::detail

/// Times the enclosing scope into timer metric `name`.
#define SWEEP_OBS_TIMER(name)                       \
  ::sweep::obs::detail::ScopedTimer SWEEP_OBS_CONCAT( \
      sweep_obs_timer_, __COUNTER__) { name }

/// Emits a trace span covering the enclosing scope.
#define SWEEP_OBS_SPAN(name)                   \
  ::sweep::obs::TraceSpan SWEEP_OBS_CONCAT(    \
      sweep_obs_span_, __COUNTER__) { name }

/// Trace span with 1 or 2 integer args: (name, "key", value, ...).
#define SWEEP_OBS_SPAN_ARGS(name, ...)         \
  ::sweep::obs::TraceSpan SWEEP_OBS_CONCAT(    \
      sweep_obs_span_, __COUNTER__) { name, __VA_ARGS__ }

/// Span + timer under the same name: wall-clock phase in the trace AND an
/// aggregated timer in the metrics registry.
#define SWEEP_OBS_SCOPE(name) \
  SWEEP_OBS_SPAN(name);       \
  SWEEP_OBS_TIMER(name)

#endif  // SWEEP_OBS_DISABLE
