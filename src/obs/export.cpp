#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace sweep::obs {
namespace {

void write_json_escaped(std::ostream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void write_stat_block(
    std::ostream& out, const std::vector<StatValue>& values, bool as_timer) {
  bool first = true;
  for (const StatValue& v : values) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    write_json_escaped(out, v.name);
    // Timers are recorded in nanoseconds; report milliseconds.
    const double unit = as_timer ? 1e-6 : 1.0;
    out << "\":{\"count\":" << v.count
        << (as_timer ? ",\"total_ms\":" : ",\"sum\":") << v.sum * unit
        << (as_timer ? ",\"mean_ms\":" : ",\"mean\":") << v.mean() * unit
        << (as_timer ? ",\"min_ms\":" : ",\"min\":") << v.min * unit
        << (as_timer ? ",\"max_ms\":" : ",\"max\":") << v.max * unit << "}";
  }
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
/// (the registry's dots, mostly) becomes '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = "sweep_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void prometheus_stat_block(std::ostream& out,
                           const std::vector<StatValue>& values,
                           bool as_timer) {
  for (const StatValue& v : values) {
    // Timers are nanoseconds internally; Prometheus convention is base
    // seconds with a unit suffix.
    std::string name = prometheus_name(v.name);
    if (as_timer) name += "_seconds";
    const double unit = as_timer ? 1e-9 : 1.0;
    out << "# TYPE " << name << " summary\n";
    out << name << "_count " << v.count << "\n";
    out << name << "_sum " << v.sum * unit << "\n";
    out << "# TYPE " << name << "_min gauge\n";
    out << name << "_min " << v.min * unit << "\n";
    out << "# TYPE " << name << "_max gauge\n";
    out << name << "_max " << v.max * unit << "\n";
  }
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap) {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    write_json_escaped(out, name);
    out << "\":" << value;
  }
  out << "},\"stats\":{";
  write_stat_block(out, snap.stats, /*as_timer=*/false);
  out << "},\"timers\":{";
  write_stat_block(out, snap.timers, /*as_timer=*/true);
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    write_json_escaped(out, name);
    out << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    write_json_escaped(out, h.name);
    out << "\":{\"count\":" << h.count << ",\"mean\":" << h.mean()
        << ",\"p50\":" << h.quantile(0.50) << ",\"p90\":" << h.quantile(0.90)
        << ",\"p99\":" << h.quantile(0.99)
        << ",\"p999\":" << h.quantile(0.999)
        << ",\"max\":" << h.max_estimate() << ",\"sum\":" << h.sum << "}";
  }
  out << "}}\n";
}

void write_metrics_json(std::ostream& out) {
  write_metrics_json(out, MetricsRegistry::instance().snapshot());
}

bool write_metrics_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_json(out);
  return out.good();
}

void write_metrics_prometheus(std::ostream& out,
                              const MetricsSnapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prometheus_name(name) + "_total";
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << value << "\n";
  }
  prometheus_stat_block(out, snap.stats, /*as_timer=*/false);
  prometheus_stat_block(out, snap.timers, /*as_timer=*/true);
  for (const HistogramSnapshot& h : snap.histograms) {
    // Only non-empty buckets are emitted (plus +Inf); the cumulative
    // counts stay correct because skipped buckets add nothing.
    const std::string p = prometheus_name(h.name);
    out << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      const std::uint64_t upper = b + 1 < detail::kHistBuckets
                                      ? detail::hist_bucket_lower(b + 1) - 1
                                      : detail::kHistMaxValue;
      out << p << "_bucket{le=\"" << upper << "\"} " << cumulative << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << p << "_sum " << h.sum << "\n";
    out << p << "_count " << h.count << "\n";
  }
}

void write_metrics_prometheus(std::ostream& out) {
  write_metrics_prometheus(out, MetricsRegistry::instance().snapshot());
}

bool write_metrics_prometheus(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_prometheus(out);
  return out.good();
}

}  // namespace sweep::obs
