#pragma once
// Scoped trace spans emitting Chrome trace-event JSON ("Trace Event
// Format"), loadable in chrome://tracing and Perfetto.
//
// Spans are RAII: construction stamps the start time, destruction records a
// complete ("ph":"X") event into a per-thread buffer. Buffers are merged
// (and time-sorted) only when the trace is written. Each thread gets a
// small stable tid on first use; util::ThreadPool workers call
// set_thread_name() so their spans group under "pool-worker-N" in the
// viewer instead of anonymous thread ids.
//
// Tracing is off by default; an unarmed span costs one relaxed atomic load.
// Span names (and arg names) must be string literals or otherwise outlive
// the tracing session — they are stored by pointer, never copied.
//
// The session singleton is leaked for the same static-destruction-order
// reason as the metrics registry (see metrics.hpp).

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace sweep::obs {

[[nodiscard]] bool trace_enabled() noexcept;
/// Arms span recording. Events recorded before start_tracing are kept (the
/// buffer is only cleared explicitly), so start/stop can bracket phases.
void start_tracing() noexcept;
void stop_tracing() noexcept;
/// Drops every buffered event (live and retired). Tests and repeated bench
/// phases; not thread-safe against concurrently *finishing* spans.
void clear_trace();

/// Stable small id of the calling thread (assigned on first use).
[[nodiscard]] std::uint32_t current_thread_tid();
/// Names the calling thread in the trace viewer (emitted as a thread_name
/// metadata event).
void set_thread_name(const std::string& name);

namespace detail {
std::uint64_t now_ns() noexcept;
void record_event(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                  int n_args, const std::array<const char*, 2>& arg_names,
                  const std::array<std::int64_t, 2>& arg_values);
}  // namespace detail

class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept { arm(name); }
  TraceSpan(const char* name, const char* k0, std::int64_t v0) noexcept {
    arm(name);
    n_args_ = 1;
    arg_names_[0] = k0;
    arg_values_[0] = v0;
  }
  TraceSpan(const char* name, const char* k0, std::int64_t v0, const char* k1,
            std::int64_t v1) noexcept {
    arm(name);
    n_args_ = 2;
    arg_names_ = {k0, k1};
    arg_values_ = {v0, v1};
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::record_event(name_, t0_ns_, detail::now_ns(), n_args_,
                           arg_names_, arg_values_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void arm(const char* name) noexcept {
    name_ = trace_enabled() ? name : nullptr;
    if (name_ != nullptr) t0_ns_ = detail::now_ns();
  }

  const char* name_ = nullptr;  // nullptr = not armed
  std::uint64_t t0_ns_ = 0;
  int n_args_ = 0;
  std::array<const char*, 2> arg_names_{};
  std::array<std::int64_t, 2> arg_values_{};
};

/// Writes every buffered event as one Chrome trace-event JSON document.
/// Safe to call while spans are still being recorded on other threads
/// (their in-flight spans may be missed).
void write_trace_json(std::ostream& out);
/// Returns false if the file cannot be opened.
bool write_trace_json(const std::string& path);

}  // namespace sweep::obs
