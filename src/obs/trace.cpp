#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <vector>

namespace sweep::obs {
namespace {

std::atomic<bool> g_trace_enabled{false};

struct TraceEvent {
  const char* name;
  std::uint64_t t0_ns;
  std::uint64_t dur_ns;
  std::uint32_t tid;
  int n_args;
  std::array<const char*, 2> arg_names;
  std::array<std::int64_t, 2> arg_values;
};

/// Per-thread event buffer. Its mutex is uncontended except while a trace
/// is being written — span completion locks only its own buffer.
struct EventBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct SessionState {
  std::mutex mutex;
  std::vector<EventBuffer*> live_buffers;
  std::vector<TraceEvent> retired;
  std::map<std::uint32_t, std::string> thread_names;
  std::uint32_t next_tid = 1;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

SessionState& session() {
  static SessionState* s = new SessionState();
  return *s;
}

struct BufferOwner {
  EventBuffer buffer;

  BufferOwner() {
    SessionState& s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    buffer.tid = s.next_tid++;
    s.live_buffers.push_back(&buffer);
  }

  ~BufferOwner() {
    SessionState& s = session();
    std::lock_guard<std::mutex> session_lock(s.mutex);
    std::lock_guard<std::mutex> buffer_lock(buffer.mutex);
    s.retired.insert(s.retired.end(), buffer.events.begin(),
                     buffer.events.end());
    s.live_buffers.erase(
        std::find(s.live_buffers.begin(), s.live_buffers.end(), &buffer));
  }
};

EventBuffer& tls_buffer() {
  thread_local BufferOwner owner;
  return owner.buffer;
}

void write_event(std::ostream& out, const TraceEvent& e) {
  out << "{\"name\":\"" << e.name << "\",\"cat\":\"sweep\",\"ph\":\"X\""
      << ",\"pid\":1,\"tid\":" << e.tid
      << ",\"ts\":" << static_cast<double>(e.t0_ns) / 1e3
      << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3;
  if (e.n_args > 0) {
    out << ",\"args\":{";
    for (int a = 0; a < e.n_args; ++a) {
      if (a > 0) out << ",";
      out << "\"" << e.arg_names[a] << "\":" << e.arg_values[a];
    }
    out << "}";
  }
  out << "}";
}

}  // namespace

bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void start_tracing() noexcept {
  (void)session();  // pin the epoch before the first span
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void stop_tracing() noexcept {
  g_trace_enabled.store(false, std::memory_order_relaxed);
}

void clear_trace() {
  SessionState& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.retired.clear();
  for (EventBuffer* buffer : s.live_buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::uint32_t current_thread_tid() { return tls_buffer().tid; }

void set_thread_name(const std::string& name) {
  const std::uint32_t tid = current_thread_tid();
  SessionState& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.thread_names[tid] = name;
}

namespace detail {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - session().epoch)
          .count());
}

void record_event(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                  int n_args, const std::array<const char*, 2>& arg_names,
                  const std::array<std::int64_t, 2>& arg_values) {
  EventBuffer& buffer = tls_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(TraceEvent{name, t0_ns, t1_ns - t0_ns, buffer.tid,
                                     n_args, arg_names, arg_values});
}

}  // namespace detail

void write_trace_json(std::ostream& out) {
  SessionState& s = session();
  std::vector<TraceEvent> events;
  std::map<std::uint32_t, std::string> names;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    events = s.retired;
    for (EventBuffer* buffer : s.live_buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
    names = s.thread_names;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t0_ns < b.t0_ns;
                   });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  comma();
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"sweep\"}}";
  for (const auto& [tid, name] : names) {
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << name << "\"}}";
  }
  for (const TraceEvent& e : events) {
    comma();
    write_event(out, e);
  }
  out << "]}\n";
}

bool write_trace_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace_json(out);
  return out.good();
}

}  // namespace sweep::obs
