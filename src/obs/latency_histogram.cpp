#include "obs/latency_histogram.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>

namespace sweep::obs {
namespace {

/// One thread's bucket array for one histogram. Written only by the owning
/// thread (relaxed), read by snapshots (relaxed) — the same discipline as
/// the counter shards.
struct ShardBlock {
  std::array<std::atomic<std::uint64_t>, detail::kHistBuckets> buckets{};
  std::atomic<std::uint64_t> sum{0};
};

/// Plain (non-atomic) accumulator for shards whose owning thread exited.
struct RetiredBlock {
  std::array<std::uint64_t, detail::kHistBuckets> buckets{};
  std::uint64_t sum = 0;
};

/// All histogram registry state, behind one mutex except the shard slots
/// themselves. Leaked — thread_local destructors fold shards in here
/// during static destruction (see metrics.hpp).
struct HistState {
  std::mutex mutex;
  std::map<std::string, std::uint32_t> ids;  // name -> histogram id
  std::array<std::vector<ShardBlock*>, detail::kMaxHistograms> live{};
  std::array<RetiredBlock, detail::kMaxHistograms> retired{};
};

HistState& state() {
  static HistState* s = new HistState();
  return *s;
}

/// Thread-local shard owner: blocks allocate lazily on the thread's first
/// record into each histogram and fold into `retired` on thread exit.
struct ShardOwner {
  std::array<std::unique_ptr<ShardBlock>, detail::kMaxHistograms> blocks{};

  ~ShardOwner() {
    HistState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (std::size_t id = 0; id < blocks.size(); ++id) {
      ShardBlock* block = blocks[id].get();
      if (block == nullptr) continue;
      RetiredBlock& fold = s.retired[id];
      for (std::size_t b = 0; b < detail::kHistBuckets; ++b) {
        fold.buckets[b] += block->buckets[b].load(std::memory_order_relaxed);
      }
      fold.sum += block->sum.load(std::memory_order_relaxed);
      auto& live = s.live[id];
      live.erase(std::find(live.begin(), live.end(), block));
    }
  }
};

ShardOwner& tls_owner() {
  thread_local ShardOwner owner;
  return owner;
}

}  // namespace

namespace detail {

std::uint32_t hist_register(const std::string& name) {
  HistState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.ids.find(name);
  if (it == s.ids.end()) {
    const auto id = static_cast<std::uint32_t>(s.ids.size());
    if (id >= kMaxHistograms) {
      throw std::runtime_error("MetricsRegistry: too many histograms");
    }
    it = s.ids.emplace(name, id).first;
  }
  return it->second;
}

void hist_record(std::uint32_t id, std::uint64_t value) noexcept {
  ShardOwner& owner = tls_owner();
  ShardBlock* block = owner.blocks[id].get();
  if (block == nullptr) {
    // First record by this thread: allocate and publish the shard. On
    // allocation failure the sample is dropped (record must not throw).
    auto fresh = std::unique_ptr<ShardBlock>(new (std::nothrow) ShardBlock());
    if (fresh == nullptr) return;
    block = fresh.get();
    HistState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.live[id].push_back(block);
    owner.blocks[id] = std::move(fresh);
  }
  if (value > kHistMaxValue) value = kHistMaxValue;
  block->buckets[hist_bucket(value)].fetch_add(1, std::memory_order_relaxed);
  block->sum.fetch_add(value, std::memory_order_relaxed);
}

void hist_snapshot_into(std::vector<HistogramSnapshot>& out) {
  HistState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  out.reserve(out.size() + s.ids.size());
  for (const auto& [name, id] : s.ids) {  // map iteration: name-sorted
    HistogramSnapshot snap;
    snap.name = name;
    snap.buckets.assign(kHistBuckets, 0);
    const RetiredBlock& fold = s.retired[id];
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      snap.buckets[b] = fold.buckets[b];
    }
    snap.sum = fold.sum;
    for (const ShardBlock* block : s.live[id]) {
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        snap.buckets[b] += block->buckets[b].load(std::memory_order_relaxed);
      }
      snap.sum += block->sum.load(std::memory_order_relaxed);
    }
    for (const std::uint64_t c : snap.buckets) snap.count += c;
    out.push_back(std::move(snap));
  }
}

void hist_reset() {
  HistState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& fold : s.retired) fold = RetiredBlock{};
  for (auto& live : s.live) {
    for (ShardBlock* block : live) {
      for (auto& bucket : block->buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      block->sum.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace detail

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) return detail::hist_bucket_mid(b);
  }
  return detail::hist_bucket_mid(buckets.size() - 1);
}

std::uint64_t HistogramSnapshot::max_estimate() const {
  for (std::size_t b = buckets.size(); b-- > 0;) {
    if (buckets[b] != 0) {
      const std::uint64_t lower = detail::hist_bucket_lower(b);
      const std::uint64_t next = b + 1 < detail::kHistBuckets
                                     ? detail::hist_bucket_lower(b + 1) - 1
                                     : detail::kHistMaxValue;
      return std::max(lower, next);
    }
  }
  return 0;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (buckets.empty()) buckets.assign(detail::kHistBuckets, 0);
  if (other.buckets.size() != buckets.size()) {
    throw std::invalid_argument("HistogramSnapshot::merge: layout mismatch");
  }
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum += other.sum;
}

}  // namespace sweep::obs
