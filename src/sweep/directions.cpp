#include "sweep/directions.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"

namespace sweep::dag {
namespace {

constexpr double kFourPi = 4.0 * std::numbers::pi;

void set_equal_weights(DirectionSet& set) {
  set.weights.assign(set.size(), kFourPi / static_cast<double>(set.size()));
}

}  // namespace

DirectionSet level_symmetric(std::size_t sn_order) {
  if (sn_order < 2 || sn_order % 2 != 0) {
    throw std::invalid_argument("level_symmetric: order must be even and >= 2");
  }
  const std::size_t half = sn_order / 2;
  // Standard level-symmetric direction cosines: mu_1 chosen so the moments
  // close; the classic recursion mu_i^2 = mu_1^2 + 2(i-1)(1-3 mu_1^2)/(N-2)
  // for N > 2, and mu_1 = 1/sqrt(3) for S_2.
  std::vector<double> mu(half);
  if (sn_order == 2) {
    mu[0] = 1.0 / std::sqrt(3.0);
  } else {
    const double mu1_sq = 1.0 / (3.0 * static_cast<double>(sn_order - 1));
    const double step = 2.0 * (1.0 - 3.0 * mu1_sq) / static_cast<double>(sn_order - 2);
    for (std::size_t i = 0; i < half; ++i) {
      mu[i] = std::sqrt(mu1_sq + static_cast<double>(i) * step);
    }
  }

  DirectionSet set;
  // One octant: all index triples (i,j,l) with i+j+l = half - 1 (0-based),
  // direction (mu_i, mu_j, mu_l); then reflect into all 8 octants.
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t j = 0; i + j < half; ++j) {
      const std::size_t l = half - 1 - i - j;
      const Vec3 base{mu[i], mu[j], mu[l]};
      for (int sx : {1, -1}) {
        for (int sy : {1, -1}) {
          for (int sz : {1, -1}) {
            set.directions.push_back(
                {base.x * sx, base.y * sy, base.z * sz});
          }
        }
      }
    }
  }
  set_equal_weights(set);
  return set;
}

DirectionSet fibonacci_sphere(std::size_t k) {
  if (k == 0) throw std::invalid_argument("fibonacci_sphere: k must be >= 1");
  DirectionSet set;
  set.directions.reserve(k);
  const double golden = std::numbers::pi * (3.0 - std::sqrt(5.0));
  for (std::size_t i = 0; i < k; ++i) {
    const double z = 1.0 - 2.0 * (static_cast<double>(i) + 0.5) / static_cast<double>(k);
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    const double theta = golden * static_cast<double>(i);
    set.directions.push_back({r * std::cos(theta), r * std::sin(theta), z});
  }
  set_equal_weights(set);
  return set;
}

DirectionSet random_directions(std::size_t k, std::uint64_t seed) {
  if (k == 0) throw std::invalid_argument("random_directions: k must be >= 1");
  util::Rng rng(seed);
  DirectionSet set;
  set.directions.reserve(k);
  while (set.directions.size() < k) {
    // Rejection sampling from the cube, normalized.
    const Vec3 v{rng.next_double(-1.0, 1.0), rng.next_double(-1.0, 1.0),
                 rng.next_double(-1.0, 1.0)};
    const double n2 = mesh::norm2(v);
    if (n2 > 1e-6 && n2 <= 1.0) set.directions.push_back(v / std::sqrt(n2));
  }
  set_equal_weights(set);
  return set;
}

DirectionSet axis_directions() {
  DirectionSet set;
  set.directions = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
                    {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
  set_equal_weights(set);
  return set;
}

std::size_t sn_order_for(std::size_t k) {
  std::size_t order = 2;
  while (order * (order + 2) < k) order += 2;
  return order;
}

}  // namespace sweep::dag
