#include "sweep/instance.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"
#include "sweep/dag_builder.hpp"
#include "sweep/descendants.hpp"
#include "util/parallel.hpp"

namespace sweep::dag {

std::unique_ptr<SweepInstance::LazyCaches> SweepInstance::fresh_caches(
    std::size_t k) {
  auto caches = std::make_unique<LazyCaches>();
  caches->descendant_once = std::make_unique<std::once_flag[]>(k);
  caches->descendant_counts.resize(k);
  return caches;
}

SweepInstance::SweepInstance(std::size_t n_cells, std::vector<SweepDag> dags,
                             std::string name)
    : n_cells_(n_cells),
      dags_(std::move(dags)),
      name_(std::move(name)),
      caches_(fresh_caches(dags_.size())) {
  for (const SweepDag& g : dags_) {
    if (g.n_nodes() != n_cells_) {
      throw std::invalid_argument(
          "SweepInstance: all DAGs must share the cell id space");
    }
  }
  // Zero directions is a legal (fully degenerate) instance, symmetric with
  // the n_cells == 0 support: it has no tasks, an empty task graph, and
  // round-trips through save_instance/load_instance.
}

SweepInstance::SweepInstance(const SweepInstance& other)
    : n_cells_(other.n_cells_),
      dags_(other.dags_),
      name_(other.name_),
      caches_(fresh_caches(dags_.size())) {}

SweepInstance& SweepInstance::operator=(const SweepInstance& other) {
  if (this != &other) {
    n_cells_ = other.n_cells_;
    dags_ = other.dags_;
    name_ = other.name_;
    caches_ = fresh_caches(dags_.size());
  }
  return *this;
}

const std::vector<std::vector<std::uint32_t>>& SweepInstance::levels() const {
  std::call_once(caches_->levels_once, [this] {
    caches_->levels.reserve(dags_.size());
    for (const SweepDag& g : dags_) caches_->levels.push_back(g.levels());
  });
  return caches_->levels;
}

const TaskGraph& SweepInstance::task_graph() const {
  std::call_once(caches_->task_graph_once, [this] {
    SWEEP_OBS_SCOPE("dag.task_graph.build");
    caches_->task_graph = TaskGraph::build(n_cells_, dags_, levels());
    SWEEP_OBS_COUNTER_ADD("dag.task_graph.builds", 1);
  });
  return caches_->task_graph;
}

const std::vector<std::uint64_t>& SweepInstance::exact_descendant_counts(
    std::size_t i) const {
  std::call_once(caches_->descendant_once[i], [this, i] {
    SWEEP_OBS_SCOPE("dag.descendant_counts.build");
    caches_->descendant_counts[i] =
        dag::exact_descendant_counts(dags_[i], dags_[i].n_nodes());
    SWEEP_OBS_COUNTER_ADD("dag.descendant_counts.builds", 1);
  });
  return caches_->descendant_counts[i];
}

std::size_t SweepInstance::max_depth() const {
  std::size_t depth = 0;
  for (const auto& lv : levels()) {
    if (lv.empty()) continue;  // a direction with no cells has no levels
    std::uint32_t max_level = 0;
    for (std::uint32_t l : lv) max_level = std::max(max_level, l);
    depth = std::max(depth, static_cast<std::size_t>(max_level) + 1);
  }
  return depth;
}

std::size_t SweepInstance::total_edges() const {
  std::size_t total = 0;
  for (const SweepDag& g : dags_) total += g.n_edges();
  return total;
}

SweepInstance build_instance(const mesh::UnstructuredMesh& mesh,
                             const DirectionSet& dirs, double tolerance,
                             InstanceBuildStats* stats) {
  std::vector<SweepDag> dags;
  dags.reserve(dirs.size());
  InstanceBuildStats local;
  for (const Vec3& d : dirs.directions) {
    DagBuildResult r = build_sweep_dag(mesh, d, tolerance);
    local.total_induced_edges += r.induced_edges;
    local.total_dropped_edges += r.dropped_edges;
    dags.push_back(std::move(r.dag));
  }
  if (stats != nullptr) *stats = local;
  return SweepInstance(mesh.n_cells(), std::move(dags), mesh.name());
}

SweepInstance build_instance_parallel(const mesh::UnstructuredMesh& mesh,
                                      const DirectionSet& dirs,
                                      double tolerance,
                                      InstanceBuildStats* stats,
                                      std::size_t threads) {
  std::vector<DagBuildResult> results(dirs.size());
  // Each direction reads the mesh and writes only its own slot: no locking.
  util::parallel_for(
      dirs.size(),
      [&](std::size_t i) {
        results[i] = build_sweep_dag(mesh, dirs.directions[i], tolerance);
      },
      threads);
  InstanceBuildStats local;
  std::vector<SweepDag> dags;
  dags.reserve(dirs.size());
  for (DagBuildResult& r : results) {
    local.total_induced_edges += r.induced_edges;
    local.total_dropped_edges += r.dropped_edges;
    dags.push_back(std::move(r.dag));
  }
  if (stats != nullptr) *stats = local;
  return SweepInstance(mesh.n_cells(), std::move(dags), mesh.name());
}

}  // namespace sweep::dag
