#include "sweep/task_graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace sweep::dag {

void TaskGraph::bind_owned() {
  offsets_ = owned_offsets_;
  targets_ = owned_targets_;
  indegree_ = owned_indegree_;
  level_ = owned_level_;
  cell_ = owned_cell_;
}

TaskGraph::TaskGraph(const TaskGraph& other)
    : n_cells_(other.n_cells_),
      n_directions_(other.n_directions_),
      borrowed_(other.borrowed_),
      owned_offsets_(other.owned_offsets_),
      owned_targets_(other.owned_targets_),
      owned_indegree_(other.owned_indegree_),
      owned_level_(other.owned_level_),
      owned_cell_(other.owned_cell_),
      max_level_(other.max_level_),
      max_indegree_(other.max_indegree_) {
  // A borrowing graph keeps pointing at the external memory; an owning one
  // must rebind to its freshly copied vectors.
  if (borrowed_) {
    offsets_ = other.offsets_;
    targets_ = other.targets_;
    indegree_ = other.indegree_;
    level_ = other.level_;
    cell_ = other.cell_;
  } else {
    bind_owned();
  }
}

TaskGraph& TaskGraph::operator=(const TaskGraph& other) {
  if (this != &other) {
    TaskGraph copy(other);
    *this = std::move(copy);
  }
  return *this;
}

TaskGraph::TaskGraph(TaskGraph&& other) noexcept
    : n_cells_(other.n_cells_),
      n_directions_(other.n_directions_),
      borrowed_(other.borrowed_),
      owned_offsets_(std::move(other.owned_offsets_)),
      owned_targets_(std::move(other.owned_targets_)),
      owned_indegree_(std::move(other.owned_indegree_)),
      owned_level_(std::move(other.owned_level_)),
      owned_cell_(std::move(other.owned_cell_)),
      // Moving a vector preserves its heap buffer, so the source's views stay
      // valid for the moved-to object in both modes.
      offsets_(other.offsets_),
      targets_(other.targets_),
      indegree_(other.indegree_),
      level_(other.level_),
      cell_(other.cell_),
      max_level_(other.max_level_),
      max_indegree_(other.max_indegree_) {
  other.n_cells_ = 0;
  other.n_directions_ = 0;
  other.borrowed_ = false;
  // clear() never allocates, keeping the move ctor genuinely noexcept; the
  // moved-from graph is empty (n_tasks() == 0), not the {0}-sentinel shape.
  other.owned_offsets_.clear();
  other.bind_owned();
  other.max_level_ = 0;
  other.max_indegree_ = 0;
}

TaskGraph& TaskGraph::operator=(TaskGraph&& other) noexcept {
  if (this != &other) {
    n_cells_ = other.n_cells_;
    n_directions_ = other.n_directions_;
    borrowed_ = other.borrowed_;
    owned_offsets_ = std::move(other.owned_offsets_);
    owned_targets_ = std::move(other.owned_targets_);
    owned_indegree_ = std::move(other.owned_indegree_);
    owned_level_ = std::move(other.owned_level_);
    owned_cell_ = std::move(other.owned_cell_);
    offsets_ = other.offsets_;
    targets_ = other.targets_;
    indegree_ = other.indegree_;
    level_ = other.level_;
    cell_ = other.cell_;
    max_level_ = other.max_level_;
    max_indegree_ = other.max_indegree_;
    other.n_cells_ = 0;
    other.n_directions_ = 0;
    other.borrowed_ = false;
    other.owned_offsets_.clear();
    other.owned_targets_.clear();
    other.owned_indegree_.clear();
    other.owned_level_.clear();
    other.owned_cell_.clear();
    other.bind_owned();
    other.max_level_ = 0;
    other.max_indegree_ = 0;
  }
  return *this;
}

TaskGraph TaskGraph::build(
    std::size_t n_cells, const std::vector<SweepDag>& dags,
    const std::vector<std::vector<std::uint32_t>>& levels) {
  const std::size_t k = dags.size();
  const std::size_t total = n_cells * k;
  constexpr std::size_t kMaxIndex =
      std::numeric_limits<std::uint32_t>::max() - 1;
  if (total > kMaxIndex) {
    throw std::invalid_argument("TaskGraph: too many tasks for 32-bit ids");
  }
  std::size_t total_edges = 0;
  for (const SweepDag& g : dags) total_edges += g.n_edges();
  if (total_edges > kMaxIndex) {
    throw std::invalid_argument("TaskGraph: too many edges for 32-bit offsets");
  }
  if (levels.size() != k) {
    throw std::invalid_argument("TaskGraph: levels size != n_directions");
  }

  TaskGraph tg;
  tg.n_cells_ = n_cells;
  tg.n_directions_ = k;
  tg.owned_offsets_.assign(total + 1, 0);
  tg.owned_targets_.resize(total_edges);
  tg.owned_indegree_.resize(total);
  tg.owned_level_.resize(total);
  tg.owned_cell_.resize(total);

  std::size_t cursor = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const SweepDag& g = dags[i];
    const std::vector<std::uint32_t>& lv = levels[i];
    const std::size_t base = i * n_cells;
    for (std::size_t v = 0; v < n_cells; ++v) {
      const std::size_t t = base + v;
      tg.owned_offsets_[t] = static_cast<std::uint32_t>(cursor);
      for (NodeId w : g.successors(static_cast<NodeId>(v))) {
        tg.owned_targets_[cursor++] = static_cast<Task>(base + w);
      }
      tg.owned_indegree_[t] =
          static_cast<std::uint32_t>(g.in_degree(static_cast<NodeId>(v)));
      tg.owned_level_[t] = lv[v];
      tg.owned_cell_[t] = static_cast<std::uint32_t>(v);
      tg.max_level_ = std::max(tg.max_level_, lv[v]);
      tg.max_indegree_ = std::max(tg.max_indegree_, tg.owned_indegree_[t]);
    }
  }
  tg.owned_offsets_[total] = static_cast<std::uint32_t>(cursor);
  tg.bind_owned();
  return tg;
}

TaskGraph TaskGraph::from_views(std::size_t n_cells, std::size_t n_directions,
                                std::span<const std::uint32_t> offsets,
                                std::span<const Task> targets,
                                std::span<const std::uint32_t> indegree,
                                std::span<const std::uint32_t> level,
                                std::span<const std::uint32_t> cell,
                                std::uint32_t max_level,
                                std::uint32_t max_indegree) {
  const std::size_t total = n_cells * n_directions;
  if (offsets.size() != total + 1 || indegree.size() != total ||
      level.size() != total || cell.size() != total) {
    throw std::invalid_argument("TaskGraph::from_views: array sizes disagree "
                                "with n_cells * n_directions");
  }
  if (!offsets.empty() && offsets.back() != targets.size()) {
    throw std::invalid_argument(
        "TaskGraph::from_views: offsets do not end at targets.size()");
  }
  TaskGraph tg;
  tg.n_cells_ = n_cells;
  tg.n_directions_ = n_directions;
  tg.borrowed_ = true;
  tg.offsets_ = offsets;
  tg.targets_ = targets;
  tg.indegree_ = indegree;
  tg.level_ = level;
  tg.cell_ = cell;
  tg.max_level_ = max_level;
  tg.max_indegree_ = max_indegree;
  return tg;
}

}  // namespace sweep::dag
