#include "sweep/task_graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sweep::dag {

TaskGraph TaskGraph::build(
    std::size_t n_cells, const std::vector<SweepDag>& dags,
    const std::vector<std::vector<std::uint32_t>>& levels) {
  const std::size_t k = dags.size();
  const std::size_t total = n_cells * k;
  constexpr std::size_t kMaxIndex =
      std::numeric_limits<std::uint32_t>::max() - 1;
  if (total > kMaxIndex) {
    throw std::invalid_argument("TaskGraph: too many tasks for 32-bit ids");
  }
  std::size_t total_edges = 0;
  for (const SweepDag& g : dags) total_edges += g.n_edges();
  if (total_edges > kMaxIndex) {
    throw std::invalid_argument("TaskGraph: too many edges for 32-bit offsets");
  }
  if (levels.size() != k) {
    throw std::invalid_argument("TaskGraph: levels size != n_directions");
  }

  TaskGraph tg;
  tg.n_cells_ = n_cells;
  tg.n_directions_ = k;
  tg.offsets_.assign(total + 1, 0);
  tg.targets_.resize(total_edges);
  tg.indegree_.resize(total);
  tg.level_.resize(total);
  tg.cell_.resize(total);

  std::size_t cursor = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const SweepDag& g = dags[i];
    const std::vector<std::uint32_t>& lv = levels[i];
    const std::size_t base = i * n_cells;
    for (std::size_t v = 0; v < n_cells; ++v) {
      const std::size_t t = base + v;
      tg.offsets_[t] = static_cast<std::uint32_t>(cursor);
      for (NodeId w : g.successors(static_cast<NodeId>(v))) {
        tg.targets_[cursor++] = static_cast<Task>(base + w);
      }
      tg.indegree_[t] =
          static_cast<std::uint32_t>(g.in_degree(static_cast<NodeId>(v)));
      tg.level_[t] = lv[v];
      tg.cell_[t] = static_cast<std::uint32_t>(v);
      tg.max_level_ = std::max(tg.max_level_, lv[v]);
      tg.max_indegree_ = std::max(tg.max_indegree_, tg.indegree_[t]);
    }
  }
  tg.offsets_[total] = static_cast<std::uint32_t>(cursor);
  return tg;
}

}  // namespace sweep::dag
