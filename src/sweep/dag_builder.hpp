#pragma once
// Geometric induction of per-direction sweep DAGs from an unstructured mesh
// (paper Section 3): for direction d, an interior face between cells u and v
// with unit normal n (oriented u->v) induces edge u->v when dot(n, d) > tol
// and v->u when dot(n, d) < -tol. Faces nearly perpendicular to the sweep
// direction (|dot| <= tol) carry no flux and induce no constraint.
//
// Distorted cells can in principle induce directed cycles; following the
// paper ("we assume the induced digraphs are acyclic, otherwise we break the
// cycles"), Tarjan SCCs are computed and within each nontrivial SCC the edges
// that run against the direction-projected centroid order are dropped.

#include <cstdint>

#include "mesh/mesh.hpp"
#include "sweep/dag.hpp"
#include "sweep/directions.hpp"

namespace sweep::dag {

struct DagBuildResult {
  SweepDag dag;
  std::size_t induced_edges = 0;  ///< edges induced before cycle breaking
  std::size_t dropped_edges = 0; ///< edges removed to break cycles
};

DagBuildResult build_sweep_dag(const mesh::UnstructuredMesh& mesh,
                               const Vec3& direction, double tolerance = 1e-9);

}  // namespace sweep::dag
