#pragma once
// Angular direction sets for sweeps.
//
// The paper's S_n application uses level-symmetric quadrature sets; we
// implement the standard level-symmetric construction (S_2..S_8 give
// k = 8, 24, 48, 80 directions — the paper's experiments use up to ~48), plus
// uniform Fibonacci-sphere sets and fully random sets for the asymmetric /
// non-geometric scenarios the paper calls out in Related Work.

#include <cstdint>
#include <vector>

#include "mesh/vec3.hpp"

namespace sweep::dag {

using mesh::Vec3;

struct DirectionSet {
  std::vector<Vec3> directions;   ///< unit vectors
  std::vector<double> weights;    ///< quadrature weights, sum = 4*pi

  [[nodiscard]] std::size_t size() const { return directions.size(); }
};

/// Level-symmetric S_N set: N even, N >= 2; yields N*(N+2) directions with
/// full octant symmetry. Equal weights (sufficient for the scheduling study
/// and for the isotropic-scattering transport example).
DirectionSet level_symmetric(std::size_t sn_order);

/// k roughly uniformly distributed directions via the Fibonacci spiral.
DirectionSet fibonacci_sphere(std::size_t k);

/// k i.i.d. uniform random unit vectors (asymmetric instances).
DirectionSet random_directions(std::size_t k, std::uint64_t seed);

/// The 6 axis-aligned directions (+/-x, +/-y, +/-z).
DirectionSet axis_directions();

/// Smallest even S_N order whose level-symmetric set has >= k directions.
std::size_t sn_order_for(std::size_t k);

}  // namespace sweep::dag
