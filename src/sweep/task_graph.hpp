#pragma once
// TaskGraph: the flat, cache-friendly representation of ALL n*k tasks of a
// SweepInstance in one CSR structure, indexed by the scheduling core's
// flattened task id (tid = direction * n_cells + cell).
//
// The schedulers used to walk the per-direction SweepDags and re-derive cell
// and direction from every task id with a divide/modulo pair per edge; at
// bench scale (~3M tasks, ~5.7M edges per schedule run) that arithmetic and
// the per-direction indirection dominate the hot loop. TaskGraph stores, in
// contiguous arrays:
//   - successor offsets/targets already translated to task ids,
//   - per-task predecessor counts (the indegree vector every run copies),
//   - per-task levels (the paper's level(v, i), flattened),
//   - per-task cell ids (so processor lookup is one array read, no modulo).
// It is built once per instance and cached on dag::SweepInstance (thread-safe
// via std::once_flag) next to levels().
//
// Storage model: every accessor reads through a std::span view. build()
// allocates owned vectors and binds the views to them; from_views() binds
// the views to caller-provided memory (an mmap'ed sweep artifact, see
// sweep/artifact.hpp) without copying a byte — the serving path schedules
// straight out of the page cache. A borrowing graph never outlives its
// backing memory by contract (dag::Artifact owns both).
//
// Task ids and edge offsets are stored as 32-bit integers; build() rejects
// instances with >= 2^32 - 1 tasks or edges (far above anything the harness
// runs — that is a ~100x-paper-scale instance).

#include <cstdint>
#include <span>
#include <vector>

#include "sweep/dag.hpp"

namespace sweep::dag {

class TaskGraph {
 public:
  /// Flattened task id, 32-bit on purpose (see file comment).
  using Task = std::uint32_t;

  TaskGraph() { bind_owned(); }
  TaskGraph(const TaskGraph& other);
  TaskGraph& operator=(const TaskGraph& other);
  TaskGraph(TaskGraph&& other) noexcept;
  TaskGraph& operator=(TaskGraph&& other) noexcept;
  ~TaskGraph() = default;

  /// Builds the flat CSR from the per-direction DAGs. `levels[i][v]` must be
  /// the level of cell v in direction i (as produced by SweepDag::levels).
  static TaskGraph build(std::size_t n_cells, const std::vector<SweepDag>& dags,
                         const std::vector<std::vector<std::uint32_t>>& levels);

  /// Borrows caller-owned CSR arrays without copying (the zero-copy artifact
  /// path). The spans must satisfy the build() invariants — offsets has
  /// n_cells * n_directions + 1 monotone entries ending at targets.size(),
  /// the per-task arrays are all n_cells * n_directions long — and must
  /// outlive the returned graph and every copy of it. Validation is the
  /// caller's job (dag::Artifact checks on load); this is a constructor,
  /// not a parser.
  static TaskGraph from_views(std::size_t n_cells, std::size_t n_directions,
                              std::span<const std::uint32_t> offsets,
                              std::span<const Task> targets,
                              std::span<const std::uint32_t> indegree,
                              std::span<const std::uint32_t> level,
                              std::span<const std::uint32_t> cell,
                              std::uint32_t max_level,
                              std::uint32_t max_indegree);

  /// True when the arrays live in caller-owned memory (from_views).
  [[nodiscard]] bool borrows() const { return borrowed_; }

  [[nodiscard]] std::size_t n_tasks() const { return level_.size(); }
  [[nodiscard]] std::size_t n_edges() const { return targets_.size(); }
  [[nodiscard]] std::size_t n_cells() const { return n_cells_; }
  [[nodiscard]] std::size_t n_directions() const { return n_directions_; }

  /// Successor task ids of task t (same direction, downwind cells).
  [[nodiscard]] std::span<const Task> successors(std::size_t t) const {
    return {targets_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]};
  }
  [[nodiscard]] std::uint32_t out_degree(std::size_t t) const {
    return offsets_[t + 1] - offsets_[t];
  }
  [[nodiscard]] std::uint32_t in_degree(std::size_t t) const {
    return indegree_[t];
  }
  [[nodiscard]] std::uint32_t level(std::size_t t) const { return level_[t]; }
  [[nodiscard]] std::uint32_t cell(std::size_t t) const { return cell_[t]; }
  [[nodiscard]] std::uint32_t max_level() const { return max_level_; }
  /// Largest predecessor count over all tasks (schedulers use this to decide
  /// whether the packed slot-map ready queue applies).
  [[nodiscard]] std::uint32_t max_indegree() const { return max_indegree_; }

  /// Raw CSR arrays (offsets() has n_tasks() + 1 entries). The sharded
  /// engine drains whole successor runs [offsets()[t], offsets()[t+1])
  /// from targets() in one contiguous read instead of going through the
  /// per-task successors() span.
  [[nodiscard]] std::span<const std::uint32_t> offsets() const {
    return offsets_;
  }
  [[nodiscard]] std::span<const Task> targets() const { return targets_; }

  /// Contiguous per-task arrays (all sized n_tasks()).
  [[nodiscard]] std::span<const std::uint32_t> indegrees() const {
    return indegree_;
  }
  [[nodiscard]] std::span<const std::uint32_t> levels() const { return level_; }
  [[nodiscard]] std::span<const std::uint32_t> cells() const { return cell_; }

 private:
  /// Points every view at the owned vectors (after build/copy/default-init).
  void bind_owned();

  std::size_t n_cells_ = 0;
  // Stored, not derived as n_tasks/n_cells: that division collapses to 0
  // for an instance with directions but no cells.
  std::size_t n_directions_ = 0;
  bool borrowed_ = false;

  // Owned storage; all empty (offsets: the single sentinel 0) when the graph
  // borrows external memory.
  std::vector<std::uint32_t> owned_offsets_ = {0};  // n_tasks + 1 entries
  std::vector<Task> owned_targets_;                 // n_edges entries
  std::vector<std::uint32_t> owned_indegree_;       // per task
  std::vector<std::uint32_t> owned_level_;          // per task
  std::vector<std::uint32_t> owned_cell_;           // per task

  // Views every accessor reads; bound to the owned vectors or to borrowed
  // memory (from_views).
  std::span<const std::uint32_t> offsets_;
  std::span<const Task> targets_;
  std::span<const std::uint32_t> indegree_;
  std::span<const std::uint32_t> level_;
  std::span<const std::uint32_t> cell_;

  std::uint32_t max_level_ = 0;
  std::uint32_t max_indegree_ = 0;
};

}  // namespace sweep::dag
