#include "sweep/instance_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sweep::dag {
namespace {

// Version history:
//   1 — name stored as a single >> token. Names with whitespace broke the
//       round trip (the loader consumed only the first word and then
//       misparsed the shape line); still accepted on load for old files.
//   2 — name stored length-prefixed ("name <bytes> <raw name>"), so any
//       byte sequence round-trips; k == 0 accepted on load (symmetric with
//       save, which always wrote it).
constexpr int kVersion = 2;

/// Upper bound on a stored name; a hostile length prefix must not drive a
/// multi-GB string allocation.
constexpr std::size_t kMaxNameBytes = 1u << 16;

/// Task-id / edge-offset ceiling shared with TaskGraph::build (32-bit ids).
constexpr std::uint64_t kMaxIndex =
    std::numeric_limits<std::uint32_t>::max() - 1;

/// Edge lists grow incrementally from what the stream actually contains;
/// this only caps how much we pre-reserve from the untrusted header count.
constexpr std::uint64_t kReserveCap = 1u << 20;

}  // namespace

void save_instance(const SweepInstance& instance, std::ostream& out) {
  out << "sweepinst " << kVersion << "\n";
  const std::string& raw = instance.name();
  const std::string name = raw.empty() ? "unnamed" : raw;
  out << "name " << name.size() << ' ' << name << "\n";
  out << instance.n_cells() << ' ' << instance.n_directions() << "\n";
  for (const SweepDag& g : instance.dags()) {
    out << g.n_edges() << "\n";
    for (NodeId u = 0; u < g.n_nodes(); ++u) {
      for (NodeId v : g.successors(u)) {
        out << u << ' ' << v << "\n";
      }
    }
  }
}

void save_instance(const SweepInstance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_instance: cannot open " + path);
  save_instance(instance, out);
}

SweepInstance load_instance(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "sweepinst" || version < 1 ||
      version > kVersion) {
    throw std::runtime_error("load_instance: bad header");
  }
  std::string key;
  if (!(in >> key) || key != "name") {
    throw std::runtime_error("load_instance: expected 'name'");
  }
  std::string name;
  if (version == 1) {
    // Legacy single-token name (whitespace was never representable in v1).
    if (!(in >> name)) {
      throw std::runtime_error("load_instance: truncated name");
    }
  } else {
    std::uint64_t name_bytes = 0;
    if (!(in >> name_bytes) || name_bytes > kMaxNameBytes) {
      throw std::runtime_error("load_instance: bad name length");
    }
    if (in.get() == std::char_traits<char>::eof()) {
      throw std::runtime_error("load_instance: truncated name");
    }
    name.resize(static_cast<std::size_t>(name_bytes));
    if (name_bytes > 0 &&
        !in.read(name.data(), static_cast<std::streamsize>(name_bytes))) {
      throw std::runtime_error("load_instance: truncated name");
    }
  }
  std::uint64_t n = 0;
  std::uint64_t k = 0;
  if (!(in >> n >> k)) {
    throw std::runtime_error("load_instance: bad shape line");
  }
  // Same ceiling TaskGraph::build enforces: n node ids and n*k task ids must
  // fit 32 bits (overflow-safe formulation — n * k itself may wrap u64).
  if (n > kMaxIndex || (k != 0 && n != 0 && k > kMaxIndex / n)) {
    throw std::runtime_error("load_instance: instance too large for 32-bit ids");
  }
  std::vector<SweepDag> dags;
  dags.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t i = 0; i < k; ++i) {
    std::uint64_t edges = 0;
    if (!(in >> edges)) throw std::runtime_error("load_instance: missing edge count");
    if (edges > kMaxIndex) {
      throw std::runtime_error("load_instance: edge count too large");
    }
    // The declared count caps the loop, but memory grows only with edges
    // actually present in the stream — a hostile header claiming 2^32 edges
    // over a 3-line file fails on the first missing edge, not in operator new.
    std::vector<std::pair<NodeId, NodeId>> edge_list;
    edge_list.reserve(static_cast<std::size_t>(std::min(edges, kReserveCap)));
    for (std::uint64_t e = 0; e < edges; ++e) {
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (!(in >> u >> v)) {
        throw std::runtime_error("load_instance: truncated edge list");
      }
      if (u >= n || v >= n) {
        throw std::runtime_error("load_instance: edge endpoint out of range");
      }
      edge_list.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
    dags.emplace_back(static_cast<std::size_t>(n), edge_list);
  }
  return SweepInstance(static_cast<std::size_t>(n), std::move(dags), name);
}

SweepInstance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_instance: cannot open " + path);
  return load_instance(in);
}

}  // namespace sweep::dag
