#include "sweep/instance_io.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sweep::dag {

void save_instance(const SweepInstance& instance, std::ostream& out) {
  out << "sweepinst 1\n";
  out << "name " << (instance.name().empty() ? "unnamed" : instance.name())
      << "\n";
  out << instance.n_cells() << ' ' << instance.n_directions() << "\n";
  for (const SweepDag& g : instance.dags()) {
    out << g.n_edges() << "\n";
    for (NodeId u = 0; u < g.n_nodes(); ++u) {
      for (NodeId v : g.successors(u)) {
        out << u << ' ' << v << "\n";
      }
    }
  }
}

void save_instance(const SweepInstance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_instance: cannot open " + path);
  save_instance(instance, out);
}

SweepInstance load_instance(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "sweepinst" || version != 1) {
    throw std::runtime_error("load_instance: bad header");
  }
  std::string key;
  std::string name;
  if (!(in >> key >> name) || key != "name") {
    throw std::runtime_error("load_instance: expected 'name'");
  }
  std::size_t n = 0;
  std::size_t k = 0;
  if (!(in >> n >> k) || k == 0) {
    throw std::runtime_error("load_instance: bad shape line");
  }
  std::vector<SweepDag> dags;
  dags.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t edges = 0;
    if (!(in >> edges)) throw std::runtime_error("load_instance: missing edge count");
    std::vector<std::pair<NodeId, NodeId>> edge_list(edges);
    for (auto& [u, v] : edge_list) {
      if (!(in >> u >> v)) {
        throw std::runtime_error("load_instance: truncated edge list");
      }
    }
    dags.emplace_back(n, edge_list);
  }
  return SweepInstance(n, std::move(dags), name);
}

SweepInstance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_instance: cannot open " + path);
  return load_instance(in);
}

}  // namespace sweep::dag
