#pragma once
// SweepInstance serialization: snapshot the exact DAGs of an experiment so a
// run can be replayed or shared without regenerating the mesh (useful for
// non-geometric instances, whose DAGs cannot be rebuilt from geometry).

#include <iosfwd>
#include <string>

#include "sweep/instance.hpp"

namespace sweep::dag {

/// Format: "sweepinst 1", name, n k, then per DAG: edge count and edge list.
void save_instance(const SweepInstance& instance, std::ostream& out);
void save_instance(const SweepInstance& instance, const std::string& path);

/// Throws std::runtime_error on malformed input.
SweepInstance load_instance(std::istream& in);
SweepInstance load_instance(const std::string& path);

}  // namespace sweep::dag
