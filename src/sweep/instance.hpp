#pragma once
// SweepInstance: a full sweep-scheduling problem instance — n cells and one
// precedence DAG per direction over the same cell id space (paper Section 3).
// Instances are built geometrically from a mesh + direction set, or
// synthetically (random DAGs) for the non-geometric scenarios.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mesh/mesh.hpp"
#include "sweep/dag.hpp"
#include "sweep/directions.hpp"
#include "sweep/task_graph.hpp"

namespace sweep::dag {

class SweepInstance {
 public:
  SweepInstance(std::size_t n_cells, std::vector<SweepDag> dags,
                std::string name = "");

  // The lazy caches live behind a unique_ptr (std::once_flag is neither
  // movable nor copyable); copies start with fresh, empty caches.
  SweepInstance(const SweepInstance& other);
  SweepInstance& operator=(const SweepInstance& other);
  SweepInstance(SweepInstance&&) noexcept = default;
  SweepInstance& operator=(SweepInstance&&) noexcept = default;
  ~SweepInstance() = default;

  [[nodiscard]] std::size_t n_cells() const { return n_cells_; }
  [[nodiscard]] std::size_t n_directions() const { return dags_.size(); }
  [[nodiscard]] std::size_t n_tasks() const { return n_cells_ * dags_.size(); }
  [[nodiscard]] const SweepDag& dag(std::size_t i) const { return dags_[i]; }
  [[nodiscard]] const std::vector<SweepDag>& dags() const { return dags_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Levels of every task: result[i][v] = level of (v, i) in G_i.
  /// Computed lazily on first call and cached; safe to call concurrently.
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& levels() const;

  /// The flat all-tasks CSR consumed by the scheduling engine. Built lazily
  /// on first call and cached; safe to call concurrently.
  [[nodiscard]] const TaskGraph& task_graph() const;

  /// Exact |descendants| of every cell in direction i (the tiled transitive
  /// closure, see sweep/descendants.hpp). The counts are rng-independent
  /// and trial-invariant, so they are cached per direction: the figure
  /// harnesses rebuild descendant priorities once per trial, and every
  /// rebuild after the first reuses this cache. Computed under a per-
  /// direction once_flag; safe to call concurrently. Unconditional — the
  /// caller gates on DAG size (dag::kDefaultExactThreshold); footprint is
  /// 8 bytes per task for the directions actually requested.
  [[nodiscard]] const std::vector<std::uint64_t>& exact_descendant_counts(
      std::size_t i) const;

  /// Max number of levels over all directions (D in the paper).
  [[nodiscard]] std::size_t max_depth() const;

  /// Total number of precedence edges over all DAGs.
  [[nodiscard]] std::size_t total_edges() const;

 private:
  // Lazily computed, shared by concurrent schedule runs on one instance:
  // each member is built exactly once under its once_flag.
  struct LazyCaches {
    std::once_flag levels_once;
    std::vector<std::vector<std::uint32_t>> levels;
    std::once_flag task_graph_once;
    TaskGraph task_graph;
    // One flag + slot per direction (sized at construction; once_flag is
    // not movable, hence the raw array).
    std::unique_ptr<std::once_flag[]> descendant_once;
    std::vector<std::vector<std::uint64_t>> descendant_counts;
  };

  static std::unique_ptr<LazyCaches> fresh_caches(std::size_t k);

  std::size_t n_cells_;
  std::vector<SweepDag> dags_;
  std::string name_;
  mutable std::unique_ptr<LazyCaches> caches_;
};

struct InstanceBuildStats {
  std::size_t total_induced_edges = 0;
  std::size_t total_dropped_edges = 0;
};

/// Builds the geometric instance: one DAG per direction in `dirs`.
SweepInstance build_instance(const mesh::UnstructuredMesh& mesh,
                             const DirectionSet& dirs, double tolerance = 1e-9,
                             InstanceBuildStats* stats = nullptr);

/// Thread-parallel variant: directions are induced concurrently (they are
/// independent reads of the mesh). Produces the identical instance as
/// build_instance; `threads` = 0 uses hardware concurrency.
SweepInstance build_instance_parallel(const mesh::UnstructuredMesh& mesh,
                                      const DirectionSet& dirs,
                                      double tolerance = 1e-9,
                                      InstanceBuildStats* stats = nullptr,
                                      std::size_t threads = 0);

}  // namespace sweep::dag
