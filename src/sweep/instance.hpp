#pragma once
// SweepInstance: a full sweep-scheduling problem instance — n cells and one
// precedence DAG per direction over the same cell id space (paper Section 3).
// Instances are built geometrically from a mesh + direction set, or
// synthetically (random DAGs) for the non-geometric scenarios.

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/mesh.hpp"
#include "sweep/dag.hpp"
#include "sweep/directions.hpp"

namespace sweep::dag {

class SweepInstance {
 public:
  SweepInstance(std::size_t n_cells, std::vector<SweepDag> dags,
                std::string name = "");

  [[nodiscard]] std::size_t n_cells() const { return n_cells_; }
  [[nodiscard]] std::size_t n_directions() const { return dags_.size(); }
  [[nodiscard]] std::size_t n_tasks() const { return n_cells_ * dags_.size(); }
  [[nodiscard]] const SweepDag& dag(std::size_t i) const { return dags_[i]; }
  [[nodiscard]] const std::vector<SweepDag>& dags() const { return dags_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Levels of every task: result[i][v] = level of (v, i) in G_i.
  /// Computed lazily on first call and cached.
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& levels() const;

  /// Max number of levels over all directions (D in the paper).
  [[nodiscard]] std::size_t max_depth() const;

  /// Total number of precedence edges over all DAGs.
  [[nodiscard]] std::size_t total_edges() const;

 private:
  std::size_t n_cells_;
  std::vector<SweepDag> dags_;
  std::string name_;
  mutable std::vector<std::vector<std::uint32_t>> levels_;  // lazy cache
};

struct InstanceBuildStats {
  std::size_t total_induced_edges = 0;
  std::size_t total_dropped_edges = 0;
};

/// Builds the geometric instance: one DAG per direction in `dirs`.
SweepInstance build_instance(const mesh::UnstructuredMesh& mesh,
                             const DirectionSet& dirs, double tolerance = 1e-9,
                             InstanceBuildStats* stats = nullptr);

/// Thread-parallel variant: directions are induced concurrently (they are
/// independent reads of the mesh). Produces the identical instance as
/// build_instance; `threads` = 0 uses hardware concurrency.
SweepInstance build_instance_parallel(const mesh::UnstructuredMesh& mesh,
                                      const DirectionSet& dirs,
                                      double tolerance = 1e-9,
                                      InstanceBuildStats* stats = nullptr,
                                      std::size_t threads = 0);

}  // namespace sweep::dag
