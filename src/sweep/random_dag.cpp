#include "sweep/random_dag.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sweep::dag {

SweepDag random_layered_dag(std::size_t n, std::size_t layers,
                            double avg_out_degree, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("random_layered_dag: n must be >= 1");
  layers = std::max<std::size_t>(1, std::min(layers, n));
  // Assign each node a layer; make sure every layer is nonempty by seeding
  // one node per layer first, then spreading the rest uniformly.
  std::vector<std::uint32_t> layer_of(n);
  for (std::size_t i = 0; i < layers; ++i) layer_of[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = layers; i < n; ++i) {
    layer_of[i] = static_cast<std::uint32_t>(rng.next_below(layers));
  }
  // Random relabeling so layer structure is not correlated with node id.
  const auto perm = util::random_permutation(n, rng);
  std::vector<std::uint32_t> layer(n);
  for (std::size_t i = 0; i < n; ++i) layer[perm[i]] = layer_of[i];

  std::vector<std::vector<NodeId>> by_layer(layers);
  for (NodeId v = 0; v < n; ++v) by_layer[layer[v]].push_back(v);

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(static_cast<double>(n) * avg_out_degree));
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t l = layer[v];
    if (l + 1 >= layers || by_layer[l + 1].empty()) continue;
    const auto& next = by_layer[l + 1];
    // Poisson-ish out-degree: floor + Bernoulli remainder.
    auto degree = static_cast<std::size_t>(avg_out_degree);
    if (rng.next_double() < avg_out_degree - static_cast<double>(degree)) ++degree;
    for (std::size_t e = 0; e < degree; ++e) {
      edges.emplace_back(v, next[rng.next_below(next.size())]);
    }
  }
  return SweepDag(n, edges);
}

SweepDag random_order_dag(std::size_t n, double avg_out_degree,
                          std::size_t locality, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("random_order_dag: n must be >= 1");
  locality = std::max<std::size_t>(1, locality);
  const auto order = util::random_permutation(n, rng);  // order[pos] = node
  std::vector<std::pair<NodeId, NodeId>> edges;
  const auto target_edges =
      static_cast<std::size_t>(static_cast<double>(n) * avg_out_degree);
  edges.reserve(target_edges);
  for (std::size_t e = 0; e < target_edges; ++e) {
    const std::size_t pos = rng.next_below(n);
    if (pos + 1 >= n) continue;
    const std::size_t window = std::min(locality, n - 1 - pos);
    const std::size_t to = pos + 1 + rng.next_below(window);
    edges.emplace_back(order[pos], order[to]);
  }
  return SweepDag(n, edges);
}

SweepDag chain_dag(std::size_t n, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("chain_dag: n must be >= 1");
  const auto order = util::random_permutation(n, rng);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    edges.emplace_back(order[i], order[i + 1]);
  }
  return SweepDag(n, edges);
}

SweepInstance random_instance(std::size_t n, std::size_t k, std::size_t layers,
                              double avg_out_degree, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<SweepDag> dags;
  dags.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    util::Rng child = rng.fork();
    dags.push_back(random_layered_dag(n, layers, avg_out_degree, child));
  }
  return SweepInstance(n, std::move(dags), "random");
}

SweepInstance chain_instance(std::size_t n, std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<SweepDag> dags;
  dags.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    util::Rng child = rng.fork();
    dags.push_back(chain_dag(n, child));
  }
  return SweepInstance(n, std::move(dags), "chains");
}

}  // namespace sweep::dag
