#include "sweep/dag_builder.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace sweep::dag {
namespace {

/// Iterative Tarjan SCC over an edge-list adjacency. Returns the SCC id of
/// each node (ids are arbitrary but equal within a component).
std::vector<std::uint32_t> tarjan_scc(std::size_t n,
                                      const std::vector<std::uint32_t>& offsets,
                                      const std::vector<NodeId>& targets) {
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<std::uint32_t> scc_id(n, kUnvisited);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0;
  std::uint32_t next_scc = 0;

  struct Frame {
    NodeId node;
    std::uint32_t edge_cursor;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, offsets[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const NodeId v = frame.node;
      if (frame.edge_cursor < offsets[v + 1]) {
        const NodeId w = targets[frame.edge_cursor++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          call_stack.push_back({w, offsets[w]});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            scc_id[w] = next_scc;
            if (w == v) break;
          }
          ++next_scc;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const NodeId parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return scc_id;
}

}  // namespace

DagBuildResult build_sweep_dag(const mesh::UnstructuredMesh& mesh,
                               const Vec3& direction, double tolerance) {
  const std::size_t n = mesh.n_cells();
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(mesh.n_interior_faces());
  for (const mesh::Face& f : mesh.faces()) {
    if (f.is_boundary()) continue;
    const double flux = dot(f.unit_normal, direction);
    if (flux > tolerance) {
      edges.emplace_back(f.cell_a, f.cell_b);
    } else if (flux < -tolerance) {
      edges.emplace_back(f.cell_b, f.cell_a);
    }
  }

  DagBuildResult result;
  result.induced_edges = edges.size();

  // Fast path: most geometric inductions are already acyclic.
  SweepDag candidate(n, edges);
  if (candidate.is_acyclic()) {
    result.dag = std::move(candidate);
    return result;
  }

  // Cycle breaking. Build a throwaway CSR for Tarjan, then drop every edge
  // inside a nontrivial SCC that runs against the projected-centroid order
  // (ties broken by cell id). Remaining intra-SCC edges strictly increase
  // the (projection, id) key, so no directed cycle can survive.
  std::vector<std::uint32_t> offsets(n + 1, 0);
  for (const auto& [u, v] : edges) ++offsets[u + 1];
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
  std::vector<NodeId> targets(edges.size());
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& [u, v] : edges) targets[cursor[u]++] = v;
  }
  const std::vector<std::uint32_t> scc = tarjan_scc(n, offsets, targets);

  std::vector<double> projection(n);
  for (NodeId v = 0; v < n; ++v) {
    projection[v] = dot(mesh.centroid(v), direction);
  }
  auto key_less = [&](NodeId a, NodeId b) {
    if (projection[a] != projection[b]) return projection[a] < projection[b];
    return a < b;
  };

  std::vector<std::pair<NodeId, NodeId>> kept;
  kept.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    if (scc[u] == scc[v] && !key_less(u, v)) {
      ++result.dropped_edges;
      continue;
    }
    kept.push_back({u, v});
  }
  result.dag = SweepDag(n, kept);
  return result;
}

}  // namespace sweep::dag
