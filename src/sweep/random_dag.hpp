#pragma once
// Synthetic non-geometric sweep instances.
//
// The paper notes its algorithms "assume no relation between the DAGs in
// different directions, and thus are applicable even to non-geometric
// instances". These generators produce such instances: k independent random
// DAGs over a shared vertex set, plus adversarial shapes (chains, wide
// layers) used by the tests to probe worst-case behaviour.

#include <cstdint>

#include "sweep/instance.hpp"
#include "util/rng.hpp"

namespace sweep::dag {

/// Random layered DAG: n nodes spread over `layers` layers (uniformly),
/// each node gets ~`avg_out_degree` edges to uniformly random nodes in the
/// next layer. Always acyclic by construction.
SweepDag random_layered_dag(std::size_t n, std::size_t layers,
                            double avg_out_degree, util::Rng& rng);

/// Random DAG from a random topological order: each of the ~n*avg_out_degree
/// candidate edges connects a node to a random *later* node within a window
/// of `locality` positions (small windows give deep, chain-like DAGs).
SweepDag random_order_dag(std::size_t n, double avg_out_degree,
                          std::size_t locality, util::Rng& rng);

/// A single directed path through all n nodes in random order (the
/// "all cells form a chain" worst case from the introduction).
SweepDag chain_dag(std::size_t n, util::Rng& rng);

/// k independent random layered DAGs over the same n cells.
SweepInstance random_instance(std::size_t n, std::size_t k, std::size_t layers,
                              double avg_out_degree, std::uint64_t seed);

/// Adversarial instance: every direction is a chain over a different random
/// permutation. OPT is ~nk/m + n-ish; schedulers should degrade gracefully.
SweepInstance chain_instance(std::size_t n, std::size_t k, std::uint64_t seed);

}  // namespace sweep::dag
