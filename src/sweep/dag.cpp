#include "sweep/dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace sweep::dag {

SweepDag::SweepDag(std::size_t n_nodes,
                   std::span<const std::pair<NodeId, NodeId>> edges)
    : n_nodes_(n_nodes) {
  out_offsets_.assign(n_nodes + 1, 0);
  in_offsets_.assign(n_nodes + 1, 0);
  for (const auto& [u, v] : edges) {
    if (u >= n_nodes || v >= n_nodes) {
      throw std::invalid_argument("SweepDag: edge endpoint out of range");
    }
    ++out_offsets_[u + 1];
    ++in_offsets_[v + 1];
  }
  for (std::size_t i = 0; i < n_nodes; ++i) {
    out_offsets_[i + 1] += out_offsets_[i];
    in_offsets_[i + 1] += in_offsets_[i];
  }
  targets_.resize(edges.size());
  sources_.resize(edges.size());
  std::vector<std::uint32_t> out_cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<std::uint32_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    targets_[out_cursor[u]++] = v;
    sources_[in_cursor[v]++] = u;
  }
}

bool SweepDag::is_acyclic() const {
  std::vector<std::uint32_t> indeg(n_nodes_);
  std::vector<NodeId> queue;
  queue.reserve(n_nodes_);
  for (NodeId v = 0; v < n_nodes_; ++v) {
    indeg[v] = static_cast<std::uint32_t>(in_degree(v));
    if (indeg[v] == 0) queue.push_back(v);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    ++processed;
    for (NodeId w : successors(v)) {
      if (--indeg[w] == 0) queue.push_back(w);
    }
  }
  return processed == n_nodes_;
}

std::vector<std::uint32_t> SweepDag::levels() const {
  std::vector<std::uint32_t> level(n_nodes_, 0);
  std::vector<std::uint32_t> indeg(n_nodes_);
  std::vector<NodeId> queue;
  queue.reserve(n_nodes_);
  for (NodeId v = 0; v < n_nodes_; ++v) {
    indeg[v] = static_cast<std::uint32_t>(in_degree(v));
    if (indeg[v] == 0) queue.push_back(v);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    ++processed;
    for (NodeId w : successors(v)) {
      level[w] = std::max(level[w], level[v] + 1);
      if (--indeg[w] == 0) queue.push_back(w);
    }
  }
  if (processed != n_nodes_) {
    throw std::logic_error("SweepDag::levels: graph has a cycle");
  }
  return level;
}

std::vector<std::uint32_t> SweepDag::b_levels() const {
  // Longest path (in nodes) from each node to a sink, via reverse Kahn.
  std::vector<std::uint32_t> blevel(n_nodes_, 1);
  std::vector<std::uint32_t> outdeg(n_nodes_);
  std::vector<NodeId> queue;
  queue.reserve(n_nodes_);
  for (NodeId v = 0; v < n_nodes_; ++v) {
    outdeg[v] = static_cast<std::uint32_t>(out_degree(v));
    if (outdeg[v] == 0) queue.push_back(v);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    ++processed;
    for (NodeId u : predecessors(v)) {
      blevel[u] = std::max(blevel[u], blevel[v] + 1);
      if (--outdeg[u] == 0) queue.push_back(u);
    }
  }
  if (processed != n_nodes_) {
    throw std::logic_error("SweepDag::b_levels: graph has a cycle");
  }
  return blevel;
}

std::vector<NodeId> SweepDag::topological_order() const {
  std::vector<NodeId> order;
  order.reserve(n_nodes_);
  std::vector<std::uint32_t> indeg(n_nodes_);
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < n_nodes_; ++v) {
    indeg[v] = static_cast<std::uint32_t>(in_degree(v));
    if (indeg[v] == 0) queue.push_back(v);
  }
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    order.push_back(v);
    for (NodeId w : successors(v)) {
      if (--indeg[w] == 0) queue.push_back(w);
    }
  }
  if (order.size() != n_nodes_) {
    throw std::logic_error("SweepDag::topological_order: graph has a cycle");
  }
  return order;
}

std::size_t SweepDag::depth() const {
  if (n_nodes_ == 0) return 0;
  const auto lv = levels();
  return 1 + static_cast<std::size_t>(*std::max_element(lv.begin(), lv.end()));
}

std::vector<std::vector<NodeId>> group_by_level(
    const std::vector<std::uint32_t>& levels) {
  std::uint32_t max_level = 0;
  for (std::uint32_t l : levels) max_level = std::max(max_level, l);
  std::vector<std::vector<NodeId>> groups(levels.empty() ? 0 : max_level + 1);
  for (NodeId v = 0; v < levels.size(); ++v) {
    groups[levels[v]].push_back(v);
  }
  return groups;
}

}  // namespace sweep::dag
