#pragma once
// Descendant counting for the "descendant priorities" heuristic (Plimpton et
// al. [15], reproduced in the paper's Section 5.2).
//
// Exact counting of |descendants(v)| is Theta(n*m/64) with bitsets — fine for
// test-sized DAGs but quadratic-ish at paper scale. The estimated variant is
// Cohen's classic reachability-size estimator: assign i.i.d. Exp(1) labels to
// nodes, propagate the minimum over descendants in reverse topological order,
// repeat r times; |desc(v)| ~= (r-1)/sum_of_mins. Almost-linear, preserves
// the priority *order* with high probability, which is all the heuristic
// needs.

#include <cstdint>
#include <vector>

#include "sweep/dag.hpp"
#include "util/rng.hpp"

namespace sweep::dag {

/// Exact |descendants(v)| (excluding v itself) for every node.
/// Throws std::invalid_argument for graphs with more than `max_nodes` nodes
/// (bitset memory guard).
std::vector<std::uint64_t> exact_descendant_counts(const SweepDag& dag,
                                                   std::size_t max_nodes = 1u << 14);

/// Cohen estimator with `rounds` independent exponential labelings
/// (rounds >= 2). Returns estimated |descendants(v)| excluding v.
std::vector<double> estimated_descendant_counts(const SweepDag& dag,
                                                util::Rng& rng,
                                                std::size_t rounds = 12);

/// Adaptive: exact when the DAG is small enough, estimated otherwise.
std::vector<double> descendant_counts(const SweepDag& dag, util::Rng& rng,
                                      std::size_t exact_threshold = 1u << 13);

}  // namespace sweep::dag
