#pragma once
// Descendant counting for the "descendant priorities" heuristic (Plimpton et
// al. [15], reproduced in the paper's Section 5.2).
//
// Exact counting of |descendants(v)| is Theta(n*m/64) word operations with
// bitsets. The naive formulation keeps the FULL n x n reachability matrix
// resident (n^2/8 bytes) and streams whole rows through the OR loop — at
// n = 8192 that is an 8 MiB working set that falls out of L2.
// exact_descendant_counts instead processes the matrix in column strips of
// kTileWords * 64 = 512 columns in reverse topological order (DESIGN.md
// §11): one cache line (64 bytes) per node per strip, so the peak extra
// memory is n * tile_width / 8 = 64n bytes (strip buffer, reused across
// strips) regardless of n^2, the per-edge OR touches exactly one scratch
// cache line, and the 8-word OR/popcount loops are branch-free and
// vectorizable. The word-operation count is identical to the naive variant;
// only the memory behaviour changes, so results are bit-identical to
// exact_descendant_counts_reference (the preserved naive implementation,
// kept as a differential oracle).
//
// The estimated variant is Cohen's classic reachability-size estimator:
// assign i.i.d. Exp(1) labels to nodes, propagate the minimum over
// descendants in reverse topological order, repeat r times;
// |desc(v)| ~= (r-1)/sum_of_mins. Almost-linear, preserves the priority
// *order* with high probability, which is all the heuristic needs.

#include <cstdint>
#include <vector>

#include "sweep/dag.hpp"
#include "util/rng.hpp"

namespace sweep::dag {

/// Columns per strip, in 64-bit words: 8 words = 512 columns = one 64-byte
/// cache line of scratch per node.
inline constexpr std::size_t kTileWords = 8;

/// Largest DAG the adaptive descendant_counts computes exactly; above this
/// it falls back to the Cohen estimator. Shared with the priority
/// constructors so their exact/estimated split matches bit-for-bit.
inline constexpr std::size_t kDefaultExactThreshold = 1u << 13;

/// Observability for the tiled counter: what a caller (or test) needs to
/// verify the documented memory bound without an allocator shim.
struct TiledCountStats {
  std::size_t strips = 0;  ///< number of (kTileWords * 64)-column strips
  /// Peak extra bytes allocated by the counter beyond its output vector:
  /// exactly one strip buffer of kTileWords 64-bit words per node, reused
  /// across strips — n * tile_width / 8 = 64n bytes per worker, never
  /// O(n^2).
  std::size_t scratch_bytes_per_worker = 0;
};

/// Exact |descendants(v)| (excluding v itself) for every node, computed in
/// (kTileWords * 64)-column strips with a bounded working set (see file
/// comment). Throws std::invalid_argument for graphs with more than
/// `max_nodes` nodes (cost guard: work is Theta(n*m/64) regardless of
/// tiling).
std::vector<std::uint64_t> exact_descendant_counts(
    const SweepDag& dag, std::size_t max_nodes = 1u << 14,
    TiledCountStats* stats = nullptr);

/// The preserved naive implementation (full n x n reachability bitset),
/// kept as the differential oracle for the tiled variant. Same contract.
std::vector<std::uint64_t> exact_descendant_counts_reference(
    const SweepDag& dag, std::size_t max_nodes = 1u << 14);

/// Cohen estimator with `rounds` independent exponential labelings
/// (rounds >= 2). Returns estimated |descendants(v)| excluding v.
std::vector<double> estimated_descendant_counts(const SweepDag& dag,
                                                util::Rng& rng,
                                                std::size_t rounds = 12);

/// Adaptive: exact (tiled) when the DAG is small enough, estimated otherwise.
std::vector<double> descendant_counts(
    const SweepDag& dag, util::Rng& rng,
    std::size_t exact_threshold = kDefaultExactThreshold);

/// Adaptive twin routed through exact_descendant_counts_reference; consumes
/// `rng` identically to descendant_counts, so the two agree bit-for-bit.
std::vector<double> descendant_counts_reference(
    const SweepDag& dag, util::Rng& rng,
    std::size_t exact_threshold = kDefaultExactThreshold);

}  // namespace sweep::dag
