#pragma once
// SweepDag: the per-direction precedence DAG over mesh cells, stored in CSR
// (both out- and in-adjacency) for O(1)-amortized traversal by the
// schedulers. Also provides the level/layer machinery of the paper
// (Section 3), b-levels for DFDS, and topological utilities.

#include <cstdint>
#include <span>
#include <vector>

namespace sweep::dag {

using NodeId = std::uint32_t;

class SweepDag {
 public:
  SweepDag() = default;

  /// Builds CSR structure from an edge list over n nodes.
  /// Does NOT check acyclicity — call is_acyclic()/levels() for that.
  SweepDag(std::size_t n_nodes, std::span<const std::pair<NodeId, NodeId>> edges);

  [[nodiscard]] std::size_t n_nodes() const { return n_nodes_; }
  [[nodiscard]] std::size_t n_edges() const { return targets_.size(); }

  [[nodiscard]] std::span<const NodeId> successors(NodeId v) const {
    return {targets_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  [[nodiscard]] std::span<const NodeId> predecessors(NodeId v) const {
    return {sources_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }
  [[nodiscard]] std::size_t out_degree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  [[nodiscard]] std::size_t in_degree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// True iff the digraph has no directed cycle (Kahn's algorithm).
  [[nodiscard]] bool is_acyclic() const;

  /// Level of each node per the paper's definition: roots are level 0; a
  /// node's level is 1 + max level of its predecessors (longest path from a
  /// root). Throws std::logic_error if the graph has a cycle.
  [[nodiscard]] std::vector<std::uint32_t> levels() const;

  /// b-level of each node (Pautz/DFDS): number of nodes on the longest
  /// directed path starting at the node (leaves have b-level 1).
  [[nodiscard]] std::vector<std::uint32_t> b_levels() const;

  /// Some topological order (Kahn). Throws std::logic_error on cycles.
  [[nodiscard]] std::vector<NodeId> topological_order() const;

  /// Number of levels (= max level + 1); 0 for an empty graph.
  [[nodiscard]] std::size_t depth() const;

 private:
  std::size_t n_nodes_ = 0;
  std::vector<std::uint32_t> out_offsets_ = {0};
  std::vector<NodeId> targets_;
  std::vector<std::uint32_t> in_offsets_ = {0};
  std::vector<NodeId> sources_;
};

/// Groups node ids by level: result[l] = nodes at level l.
std::vector<std::vector<NodeId>> group_by_level(
    const std::vector<std::uint32_t>& levels);

}  // namespace sweep::dag
