#include "sweep/descendants.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace sweep::dag {

std::vector<std::uint64_t> exact_descendant_counts(const SweepDag& dag,
                                                   std::size_t max_nodes,
                                                   TiledCountStats* stats) {
  const std::size_t n = dag.n_nodes();
  if (n > max_nodes) {
    throw std::invalid_argument(
        "exact_descendant_counts: DAG too large; use the estimator");
  }
  SWEEP_OBS_TIMER("descendants.exact_tiled");
  std::vector<std::uint64_t> counts(n, 0);
  constexpr std::size_t kTileColumns = kTileWords * 64;
  const std::size_t strips = (n + kTileColumns - 1) / kTileColumns;
  if (stats != nullptr) {
    stats->strips = strips;
    stats->scratch_bytes_per_worker = n * kTileWords * sizeof(std::uint64_t);
  }
  if (n == 0) return counts;
  const std::vector<NodeId> topo = dag.topological_order();

  // tile[v] = the kTileColumns columns of reach-row v covered by the
  // current strip: one cache line per node, reused across strips, so the
  // per-edge OR below never leaves L2 no matter how large n^2/8 gets.
  std::vector<std::uint64_t> tile(n * kTileWords);
  for (std::size_t strip = 0; strip < strips; ++strip) {
    const std::size_t column_base = strip * kTileColumns;
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId v = *it;
      std::uint64_t* row = tile.data() + static_cast<std::size_t>(v) * kTileWords;
      for (std::size_t j = 0; j < kTileWords; ++j) row[j] = 0;
      const std::size_t local = static_cast<std::size_t>(v) - column_base;
      if (local < kTileColumns) row[local / 64] = 1ull << (local % 64);
      for (NodeId s : dag.successors(v)) {
        const std::uint64_t* srow =
            tile.data() + static_cast<std::size_t>(s) * kTileWords;
        for (std::size_t j = 0; j < kTileWords; ++j) row[j] |= srow[j];
      }
      std::uint64_t popcount = 0;
      for (std::size_t j = 0; j < kTileWords; ++j) {
        popcount += static_cast<std::uint64_t>(__builtin_popcountll(row[j]));
      }
      counts[v] += popcount;
    }
  }
  for (std::size_t v = 0; v < n; ++v) --counts[v];  // exclude v itself
  SWEEP_OBS_COUNTER_ADD("descendants.tiled.strips", strips);
  return counts;
}

std::vector<std::uint64_t> exact_descendant_counts_reference(
    const SweepDag& dag, std::size_t max_nodes) {
  const std::size_t n = dag.n_nodes();
  if (n > max_nodes) {
    throw std::invalid_argument(
        "exact_descendant_counts: DAG too large; use the estimator");
  }
  const std::size_t words = (n + 63) / 64;
  // reach[v] = bitset of nodes reachable from v (including v).
  std::vector<std::uint64_t> reach(n * words, 0);
  const std::vector<NodeId> topo = dag.topological_order();
  std::vector<std::uint64_t> counts(n, 0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    std::uint64_t* row = reach.data() + static_cast<std::size_t>(v) * words;
    row[v / 64] |= 1ull << (v % 64);
    for (NodeId w : dag.successors(v)) {
      const std::uint64_t* wrow = reach.data() + static_cast<std::size_t>(w) * words;
      for (std::size_t i = 0; i < words; ++i) row[i] |= wrow[i];
    }
    std::uint64_t popcount = 0;
    for (std::size_t i = 0; i < words; ++i) {
      popcount += static_cast<std::uint64_t>(__builtin_popcountll(row[i]));
    }
    counts[v] = popcount - 1;  // exclude v itself
  }
  return counts;
}

std::vector<double> estimated_descendant_counts(const SweepDag& dag,
                                                util::Rng& rng,
                                                std::size_t rounds) {
  if (rounds < 2) {
    throw std::invalid_argument("estimated_descendant_counts: rounds must be >= 2");
  }
  const std::size_t n = dag.n_nodes();
  std::vector<double> min_sum(n, 0.0);
  std::vector<double> label(n);
  const std::vector<NodeId> topo = dag.topological_order();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t v = 0; v < n; ++v) label[v] = rng.next_exponential(1.0);
    // Reverse topological order: min over self + successors' minima.
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId v = *it;
      double lo = label[v];
      for (NodeId w : dag.successors(v)) lo = std::min(lo, label[w]);
      label[v] = lo;
      min_sum[v] += lo;
    }
  }
  std::vector<double> counts(n);
  const double numer = static_cast<double>(rounds - 1);
  for (std::size_t v = 0; v < n; ++v) {
    // Estimator counts the reachable set including v; subtract 1 and clamp.
    const double reach = min_sum[v] > 0.0 ? numer / min_sum[v] : 1.0;
    counts[v] = std::max(0.0, reach - 1.0);
  }
  return counts;
}

std::vector<double> descendant_counts(const SweepDag& dag, util::Rng& rng,
                                      std::size_t exact_threshold) {
  if (dag.n_nodes() <= exact_threshold) {
    const auto exact = exact_descendant_counts(dag, exact_threshold);
    return {exact.begin(), exact.end()};
  }
  return estimated_descendant_counts(dag, rng);
}

std::vector<double> descendant_counts_reference(const SweepDag& dag,
                                                util::Rng& rng,
                                                std::size_t exact_threshold) {
  if (dag.n_nodes() <= exact_threshold) {
    const auto exact = exact_descendant_counts_reference(dag, exact_threshold);
    return {exact.begin(), exact.end()};
  }
  return estimated_descendant_counts(dag, rng);
}

}  // namespace sweep::dag
