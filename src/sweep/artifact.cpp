#include "sweep/artifact.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "util/hash.hpp"

namespace sweep::dag {
namespace {

constexpr char kMagic[8] = {'S', 'W', 'E', 'E', 'P', 'A', 'R', 'T'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint64_t kAlign = 64;
constexpr std::uint64_t kMaxSections = 64;
constexpr std::uint64_t kMaxNameBytes = 1u << 16;
/// Shared with TaskGraph::build and load_instance: 32-bit id space.
constexpr std::uint64_t kMaxIndex =
    std::numeric_limits<std::uint32_t>::max() - 1;

struct RawHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t header_bytes;
  std::uint64_t content_hash;  ///< FNV-1a over payloads in table order
  std::uint64_t n_cells;
  std::uint64_t n_directions;
  std::uint64_t n_edges;
  std::uint32_t max_level;
  std::uint32_t max_indegree;
  std::uint64_t n_sections;
  std::uint64_t section_table_offset;
  std::uint64_t file_bytes;
  std::uint8_t reserved[16];
};
static_assert(sizeof(RawHeader) == 96, "header layout is part of the format");

struct RawSection {
  std::uint32_t id;
  std::uint32_t reserved;
  std::uint64_t offset;  ///< from file start; kAlign-aligned
  std::uint64_t size;    ///< payload bytes
  std::uint64_t count;   ///< payload elements
};
static_assert(sizeof(RawSection) == 32, "entry layout is part of the format");

[[noreturn]] void fail(const std::string& what) {
  throw ArtifactError("artifact: " + what);
}

constexpr std::uint64_t align_up(std::uint64_t x) {
  return (x + (kAlign - 1)) & ~(kAlign - 1);
}

/// A section staged for writing: id + the payload bytes it serializes.
struct Staged {
  ArtifactSection id;
  std::span<const std::byte> payload;
  std::uint64_t count;
};

template <typename T>
Staged stage(ArtifactSection id, std::span<const T> values) {
  return {id, std::as_bytes(values), values.size()};
}

/// Bounds-checked typed view of one section payload. Alignment holds by
/// construction: offsets are kAlign-aligned and both backing stores (mmap,
/// operator new) are at least 16-byte aligned.
template <typename T>
std::span<const T> typed_span(std::span<const std::byte> bytes,
                              const RawSection& s, const char* what) {
  if (s.size % sizeof(T) != 0 || s.count != s.size / sizeof(T)) {
    fail(std::string(what) + ": size/count mismatch");
  }
  return {reinterpret_cast<const T*>(bytes.data() + s.offset),
          static_cast<std::size_t>(s.count)};
}

}  // namespace

std::vector<std::byte> pack_artifact(const SweepInstance& instance,
                                     const ArtifactWriteOptions& options) {
  const TaskGraph& tg = instance.task_graph();
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();

  std::vector<Staged> sections;
  const std::string& name = instance.name();
  if (!name.empty()) {
    if (name.size() > kMaxNameBytes) fail("pack: name too long");
    sections.push_back(stage<char>(ArtifactSection::kName,
                                   {name.data(), name.size()}));
  }
  sections.push_back(stage(ArtifactSection::kCsrOffsets, tg.offsets()));
  sections.push_back(stage(ArtifactSection::kCsrTargets, tg.targets()));
  sections.push_back(stage(ArtifactSection::kIndegree, tg.indegrees()));
  sections.push_back(stage(ArtifactSection::kLevel, tg.levels()));
  sections.push_back(stage(ArtifactSection::kCell, tg.cells()));

  std::vector<double> dir_xyz;
  if (options.directions != nullptr) {
    const DirectionSet& dirs = *options.directions;
    if (dirs.size() != k || dirs.weights.size() != k) {
      fail("pack: direction set size != n_directions");
    }
    dir_xyz.reserve(3 * k);
    for (const mesh::Vec3& d : dirs.directions) {
      dir_xyz.push_back(d.x);
      dir_xyz.push_back(d.y);
      dir_xyz.push_back(d.z);
    }
    sections.push_back(stage(ArtifactSection::kDirections,
                             std::span<const double>(dir_xyz)));
    sections.push_back(stage(ArtifactSection::kDirWeights,
                             std::span<const double>(dirs.weights)));
  }

  std::vector<std::uint64_t> descendants;
  if (options.include_descendants) {
    descendants.reserve(tg.n_tasks());
    for (std::size_t i = 0; i < k; ++i) {
      const std::vector<std::uint64_t>& counts =
          instance.exact_descendant_counts(i);
      descendants.insert(descendants.end(), counts.begin(), counts.end());
    }
    sections.push_back(stage(ArtifactSection::kDescendants,
                             std::span<const std::uint64_t>(descendants)));
  }

  std::vector<std::uint64_t> part_sizes;
  std::vector<std::uint32_t> part_data;
  if (options.partitions != nullptr && !options.partitions->empty()) {
    for (const ArtifactPartition& p : *options.partitions) {
      if (p.n_parts == 0 || p.n_parts > kMaxIndex) {
        fail("pack: partition part count out of range");
      }
      if (p.assignment.size() != n) {
        fail("pack: partition assignment size != n_cells");
      }
      for (std::uint32_t a : p.assignment) {
        if (a >= p.n_parts) fail("pack: partition assignment out of range");
      }
      part_sizes.push_back(p.n_parts);
      part_data.insert(part_data.end(), p.assignment.begin(),
                       p.assignment.end());
    }
    sections.push_back(stage(ArtifactSection::kPartitionSizes,
                             std::span<const std::uint64_t>(part_sizes)));
    sections.push_back(stage(ArtifactSection::kPartitionData,
                             std::span<const std::uint32_t>(part_data)));
  }

  // Lay out: header, table, then payloads in table order, each aligned.
  std::vector<RawSection> table(sections.size());
  std::uint64_t cursor =
      align_up(sizeof(RawHeader) + sections.size() * sizeof(RawSection));
  for (std::size_t s = 0; s < sections.size(); ++s) {
    table[s] = {static_cast<std::uint32_t>(sections[s].id), 0, cursor,
                sections[s].payload.size(), sections[s].count};
    cursor = align_up(cursor + sections[s].payload.size());
  }
  const std::uint64_t file_bytes = cursor;

  std::uint64_t hash = util::kFnv1aOffsetBasis;
  for (const Staged& s : sections) hash = util::fnv1a(s.payload, hash);

  RawHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.header_bytes = sizeof(RawHeader);
  header.content_hash = hash;
  header.n_cells = n;
  header.n_directions = k;
  header.n_edges = tg.n_edges();
  header.max_level = tg.max_level();
  header.max_indegree = tg.max_indegree();
  header.n_sections = sections.size();
  header.section_table_offset = sizeof(RawHeader);
  header.file_bytes = file_bytes;

  std::vector<std::byte> out(static_cast<std::size_t>(file_bytes),
                             std::byte{0});
  std::memcpy(out.data(), &header, sizeof(header));
  std::memcpy(out.data() + sizeof(header), table.data(),
              table.size() * sizeof(RawSection));
  for (std::size_t s = 0; s < sections.size(); ++s) {
    std::memcpy(out.data() + table[s].offset, sections[s].payload.data(),
                sections[s].payload.size());
  }
  return out;
}

void save_artifact(const SweepInstance& instance, const std::string& path,
                   const ArtifactWriteOptions& options) {
  const std::vector<std::byte> bytes = pack_artifact(instance, options);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) fail("short write to " + path);
}

Artifact::~Artifact() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

std::shared_ptr<const Artifact> Artifact::map_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("artifact: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("artifact: fstat " + path + ": " +
                             std::strerror(err));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < sizeof(RawHeader)) {
    ::close(fd);
    fail(path + ": file shorter than the header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    throw std::runtime_error("artifact: mmap " + path + ": " +
                             std::strerror(errno));
  }
  // shared_ptr<const Artifact> with a private ctor: build via raw new.
  std::shared_ptr<Artifact> artifact(new Artifact());
  artifact->map_ = map;
  artifact->map_bytes_ = size;
  artifact->mapped_ = true;
  artifact->bytes_ = {static_cast<const std::byte*>(map), size};
  artifact->parse();  // dtor unmaps if this throws
  return artifact;
}

std::shared_ptr<const Artifact> Artifact::from_memory(
    std::vector<std::byte> bytes) {
  std::shared_ptr<Artifact> artifact(new Artifact());
  artifact->buffer_ = std::move(bytes);
  artifact->bytes_ = {artifact->buffer_.data(), artifact->buffer_.size()};
  artifact->parse();
  return artifact;
}

void Artifact::parse() {
  const std::span<const std::byte> bytes = bytes_;
  if (bytes.size() < sizeof(RawHeader)) fail("truncated header");
  RawHeader header{};
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic (not a sweep artifact, or foreign endianness)");
  }
  if (header.version != kFormatVersion) {
    fail("unsupported version " + std::to_string(header.version));
  }
  if (header.header_bytes != sizeof(RawHeader)) fail("bad header size");
  if (header.file_bytes != bytes.size()) {
    fail("file size mismatch (truncated or padded file)");
  }
  if (header.n_sections > kMaxSections) fail("too many sections");
  if (header.section_table_offset < sizeof(RawHeader) ||
      header.section_table_offset > bytes.size() ||
      header.n_sections * sizeof(RawSection) >
          bytes.size() - header.section_table_offset) {
    fail("section table out of bounds");
  }

  // Load and bounds-check the table; reject duplicate ids so a hostile file
  // cannot smuggle two conflicting copies of one section.
  std::vector<RawSection> table(static_cast<std::size_t>(header.n_sections));
  std::uint32_t seen_ids[kMaxSections] = {};
  for (std::size_t s = 0; s < table.size(); ++s) {
    std::memcpy(&table[s],
                bytes.data() + header.section_table_offset +
                    s * sizeof(RawSection),
                sizeof(RawSection));
    const RawSection& sec = table[s];
    if (sec.id == 0) fail("section id 0 is reserved");
    if (sec.offset % kAlign != 0) fail("unaligned section offset");
    if (sec.offset > bytes.size() || sec.size > bytes.size() - sec.offset) {
      fail("section payload out of bounds");
    }
    for (std::size_t t = 0; t < s; ++t) {
      if (seen_ids[t] == sec.id) fail("duplicate section id");
    }
    seen_ids[s] = sec.id;
  }

  // Content hash before structural interpretation: a corrupted file fails
  // here with a clear message instead of tripping some invariant check.
  std::uint64_t hash = util::kFnv1aOffsetBasis;
  for (const RawSection& sec : table) {
    hash = util::fnv1a(bytes.subspan(sec.offset, sec.size), hash);
  }
  if (hash != header.content_hash) fail("content hash mismatch");

  const auto find = [&](ArtifactSection id) -> const RawSection* {
    for (const RawSection& sec : table) {
      if (sec.id == static_cast<std::uint32_t>(id)) return &sec;
    }
    return nullptr;  // unknown ids in the table are simply never looked up
  };
  const auto require = [&](ArtifactSection id,
                           const char* what) -> const RawSection& {
    const RawSection* sec = find(id);
    if (sec == nullptr) fail(std::string("missing section: ") + what);
    return *sec;
  };

  // Shape. Same 32-bit ceiling as TaskGraph::build (overflow-safe).
  const std::uint64_t n = header.n_cells;
  const std::uint64_t k = header.n_directions;
  if (n > kMaxIndex || k > kMaxIndex ||
      (k != 0 && n != 0 && k > kMaxIndex / n)) {
    fail("shape exceeds the 32-bit task id space");
  }
  const std::uint64_t total = n * k;
  if (header.n_edges > kMaxIndex) fail("edge count exceeds 32-bit offsets");

  const auto offsets = typed_span<std::uint32_t>(
      bytes, require(ArtifactSection::kCsrOffsets, "csr offsets"), "offsets");
  const auto targets = typed_span<std::uint32_t>(
      bytes, require(ArtifactSection::kCsrTargets, "csr targets"), "targets");
  const auto indegree = typed_span<std::uint32_t>(
      bytes, require(ArtifactSection::kIndegree, "indegree"), "indegree");
  const auto level = typed_span<std::uint32_t>(
      bytes, require(ArtifactSection::kLevel, "level"), "level");
  const auto cell = typed_span<std::uint32_t>(
      bytes, require(ArtifactSection::kCell, "cell"), "cell");
  if (offsets.size() != total + 1) fail("offsets count != n_tasks + 1");
  if (targets.size() != header.n_edges) fail("targets count != n_edges");
  if (indegree.size() != total || level.size() != total ||
      cell.size() != total) {
    fail("per-task section count != n_tasks");
  }

  // CSR structural invariants.
  if (offsets[0] != 0) fail("offsets[0] != 0");
  for (std::size_t t = 0; t < total; ++t) {
    if (offsets[t + 1] < offsets[t]) fail("offsets not monotone");
  }
  if (offsets[total] != targets.size()) {
    fail("offsets[n_tasks] != targets count");
  }
  std::uint32_t max_level = 0;
  std::uint32_t max_indegree = 0;
  std::vector<std::uint32_t> recount(static_cast<std::size_t>(total), 0);
  for (std::size_t t = 0; t < total; ++t) {
    if (cell[t] != t % n) fail("cell id inconsistent with task id");
    max_level = std::max(max_level, level[t]);
    max_indegree = std::max(max_indegree, indegree[t]);
    const std::uint64_t dir = t / n;
    for (std::uint32_t e = offsets[t]; e < offsets[t + 1]; ++e) {
      const std::uint32_t succ = targets[e];
      if (succ >= total) fail("edge target out of range");
      if (succ / n != dir) fail("edge crosses directions");
      // Strictly increasing levels along edges proves acyclicity — the
      // scheduling engines' termination depends on it.
      if (level[succ] <= level[t]) fail("edge does not increase level");
      ++recount[succ];
    }
  }
  for (std::size_t t = 0; t < total; ++t) {
    if (recount[t] != indegree[t]) fail("stored indegree != CSR recount");
  }
  if (max_level != header.max_level) fail("header max_level mismatch");
  if (max_indegree != header.max_indegree) {
    fail("header max_indegree mismatch");
  }

  // Optional sections.
  if (const RawSection* sec = find(ArtifactSection::kName)) {
    if (sec->size > kMaxNameBytes) fail("name too long");
    const auto chars = typed_span<char>(bytes, *sec, "name");
    name_ = {chars.data(), chars.size()};
  }
  const RawSection* dirs = find(ArtifactSection::kDirections);
  const RawSection* weights = find(ArtifactSection::kDirWeights);
  if ((dirs == nullptr) != (weights == nullptr)) {
    fail("directions and weights sections must appear together");
  }
  if (dirs != nullptr) {
    direction_xyz_ = typed_span<double>(bytes, *dirs, "directions");
    direction_weights_ = typed_span<double>(bytes, *weights, "weights");
    if (direction_xyz_.size() != 3 * k || direction_weights_.size() != k) {
      fail("direction section count != n_directions");
    }
  }
  if (const RawSection* sec = find(ArtifactSection::kDescendants)) {
    descendants_ = typed_span<std::uint64_t>(bytes, *sec, "descendants");
    if (descendants_.size() != total) fail("descendants count != n_tasks");
  }
  const RawSection* psizes = find(ArtifactSection::kPartitionSizes);
  const RawSection* pdata = find(ArtifactSection::kPartitionData);
  if ((psizes == nullptr) != (pdata == nullptr)) {
    fail("partition sections must appear together");
  }
  if (psizes != nullptr) {
    partition_sizes_ =
        typed_span<std::uint64_t>(bytes, *psizes, "partition sizes");
    partition_data_ =
        typed_span<std::uint32_t>(bytes, *pdata, "partition data");
    if (n != 0 && partition_sizes_.size() > kMaxIndex / n) {
      fail("partition data count overflows");
    }
    if (partition_data_.size() != partition_sizes_.size() * n) {
      fail("partition data count != n_partitions * n_cells");
    }
    for (std::size_t j = 0; j < partition_sizes_.size(); ++j) {
      const std::uint64_t parts = partition_sizes_[j];
      if (parts == 0 || parts > kMaxIndex) {
        fail("partition part count out of range");
      }
      for (std::uint32_t a : partition_data_.subspan(j * n, n)) {
        if (a >= parts) fail("partition assignment out of range");
      }
    }
  }

  content_hash_ = header.content_hash;
  graph_ = TaskGraph::from_views(static_cast<std::size_t>(n),
                                 static_cast<std::size_t>(k), offsets, targets,
                                 indegree, level, cell, max_level,
                                 max_indegree);
}

}  // namespace sweep::dag
