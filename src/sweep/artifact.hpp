#pragma once
// Sweep artifacts: the versioned zero-copy binary format behind sweep_pack /
// sweep_serve (DESIGN.md §13).
//
// An artifact freezes everything the serving path needs to answer scheduling
// queries about one instance — the flat CSR TaskGraph, the direction set,
// cached exact descendant counts, and precomputed partitions — in a layout a
// reader can mmap read-only and use in place. The big arrays (CSR offsets/
// targets, per-task indegree/level/cell) are stored exactly as TaskGraph
// holds them in memory, 64-byte aligned, so Artifact::task_graph() is a
// TaskGraph::from_views over the mapping: no copy, no parse, the schedulers
// run straight out of the page cache. The same pages are shared by every
// process serving the file (the OSRM shared-storage model).
//
// File layout (all integers native-endian; the magic doubles as an
// endianness check):
//
//   [RawHeader, 96 bytes]
//     magic "SWEEPART", version, header size, FNV-1a content hash over the
//     section payloads in table order, instance shape (n_cells,
//     n_directions, n_edges, max_level, max_indegree), section count, table
//     offset, total file size.
//   [section table: n_sections x RawSection, 32 bytes each]
//     id, payload offset, payload size in bytes, element count.
//   [section payloads, each 64-byte aligned]
//
// Sections may appear in any order; ids are unique. Unknown ids are skipped
// on load (forward compatibility: a newer writer may add sections without
// bumping the version, as long as the existing ones keep their meaning).
// Required: the five CSR/per-task arrays. Optional: name, directions +
// weights (paired), descendant counts, partitions (sizes + data, paired).
//
// The loader trusts nothing: every offset/size is bounds- and
// overflow-checked, CSR offsets must be monotone and end at the edge count,
// targets must be in range, cell ids must match tid % n_cells, levels must
// strictly increase along every edge (which proves acyclicity — the
// schedulers' termination depends on it), the stored indegrees must equal a
// recount from the CSR, and the content hash must match. A file that fails
// any check throws ArtifactError and is never partially exposed.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mesh/vec3.hpp"
#include "sweep/instance.hpp"
#include "sweep/task_graph.hpp"

namespace sweep::dag {

/// Every rejection path in pack/load throws this (derives runtime_error so
/// existing catch sites and the fuzz oracles treat it like the IO errors).
class ArtifactError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Section ids. Values are part of the on-disk format; never renumber.
enum class ArtifactSection : std::uint32_t {
  kName = 1,            ///< char[] instance name (raw bytes)
  kCsrOffsets = 2,      ///< u32[n_tasks + 1] successor offsets
  kCsrTargets = 3,      ///< u32[n_edges] successor task ids
  kIndegree = 4,        ///< u32[n_tasks]
  kLevel = 5,           ///< u32[n_tasks]
  kCell = 6,            ///< u32[n_tasks] (tid % n_cells, stored for zero-copy)
  kDirections = 7,      ///< f64[3 * n_directions] unit vectors
  kDirWeights = 8,      ///< f64[n_directions] quadrature weights
  kDescendants = 9,     ///< u64[n_tasks] exact per-task descendant counts
  kPartitionSizes = 10, ///< u64[n_partitions] part count of each partition
  kPartitionData = 11,  ///< u32[n_partitions * n_cells] cell -> part
};

/// One precomputed cell partition embedded in an artifact.
struct ArtifactPartition {
  std::uint64_t n_parts = 0;
  std::vector<std::uint32_t> assignment;  ///< size n_cells, values < n_parts
};

struct ArtifactWriteOptions {
  /// Optional angular quadrature (size must equal instance.n_directions()).
  const DirectionSet* directions = nullptr;
  /// Optional precomputed partitions (each assignment sized n_cells).
  const std::vector<ArtifactPartition>* partitions = nullptr;
  /// Embed exact descendant counts for every direction (lets the daemon
  /// serve the descendant priority scheme without the transitive closure).
  bool include_descendants = false;
};

/// Serializes `instance` (plus the optional sections) to artifact bytes.
/// Deterministic: same instance + options -> same bytes, same content hash.
std::vector<std::byte> pack_artifact(const SweepInstance& instance,
                                     const ArtifactWriteOptions& options = {});

/// pack_artifact + atomic-ish write (tmp file + rename is the packer tool's
/// job; this is a plain write).
void save_artifact(const SweepInstance& instance, const std::string& path,
                   const ArtifactWriteOptions& options = {});

/// A loaded artifact: validated views over an mmap'ed file or an owned byte
/// buffer. Immutable and internally synchronization-free, so one instance
/// may serve any number of concurrent query threads; lifetime is managed by
/// shared_ptr so sweep_serve can hot-swap artifacts while old queries drain
/// (the unmap happens when the last reader drops its reference).
class Artifact {
 public:
  Artifact(const Artifact&) = delete;
  Artifact& operator=(const Artifact&) = delete;
  ~Artifact();

  /// Maps `path` read-only and validates it. Throws ArtifactError on any
  /// malformed input, std::runtime_error on OS-level failures.
  static std::shared_ptr<const Artifact> map_file(const std::string& path);

  /// Validates an in-memory image (takes ownership of the buffer). The fuzz
  /// harness drives the hostile-artifact channel through this — byte-level
  /// corruption without touching the filesystem.
  static std::shared_ptr<const Artifact> from_memory(
      std::vector<std::byte> bytes);

  /// The zero-copy task graph (borrows this artifact's memory; never
  /// outlives it because every consumer holds the shared_ptr).
  [[nodiscard]] const TaskGraph& task_graph() const { return graph_; }

  [[nodiscard]] std::string_view name() const { return name_; }
  [[nodiscard]] std::size_t n_cells() const { return graph_.n_cells(); }
  [[nodiscard]] std::size_t n_directions() const {
    return graph_.n_directions();
  }
  [[nodiscard]] std::size_t n_tasks() const { return graph_.n_tasks(); }
  [[nodiscard]] std::size_t n_edges() const { return graph_.n_edges(); }
  [[nodiscard]] std::uint64_t content_hash() const { return content_hash_; }
  [[nodiscard]] std::size_t file_bytes() const { return bytes_.size(); }
  /// True when backed by an mmap (false for from_memory buffers).
  [[nodiscard]] bool mapped() const { return mapped_; }

  [[nodiscard]] bool has_directions() const { return !direction_xyz_.empty(); }
  [[nodiscard]] mesh::Vec3 direction(std::size_t i) const {
    return {direction_xyz_[3 * i], direction_xyz_[3 * i + 1],
            direction_xyz_[3 * i + 2]};
  }
  [[nodiscard]] std::span<const double> direction_weights() const {
    return direction_weights_;
  }

  [[nodiscard]] bool has_descendants() const { return !descendants_.empty(); }
  /// Exact descendant counts of direction i's cells (empty span if the
  /// packer skipped the section).
  [[nodiscard]] std::span<const std::uint64_t> descendant_counts(
      std::size_t i) const {
    if (descendants_.empty()) return {};
    return descendants_.subspan(i * n_cells(), n_cells());
  }
  /// All n_tasks counts, task-id indexed (empty if absent).
  [[nodiscard]] std::span<const std::uint64_t> descendant_counts_flat() const {
    return descendants_;
  }

  [[nodiscard]] std::size_t n_partitions() const {
    return partition_sizes_.size();
  }
  [[nodiscard]] std::uint64_t partition_parts(std::size_t j) const {
    return partition_sizes_[j];
  }
  [[nodiscard]] std::span<const std::uint32_t> partition(std::size_t j) const {
    return partition_data_.subspan(j * n_cells(), n_cells());
  }

 private:
  Artifact() = default;

  /// Parses + validates `bytes_` (already set) and binds every view.
  void parse();

  std::span<const std::byte> bytes_;     // the whole file image
  std::vector<std::byte> buffer_;        // owns bytes_ in from_memory mode
  void* map_ = nullptr;                  // owns bytes_ in map_file mode
  std::size_t map_bytes_ = 0;
  bool mapped_ = false;

  TaskGraph graph_;  // borrowing views into bytes_
  std::string_view name_;
  std::uint64_t content_hash_ = 0;
  std::span<const double> direction_xyz_;
  std::span<const double> direction_weights_;
  std::span<const std::uint64_t> descendants_;
  std::span<const std::uint64_t> partition_sizes_;
  std::span<const std::uint32_t> partition_data_;
};

}  // namespace sweep::dag
