#include "fuzz/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/algorithms.hpp"
#include "mesh/extrude.hpp"
#include "mesh/structured.hpp"
#include "mesh/tri2d.hpp"
#include "mesh/zoo.hpp"
#include "sweep/directions.hpp"
#include "sweep/random_dag.hpp"

namespace sweep::fuzz {
namespace {

constexpr const char* kMagic = "sweepfuzz";
constexpr int kVersion = 1;

double clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

Scenario sample_scenario(util::Rng& rng) {
  Scenario s;
  s.seed = rng();
  s.n = static_cast<std::uint32_t>(rng.next_below(200));
  s.k = static_cast<std::uint32_t>(1 + rng.next_below(6));
  s.layers = static_cast<std::uint32_t>(1 + rng.next_below(8));
  s.out_degree = rng.next_double(0.0, 2.5);
  s.scale = rng.next_double(0.08, 0.16);
  s.m = static_cast<std::uint32_t>(1 + rng.next_below(12));
  s.algorithm = static_cast<std::uint32_t>(
      rng.next_below(core::all_algorithms().size()));
  s.delay = 0;

  const double roll = rng.next_double();
  if (roll < 0.34) {
    s.family = Family::kRandomLayered;
  } else if (roll < 0.48) {
    s.family = Family::kRandomOrder;
  } else if (roll < 0.58) {
    s.family = Family::kChain;
  } else if (roll < 0.66) {
    s.family = Family::kZoo;
  } else if (roll < 0.73) {
    s.family = Family::kStructured;
  } else if (roll < 0.80) {
    s.family = Family::kExtruded;
  } else if (roll < 0.84) {
    s.family = Family::kEdgeless;
  } else if (roll < 0.90) {
    // High fan-in funnels: sample n to straddle the packed engines'
    // 255-indegree cap, so campaigns pin both sides of the slot -> heap
    // fallback plus the SIMD decrement kernels' collapse/tail paths
    // (one hub id repeated hundreds of times in a single resolve batch).
    s.family = Family::kFanIn;
    s.n = static_cast<std::uint32_t>(200 + rng.next_below(120));
    return s;
  } else {
    // Hostile-input channel: feed malformed data to one untrusted path.
    // Draw {0..5} -> {1,2,3,5,6,7}: every channel except kNone and the
    // shrinker's synthetic kSelfTest canary.
    s.family = Family::kRandomLayered;
    s.n = static_cast<std::uint32_t>(1 + rng.next_below(40));
    const std::uint64_t pick = rng.next_below(6);
    s.hostile = static_cast<Hostility>(pick < 3 ? 1 + pick : 2 + pick);
    return s;
  }

  // Degenerate spice on top of the family: the corners that historically
  // break by-hand hardening.
  const double d = rng.next_double();
  if (d < 0.05) {
    // SweepInstance requires >= 1 direction, so k stays positive even here.
    s.family = Family::kEdgeless;
    s.n = static_cast<std::uint32_t>(rng.next_below(2));      // n in {0, 1}
    s.k = static_cast<std::uint32_t>(1 + rng.next_below(2));  // k in {1, 2}
  } else if (d < 0.10) {
    s.k = 1;
  } else if (d < 0.15) {
    s.m = 1;
  } else if (d < 0.20) {
    s.m = s.n * s.k * 3 + 17;  // m >> nk: more processors than tasks
  } else if (d < 0.28) {
    s.delay = static_cast<std::uint32_t>(1 + rng.next_below(50));
  }
  return s;
}

dag::SweepInstance materialize(const Scenario& s) {
  util::Rng rng(s.seed ^ 0xf00dULL);
  switch (s.family) {
    case Family::kRandomLayered: {
      const std::size_t n = std::max<std::uint32_t>(1, s.n);
      return dag::random_instance(n, s.k,
                                  std::max<std::uint32_t>(1, s.layers),
                                  s.out_degree, s.seed);
    }
    case Family::kRandomOrder: {
      const std::size_t n = std::max<std::uint32_t>(1, s.n);
      std::vector<dag::SweepDag> dags;
      dags.reserve(s.k);
      for (std::uint32_t i = 0; i < s.k; ++i) {
        util::Rng child = rng.fork();
        dags.push_back(dag::random_order_dag(
            n, s.out_degree, std::max<std::uint32_t>(1, s.layers), child));
      }
      return dag::SweepInstance(n, std::move(dags), "fuzz_order");
    }
    case Family::kChain:
      return dag::chain_instance(std::max<std::uint32_t>(1, s.n), s.k, s.seed);
    case Family::kZoo: {
      const auto& names = mesh::MeshZoo::names();
      const auto mesh = mesh::MeshZoo::by_name(
          names[s.seed % names.size()], clamp(s.scale, 0.08, 0.2), s.seed);
      // S_2 (8 directions) keeps zoo cases bounded while still exercising
      // the full geometric build path.
      return dag::build_instance(mesh, dag::level_symmetric(2));
    }
    case Family::kStructured: {
      const mesh::StructuredDims dims{1 + s.n % 5, 1 + (s.n / 5) % 4,
                                      1 + s.layers % 4};
      const auto mesh = mesh::make_structured_grid(dims);
      return dag::build_instance(
          mesh, dag::fibonacci_sphere(std::max<std::uint32_t>(1, s.k)));
    }
    case Family::kExtruded: {
      const auto base = mesh::make_grid_triangulation(
          2 + s.n % 4, 2 + (s.n / 4) % 4, 1.0, 1.0, 0.2, s.seed);
      mesh::ExtrudeOptions opts;
      opts.layers = 1 + s.layers % 4;
      opts.prism_layers = std::min<std::size_t>(opts.layers, s.layers % 2);
      opts.seed = s.seed;
      opts.name = "fuzz_extruded";
      const auto mesh = mesh::extrude_to_3d(base, opts);
      return dag::build_instance(
          mesh, dag::fibonacci_sphere(std::max<std::uint32_t>(1, s.k)));
    }
    case Family::kEdgeless: {
      const std::uint32_t k = std::max<std::uint32_t>(1, s.k);
      std::vector<dag::SweepDag> dags;
      dags.reserve(k);
      const std::vector<std::pair<dag::NodeId, dag::NodeId>> no_edges;
      for (std::uint32_t i = 0; i < k; ++i) {
        dags.emplace_back(s.n, no_edges);
      }
      return dag::SweepInstance(s.n, std::move(dags), "fuzz_edgeless");
    }
    case Family::kFanIn: {
      // Funnel: every source node feeds every hub sink, so each of the
      // `hubs` last nodes has indegree n - hubs — sampled around the
      // packed engines' 255-indegree cap. One finished front dumps the
      // same hub id hundreds of times into a single resolve batch, the
      // exact shape the SIMD kernels' duplicate collapse exists for.
      const std::uint32_t n = std::max<std::uint32_t>(2, s.n);
      const std::uint32_t k = std::max<std::uint32_t>(1, s.k);
      const std::uint32_t hubs = std::min(n - 1, 1 + s.layers % 4);
      std::vector<std::pair<dag::NodeId, dag::NodeId>> edges;
      edges.reserve(static_cast<std::size_t>(n - hubs) * hubs);
      for (std::uint32_t src = 0; src < n - hubs; ++src) {
        for (std::uint32_t h = 0; h < hubs; ++h) {
          edges.emplace_back(src, n - 1 - h);
        }
      }
      std::vector<dag::SweepDag> dags;
      dags.reserve(k);
      for (std::uint32_t i = 0; i < k; ++i) {
        dags.emplace_back(n, edges);
      }
      return dag::SweepInstance(n, std::move(dags), "fuzz_fanin");
    }
  }
  throw std::logic_error("materialize: unknown scenario family");
}

std::string to_text(const Scenario& s) {
  std::ostringstream out;
  out << "family " << static_cast<std::uint32_t>(s.family) << "\n"
      << "seed " << s.seed << "\n"
      << "n " << s.n << "\n"
      << "k " << s.k << "\n"
      << "layers " << s.layers << "\n";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", s.out_degree);
  out << "out_degree " << buffer << "\n";
  std::snprintf(buffer, sizeof(buffer), "%.17g", s.scale);
  out << "scale " << buffer << "\n";
  out << "m " << s.m << "\n"
      << "algorithm " << s.algorithm << "\n"
      << "delay " << s.delay << "\n"
      << "hostile " << static_cast<std::uint32_t>(s.hostile) << "\n";
  return out.str();
}

Scenario scenario_from_text(std::istream& in) {
  Scenario s;
  std::string key;
  while (in >> key) {
    if (key == "family") {
      std::uint32_t v = 0;
      if (!(in >> v) || v > static_cast<std::uint32_t>(Family::kFanIn)) {
        throw std::runtime_error("sweepfuzz: bad family");
      }
      s.family = static_cast<Family>(v);
    } else if (key == "seed") {
      if (!(in >> s.seed)) throw std::runtime_error("sweepfuzz: bad seed");
    } else if (key == "n") {
      if (!(in >> s.n)) throw std::runtime_error("sweepfuzz: bad n");
    } else if (key == "k") {
      if (!(in >> s.k)) throw std::runtime_error("sweepfuzz: bad k");
    } else if (key == "layers") {
      if (!(in >> s.layers)) throw std::runtime_error("sweepfuzz: bad layers");
    } else if (key == "out_degree") {
      if (!(in >> s.out_degree)) {
        throw std::runtime_error("sweepfuzz: bad out_degree");
      }
    } else if (key == "scale") {
      if (!(in >> s.scale)) throw std::runtime_error("sweepfuzz: bad scale");
    } else if (key == "m") {
      if (!(in >> s.m)) throw std::runtime_error("sweepfuzz: bad m");
    } else if (key == "algorithm") {
      if (!(in >> s.algorithm) ||
          s.algorithm >= core::all_algorithms().size()) {
        throw std::runtime_error("sweepfuzz: bad algorithm");
      }
    } else if (key == "delay") {
      if (!(in >> s.delay)) throw std::runtime_error("sweepfuzz: bad delay");
    } else if (key == "hostile") {
      std::uint32_t v = 0;
      if (!(in >> v) ||
          v > static_cast<std::uint32_t>(Hostility::kWireGarbage)) {
        throw std::runtime_error("sweepfuzz: bad hostile");
      }
      s.hostile = static_cast<Hostility>(v);
    } else {
      throw std::runtime_error("sweepfuzz: unknown key '" + key + "'");
    }
  }
  return s;
}

void save_repro(const Repro& repro, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_repro: cannot open " + path);
  out << kMagic << ' ' << kVersion << "\n";
  out << "oracle " << (repro.oracle.empty() ? "-" : repro.oracle) << "\n";
  out << to_text(repro.scenario);
  if (!out) throw std::runtime_error("save_repro: write failed: " + path);
}

Repro load_repro(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion) {
    throw std::runtime_error("load_repro: bad header (expected 'sweepfuzz 1')");
  }
  Repro repro;
  std::string key;
  if (!(in >> key) || key != "oracle" || !(in >> repro.oracle)) {
    throw std::runtime_error("load_repro: missing oracle line");
  }
  repro.scenario = scenario_from_text(in);
  return repro;
}

Repro load_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_repro: cannot open " + path);
  return load_repro(in);
}

}  // namespace sweep::fuzz
