#pragma once
// sweep_fuzz shrinker: greedy deterministic minimization of a failing
// scenario. Given a scenario with at least one oracle violation, repeatedly
// tries a fixed-order list of simplification candidates (halve n, drop a
// direction, shrink m, flatten the DAG, zero the delay, canonicalize the
// seed) and keeps any candidate that still violates the SAME oracle. The
// result is the smallest scenario the candidate set can reach, found in a
// reproducible order — two runs on the same input produce identical output.

#include <cstddef>
#include <string>

#include "fuzz/scenario.hpp"

namespace sweep::fuzz {

struct ShrinkResult {
  Scenario scenario;       ///< minimized scenario (== input if nothing helped)
  std::string oracle;      ///< the oracle the shrink preserved
  std::size_t attempts = 0;  ///< candidate scenarios evaluated
  std::size_t accepted = 0;  ///< candidates that kept the violation
};

/// Minimizes `failing`, preserving a violation of the first violated oracle.
/// If `failing` does not currently violate anything, returns it unchanged
/// with an empty oracle name. Runs at most `max_attempts` oracle evaluations.
ShrinkResult shrink_scenario(const Scenario& failing,
                             std::size_t max_attempts = 400);

}  // namespace sweep::fuzz
