#include "fuzz/oracles.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/comm_rounds.hpp"
#include "core/list_scheduler.hpp"
#include "core/lower_bounds.hpp"
#include "core/priorities.hpp"
#include "core/random_delay.hpp"
#include "core/schedule_io.hpp"
#include "core/validate.hpp"
#include "core/weighted_scheduler.hpp"
#include "serve/wire.hpp"
#include "sweep/artifact.hpp"
#include "sweep/descendants.hpp"
#include "sweep/instance_io.hpp"
#include "util/cli.hpp"

namespace sweep::fuzz {
namespace {

using core::Assignment;
using core::Schedule;
using core::TimeStep;

std::string describe(const Scenario& s) {
  std::ostringstream out;
  out << "family=" << static_cast<std::uint32_t>(s.family) << " seed=" << s.seed
      << " n=" << s.n << " k=" << s.k << " m=" << s.m
      << " algorithm=" << core::algorithm_name(
             core::all_algorithms()[s.algorithm]);
  return out.str();
}

/// Independent re-simulation of the layer-synchronous execution of
/// Algorithms 1 and 3: recompute combined layers from `base_level` plus the
/// returned delays and re-derive layer widths, per-processor layer loads and
/// the makespan, then compare against what the algorithm reported.
void recheck_random_delay(const dag::SweepInstance& instance, std::size_t m,
                          const core::RandomDelayResult& result,
                          std::span<const std::uint32_t> base_level,
                          const char* name, OracleReport& report) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::size_t total = n * k;
  auto fail = [&](const std::string& msg) {
    report.violations.push_back({name, msg});
  };

  const auto valid = core::validate_schedule(instance, result.schedule);
  if (!valid) {
    fail("infeasible schedule: " + valid.error);
    return;
  }
  if (result.delays.size() != k) {
    fail("delays vector has wrong size");
    return;
  }

  std::vector<std::uint32_t> layer(total);
  std::size_t n_layers = 0;
  for (std::size_t t = 0; t < total; ++t) {
    layer[t] = base_level[t] + result.delays[t / n];
    n_layers = std::max<std::size_t>(n_layers, layer[t] + 1);
  }
  if (n_layers != result.combined_layers) {
    fail("combined_layers mismatch: reported " +
         std::to_string(result.combined_layers) + ", recomputed " +
         std::to_string(n_layers));
  }

  // Bucket tasks by layer, then recount loads layer by layer.
  std::vector<std::vector<std::size_t>> by_layer(n_layers);
  for (std::size_t t = 0; t < total; ++t) by_layer[layer[t]].push_back(t);

  std::vector<std::uint32_t> load(m, 0);
  std::size_t max_load = 0;
  std::size_t expected_makespan = 0;
  for (const auto& tasks : by_layer) {
    std::size_t layer_max = 0;
    for (std::size_t t : tasks) {
      const auto p = result.schedule.processor_of(t);
      layer_max = std::max<std::size_t>(layer_max, ++load[p]);
    }
    if (layer_max > tasks.size()) {
      fail("per-processor layer load exceeds layer width");
    }
    expected_makespan += layer_max;
    max_load = std::max(max_load, layer_max);
    for (std::size_t t : tasks) load[result.schedule.processor_of(t)] = 0;
  }
  if (max_load != result.max_layer_load) {
    fail("max_layer_load mismatch: reported " +
         std::to_string(result.max_layer_load) + ", recomputed " +
         std::to_string(max_load));
  }
  if (expected_makespan != result.schedule.makespan()) {
    fail("makespan is not the sum of per-layer maxima: schedule says " +
         std::to_string(result.schedule.makespan()) + ", layers sum to " +
         std::to_string(expected_makespan));
  }
}

void run_benign_oracles(const Scenario& s, OracleReport& report) {
  auto fail = [&](const char* oracle, const std::string& msg) {
    report.violations.push_back({oracle, msg + " [" + describe(s) + "]"});
  };
  auto check = [&](const char* name, auto&& fn) {
    ++report.checks_run;
    try {
      fn();
    } catch (const std::exception& e) {
      fail(name, std::string("unexpected exception: ") + e.what());
    }
  };

  std::optional<dag::SweepInstance> instance;
  ++report.checks_run;
  try {
    instance.emplace(materialize(s));
  } catch (const std::exception& e) {
    fail("materialize", std::string("generator threw: ") + e.what());
    return;
  }
  const std::size_t n = instance->n_cells();
  const std::size_t k = instance->n_directions();
  const std::size_t m = std::max<std::uint32_t>(1, s.m);
  const core::Algorithm algorithm = core::all_algorithms()[s.algorithm];

  util::Rng assignment_rng(s.seed * 7 + 1);
  const Assignment assignment = core::random_assignment(n, m, assignment_rng);

  // Oracle 1: feasibility + completeness of the scheduled algorithm.
  std::optional<Schedule> schedule;
  check("validate", [&] {
    util::Rng rng(s.seed);
    schedule.emplace(core::run_algorithm(algorithm, *instance, m, rng,
                                         assignment));
    const auto valid = core::validate_schedule(*instance, *schedule);
    if (!valid) fail("validate", "infeasible schedule: " + valid.error);
    if (!schedule->complete()) fail("validate", "schedule is incomplete");
  });
  if (!schedule) return;

  // Oracle 2: lower-bound sanity. makespan >= max{ceil(nk/m), k, D} with
  // the k and D bounds applying only when there are cells to schedule
  // (D = max level count = longest critical path of unit tasks).
  check("lower_bound", [&] {
    const std::size_t makespan = schedule->makespan();
    const std::size_t avg = (n * k + m - 1) / m;  // ceil(nk/m)
    std::size_t lb = avg;
    if (n > 0) lb = std::max(lb, k);
    lb = std::max(lb, instance->max_depth());
    if (makespan < lb) {
      fail("lower_bound", "makespan " + std::to_string(makespan) +
                              " below lower bound " + std::to_string(lb));
    }
    if (n > 0) {
      const auto bounds = core::compute_lower_bounds(*instance, m);
      if (static_cast<double>(makespan) + 1e-9 < bounds.value()) {
        fail("lower_bound", "makespan below compute_lower_bounds value");
      }
    }
  });

  // Oracle 3: engine identity — the production engine (both ready-queue
  // implementations) against the preserved reference implementation,
  // including release times and cross-message delays.
  check("engine_identity", [&] {
    const auto priorities = core::level_priorities(*instance);
    std::vector<TimeStep> releases;
    core::ListScheduleOptions options;
    options.priorities = priorities;
    options.cross_message_delay = s.delay;
    if (s.seed % 2 == 0 && k > 0) {
      util::Rng rng(s.seed + 17);
      const auto delays = core::random_delays(k, rng);
      releases = core::delay_release_times(*instance, delays);
      options.release_times = releases;
    }
    options.ready_queue = core::ReadyQueueKind::kHeap;
    const Schedule heap = core::list_schedule(*instance, assignment, m, options);
    options.ready_queue = core::ReadyQueueKind::kBucket;
    const Schedule bucket =
        core::list_schedule(*instance, assignment, m, options);
    const Schedule reference =
        core::list_schedule_reference(*instance, assignment, m, options);
    if (heap.starts() != reference.starts()) {
      fail("engine_identity", "heap engine diverges from reference");
    }
    if (bucket.starts() != reference.starts()) {
      fail("engine_identity", "bucket engine diverges from reference");
    }
    // The sharded work-stealing engine must match too, for every worker
    // count. Gated inputs (releases / delay) silently use the serial
    // engines — that dispatch decision is part of what this exercises.
    options.ready_queue = core::ReadyQueueKind::kAuto;
    for (const std::size_t jobs : {2u, 8u}) {
      options.jobs = jobs;
      const Schedule sharded =
          core::list_schedule(*instance, assignment, m, options);
      if (sharded.starts() != reference.starts()) {
        fail("engine_identity", "sharded engine (jobs=" +
                                    std::to_string(jobs) +
                                    ") diverges from reference");
      }
    }
  });

  // Oracles 4+5: random-delay re-simulation (Algorithms 1 and 3).
  check("rd_invariants", [&] {
    util::Rng rng(s.seed + 1);
    const auto result = core::random_delay_schedule(*instance, m, rng);
    recheck_random_delay(*instance, m, result,
                         instance->task_graph().levels(), "rd_invariants",
                         report);
  });
  check("improved_rd_invariants", [&] {
    util::Rng rng(s.seed + 2);
    const auto result = core::improved_random_delay_schedule(*instance, m, rng);
    const auto new_level = core::greedy_union_schedule(*instance, m);
    // Preprocessing guarantee: every greedy step runs at most m tasks.
    std::vector<std::size_t> width;
    for (const TimeStep step : new_level) {
      if (step >= width.size()) width.resize(step + 1, 0);
      ++width[step];
    }
    for (const std::size_t w : width) {
      if (w > m) {
        fail("improved_rd_invariants",
             "greedy union level wider than m tasks");
        break;
      }
    }
    recheck_random_delay(*instance, m, result, new_level,
                         "improved_rd_invariants", report);
  });

  // Oracle 6: the C2 realization (greedy edge coloring) stays within its
  // guarantee and agrees with C1 on the message count.
  check("c2_rounds", [&] {
    const auto rounds = core::realize_c2_rounds(*instance, *schedule);
    const auto c1 = core::comm_cost_c1(*instance, schedule->assignment());
    if (rounds.total_messages != c1.cross_edges) {
      fail("c2_rounds", "realized message count disagrees with C1");
    }
    if (rounds.max_total_degree > 0 &&
        rounds.max_round_count > 2 * rounds.max_total_degree - 1) {
      fail("c2_rounds",
           "a step used " + std::to_string(rounds.max_round_count) +
               " rounds, above the 2*Delta-1 = " +
               std::to_string(2 * rounds.max_total_degree - 1) + " guarantee");
    }
    if (rounds.max_round_count > rounds.total_rounds) {
      fail("c2_rounds", "max_round_count exceeds total_rounds");
    }
  });

  // Oracle 7: persistence round trip, with C1/C2 recomputed on the reloaded
  // schedule.
  check("roundtrip", [&] {
    std::stringstream buffer;
    core::save_schedule(*schedule, buffer);
    const Schedule loaded = core::load_schedule(buffer);
    if (loaded.n_cells() != schedule->n_cells() ||
        loaded.n_directions() != schedule->n_directions() ||
        loaded.n_processors() != schedule->n_processors() ||
        loaded.assignment() != schedule->assignment() ||
        loaded.starts() != schedule->starts()) {
      fail("roundtrip", "save -> load round trip is not the identity");
      return;
    }
    const auto valid = core::validate_schedule(*instance, loaded);
    if (!valid) {
      fail("roundtrip", "reloaded schedule fails validation: " + valid.error);
    }
    const auto c1a = core::comm_cost_c1(*instance, schedule->assignment());
    const auto c1b = core::comm_cost_c1(*instance, loaded.assignment());
    if (c1a.cross_edges != c1b.cross_edges) {
      fail("roundtrip", "C1 changed across the round trip");
    }
    const auto c2a = core::comm_cost_c2(*instance, *schedule);
    const auto c2b = core::comm_cost_c2(*instance, loaded);
    if (c2a.total_delay != c2b.total_delay ||
        c2a.max_step_degree != c2b.max_step_degree ||
        c2a.busy_steps != c2b.busy_steps) {
      fail("roundtrip", "C2 changed across the round trip");
    }
  });

  auto preproc_identity = [&] {
    util::Rng delay_rng(s.seed + 11);
    const auto delays = core::random_delays(std::max<std::size_t>(k, 1),
                                            delay_rng);
    util::Rng ref_rng(s.seed + 13);
    const auto ref_descendant =
        core::descendant_priorities_reference(*instance, ref_rng);
    const auto ref_blevel = core::blevel_priorities_reference(*instance);
    const auto ref_dfds =
        core::dfds_priorities_reference(*instance, assignment);
    const auto ref_delay =
        k > 0 ? core::random_delay_priorities_reference(*instance, delays)
              : std::vector<std::int64_t>{};
    for (const std::size_t jobs : {1u, 2u}) {
      const std::string at = " diverges from reference at jobs=" +
                             std::to_string(jobs);
      util::Rng par_rng(s.seed + 13);
      if (core::descendant_priorities(*instance, par_rng, jobs) !=
          ref_descendant) {
        fail("preproc_identity", "descendant_priorities" + at);
      }
      if (core::blevel_priorities(*instance, jobs) != ref_blevel) {
        fail("preproc_identity", "blevel_priorities" + at);
      }
      if (core::dfds_priorities(*instance, assignment, jobs) != ref_dfds) {
        fail("preproc_identity", "dfds_priorities" + at);
      }
      if (k > 0 &&
          core::random_delay_priorities(*instance, delays, jobs) != ref_delay) {
        fail("preproc_identity", "random_delay_priorities" + at);
      }
    }
    for (const std::size_t i : {std::size_t{0}, k - 1}) {
      if (i >= k) break;
      const dag::SweepDag& g = instance->dag(i);
      if (dag::exact_descendant_counts(g) !=
          dag::exact_descendant_counts_reference(g)) {
        fail("preproc_identity",
             "tiled exact_descendant_counts diverges from reference "
             "(direction " + std::to_string(i) + ")");
      }
    }
  };

  // Oracle 8: the parallel trial harness is deterministic in the fan-out
  // width (byte-identical means for any --jobs).
  check("trials_determinism", [&] {
    const bench::TrialSpec spec{algorithm, m, nullptr};
    const auto serial =
        bench::parallel_trials(*instance, {&spec, 1}, 2, s.seed, false, 1);
    const auto threaded =
        bench::parallel_trials(*instance, {&spec, 1}, 2, s.seed, false, 2);
    if (serial != threaded) {
      fail("trials_determinism",
           "parallel_trials differs between jobs=1 and jobs=2");
    }
  });

  // Oracle 9: preprocessing identity — the parallel priority constructors
  // and the tiled descendant counter are byte-identical to their preserved
  // serial references for every fan-out width.
  check("preproc_identity", preproc_identity);
}

/// Hostile channel 1: an assignment entry == m fed to every scheduler entry
/// point must be rejected with std::invalid_argument — an unchecked entry
/// used to index past proc_cursor and corrupt the heap.
void check_oob_assignment(const Scenario& s, OracleReport& report) {
  constexpr const char* kName = "hostile_oob";
  Scenario base = s;
  base.hostile = Hostility::kNone;
  if (base.n == 0) base.n = 1;
  if (base.family == Family::kEdgeless && base.k == 0) base.k = 1;
  const dag::SweepInstance instance = materialize(base);
  const std::size_t n = instance.n_cells();
  const std::size_t m = std::max<std::uint32_t>(1, s.m);

  util::Rng rng(s.seed);
  Assignment bad = core::random_assignment(n, m, rng);
  bad[s.seed % n] = static_cast<core::ProcessorId>(m);  // one past the end

  auto expect_reject = [&](const char* what, auto&& fn) {
    ++report.checks_run;
    try {
      fn();
      report.violations.push_back(
          {kName, std::string(what) +
                      " accepted an out-of-range assignment entry [" +
                      describe(s) + "]"});
    } catch (const std::invalid_argument&) {
      // correct rejection
    } catch (const std::exception& e) {
      report.violations.push_back(
          {kName, std::string(what) + " failed with the wrong exception: " +
                      e.what() + " [" + describe(s) + "]"});
    }
  };

  expect_reject("random_delay_schedule", [&] {
    util::Rng r(s.seed + 1);
    (void)core::random_delay_schedule(instance, m, r, bad);
  });
  expect_reject("improved_random_delay_schedule", [&] {
    util::Rng r(s.seed + 2);
    (void)core::improved_random_delay_schedule(instance, m, r, bad);
  });
  expect_reject("list_schedule", [&] {
    (void)core::list_schedule(instance, bad, m);
  });
  expect_reject("list_schedule_reference", [&] {
    (void)core::list_schedule_reference(instance, bad, m);
  });
  expect_reject("weighted_list_schedule", [&] {
    const std::vector<double> weights(n, 1.0);
    (void)core::weighted_list_schedule(instance, bad, m, weights);
  });
  expect_reject("run_algorithm", [&] {
    util::Rng r(s.seed + 3);
    (void)core::run_algorithm(core::all_algorithms()[s.algorithm], instance, m,
                              r, bad);
  });
}

/// Hostile channel 2: a mutated schedule file must make load_schedule throw,
/// never return a schedule that later corrupts comm_rounds / utilization.
void check_corrupt_schedule_file(const Scenario& s, OracleReport& report) {
  constexpr const char* kName = "hostile_schedule_file";
  Scenario base = s;
  base.hostile = Hostility::kNone;
  base.family = Family::kRandomLayered;  // fixed token layout for surgery
  base.n = 4 + s.n % 8;
  base.k = std::max<std::uint32_t>(1, s.k);
  base.m = std::max<std::uint32_t>(2, std::min<std::uint32_t>(s.m, 6));
  const dag::SweepInstance instance = materialize(base);
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();

  util::Rng rng(s.seed);
  const Schedule schedule = core::run_algorithm(
      core::all_algorithms()[s.algorithm], instance, base.m, rng);
  std::stringstream buffer;
  core::save_schedule(schedule, buffer);

  // Token layout: magic version n k m assignment[n] starts[n*k].
  std::vector<std::string> tokens;
  for (std::string t; buffer >> t;) tokens.push_back(std::move(t));

  const std::size_t kind = s.seed % 5;
  switch (kind) {
    case 0:  // truncated mid-assignment
      tokens.resize(5 + n / 2);
      break;
    case 1:  // zero processors with cells present
      tokens[4] = "0";
      break;
    case 2:  // assignment entry == m (out of range)
      tokens[5 + s.seed % n] = std::to_string(base.m);
      break;
    case 3:  // a start equal to the kUnscheduled sentinel
      tokens[5 + n + s.seed % (n * k)] = "4294967295";
      break;
    default:  // shape that overflows n*k / exceeds the 32-bit id range
      tokens[2] = "1000000000000";
      tokens[3] = "1000000000000";
      break;
  }
  std::string mutated;
  for (const auto& t : tokens) {
    mutated += t;
    mutated += ' ';
  }

  ++report.checks_run;
  try {
    std::stringstream in(mutated);
    const Schedule loaded = core::load_schedule(in);
    (void)loaded;
    report.violations.push_back(
        {kName, "load_schedule accepted a corrupt file (mutation kind " +
                    std::to_string(kind) + ") [" + describe(s) + "]"});
  } catch (const std::runtime_error&) {
    // correct rejection
  } catch (const std::exception& e) {
    report.violations.push_back(
        {kName, std::string("load_schedule failed with the wrong exception: ") +
                    e.what() + " [" + describe(s) + "]"});
  }
}

/// Hostile channel 3: garbage CLI values must be reported (throw / parse
/// error), never silently become 0 (the "--procs=abc runs with 0 processors"
/// failure mode).
void check_cli_garbage(const Scenario& s, OracleReport& report) {
  constexpr const char* kName = "hostile_cli";
  static const char* kGarbage[] = {"abc", "", "12x", "1e", "0.5.3"};
  const std::string garbage = kGarbage[s.seed % 5];
  auto fail = [&](const std::string& msg) {
    report.violations.push_back({kName, msg + " (value '" + garbage + "')"});
  };

  {
    util::CliParser cli("sweep_fuzz_probe", "hostile cli probe");
    cli.add_option("procs", "8", "processors");
    cli.add_option("scale", "1.0", "scale");
    cli.add_option("list", "1,2", "list");
    const std::string arg = "--procs=" + garbage;
    const char* argv[] = {"sweep_fuzz_probe", arg.c_str()};
    ++report.checks_run;
    if (cli.parse(2, argv)) {
      bool threw = false;
      try {
        (void)cli.integer("procs");
      } catch (const std::invalid_argument&) {
        threw = true;
      }
      if (!threw) fail("CliParser::integer silently accepted garbage");
      threw = false;
      try {
        (void)cli.real("procs");
      } catch (const std::invalid_argument&) {
        threw = true;
      }
      if (!threw) fail("CliParser::real silently accepted garbage");
    }
  }
  {
    util::CliParser cli("sweep_fuzz_probe", "hostile cli probe");
    cli.add_option("list", "1,2", "list");
    const std::string arg = "--list=1," + garbage;
    const char* argv[] = {"sweep_fuzz_probe", arg.c_str()};
    ++report.checks_run;
    if (cli.parse(2, argv)) {
      bool threw = false;
      try {
        (void)cli.int_list("list");
      } catch (const std::invalid_argument&) {
        threw = true;
      }
      if (!threw) fail("CliParser::int_list silently accepted garbage");
    }
  }
  {
    util::CliParser cli("sweep_fuzz_probe", "hostile cli probe");
    cli.add_flag("verbose", "verbosity");
    const char* argv[] = {"sweep_fuzz_probe", "--verbose=yes"};
    ++report.checks_run;
    if (cli.parse(2, argv)) {
      fail("a flag with a non-boolean inline value parsed successfully");
    }
  }
}

/// Hostile channel 5: a mutated instance text file. load_instance must either
/// throw std::runtime_error (clean rejection) or return an instance that
/// itself survives a save -> load round trip — it must never crash, hang on
/// a hostile edge count, or hand back an instance with out-of-range
/// endpoints.
void check_corrupt_instance_file(const Scenario& s, OracleReport& report) {
  constexpr const char* kName = "hostile_instance_file";
  Scenario base = s;
  base.hostile = Hostility::kNone;
  base.family = Family::kRandomLayered;
  base.n = 2 + s.n % 12;
  base.k = std::max<std::uint32_t>(1, std::min<std::uint32_t>(s.k, 3));
  const dag::SweepInstance instance = materialize(base);

  std::ostringstream saved_stream;
  dag::save_instance(instance, saved_stream);
  std::string text = saved_stream.str();

  util::Rng rng(s.seed * 31 + 5);
  const std::size_t kind = rng.next_below(4);
  switch (kind) {
    case 0: {  // flip one byte anywhere in the file
      const std::size_t pos = rng.next_below(text.size());
      text[pos] = static_cast<char>(text[pos] ^ (1 + rng.next_below(255)));
      break;
    }
    case 1:  // truncate mid-file
      text.resize(rng.next_below(text.size()));
      break;
    case 2: {  // splice a huge number over a numeric token (hostile counts)
      const std::size_t pos = rng.next_below(text.size());
      const std::size_t cut = std::min<std::size_t>(text.size() - pos,
                                                    1 + rng.next_below(8));
      text.replace(pos, cut, "184467440737095516");
      break;
    }
    default: {  // duplicate a chunk (shifts every later token)
      const std::size_t pos = rng.next_below(text.size());
      const std::size_t len = std::min<std::size_t>(text.size() - pos,
                                                    1 + rng.next_below(16));
      text.insert(pos, text.substr(pos, len));
      break;
    }
  }

  ++report.checks_run;
  try {
    std::istringstream in(text);
    const dag::SweepInstance loaded = dag::load_instance(in);
    // The mutation happened to parse — fine, but only if what came back is a
    // well-formed instance: saving and reloading it must be the identity.
    std::ostringstream second;
    dag::save_instance(loaded, second);
    std::istringstream again(second.str());
    const dag::SweepInstance reloaded = dag::load_instance(again);
    std::ostringstream third;
    dag::save_instance(reloaded, third);
    if (second.str() != third.str()) {
      report.violations.push_back(
          {kName, "accepted mutation (kind " + std::to_string(kind) +
                      ") produced an instance that does not round-trip [" +
                      describe(s) + "]"});
    }
  } catch (const std::runtime_error&) {
    // correct rejection
  } catch (const std::exception& e) {
    report.violations.push_back(
        {kName, std::string("load_instance failed with the wrong exception: ") +
                    e.what() + " [" + describe(s) + "]"});
  }
}

/// Hostile channel 6: mutated artifact bytes fed to Artifact::from_memory.
/// Every corruption — truncation, header surgery, section-table surgery, or
/// a payload byte flip (which must trip the content hash) — has to end in
/// ArtifactError or a fully valid artifact; never a crash, over-read, or an
/// artifact whose accessors lie about its shape.
void check_corrupt_artifact(const Scenario& s, OracleReport& report) {
  constexpr const char* kName = "hostile_artifact";
  Scenario base = s;
  base.hostile = Hostility::kNone;
  base.family = Family::kRandomLayered;
  base.n = 2 + s.n % 12;
  base.k = std::max<std::uint32_t>(1, std::min<std::uint32_t>(s.k, 3));
  const dag::SweepInstance instance = materialize(base);
  dag::ArtifactWriteOptions options;
  options.include_descendants = (s.seed % 2) == 0;
  std::vector<std::byte> bytes = dag::pack_artifact(instance, options);

  util::Rng rng(s.seed * 131 + 7);
  const std::size_t kind = rng.next_below(4);
  switch (kind) {
    case 0: {  // flip one byte anywhere (header, tables, or payload)
      const std::size_t pos = rng.next_below(bytes.size());
      bytes[pos] ^= static_cast<std::byte>(1 + rng.next_below(255));
      break;
    }
    case 1:  // truncate (possibly into the header itself)
      bytes.resize(rng.next_below(bytes.size()));
      break;
    case 2: {  // 8-byte splice of an overflow-bait value into the first 256
               // bytes: header counts, section offsets/sizes
      const std::size_t window = std::min<std::size_t>(bytes.size(), 256) - 8;
      const std::size_t pos = rng.next_below(window + 1);
      const std::uint64_t bait =
          (rng.next_below(2) == 0) ? ~std::uint64_t{0} : 0x8000000000000000ULL;
      for (std::size_t i = 0; i < 8; ++i) {
        bytes[pos + i] = static_cast<std::byte>((bait >> (8 * i)) & 0xff);
      }
      break;
    }
    default:  // append trailing garbage (file_bytes must catch the mismatch)
      for (std::size_t i = 0; i < 1 + rng.next_below(64); ++i) {
        bytes.push_back(static_cast<std::byte>(rng.next_below(256)));
      }
      break;
  }

  ++report.checks_run;
  try {
    const auto artifact = dag::Artifact::from_memory(std::move(bytes));
    // Accepted (e.g. the flip landed in unhashed padding): the artifact must
    // still describe a coherent graph.
    const dag::TaskGraph& graph = artifact->task_graph();
    if (graph.n_tasks() != artifact->n_cells() * artifact->n_directions() ||
        graph.n_edges() != artifact->n_edges()) {
      report.violations.push_back(
          {kName, "accepted mutation (kind " + std::to_string(kind) +
                      ") yields inconsistent accessors [" + describe(s) + "]"});
    }
  } catch (const dag::ArtifactError&) {
    // correct rejection
  } catch (const std::exception& e) {
    report.violations.push_back(
        {kName,
         std::string("from_memory failed with the wrong exception: ") +
             e.what() + " (mutation kind " + std::to_string(kind) + ") [" +
             describe(s) + "]"});
  }
}

/// Hostile channel 7: the serve wire decoders on malformed payloads. Strict
/// prefixes of valid messages, trailing bytes, out-of-range enums, and pure
/// random bytes must all end in WireError (or, for random bytes only, a
/// clean accidental decode) — never a crash or unbounded allocation.
void check_wire_garbage(const Scenario& s, OracleReport& report) {
  constexpr const char* kName = "hostile_wire";
  util::Rng rng(s.seed * 17 + 3);
  auto fail = [&](const std::string& msg) {
    report.violations.push_back({kName, msg + " [" + describe(s) + "]"});
  };
  auto expect_wire_error = [&](const char* what, auto&& fn) {
    ++report.checks_run;
    try {
      fn();
      fail(std::string(what) + " accepted malformed bytes");
    } catch (const serve::WireError&) {
      // correct rejection
    } catch (const std::exception& e) {
      fail(std::string(what) + " threw the wrong exception: " + e.what());
    }
  };

  // A valid request of every type, for surgery.
  serve::Request request;
  switch (rng.next_below(4)) {
    case 0:
      request.type = serve::MsgType::kPing;
      break;
    case 1:
      request.type = serve::MsgType::kInfo;
      break;
    case 2:
      request.type = serve::MsgType::kQuery;
      request.query.scheme = serve::Scheme::kRandomDelay;
      request.query.m = 1 + static_cast<std::uint32_t>(rng.next_below(16));
      request.query.seed = rng();
      break;
    default:
      request.type = serve::MsgType::kSwap;
      request.swap.path = "/tmp/x.sweepart";
      break;
  }
  const std::vector<std::byte> valid = serve::encode_request(request);

  // Round trip sanity first: the valid frame must decode to itself.
  ++report.checks_run;
  try {
    const serve::Request back = serve::decode_request(valid);
    if (back.type != request.type) fail("valid request decoded to wrong type");
  } catch (const std::exception& e) {
    fail(std::string("valid request failed to decode: ") + e.what());
  }

  // Strict prefix: every truncation of a valid frame is malformed.
  expect_wire_error("decode_request(prefix)", [&] {
    (void)serve::decode_request(
        std::span<const std::byte>(valid.data(),
                                   rng.next_below(valid.size())));
  });

  // Trailing bytes after a complete message.
  expect_wire_error("decode_request(trailing)", [&] {
    std::vector<std::byte> padded = valid;
    padded.push_back(static_cast<std::byte>(rng.next_below(256)));
    (void)serve::decode_request(padded);
  });

  // Out-of-range message type in an otherwise intact frame.
  expect_wire_error("decode_request(bad type)", [&] {
    std::vector<std::byte> mutated = valid;
    const std::uint32_t bad =
        7 + static_cast<std::uint32_t>(rng.next_below(1000));
    for (std::size_t i = 0; i < 4; ++i) {
      mutated[i] = static_cast<std::byte>((bad >> (8 * i)) & 0xff);
    }
    (void)serve::decode_request(mutated);
  });

  // Stats wire v2: a response with telemetry views must round-trip
  // exactly, every strict prefix into the quantile block must be
  // rejected, and an absurd entry count must be rejected before any
  // allocation proportional to it.
  {
    serve::Response stats;
    stats.status = 0;
    stats.type = serve::MsgType::kStats;
    stats.stats.proto_version = serve::kStatsProtoVersion;
    const std::size_t n_plain = rng.next_below(4);
    for (std::size_t i = 0; i < n_plain; ++i) {
      stats.stats.entries.emplace_back("k" + std::to_string(i), rng());
    }
    const std::size_t n_gauges = rng.next_below(3);
    for (std::size_t i = 0; i < n_gauges; ++i) {
      stats.stats.gauges.emplace_back(
          "g" + std::to_string(i), static_cast<std::int64_t>(rng()));
    }
    const std::size_t n_hists = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < n_hists; ++i) {
      serve::StatsHistogram h;
      h.name = "h" + std::to_string(i);
      h.count = rng();
      h.p50 = rng();
      h.p90 = rng();
      h.p99 = rng();
      h.p999 = rng();
      h.max = rng();  // absurd uncorrelated counts are fine on the wire
      stats.stats.histograms.push_back(std::move(h));
    }
    const std::vector<std::byte> encoded = serve::encode_response(stats);

    ++report.checks_run;
    try {
      const serve::Response back = serve::decode_response(encoded);
      if (back.stats.proto_version != stats.stats.proto_version ||
          back.stats.entries != stats.stats.entries ||
          back.stats.gauges != stats.stats.gauges ||
          back.stats.histograms != stats.stats.histograms) {
        fail("stats v2 typed views did not round-trip");
      }
    } catch (const std::exception& e) {
      fail(std::string("stats v2 round trip failed to decode: ") + e.what());
    }

    expect_wire_error("decode_response(truncated v2 stats)", [&] {
      // Cut somewhere after the header so the break lands inside the
      // entry list / quantile block, not in the status word.
      const std::size_t keep = 8 + rng.next_below(encoded.size() - 8);
      (void)serve::decode_response(
          std::span<const std::byte>(encoded.data(), keep));
    });

    expect_wire_error("decode_response(absurd stats count)", [&] {
      std::vector<std::byte> mutated = encoded;
      const std::uint64_t bait = (rng.next_below(2) == 0)
                                     ? ~std::uint64_t{0}
                                     : 0x8000000000000000ULL;
      for (std::size_t i = 0; i < 8; ++i) {
        mutated[8 + i] = static_cast<std::byte>((bait >> (8 * i)) & 0xff);
      }
      (void)serve::decode_response(mutated);
    });

    // Hostile namespaced keys: malformed gauge./hist. entries must decode
    // to plain entries (never crash, never vanish), and re-encoding the
    // decoded response must be idempotent.
    ++report.checks_run;
    try {
      serve::Response hostile;
      hostile.status = 0;
      hostile.type = serve::MsgType::kStats;
      hostile.stats.proto_version = 1;  // encode as a bare entry list
      const char* keys[] = {"gauge.", "hist.", "hist.x",
                            "hist..p50", "hist.x.bogus", "hist.x.p50"};
      for (const char* key : keys) {
        hostile.stats.entries.emplace_back(key, rng());
      }
      const serve::Response once =
          serve::decode_response(serve::encode_response(hostile));
      const serve::Response twice =
          serve::decode_response(serve::encode_response(once));
      if (once.stats.entries != twice.stats.entries ||
          once.stats.gauges != twice.stats.gauges ||
          once.stats.histograms != twice.stats.histograms) {
        fail("hostile namespaced keys: decode/encode not idempotent");
      }
    } catch (const std::exception& e) {
      fail(std::string("hostile namespaced keys crashed the decoder: ") +
           e.what());
    }
  }

  // Pure random bytes against both decoders: anything but a crash.
  std::vector<std::byte> garbage(rng.next_below(96));
  for (std::byte& b : garbage) {
    b = static_cast<std::byte>(rng.next_below(256));
  }
  ++report.checks_run;
  try {
    (void)serve::decode_request(garbage);
  } catch (const serve::WireError&) {
  } catch (const std::exception& e) {
    fail(std::string("decode_request(garbage) threw the wrong exception: ") +
         e.what());
  }
  ++report.checks_run;
  try {
    (void)serve::decode_response(garbage);
  } catch (const serve::WireError&) {
  } catch (const std::exception& e) {
    fail(std::string("decode_response(garbage) threw the wrong exception: ") +
         e.what());
  }
}

/// Synthetic canary used by the tests to exercise the shrinker: "fails"
/// whenever the scenario is larger than a fixed threshold, so a correct
/// shrinker must walk it down to the boundary deterministically.
void check_self_test(const Scenario& s, OracleReport& report) {
  ++report.checks_run;
  if (s.n >= 8 || s.k >= 4) {
    report.violations.push_back(
        {"self_test", "canary: n >= 8 or k >= 4 (n=" + std::to_string(s.n) +
                          ", k=" + std::to_string(s.k) + ")"});
  }
}

}  // namespace

bool OracleReport::violates(const std::string& name) const {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const OracleViolation& v) { return v.oracle == name; });
}

OracleReport run_oracles(const Scenario& scenario) {
  OracleReport report;
  try {
    switch (scenario.hostile) {
      case Hostility::kNone:
        run_benign_oracles(scenario, report);
        break;
      case Hostility::kOobAssignment:
        check_oob_assignment(scenario, report);
        break;
      case Hostility::kCorruptScheduleFile:
        check_corrupt_schedule_file(scenario, report);
        break;
      case Hostility::kCliGarbage:
        check_cli_garbage(scenario, report);
        break;
      case Hostility::kSelfTest:
        check_self_test(scenario, report);
        break;
      case Hostility::kCorruptInstanceFile:
        check_corrupt_instance_file(scenario, report);
        break;
      case Hostility::kCorruptArtifact:
        check_corrupt_artifact(scenario, report);
        break;
      case Hostility::kWireGarbage:
        check_wire_garbage(scenario, report);
        break;
    }
  } catch (const std::exception& e) {
    report.violations.push_back(
        {"harness", std::string("uncaught exception: ") + e.what()});
  }
  return report;
}

}  // namespace sweep::fuzz
