#include "fuzz/shrink.hpp"

#include <vector>

#include "fuzz/oracles.hpp"

namespace sweep::fuzz {
namespace {

/// Fixed-order simplification candidates for one round. Order matters for
/// determinism and for shrink quality: structural reductions (fewer cells,
/// fewer directions) come before cosmetic ones (seed canonicalization).
std::vector<Scenario> candidates(const Scenario& s) {
  std::vector<Scenario> out;
  auto push = [&](auto&& mutate) {
    Scenario c = s;
    mutate(c);
    if (!(c == s)) out.push_back(c);
  };
  push([](Scenario& c) { c.n /= 2; });
  push([](Scenario& c) { if (c.n > 0) c.n -= 1; });
  push([](Scenario& c) { c.k /= 2; });
  push([](Scenario& c) { if (c.k > 0) c.k -= 1; });
  push([](Scenario& c) { if (c.m > 1) c.m /= 2; });
  push([](Scenario& c) { c.m = 1; });
  push([](Scenario& c) { if (c.layers > 1) c.layers /= 2; });
  push([](Scenario& c) {
    if (c.out_degree > 0.25) c.out_degree /= 2;
  });
  push([](Scenario& c) { c.scale = 0.08; });
  push([](Scenario& c) { c.delay /= 2; });
  push([](Scenario& c) { c.delay = 0; });
  push([](Scenario& c) { c.seed = 1; });
  push([](Scenario& c) { c.seed /= 2; });
  return out;
}

}  // namespace

ShrinkResult shrink_scenario(const Scenario& failing,
                             std::size_t max_attempts) {
  ShrinkResult result;
  result.scenario = failing;

  const OracleReport initial = run_oracles(failing);
  ++result.attempts;
  if (initial.ok()) return result;  // nothing to preserve
  result.oracle = initial.violations.front().oracle;

  bool progressed = true;
  while (progressed && result.attempts < max_attempts) {
    progressed = false;
    for (const Scenario& candidate : candidates(result.scenario)) {
      if (result.attempts >= max_attempts) break;
      ++result.attempts;
      const OracleReport report = run_oracles(candidate);
      if (report.violates(result.oracle)) {
        result.scenario = candidate;
        ++result.accepted;
        progressed = true;
        break;  // restart the candidate list from the smaller scenario
      }
    }
  }
  return result;
}

}  // namespace sweep::fuzz
