#include "fuzz/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "fuzz/shrink.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace sweep::fuzz {
namespace {

struct TrialOutcome {
  bool failed = false;
  std::size_t checks = 0;
  Scenario scenario;
  OracleViolation violation;
};

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options) {
  CampaignResult result;
  result.trials = options.trials;
  if (options.trials == 0) return result;

  std::vector<TrialOutcome> outcomes(options.trials);
  util::parallel_for(
      options.trials,
      [&](std::size_t trial) {
        TrialOutcome& out = outcomes[trial];
        // Same per-trial seeding discipline as bench::parallel_trials:
        // results are byte-identical for any `jobs`.
        util::Rng rng(options.seed + trial * 1000003ULL);
        out.scenario = sample_scenario(rng);
        try {
          const OracleReport report = run_oracles(out.scenario);
          out.checks = report.checks_run;
          if (!report.ok()) {
            out.failed = true;
            out.violation = report.violations.front();
          }
        } catch (const std::exception& e) {
          // run_oracles shields scenario content; reaching here means the
          // harness itself broke — still report it, never crash the campaign.
          out.failed = true;
          out.violation = {"harness",
                           std::string("uncaught exception: ") + e.what()};
        }
      },
      options.jobs);

  for (TrialOutcome& out : outcomes) result.checks += out.checks;

  // Shrink + persist serially, in trial order, so repro numbering and the
  // failure list are deterministic.
  if (!options.repro_dir.empty()) {
    std::filesystem::create_directories(options.repro_dir);
  }
  for (std::size_t trial = 0; trial < outcomes.size(); ++trial) {
    TrialOutcome& out = outcomes[trial];
    if (!out.failed) continue;
    CampaignFailure failure;
    failure.trial = trial;
    failure.scenario = out.scenario;
    failure.shrunk = out.scenario;
    failure.violation = std::move(out.violation);
    if (options.shrink && failure.violation.oracle != "harness") {
      const ShrinkResult shrunk = shrink_scenario(out.scenario);
      if (shrunk.oracle == failure.violation.oracle) {
        failure.shrunk = shrunk.scenario;
      }
    }
    if (!options.repro_dir.empty() &&
        result.failures.size() < options.max_repros) {
      const std::string path =
          (std::filesystem::path(options.repro_dir) /
           ("trial_" + std::to_string(trial) + ".sweepfuzz"))
              .string();
      save_repro({failure.shrunk, failure.violation.oracle}, path);
      failure.repro_path = path;
    }
    result.failures.push_back(std::move(failure));
  }
  return result;
}

}  // namespace sweep::fuzz
