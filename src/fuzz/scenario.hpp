#pragma once
// sweep_fuzz scenario layer: a Scenario is a small, fully-serializable
// description of one fuzz case — which instance family to build, its size
// knobs, the processor count, the algorithm under test, and an optional
// "hostility" channel that feeds deliberately malformed inputs (out-of-range
// assignments, corrupted schedule/instance/artifact files, garbage CLI
// values, mangled wire frames) to the library's untrusted-input paths.
//
// Scenarios are the unit of generation (sample_scenario), execution
// (fuzz::run_oracles), minimization (fuzz::shrink_scenario) and persistence:
// a failing scenario round-trips through a self-contained `.sweepfuzz` text
// file that `sweep_fuzz --replay` reloads.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sweep/instance.hpp"
#include "util/rng.hpp"

namespace sweep::fuzz {

/// Instance families across the generator zoo. Degenerate shapes (n=0, k=1,
/// m=1, m >> nk, edgeless/disconnected DAGs) come from parameter sampling on
/// top of these families.
enum class Family : std::uint32_t {
  kRandomLayered = 0,  ///< dag::random_instance (layered random DAGs)
  kRandomOrder = 1,    ///< k random_order_dag over one cell set
  kChain = 2,          ///< dag::chain_instance (adversarial chains)
  kZoo = 3,            ///< MeshZoo mesh at small scale + S_2 directions
  kStructured = 4,     ///< regular hex grid + Fibonacci directions
  kExtruded = 5,       ///< extruded triangulation + Fibonacci directions
  kEdgeless = 6,       ///< k empty DAGs (fully disconnected; n may be 0)
  kFanIn = 7,          ///< funnel DAGs: hub sinks with indegree near 255
};

/// Hostile-input channels. kNone runs the correctness oracle bank; the other
/// values feed malformed inputs to one untrusted path and expect a clean
/// rejection (throw) instead of silent corruption. kSelfTest is a synthetic
/// always-failing oracle used to exercise the shrinker deterministically.
enum class Hostility : std::uint32_t {
  kNone = 0,
  kOobAssignment = 1,
  kCorruptScheduleFile = 2,
  kCliGarbage = 3,
  kSelfTest = 4,
  kCorruptInstanceFile = 5,  ///< mutated instance text -> load_instance
  kCorruptArtifact = 6,      ///< mutated artifact bytes -> Artifact::from_memory
  kWireGarbage = 7,          ///< malformed frames -> serve wire decoders
};

struct Scenario {
  Family family = Family::kRandomLayered;
  std::uint64_t seed = 1;
  std::uint32_t n = 16;        ///< cells (family-dependent meaning)
  std::uint32_t k = 2;         ///< directions (ignored by kZoo, which uses S_2)
  std::uint32_t layers = 4;    ///< DAG layers / extrusion layers / grid depth
  double out_degree = 1.5;     ///< random-DAG average out-degree
  double scale = 0.12;         ///< zoo mesh scale
  std::uint32_t m = 4;         ///< processors
  std::uint32_t algorithm = 0; ///< index into core::all_algorithms()
  std::uint32_t delay = 0;     ///< cross_message_delay for the engine oracle
  Hostility hostile = Hostility::kNone;

  bool operator==(const Scenario&) const = default;
};

/// Samples one scenario from `rng` (the campaign's per-trial generator).
/// Degenerate shapes are forced with small probability so every campaign
/// exercises the n=0 / k=1 / m=1 / m >> nk corners.
Scenario sample_scenario(util::Rng& rng);

/// Builds the instance a scenario describes. Deterministic in the scenario
/// fields; throws only on internal generator bugs (which the campaign
/// reports as violations).
dag::SweepInstance materialize(const Scenario& scenario);

/// One-line-per-field text encoding (the body of a .sweepfuzz file).
std::string to_text(const Scenario& scenario);
/// Inverse of to_text. Throws std::runtime_error on malformed input.
Scenario scenario_from_text(std::istream& in);

/// A persisted failing case: the (usually shrunk) scenario plus the name of
/// the oracle it violates ("-" when unknown).
struct Repro {
  Scenario scenario;
  std::string oracle = "-";
};

/// Writes/reads the self-contained `.sweepfuzz` repro format:
///   sweepfuzz 1
///   oracle <name>
///   <scenario fields, one per line>
void save_repro(const Repro& repro, const std::string& path);
Repro load_repro(const std::string& path);
Repro load_repro(std::istream& in);

}  // namespace sweep::fuzz
