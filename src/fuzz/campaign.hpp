#pragma once
// sweep_fuzz campaign driver: runs a seeded multi-threaded fuzzing campaign.
// Trial `t` always fuzzes the scenario sampled from Rng(seed + t * 1000003)
// — the same per-trial seeding discipline as bench::parallel_trials — so a
// campaign's findings are byte-identical for any `jobs` value, and any
// failing trial can be re-run in isolation from (seed, trial) alone.
//
// Failing scenarios are minimized by the shrinker and written as
// self-contained `.sweepfuzz` repro files that `sweep_fuzz --replay`
// reloads.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracles.hpp"
#include "fuzz/scenario.hpp"

namespace sweep::fuzz {

struct CampaignOptions {
  std::size_t trials = 200;
  std::uint64_t seed = 1;
  std::size_t jobs = 0;       ///< parallel_for convention: 0 = all cores
  bool shrink = true;         ///< minimize failures before reporting
  std::string repro_dir;      ///< when non-empty, write .sweepfuzz files here
  std::size_t max_repros = 8; ///< cap on repro files per campaign
};

struct CampaignFailure {
  std::size_t trial = 0;
  Scenario scenario;            ///< as sampled
  Scenario shrunk;              ///< after minimization (== scenario if off)
  OracleViolation violation;    ///< first violation of the sampled scenario
  std::string repro_path;       ///< written .sweepfuzz file ("" if none)
};

struct CampaignResult {
  std::size_t trials = 0;
  std::size_t checks = 0;  ///< total oracle checks across all trials
  std::vector<CampaignFailure> failures;  ///< sorted by trial index

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the campaign. Deterministic in (trials, seed) regardless of jobs.
CampaignResult run_campaign(const CampaignOptions& options);

}  // namespace sweep::fuzz
