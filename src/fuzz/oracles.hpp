#pragma once
// sweep_fuzz oracle bank: every check run against one (instance, scheduler)
// pair. Oracles are differential and invariant-based rather than golden:
//   - feasibility (validate_schedule) and completeness,
//   - lower-bound sanity: makespan >= max{ceil(nk/m), k, D, max critical path}
//     (Sections 4-5 of the paper),
//   - engine identity: list_schedule (heap and bucket ready queues) vs the
//     preserved list_schedule_reference oracle, bit-identical starts,
//   - random-delay invariants: an independent re-simulation of Algorithms 1
//     and 3 from the returned delays (layer loads, layer widths, makespan
//     as the sum of per-layer maxima),
//   - C2 realization: realize_c2_rounds round count <= 2*max_total_degree - 1
//     (the greedy edge-coloring guarantee) and message-count consistency
//     with C1,
//   - persistence: save -> load -> re-validate round trip, with C1/C2
//     recomputed on the reloaded schedule,
//   - harness determinism: bench::parallel_trials serial vs threaded must be
//     byte-identical.
// Hostile scenarios invert the expectation: malformed inputs (out-of-range
// assignments, corrupted schedule files, garbage CLI values) must be
// rejected with a clean throw, never silently accepted.

#include <string>
#include <vector>

#include "fuzz/scenario.hpp"

namespace sweep::fuzz {

struct OracleViolation {
  std::string oracle;   ///< stable oracle name (used by the shrinker)
  std::string message;  ///< human-readable description of the violation
};

struct OracleReport {
  std::size_t checks_run = 0;
  std::vector<OracleViolation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// True iff some violation came from oracle `name`.
  [[nodiscard]] bool violates(const std::string& name) const;
};

/// Runs the full oracle bank for one scenario. Never throws for scenario
/// content: unexpected exceptions inside an oracle are reported as
/// violations of that oracle.
OracleReport run_oracles(const Scenario& scenario);

}  // namespace sweep::fuzz
