#include "mesh/vtk.hpp"

#include <fstream>
#include <stdexcept>

namespace sweep::mesh {

void save_vtk_points(const UnstructuredMesh& mesh,
                     const std::vector<VtkField>& fields, std::ostream& out) {
  for (const VtkField& field : fields) {
    if (field.values.size() != mesh.n_cells()) {
      throw std::invalid_argument("save_vtk_points: field '" + field.name +
                                  "' size != n_cells");
    }
    if (field.name.find(' ') != std::string::npos) {
      throw std::invalid_argument("save_vtk_points: field name has spaces");
    }
  }
  const std::size_t n = mesh.n_cells();
  out << "# vtk DataFile Version 3.0\n";
  out << "sweep-sched mesh '" << mesh.name() << "' cell centroids\n";
  out << "ASCII\nDATASET POLYDATA\n";
  out << "POINTS " << n << " double\n";
  for (CellId c = 0; c < n; ++c) {
    const Vec3& p = mesh.centroid(c);
    out << p.x << ' ' << p.y << ' ' << p.z << "\n";
  }
  out << "VERTICES " << n << ' ' << 2 * n << "\n";
  for (CellId c = 0; c < n; ++c) out << "1 " << c << "\n";
  if (!fields.empty()) {
    out << "POINT_DATA " << n << "\n";
    for (const VtkField& field : fields) {
      out << "SCALARS " << field.name << " double 1\nLOOKUP_TABLE default\n";
      for (double v : field.values) out << v << "\n";
    }
  }
}

void save_vtk_points(const UnstructuredMesh& mesh,
                     const std::vector<VtkField>& fields,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_vtk_points: cannot open " + path);
  save_vtk_points(mesh, fields, out);
}

}  // namespace sweep::mesh
