#pragma once
// Submesh extraction: drop cells from a mesh and rebuild a consistent
// UnstructuredMesh (faces between kept and dropped cells become boundary
// faces). Used to punch voids/obstacles into the synthetic meshes — real
// engineering meshes (the paper's well_logging, prismtet) have exactly this
// kind of irregular topology, and it exercises the schedulers on meshes with
// holes, concavities and (optionally) multiple components.

#include <functional>
#include <vector>

#include "mesh/mesh.hpp"

namespace sweep::mesh {

/// Keeps exactly the cells with keep[c] == true. Returns the new mesh and,
/// via `old_to_new` (if non-null), the cell id remapping (kInvalidCell for
/// dropped cells). Throws if nothing is kept.
UnstructuredMesh extract_submesh(const UnstructuredMesh& mesh,
                                 const std::vector<bool>& keep,
                                 std::vector<CellId>* old_to_new = nullptr);

/// Convenience: drop every cell whose centroid satisfies `inside_void`.
UnstructuredMesh punch_void(const UnstructuredMesh& mesh,
                            const std::function<bool(const Vec3&)>& inside_void);

/// Convenience: drop cells inside a sphere.
UnstructuredMesh punch_spherical_void(const UnstructuredMesh& mesh,
                                      const Vec3& center, double radius);

}  // namespace sweep::mesh
