#include "mesh/structured.hpp"

#include <stdexcept>

namespace sweep::mesh {

UnstructuredMesh make_structured_grid(const StructuredDims& dims, double lx,
                                      double ly, double lz) {
  if (dims.nx == 0 || dims.ny == 0 || dims.nz == 0) {
    throw std::invalid_argument("make_structured_grid: zero dimension");
  }
  if (lx <= 0.0 || ly <= 0.0 || lz <= 0.0) {
    throw std::invalid_argument("make_structured_grid: non-positive extent");
  }
  const double hx = lx / static_cast<double>(dims.nx);
  const double hy = ly / static_cast<double>(dims.ny);
  const double hz = lz / static_cast<double>(dims.nz);
  const double cell_volume = hx * hy * hz;

  auto id = [&](std::size_t i, std::size_t j, std::size_t k) {
    return static_cast<CellId>(i + dims.nx * (j + dims.ny * k));
  };

  std::vector<Vec3> centroids;
  centroids.reserve(dims.n_cells());
  std::vector<double> volumes(dims.n_cells(), cell_volume);
  for (std::size_t k = 0; k < dims.nz; ++k) {
    for (std::size_t j = 0; j < dims.ny; ++j) {
      for (std::size_t i = 0; i < dims.nx; ++i) {
        centroids.push_back({(static_cast<double>(i) + 0.5) * hx,
                             (static_cast<double>(j) + 0.5) * hy,
                             (static_cast<double>(k) + 0.5) * hz});
      }
    }
  }

  std::vector<Face> faces;
  faces.reserve(3 * dims.n_cells() + dims.nx * dims.ny + dims.ny * dims.nz +
                dims.nx * dims.nz);
  auto add_face = [&](CellId a, CellId b, const Vec3& normal, double area,
                      const Vec3& centroid) {
    Face f;
    f.cell_a = a;
    f.cell_b = b;
    f.unit_normal = normal;
    f.area = area;
    f.centroid = centroid;
    faces.push_back(f);
  };

  const double ax = hy * hz;
  const double ay = hx * hz;
  const double az = hx * hy;
  for (std::size_t k = 0; k < dims.nz; ++k) {
    for (std::size_t j = 0; j < dims.ny; ++j) {
      for (std::size_t i = 0; i < dims.nx; ++i) {
        const CellId c = id(i, j, k);
        const Vec3 cc = centroids[c];
        // +x face (interior when i+1 < nx, boundary otherwise); -x boundary
        // faces emitted at i == 0 so every boundary face appears once.
        const CellId xp = i + 1 < dims.nx ? id(i + 1, j, k) : kInvalidCell;
        add_face(c, xp, {1, 0, 0}, ax, cc + Vec3{hx / 2, 0, 0});
        if (i == 0) add_face(c, kInvalidCell, {-1, 0, 0}, ax, cc - Vec3{hx / 2, 0, 0});
        const CellId yp = j + 1 < dims.ny ? id(i, j + 1, k) : kInvalidCell;
        add_face(c, yp, {0, 1, 0}, ay, cc + Vec3{0, hy / 2, 0});
        if (j == 0) add_face(c, kInvalidCell, {0, -1, 0}, ay, cc - Vec3{0, hy / 2, 0});
        const CellId zp = k + 1 < dims.nz ? id(i, j, k + 1) : kInvalidCell;
        add_face(c, zp, {0, 0, 1}, az, cc + Vec3{0, 0, hz / 2});
        if (k == 0) add_face(c, kInvalidCell, {0, 0, -1}, az, cc - Vec3{0, 0, hz / 2});
      }
    }
  }
  return UnstructuredMesh(std::move(centroids), std::move(volumes),
                          std::move(faces), "structured");
}

std::array<std::size_t, 3> structured_cell_coords(CellId cell,
                                                  const StructuredDims& dims) {
  const std::size_t i = cell % dims.nx;
  const std::size_t j = (cell / dims.nx) % dims.ny;
  const std::size_t k = cell / (dims.nx * dims.ny);
  return {i, j, k};
}

}  // namespace sweep::mesh
