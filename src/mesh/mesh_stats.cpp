#include "mesh/mesh_stats.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <vector>

namespace sweep::mesh {

MeshStats compute_stats(const UnstructuredMesh& mesh) {
  MeshStats s;
  s.n_cells = mesh.n_cells();
  s.n_faces = mesh.n_faces();
  s.n_interior_faces = mesh.n_interior_faces();
  s.n_boundary_faces = mesh.n_boundary_faces();
  if (s.n_cells == 0) return s;

  s.min_degree = mesh.degree(0);
  s.max_degree = s.min_degree;
  std::size_t degree_sum = 0;
  s.min_volume = mesh.volume(0);
  s.max_volume = s.min_volume;
  for (CellId c = 0; c < s.n_cells; ++c) {
    const std::size_t d = mesh.degree(c);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    degree_sum += d;
    s.min_volume = std::min(s.min_volume, mesh.volume(c));
    s.max_volume = std::max(s.max_volume, mesh.volume(c));
    s.total_volume += mesh.volume(c);
  }
  s.mean_degree = static_cast<double>(degree_sum) / static_cast<double>(s.n_cells);
  std::tie(s.bbox_lo, s.bbox_hi) = mesh.centroid_bounds();
  return s;
}

std::string to_string(const MeshStats& s) {
  std::ostringstream out;
  out << "cells=" << s.n_cells << " faces=" << s.n_faces << " (interior "
      << s.n_interior_faces << ", boundary " << s.n_boundary_faces << ")"
      << " degree[min/mean/max]=" << s.min_degree << "/" << s.mean_degree
      << "/" << s.max_degree << " volume[min/max/total]=" << s.min_volume
      << "/" << s.max_volume << "/" << s.total_volume;
  return out.str();
}

bool is_connected(const UnstructuredMesh& mesh) {
  const std::size_t n = mesh.n_cells();
  if (n == 0) return true;
  std::vector<char> seen(n, 0);
  std::vector<CellId> stack = {0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const CellId c = stack.back();
    stack.pop_back();
    for (FaceId f : mesh.faces_of(c)) {
      const CellId nb = mesh.neighbor_across(c, f);
      if (nb != kInvalidCell && !seen[nb]) {
        seen[nb] = 1;
        ++visited;
        stack.push_back(nb);
      }
    }
  }
  return visited == n;
}

}  // namespace sweep::mesh
