#pragma once
// Unstructured 2D triangulation generators. These are the planar bases that
// extrude.hpp lifts into 3D tetrahedral / prism meshes.
//
// Construction: a logical quad grid over a parametric domain, vertices
// jittered (interior only, so the domain boundary stays intact), each quad
// split along the diagonal through its minimum-global-index corner. The
// min-index rule makes diagonal choices consistent between neighboring quads
// and — crucially — consistent with the prism tetrahedralization used by the
// extruder, yielding conforming 3D meshes.

#include <array>
#include <cstdint>
#include <vector>

namespace sweep::mesh {

struct TriMesh2D {
  std::vector<std::array<double, 2>> vertices;
  std::vector<std::array<std::uint32_t, 3>> triangles;  ///< CCW vertex ids

  [[nodiscard]] std::size_t n_vertices() const { return vertices.size(); }
  [[nodiscard]] std::size_t n_triangles() const { return triangles.size(); }
};

/// Jittered triangulated grid over [0,width] x [0,height] with nu x nv
/// vertices (nu, nv >= 2). jitter is the fraction of the local spacing by
/// which interior vertices are perturbed (0 = structured, 0.3 = typical).
TriMesh2D make_grid_triangulation(std::size_t nu, std::size_t nv, double width,
                                  double height, double jitter,
                                  std::uint64_t seed);

/// Jittered triangulated annulus (full 2*pi, seam-free via wrap-around):
/// `sectors` columns around, `rings` vertex rows from r_inner to r_outer.
/// Models well-logging-style cylindrical shell geometries.
TriMesh2D make_annulus_triangulation(std::size_t sectors, std::size_t rings,
                                     double r_inner, double r_outer,
                                     double jitter, std::uint64_t seed);

/// Total signed area (positive when all triangles are CCW).
double total_area(const TriMesh2D& tri);

/// True if every triangle has positive area (no inverted elements).
bool all_triangles_positive(const TriMesh2D& tri);

}  // namespace sweep::mesh
