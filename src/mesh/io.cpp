#include "mesh/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sweep::mesh {

void save_mesh(const UnstructuredMesh& mesh, std::ostream& out) {
  out << "sweepmesh 1\n";
  out << "name " << (mesh.name().empty() ? "unnamed" : mesh.name()) << "\n";
  out << std::setprecision(17);
  out << "cells " << mesh.n_cells() << "\n";
  for (CellId c = 0; c < mesh.n_cells(); ++c) {
    const Vec3& p = mesh.centroid(c);
    out << p.x << ' ' << p.y << ' ' << p.z << ' ' << mesh.volume(c) << "\n";
  }
  out << "faces " << mesh.n_faces() << "\n";
  for (const Face& f : mesh.faces()) {
    const long long b = f.is_boundary() ? -1 : static_cast<long long>(f.cell_b);
    out << f.cell_a << ' ' << b << ' ' << f.unit_normal.x << ' '
        << f.unit_normal.y << ' ' << f.unit_normal.z << ' ' << f.area << ' '
        << f.centroid.x << ' ' << f.centroid.y << ' ' << f.centroid.z << "\n";
  }
}

void save_mesh(const UnstructuredMesh& mesh, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_mesh: cannot open " + path);
  save_mesh(mesh, out);
}

UnstructuredMesh load_mesh(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "sweepmesh" || version != 1) {
    throw std::runtime_error("load_mesh: bad header");
  }
  std::string key, name;
  if (!(in >> key >> name) || key != "name") {
    throw std::runtime_error("load_mesh: expected 'name'");
  }
  std::size_t n = 0;
  if (!(in >> key >> n) || key != "cells") {
    throw std::runtime_error("load_mesh: expected 'cells'");
  }
  std::vector<Vec3> centroids(n);
  std::vector<double> volumes(n);
  for (std::size_t c = 0; c < n; ++c) {
    if (!(in >> centroids[c].x >> centroids[c].y >> centroids[c].z >> volumes[c])) {
      throw std::runtime_error("load_mesh: truncated cell record");
    }
  }
  std::size_t nf = 0;
  if (!(in >> key >> nf) || key != "faces") {
    throw std::runtime_error("load_mesh: expected 'faces'");
  }
  std::vector<Face> faces(nf);
  for (std::size_t i = 0; i < nf; ++i) {
    Face& f = faces[i];
    long long b = 0;
    if (!(in >> f.cell_a >> b >> f.unit_normal.x >> f.unit_normal.y >>
          f.unit_normal.z >> f.area >> f.centroid.x >> f.centroid.y >>
          f.centroid.z)) {
      throw std::runtime_error("load_mesh: truncated face record");
    }
    f.cell_b = b < 0 ? kInvalidCell : static_cast<CellId>(b);
  }
  return UnstructuredMesh(std::move(centroids), std::move(volumes),
                          std::move(faces), name);
}

UnstructuredMesh load_mesh(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_mesh: cannot open " + path);
  return load_mesh(in);
}

}  // namespace sweep::mesh
