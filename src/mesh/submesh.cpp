#include "mesh/submesh.hpp"

#include <stdexcept>

namespace sweep::mesh {

UnstructuredMesh extract_submesh(const UnstructuredMesh& mesh,
                                 const std::vector<bool>& keep,
                                 std::vector<CellId>* old_to_new) {
  if (keep.size() != mesh.n_cells()) {
    throw std::invalid_argument("extract_submesh: keep mask size mismatch");
  }
  std::vector<CellId> remap(mesh.n_cells(), kInvalidCell);
  std::vector<Vec3> centroids;
  std::vector<double> volumes;
  for (CellId c = 0; c < mesh.n_cells(); ++c) {
    if (!keep[c]) continue;
    remap[c] = static_cast<CellId>(centroids.size());
    centroids.push_back(mesh.centroid(c));
    volumes.push_back(mesh.volume(c));
  }
  if (centroids.empty()) {
    throw std::invalid_argument("extract_submesh: no cells kept");
  }

  std::vector<Face> faces;
  faces.reserve(mesh.n_faces());
  for (const Face& f : mesh.faces()) {
    const bool keep_a = remap[f.cell_a] != kInvalidCell;
    const bool keep_b = !f.is_boundary() && remap[f.cell_b] != kInvalidCell;
    if (!keep_a && !keep_b) continue;
    Face nf = f;
    if (keep_a && keep_b) {
      nf.cell_a = remap[f.cell_a];
      nf.cell_b = remap[f.cell_b];
    } else if (keep_a) {
      nf.cell_a = remap[f.cell_a];
      nf.cell_b = kInvalidCell;  // neighbor dropped -> boundary face
    } else {
      // Only cell_b kept: it becomes the owner; flip the normal so it still
      // points away from the owning cell.
      nf.cell_a = remap[f.cell_b];
      nf.cell_b = kInvalidCell;
      nf.unit_normal = -f.unit_normal;
    }
    faces.push_back(nf);
  }
  if (old_to_new != nullptr) *old_to_new = std::move(remap);
  return UnstructuredMesh(std::move(centroids), std::move(volumes),
                          std::move(faces), mesh.name() + "_sub");
}

UnstructuredMesh punch_void(const UnstructuredMesh& mesh,
                            const std::function<bool(const Vec3&)>& inside_void) {
  std::vector<bool> keep(mesh.n_cells());
  for (CellId c = 0; c < mesh.n_cells(); ++c) {
    keep[c] = !inside_void(mesh.centroid(c));
  }
  return extract_submesh(mesh, keep);
}

UnstructuredMesh punch_spherical_void(const UnstructuredMesh& mesh,
                                      const Vec3& center, double radius) {
  const double r2 = radius * radius;
  return punch_void(mesh, [&](const Vec3& p) {
    return norm2(p - center) < r2;
  });
}

}  // namespace sweep::mesh
