#include "mesh/extrude.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace sweep::mesh {
namespace {

constexpr std::uint32_t kNoVertex = 0xffffffffu;

/// Canonical (sorted, padded) face key for matching faces between cells.
struct FaceKey {
  std::array<std::uint32_t, 4> v{kNoVertex, kNoVertex, kNoVertex, kNoVertex};
  bool operator==(const FaceKey&) const = default;
};

struct FaceKeyHash {
  std::size_t operator()(const FaceKey& k) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::uint32_t x : k.v) {
      h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

FaceKey make_key(const std::uint32_t* ids, std::size_t count) {
  FaceKey key;
  std::copy_n(ids, count, key.v.begin());
  std::sort(key.v.begin(), key.v.begin() + static_cast<std::ptrdiff_t>(count));
  return key;
}

/// Incrementally assembles faces: registers each cell's faces, pairs up
/// interior faces, computes geometry and divergence-theorem volumes.
class FaceAssembler {
 public:
  FaceAssembler(const std::vector<Vec3>& positions, std::size_t n_cells)
      : positions_(positions), volumes_(n_cells, 0.0) {
    by_key_.reserve(n_cells * 2);
  }

  /// Registers one face of `cell` given by `count` (3 or 4) vertex ids.
  /// `cell_centroid` orients the normal outward on first registration.
  void add_face(CellId cell, const Vec3& cell_centroid, const std::uint32_t* ids,
                std::size_t count) {
    const FaceKey key = make_key(ids, count);
    // Face centroid and area normal from the vertex loop (quads are handled
    // as two triangles so warped quads still get a well-defined normal).
    Vec3 centroid{};
    for (std::size_t i = 0; i < count; ++i) centroid += positions_[ids[i]];
    centroid = centroid / static_cast<double>(count);
    Vec3 area_normal{};
    double volume_flux = 0.0;  // sum of dot(tri centroid, tri area normal)
    const Vec3& base = positions_[ids[0]];
    for (std::size_t i = 1; i + 1 < count; ++i) {
      const Vec3& p = positions_[ids[i]];
      const Vec3& q = positions_[ids[i + 1]];
      const Vec3 tri_an = triangle_area_normal(base, p, q);
      area_normal += tri_an;
      volume_flux += dot((base + p + q) / 3.0, tri_an);
    }
    const double area = norm(area_normal);
    if (area <= 0.0) throw std::runtime_error("extrude: degenerate face");
    Vec3 unit = area_normal / area;
    // Orient outward from this cell.
    double sign = 1.0;
    if (dot(unit, centroid - cell_centroid) < 0.0) sign = -1.0;

    auto [it, inserted] = by_key_.try_emplace(key, faces_.size());
    if (inserted) {
      Face face;
      face.cell_a = cell;
      face.unit_normal = unit * sign;
      face.area = area;
      face.centroid = centroid;
      faces_.push_back(face);
    } else {
      Face& face = faces_[it->second];
      if (!face.is_boundary()) {
        throw std::runtime_error("extrude: non-manifold face (3+ cells)");
      }
      if (face.cell_a == cell) {
        throw std::runtime_error("extrude: face registered twice by one cell");
      }
      face.cell_b = cell;
      // Stored normal points from cell_a to cell_b, so from cell_b's side it
      // must point back toward cell_b's own centroid direction reversed:
      // dot(n, face_centroid - centroid_b) should be negative.
      if (dot(face.unit_normal, centroid - cell_centroid) > 0.0) {
        throw std::runtime_error("extrude: inconsistent face orientation");
      }
    }
    // Divergence theorem accumulation with the outward sign for this cell.
    volumes_[cell] += sign * volume_flux / 3.0;
  }

  [[nodiscard]] std::vector<Face> take_faces() { return std::move(faces_); }
  [[nodiscard]] std::vector<double> take_volumes() { return std::move(volumes_); }

 private:
  const std::vector<Vec3>& positions_;
  std::vector<Face> faces_;
  std::vector<double> volumes_;
  std::unordered_map<FaceKey, std::size_t, FaceKeyHash> by_key_;
};

/// Splits prism v[0..5] (bottom triangle v0,v1,v2; top v3,v4,v5; v(i+3) above
/// v(i)) into 3 tets using the min-global-index diagonal rule on the three
/// quad faces. Returns tets as global vertex quadruples.
std::array<std::array<std::uint32_t, 4>, 3> split_prism(
    std::array<std::uint32_t, 6> v) {
  // Diagonal choice per quad: the diagonal containing the quad's min vertex.
  // Quads (local ids): Q0=(0,1,4,3) diag {0,4} or {1,3};
  //                    Q1=(1,2,5,4) diag {1,5} or {2,4};
  //                    Q2=(2,0,3,5) diag {2,3} or {0,5}.
  auto diag_hits_first = [&](int a, int b, int c, int d) {
    // Quad corners in order (a,b,c,d) with candidate diagonals {a,c}/{b,d};
    // returns true if the min-id corner lies on {a,c}.
    const std::uint32_t lo =
        std::min(std::min(v[static_cast<std::size_t>(a)], v[static_cast<std::size_t>(b)]),
                 std::min(v[static_cast<std::size_t>(c)], v[static_cast<std::size_t>(d)]));
    return lo == v[static_cast<std::size_t>(a)] || lo == v[static_cast<std::size_t>(c)];
  };

  // Find an apex vertex incident to the chosen diagonals of both of its
  // quads. The global-min vertex of the prism always qualifies, so this
  // search cannot fail for min-index-rule diagonals.
  int apex = -1;
  {
    const bool d0 = diag_hits_first(0, 1, 4, 3);  // true: {0,4}
    const bool d1 = diag_hits_first(1, 2, 5, 4);  // true: {1,5}
    const bool d2 = diag_hits_first(2, 0, 3, 5);  // true: {2,3}
    int count[6] = {0, 0, 0, 0, 0, 0};
    if (d0) { ++count[0]; ++count[4]; } else { ++count[1]; ++count[3]; }
    if (d1) { ++count[1]; ++count[5]; } else { ++count[2]; ++count[4]; }
    if (d2) { ++count[2]; ++count[3]; } else { ++count[0]; ++count[5]; }
    for (int i = 0; i < 6; ++i) {
      if (count[i] == 2) { apex = i; break; }
    }
  }
  if (apex < 0) {
    throw std::runtime_error("split_prism: cyclic diagonal configuration "
                             "(min-index rule violated)");
  }

  // Normalize: if the apex is a top vertex, flip the prism upside down
  // (bottom<->top); then rotate so the apex is local vertex 0.
  if (apex >= 3) {
    v = {v[3], v[4], v[5], v[0], v[1], v[2]};
    apex -= 3;
  }
  if (apex != 0) {
    const auto r = static_cast<std::size_t>(apex);
    v = {v[r % 3], v[(r + 1) % 3], v[(r + 2) % 3],
         v[3 + r % 3], v[3 + (r + 1) % 3], v[3 + (r + 2) % 3]};
  }
  // Now the diagonals of Q0 and Q2 both pass through local vertex 0, i.e.
  // they are {0,4} and {0,5}. Tet 1 caps the top; the remaining wedge is
  // split by Q1's diagonal.
  const bool q1_through_1 = diag_hits_first(1, 2, 5, 4);
  std::array<std::array<std::uint32_t, 4>, 3> tets;
  tets[0] = {v[0], v[3], v[4], v[5]};
  if (q1_through_1) {
    tets[1] = {v[0], v[1], v[2], v[5]};
    tets[2] = {v[0], v[1], v[5], v[4]};
  } else {
    tets[1] = {v[0], v[1], v[2], v[4]};
    tets[2] = {v[0], v[2], v[5], v[4]};
  }
  return tets;
}

}  // namespace

std::size_t extruded_cell_count(const TriMesh2D& base,
                                const ExtrudeOptions& opts) {
  const std::size_t prisms =
      base.n_triangles() * std::min(opts.prism_layers, opts.layers);
  const std::size_t tet_layers = opts.layers - std::min(opts.prism_layers, opts.layers);
  return prisms + 3 * base.n_triangles() * tet_layers;
}

UnstructuredMesh extrude_to_3d(const TriMesh2D& base, const ExtrudeOptions& opts) {
  if (opts.layers == 0) throw std::invalid_argument("extrude: layers must be >= 1");
  if (opts.height <= 0.0) throw std::invalid_argument("extrude: height must be > 0");
  if (base.n_triangles() == 0) throw std::invalid_argument("extrude: empty base");
  if (opts.z_jitter < 0.0 || opts.z_jitter > 0.45) {
    throw std::invalid_argument("extrude: z_jitter must be in [0, 0.45]");
  }

  const std::size_t nv2 = base.n_vertices();
  const std::size_t planes = opts.layers + 1;
  const double hz = opts.height / static_cast<double>(opts.layers);
  util::Rng rng(opts.seed);

  // 3D vertex positions: plane-major layout, interior planes jittered in z.
  std::vector<Vec3> positions;
  positions.reserve(nv2 * planes);
  for (std::size_t l = 0; l < planes; ++l) {
    for (std::size_t i = 0; i < nv2; ++i) {
      double z = static_cast<double>(l) * hz;
      if (l > 0 && l + 1 < planes) z += opts.z_jitter * hz * rng.next_double(-1.0, 1.0);
      positions.emplace_back(base.vertices[i][0], base.vertices[i][1], z);
    }
  }
  auto gid = [nv2](std::size_t plane, std::uint32_t v2d) {
    return static_cast<std::uint32_t>(plane * nv2 + v2d);
  };

  const std::size_t prism_layers = std::min(opts.prism_layers, opts.layers);
  const std::size_t n_cells = extruded_cell_count(base, opts);

  std::vector<Vec3> centroids;
  centroids.reserve(n_cells);
  FaceAssembler assembler(positions, n_cells);

  auto cell_centroid = [&](const std::uint32_t* ids, std::size_t count) {
    Vec3 c{};
    for (std::size_t i = 0; i < count; ++i) c += positions[ids[i]];
    return c / static_cast<double>(count);
  };

  CellId next_cell = 0;
  for (std::size_t l = 0; l < opts.layers; ++l) {
    for (const auto& t : base.triangles) {
      const std::array<std::uint32_t, 6> pv = {gid(l, t[0]),     gid(l, t[1]),
                                               gid(l, t[2]),     gid(l + 1, t[0]),
                                               gid(l + 1, t[1]), gid(l + 1, t[2])};
      if (l < prism_layers) {
        const CellId cell = next_cell++;
        const Vec3 cc = cell_centroid(pv.data(), 6);
        centroids.push_back(cc);
        const std::uint32_t bottom[3] = {pv[0], pv[1], pv[2]};
        const std::uint32_t top[3] = {pv[3], pv[4], pv[5]};
        const std::uint32_t q0[4] = {pv[0], pv[1], pv[4], pv[3]};
        const std::uint32_t q1[4] = {pv[1], pv[2], pv[5], pv[4]};
        const std::uint32_t q2[4] = {pv[2], pv[0], pv[3], pv[5]};
        assembler.add_face(cell, cc, bottom, 3);
        assembler.add_face(cell, cc, top, 3);
        assembler.add_face(cell, cc, q0, 4);
        assembler.add_face(cell, cc, q1, 4);
        assembler.add_face(cell, cc, q2, 4);
      } else {
        for (const auto& tet : split_prism(pv)) {
          const CellId cell = next_cell++;
          const Vec3 cc = cell_centroid(tet.data(), 4);
          centroids.push_back(cc);
          const std::uint32_t f0[3] = {tet[1], tet[2], tet[3]};
          const std::uint32_t f1[3] = {tet[0], tet[2], tet[3]};
          const std::uint32_t f2[3] = {tet[0], tet[1], tet[3]};
          const std::uint32_t f3[3] = {tet[0], tet[1], tet[2]};
          assembler.add_face(cell, cc, f0, 3);
          assembler.add_face(cell, cc, f1, 3);
          assembler.add_face(cell, cc, f2, 3);
          assembler.add_face(cell, cc, f3, 3);
        }
      }
    }
  }

  std::vector<double> volumes = assembler.take_volumes();
  for (double v : volumes) {
    if (!(v > 0.0)) {
      throw std::runtime_error("extrude: non-positive cell volume (inverted element)");
    }
  }
  return UnstructuredMesh(std::move(centroids), std::move(volumes),
                          assembler.take_faces(), opts.name);
}

}  // namespace sweep::mesh
