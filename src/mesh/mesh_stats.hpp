#pragma once
// Descriptive statistics of a mesh's cell-adjacency structure — used by the
// harnesses to report the instances and by tests to validate generators.

#include <string>

#include "mesh/mesh.hpp"

namespace sweep::mesh {

struct MeshStats {
  std::size_t n_cells = 0;
  std::size_t n_faces = 0;
  std::size_t n_interior_faces = 0;
  std::size_t n_boundary_faces = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  double min_volume = 0.0;
  double max_volume = 0.0;
  double total_volume = 0.0;
  Vec3 bbox_lo;
  Vec3 bbox_hi;
};

MeshStats compute_stats(const UnstructuredMesh& mesh);

std::string to_string(const MeshStats& stats);

/// True iff the interior-face adjacency graph is connected (BFS).
bool is_connected(const UnstructuredMesh& mesh);

}  // namespace sweep::mesh
