#pragma once
// Legacy-VTK export for visualization in ParaView/VisIt. The mesh container
// keeps cell centroids (not vertex topology), so cells are exported as a
// point cloud with per-cell scalar fields — ample for eyeballing partitions,
// processor assignments and sweep wavefronts (color by start time).

#include <iosfwd>
#include <string>
#include <vector>

#include "mesh/mesh.hpp"

namespace sweep::mesh {

struct VtkField {
  std::string name;            ///< no spaces (VTK identifier)
  std::vector<double> values;  ///< one per cell
};

/// Writes "# vtk DataFile Version 3.0" POLYDATA with one point per cell and
/// the given per-cell fields as POINT_DATA scalars.
/// Throws std::invalid_argument on field-size mismatch.
void save_vtk_points(const UnstructuredMesh& mesh,
                     const std::vector<VtkField>& fields, std::ostream& out);
void save_vtk_points(const UnstructuredMesh& mesh,
                     const std::vector<VtkField>& fields,
                     const std::string& path);

}  // namespace sweep::mesh
