#include "mesh/zoo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mesh/extrude.hpp"
#include "mesh/tri2d.hpp"

namespace sweep::mesh {
namespace {

std::size_t scaled(std::size_t base, double scale, std::size_t floor_value) {
  const auto v = static_cast<std::size_t>(
      std::llround(static_cast<double>(base) * scale));
  return std::max(v, floor_value);
}

}  // namespace

UnstructuredMesh MeshZoo::tetonly_like(double scale, std::uint64_t seed) {
  // Full scale: 2*19*19 triangles x 15 layers x 3 tets = 32,490 cells.
  const std::size_t nu = scaled(20, scale, 3);
  const std::size_t nv = scaled(20, scale, 3);
  const TriMesh2D base =
      make_grid_triangulation(nu, nv, 1.0, 1.0, 0.35, seed);
  ExtrudeOptions opts;
  opts.layers = scaled(15, scale, 2);
  opts.height = 0.8;
  opts.z_jitter = 0.25;
  opts.prism_layers = 0;
  opts.seed = seed ^ 0xabcdULL;
  opts.name = "tetonly";
  return extrude_to_3d(base, opts);
}

UnstructuredMesh MeshZoo::well_logging_like(double scale, std::uint64_t seed) {
  // Full scale: 2*48*10 triangles x 15 layers x 3 tets = 43,200 cells,
  // cylindrical shell geometry (borehole-logging style).
  const std::size_t sectors = scaled(48, scale, 6);
  const std::size_t rings = scaled(11, scale, 3);
  const TriMesh2D base =
      make_annulus_triangulation(sectors, rings, 0.5, 2.0, 0.3, seed);
  ExtrudeOptions opts;
  opts.layers = scaled(15, scale, 2);
  opts.height = 3.0;
  opts.z_jitter = 0.25;
  opts.prism_layers = 0;
  opts.seed = seed ^ 0xabcdULL;
  opts.name = "well_logging";
  return extrude_to_3d(base, opts);
}

UnstructuredMesh MeshZoo::long_like(double scale, std::uint64_t seed) {
  // Full scale: 2*61*8 triangles x 21 layers x 3 tets = 61,488 cells in an
  // 8:1:1 elongated box (deep dependency chains along x).
  const std::size_t nu = scaled(62, scale, 4);
  const std::size_t nv = scaled(9, scale, 3);
  const TriMesh2D base =
      make_grid_triangulation(nu, nv, 8.0, 1.0, 0.35, seed);
  ExtrudeOptions opts;
  opts.layers = scaled(21, scale, 2);
  opts.height = 1.0;
  opts.z_jitter = 0.25;
  opts.prism_layers = 0;
  opts.seed = seed ^ 0xabcdULL;
  opts.name = "long";
  return extrude_to_3d(base, opts);
}

UnstructuredMesh MeshZoo::prismtet_like(double scale, std::uint64_t seed) {
  // Full scale: 2*32*32 = 2048 triangles, 25 layers of which the bottom 8
  // stay prisms: 2048*8 + 2048*3*17 = 120,832 cells, mixed element types.
  const std::size_t nu = scaled(33, scale, 4);
  const std::size_t nv = scaled(33, scale, 4);
  const TriMesh2D base =
      make_grid_triangulation(nu, nv, 1.0, 1.0, 0.3, seed);
  ExtrudeOptions opts;
  opts.layers = scaled(25, scale, 3);
  opts.height = 1.0;
  opts.z_jitter = 0.2;
  opts.prism_layers = std::min(scaled(8, scale, 1), opts.layers / 2 + 1);
  opts.seed = seed ^ 0xabcdULL;
  opts.name = "prismtet";
  return extrude_to_3d(base, opts);
}

const std::vector<std::string>& MeshZoo::names() {
  static const std::vector<std::string> kNames = {"tetonly", "well_logging",
                                                  "long", "prismtet"};
  return kNames;
}

UnstructuredMesh MeshZoo::by_name(const std::string& name, double scale,
                                  std::uint64_t seed) {
  if (name == "tetonly") return tetonly_like(scale, seed);
  if (name == "well_logging") return well_logging_like(scale, seed);
  if (name == "long") return long_like(scale, seed);
  if (name == "prismtet") return prismtet_like(scale, seed);
  throw std::invalid_argument("MeshZoo: unknown mesh name '" + name + "'");
}

}  // namespace sweep::mesh
