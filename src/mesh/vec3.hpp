#pragma once
// Small 3D vector type used for cell centroids, face normals and sweep
// directions. Header-only and constexpr-friendly.

#include <cmath>

namespace sweep::mesh {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr bool operator==(const Vec3& o) const = default;
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

inline double norm(const Vec3& v) { return std::sqrt(dot(v, v)); }

constexpr double norm2(const Vec3& v) { return dot(v, v); }

inline Vec3 normalized(const Vec3& v) {
  const double n = norm(v);
  return n > 0.0 ? v / n : Vec3{};
}

/// Signed volume of tetrahedron (a,b,c,d): dot(b-a, cross(c-a, d-a)) / 6.
inline double tet_volume(const Vec3& a, const Vec3& b, const Vec3& c,
                         const Vec3& d) {
  return dot(b - a, cross(c - a, d - a)) / 6.0;
}

/// Area-weighted normal of triangle (a,b,c); |result| = area, direction by
/// right-hand rule.
inline Vec3 triangle_area_normal(const Vec3& a, const Vec3& b, const Vec3& c) {
  return cross(b - a, c - a) * 0.5;
}

}  // namespace sweep::mesh
