#pragma once
// MeshZoo: named synthetic stand-ins for the four proprietary meshes used in
// the paper's experiments (Section 5):
//
//   paper mesh      cells     zoo stand-in
//   tetonly         31,481    jittered tetrahedralized box       (~32.5k)
//   well_logging    43,012    tetrahedralized cylindrical shell  (~43.2k)
//   long            61,737    high-aspect-ratio tetrahedralized box (~61.5k)
//   prismtet       118,211    mixed prism+tet extruded box       (~120.8k)
//
// `scale` multiplies the linear resolution in every dimension, so cell counts
// scale roughly with scale^3; scale=1 reproduces the paper-size instances and
// benches default to smaller scales for single-core turnaround.

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/mesh.hpp"

namespace sweep::mesh {

class MeshZoo {
 public:
  static UnstructuredMesh tetonly_like(double scale = 1.0, std::uint64_t seed = 101);
  static UnstructuredMesh well_logging_like(double scale = 1.0, std::uint64_t seed = 102);
  static UnstructuredMesh long_like(double scale = 1.0, std::uint64_t seed = 103);
  static UnstructuredMesh prismtet_like(double scale = 1.0, std::uint64_t seed = 104);

  /// Names accepted by by_name (the paper's mesh names).
  static const std::vector<std::string>& names();

  /// Throws std::invalid_argument for unknown names.
  static UnstructuredMesh by_name(const std::string& name, double scale = 1.0,
                                  std::uint64_t seed = 100);
};

}  // namespace sweep::mesh
