#include "mesh/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sweep::mesh {

UnstructuredMesh::UnstructuredMesh(std::vector<Vec3> centroids,
                                   std::vector<double> volumes,
                                   std::vector<Face> faces, std::string name)
    : centroids_(std::move(centroids)),
      volumes_(std::move(volumes)),
      faces_(std::move(faces)),
      name_(std::move(name)) {
  const auto n = static_cast<CellId>(centroids_.size());
  if (volumes_.size() != centroids_.size()) {
    throw std::invalid_argument("mesh: centroid/volume size mismatch");
  }
  for (const Face& f : faces_) {
    if (f.cell_a >= n) throw std::invalid_argument("mesh: face cell_a out of range");
    if (f.cell_b != kInvalidCell) {
      if (f.cell_b >= n) throw std::invalid_argument("mesh: face cell_b out of range");
      if (f.cell_b == f.cell_a) throw std::invalid_argument("mesh: self-adjacent face");
      if (f.area <= 0.0) throw std::invalid_argument("mesh: interior face with non-positive area");
      ++n_interior_faces_;
    }
    const double nn = norm(f.unit_normal);
    if (std::abs(nn - 1.0) > 1e-6) {
      throw std::invalid_argument("mesh: face normal is not unit length");
    }
  }

  // CSR construction: count incident faces, prefix-sum, fill.
  cell_face_offsets_.assign(n + 1, 0);
  for (const Face& f : faces_) {
    ++cell_face_offsets_[f.cell_a + 1];
    if (!f.is_boundary()) ++cell_face_offsets_[f.cell_b + 1];
  }
  for (CellId c = 0; c < n; ++c) {
    cell_face_offsets_[c + 1] += cell_face_offsets_[c];
  }
  cell_faces_.resize(cell_face_offsets_[n]);
  std::vector<std::uint32_t> cursor(cell_face_offsets_.begin(),
                                    cell_face_offsets_.end() - 1);
  for (FaceId fid = 0; fid < faces_.size(); ++fid) {
    const Face& f = faces_[fid];
    cell_faces_[cursor[f.cell_a]++] = fid;
    if (!f.is_boundary()) cell_faces_[cursor[f.cell_b]++] = fid;
  }
}

std::size_t UnstructuredMesh::degree(CellId c) const {
  std::size_t deg = 0;
  for (FaceId f : faces_of(c)) {
    if (!faces_[f].is_boundary()) ++deg;
  }
  return deg;
}

UnstructuredMesh::AdjacencyCsr UnstructuredMesh::adjacency() const {
  AdjacencyCsr csr;
  const auto n = static_cast<CellId>(n_cells());
  csr.offsets.assign(n + 1, 0);
  for (const Face& f : faces_) {
    if (f.is_boundary()) continue;
    ++csr.offsets[f.cell_a + 1];
    ++csr.offsets[f.cell_b + 1];
  }
  for (CellId c = 0; c < n; ++c) csr.offsets[c + 1] += csr.offsets[c];
  csr.neighbors.resize(csr.offsets[n]);
  std::vector<std::uint32_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (const Face& f : faces_) {
    if (f.is_boundary()) continue;
    csr.neighbors[cursor[f.cell_a]++] = f.cell_b;
    csr.neighbors[cursor[f.cell_b]++] = f.cell_a;
  }
  return csr;
}

double UnstructuredMesh::total_volume() const {
  double total = 0.0;
  for (double v : volumes_) total += v;
  return total;
}

std::pair<Vec3, Vec3> UnstructuredMesh::centroid_bounds() const {
  if (centroids_.empty()) return {Vec3{}, Vec3{}};
  Vec3 lo = centroids_.front();
  Vec3 hi = centroids_.front();
  for (const Vec3& c : centroids_) {
    lo.x = std::min(lo.x, c.x);
    lo.y = std::min(lo.y, c.y);
    lo.z = std::min(lo.z, c.z);
    hi.x = std::max(hi.x, c.x);
    hi.y = std::max(hi.y, c.y);
    hi.z = std::max(hi.z, c.z);
  }
  return {lo, hi};
}

}  // namespace sweep::mesh
