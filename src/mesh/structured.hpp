#pragma once
// Structured hexahedral grid meshes. The paper's Related Work notes that on
// *regular* meshes the KBA algorithm [6] is essentially optimal — this
// generator provides the regular counterpart of the unstructured zoo so the
// KBA baseline (core/kba.hpp) can be compared against the randomized
// algorithms on its home turf.

#include <array>
#include <cstdint>

#include "mesh/mesh.hpp"

namespace sweep::mesh {

struct StructuredDims {
  std::size_t nx = 1;
  std::size_t ny = 1;
  std::size_t nz = 1;

  [[nodiscard]] std::size_t n_cells() const { return nx * ny * nz; }
};

/// Regular nx x ny x nz hex grid over [0,lx] x [0,ly] x [0,lz]; cell (i,j,k)
/// has id i + nx*(j + ny*k). All faces are axis-aligned.
UnstructuredMesh make_structured_grid(const StructuredDims& dims,
                                      double lx = 1.0, double ly = 1.0,
                                      double lz = 1.0);

/// Inverse of the id formula above.
std::array<std::size_t, 3> structured_cell_coords(CellId cell,
                                                  const StructuredDims& dims);

}  // namespace sweep::mesh
