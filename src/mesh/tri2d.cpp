#include "mesh/tri2d.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"

namespace sweep::mesh {
namespace {

double tri_area2(const std::array<double, 2>& a, const std::array<double, 2>& b,
                 const std::array<double, 2>& c) {
  return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
}

/// Emit the two triangles of quad (v00,v10,v11,v01), cutting along the
/// diagonal that contains the minimum vertex id. Triangle winding follows the
/// quad's winding, so CCW quads yield CCW triangles.
void split_quad(std::uint32_t v00, std::uint32_t v10, std::uint32_t v11,
                std::uint32_t v01,
                std::vector<std::array<std::uint32_t, 3>>& out) {
  const std::uint32_t lo = std::min(std::min(v00, v10), std::min(v11, v01));
  if (lo == v00 || lo == v11) {
    out.push_back({v00, v10, v11});
    out.push_back({v00, v11, v01});
  } else {
    out.push_back({v00, v10, v01});
    out.push_back({v10, v11, v01});
  }
}

}  // namespace

TriMesh2D make_grid_triangulation(std::size_t nu, std::size_t nv, double width,
                                  double height, double jitter,
                                  std::uint64_t seed) {
  if (nu < 2 || nv < 2) throw std::invalid_argument("grid: need nu,nv >= 2");
  util::Rng rng(seed);
  TriMesh2D tri;
  tri.vertices.reserve(nu * nv);
  const double hx = width / static_cast<double>(nu - 1);
  const double hy = height / static_cast<double>(nv - 1);
  for (std::size_t j = 0; j < nv; ++j) {
    for (std::size_t i = 0; i < nu; ++i) {
      double x = static_cast<double>(i) * hx;
      double y = static_cast<double>(j) * hy;
      const bool interior_x = i > 0 && i + 1 < nu;
      const bool interior_y = j > 0 && j + 1 < nv;
      // Jitter only where it cannot invert a triangle or deform the boundary:
      // interior vertices get full 2D jitter, edge vertices slide along the
      // boundary tangent.
      if (interior_x) x += jitter * hx * rng.next_double(-0.5, 0.5);
      if (interior_y) y += jitter * hy * rng.next_double(-0.5, 0.5);
      tri.vertices.push_back({x, y});
    }
  }
  auto id = [nu](std::size_t i, std::size_t j) {
    return static_cast<std::uint32_t>(j * nu + i);
  };
  tri.triangles.reserve(2 * (nu - 1) * (nv - 1));
  for (std::size_t j = 0; j + 1 < nv; ++j) {
    for (std::size_t i = 0; i + 1 < nu; ++i) {
      split_quad(id(i, j), id(i + 1, j), id(i + 1, j + 1), id(i, j + 1),
                 tri.triangles);
    }
  }
  return tri;
}

TriMesh2D make_annulus_triangulation(std::size_t sectors, std::size_t rings,
                                     double r_inner, double r_outer,
                                     double jitter, std::uint64_t seed) {
  if (sectors < 3 || rings < 2) {
    throw std::invalid_argument("annulus: need sectors >= 3, rings >= 2");
  }
  if (r_inner <= 0.0 || r_outer <= r_inner) {
    throw std::invalid_argument("annulus: need 0 < r_inner < r_outer");
  }
  util::Rng rng(seed);
  TriMesh2D tri;
  tri.vertices.reserve(sectors * rings);
  const double dtheta = 2.0 * std::numbers::pi / static_cast<double>(sectors);
  const double dr = (r_outer - r_inner) / static_cast<double>(rings - 1);
  for (std::size_t j = 0; j < rings; ++j) {
    for (std::size_t i = 0; i < sectors; ++i) {
      double theta = static_cast<double>(i) * dtheta;
      double r = r_inner + static_cast<double>(j) * dr;
      // Angular jitter everywhere (the ring is periodic); radial jitter only
      // on interior rings so the inner/outer boundaries stay circular.
      theta += jitter * dtheta * rng.next_double(-0.5, 0.5);
      if (j > 0 && j + 1 < rings) r += jitter * dr * rng.next_double(-0.5, 0.5);
      tri.vertices.push_back({r * std::cos(theta), r * std::sin(theta)});
    }
  }
  auto id = [sectors](std::size_t i, std::size_t j) {
    return static_cast<std::uint32_t>(j * sectors + (i % sectors));
  };
  tri.triangles.reserve(2 * sectors * (rings - 1));
  for (std::size_t j = 0; j + 1 < rings; ++j) {
    for (std::size_t i = 0; i < sectors; ++i) {
      // CCW in Cartesian coordinates: radius increases first, then angle.
      split_quad(id(i, j), id(i, j + 1), id(i + 1, j + 1), id(i + 1, j),
                 tri.triangles);
    }
  }
  return tri;
}

double total_area(const TriMesh2D& tri) {
  double area = 0.0;
  for (const auto& t : tri.triangles) {
    area += 0.5 * tri_area2(tri.vertices[t[0]], tri.vertices[t[1]],
                            tri.vertices[t[2]]);
  }
  return area;
}

bool all_triangles_positive(const TriMesh2D& tri) {
  for (const auto& t : tri.triangles) {
    if (tri_area2(tri.vertices[t[0]], tri.vertices[t[1]], tri.vertices[t[2]]) <=
        0.0) {
      return false;
    }
  }
  return true;
}

}  // namespace sweep::mesh
