#pragma once
// Plain-text mesh serialization: lets experiments snapshot generated meshes
// and reload them for exact replay across runs or tools.

#include <iosfwd>
#include <string>

#include "mesh/mesh.hpp"

namespace sweep::mesh {

/// Format (whitespace separated):
///   sweepmesh 1
///   name <string-without-spaces>
///   cells <n>
///   x y z volume            (n lines)
///   faces <f>
///   a b nx ny nz area cx cy cz   (f lines; b = -1 for boundary faces)
void save_mesh(const UnstructuredMesh& mesh, std::ostream& out);
void save_mesh(const UnstructuredMesh& mesh, const std::string& path);

/// Throws std::runtime_error on malformed input.
UnstructuredMesh load_mesh(std::istream& in);
UnstructuredMesh load_mesh(const std::string& path);

}  // namespace sweep::mesh
