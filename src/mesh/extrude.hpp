#pragma once
// Extrusion of a 2D triangulation into an unstructured 3D mesh of
// tetrahedra and/or triangular prisms.
//
// Each (triangle, layer) pair forms a prism. Prisms in the bottom
// `prism_layers` layers are kept as prism cells; the rest are split into
// three tetrahedra using the minimum-global-vertex-index diagonal rule, which
// guarantees that the triangulations of shared quad faces agree between
// neighboring prisms (so the resulting mesh is conforming).
//
// Face geometry (area, unit normal, centroid) and cell volumes (divergence
// theorem, exact for planar faces) are computed during assembly; the result
// is a ready-to-sweep UnstructuredMesh.

#include <cstdint>
#include <string>

#include "mesh/mesh.hpp"
#include "mesh/tri2d.hpp"

namespace sweep::mesh {

struct ExtrudeOptions {
  std::size_t layers = 1;        ///< number of cell layers in z
  double height = 1.0;           ///< total extrusion height
  double z_jitter = 0.0;         ///< vertex z perturbation, fraction of layer height
  std::size_t prism_layers = 0;  ///< bottom layers kept as prisms (rest become tets)
  std::uint64_t seed = 1;        ///< jitter seed
  std::string name = "extruded";
};

/// Extrudes `base` according to `opts`. Throws std::invalid_argument on bad
/// options and std::runtime_error if assembly detects a non-conforming or
/// inverted configuration (which would indicate a generator bug).
UnstructuredMesh extrude_to_3d(const TriMesh2D& base, const ExtrudeOptions& opts);

/// Number of cells extrude_to_3d will produce for the given base/options:
/// prisms in the bottom `prism_layers` layers, 3 tets per prism elsewhere.
std::size_t extruded_cell_count(const TriMesh2D& base, const ExtrudeOptions& opts);

}  // namespace sweep::mesh
