#pragma once
// UnstructuredMesh: the cell-adjacency view of an unstructured mesh that the
// sweep-scheduling pipeline consumes.
//
// Only cell-level information is retained: centroids, volumes, and faces with
// oriented unit normals. Vertices are generator-internal. Faces are stored
// once; interior faces reference both incident cells, boundary faces have an
// invalid second cell. A CSR cell->face index supports O(deg) neighbor
// iteration.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "mesh/vec3.hpp"

namespace sweep::mesh {

using CellId = std::uint32_t;
using FaceId = std::uint32_t;
inline constexpr CellId kInvalidCell = std::numeric_limits<CellId>::max();

struct Face {
  CellId cell_a = kInvalidCell;  ///< always valid
  CellId cell_b = kInvalidCell;  ///< kInvalidCell for boundary faces
  Vec3 unit_normal;              ///< unit normal oriented from cell_a to cell_b
  double area = 0.0;
  Vec3 centroid;

  [[nodiscard]] bool is_boundary() const { return cell_b == kInvalidCell; }
};

class UnstructuredMesh {
 public:
  UnstructuredMesh() = default;

  /// Builds the CSR adjacency from raw cell and face arrays.
  /// Throws std::invalid_argument on malformed input (bad cell ids, zero-area
  /// interior faces, self-adjacent faces).
  UnstructuredMesh(std::vector<Vec3> centroids, std::vector<double> volumes,
                   std::vector<Face> faces, std::string name = "");

  [[nodiscard]] std::size_t n_cells() const { return centroids_.size(); }
  [[nodiscard]] std::size_t n_faces() const { return faces_.size(); }
  [[nodiscard]] std::size_t n_interior_faces() const { return n_interior_faces_; }
  [[nodiscard]] std::size_t n_boundary_faces() const {
    return faces_.size() - n_interior_faces_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] const Vec3& centroid(CellId c) const { return centroids_[c]; }
  [[nodiscard]] double volume(CellId c) const { return volumes_[c]; }
  [[nodiscard]] const Face& face(FaceId f) const { return faces_[f]; }
  [[nodiscard]] const std::vector<Face>& faces() const { return faces_; }
  [[nodiscard]] const std::vector<Vec3>& centroids() const { return centroids_; }
  [[nodiscard]] const std::vector<double>& volumes() const { return volumes_; }

  /// Face ids incident to cell c (interior and boundary).
  [[nodiscard]] std::span<const FaceId> faces_of(CellId c) const {
    return {cell_faces_.data() + cell_face_offsets_[c],
            cell_face_offsets_[c + 1] - cell_face_offsets_[c]};
  }

  /// Neighbor of cell c across face f; kInvalidCell if f is a boundary face.
  [[nodiscard]] CellId neighbor_across(CellId c, FaceId f) const {
    const Face& face = faces_[f];
    if (face.cell_a == c) return face.cell_b;
    return face.cell_a;
  }

  /// Outward-oriented unit normal of face f as seen from cell c.
  [[nodiscard]] Vec3 outward_normal(CellId c, FaceId f) const {
    const Face& face = faces_[f];
    return face.cell_a == c ? face.unit_normal : -face.unit_normal;
  }

  /// Number of interior neighbors of a cell.
  [[nodiscard]] std::size_t degree(CellId c) const;

  /// Undirected cell-adjacency graph in CSR form (interior faces only):
  /// `offsets[c]..offsets[c+1]` indexes `neighbors`. Used by the partitioner.
  struct AdjacencyCsr {
    std::vector<std::uint32_t> offsets;
    std::vector<CellId> neighbors;
  };
  [[nodiscard]] AdjacencyCsr adjacency() const;

  /// Total mesh volume.
  [[nodiscard]] double total_volume() const;

  /// Axis-aligned bounding box over centroids: {min, max}.
  [[nodiscard]] std::pair<Vec3, Vec3> centroid_bounds() const;

 private:
  std::vector<Vec3> centroids_;
  std::vector<double> volumes_;
  std::vector<Face> faces_;
  std::vector<std::uint32_t> cell_face_offsets_;
  std::vector<FaceId> cell_faces_;
  std::size_t n_interior_faces_ = 0;
  std::string name_;
};

}  // namespace sweep::mesh
