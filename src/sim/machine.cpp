#include "sim/machine.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace sweep::sim {

SimulationResult simulate_execution(const dag::SweepInstance& instance,
                                    const core::Schedule& schedule,
                                    const MachineModel& model) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::size_t total = n * k;
  if (schedule.n_tasks() != total) {
    throw std::invalid_argument("simulate_execution: shape mismatch");
  }
  if (!schedule.complete()) {
    throw std::invalid_argument("simulate_execution: schedule incomplete");
  }
  if (model.task_time <= 0.0) {
    throw std::invalid_argument("simulate_execution: task_time must be > 0");
  }

  // Replay order: scheduled start time, then processor, then task id. Every
  // predecessor (same DAG) and every earlier same-processor task sorts
  // strictly before a task, so single-pass evaluation is well defined.
  std::vector<core::TaskId> order(total);
  for (core::TaskId t = 0; t < total; ++t) order[t] = t;
  std::sort(order.begin(), order.end(), [&](core::TaskId a, core::TaskId b) {
    if (schedule.start(a) != schedule.start(b)) {
      return schedule.start(a) < schedule.start(b);
    }
    if (schedule.processor_of(a) != schedule.processor_of(b)) {
      return schedule.processor_of(a) < schedule.processor_of(b);
    }
    return a < b;
  });

  const std::size_t m = schedule.n_processors();
  std::vector<double> cpu_available(m, 0.0);
  std::vector<double> nic_free(m, 0.0);
  std::vector<double> input_ready(total, 0.0);

  SimulationResult result;
  for (core::TaskId t : order) {
    const auto p = schedule.processor_of(t);
    const double start = std::max(cpu_available[p], input_ready[t]);
    result.total_wait_time += std::max(0.0, input_ready[t] - cpu_available[p]);
    const double finish = start + model.task_time;
    result.total_busy_time += model.task_time;
    result.completion_time = std::max(result.completion_time, finish);

    // Deliver outputs.
    const auto v = core::task_cell(t, n);
    const auto dir = core::task_direction(t, n);
    const dag::SweepDag& g = instance.dag(dir);
    bool sent_any = false;
    for (dag::NodeId w : g.successors(v)) {
      const core::TaskId succ = core::task_id(w, dir, n);
      if (schedule.processor_of_cell(w) == p) {
        input_ready[succ] = std::max(input_ready[succ], finish);
      } else {
        const double nic_start = std::max(finish, nic_free[p]);
        nic_free[p] = nic_start + model.byte_time;
        const double arrival = nic_free[p] + model.latency;
        input_ready[succ] = std::max(input_ready[succ], arrival);
        ++result.messages_sent;
        sent_any = true;
      }
    }

    // CPU availability after this task: ride ahead of the NIC by at most
    // `sends_in_flight` queued messages; fully synchronous senders wait for
    // delivery of everything they sent.
    double cpu_next = finish;
    if (sent_any) {
      if (model.sends_in_flight == 0) {
        cpu_next = std::max(cpu_next, nic_free[p] + model.latency);
      } else {
        cpu_next = std::max(
            cpu_next, nic_free[p] - static_cast<double>(model.sends_in_flight) *
                                        model.byte_time);
      }
    }
    result.total_blocked_time += cpu_next - finish;
    cpu_available[p] = cpu_next;
  }
  return result;
}

}  // namespace sweep::sim
