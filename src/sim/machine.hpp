#pragma once
// Discrete-event distributed-machine simulator.
//
// The paper brackets reality with two extreme communication measures (C1,
// C2) and notes that "in reality, interprocessor communication will increase
// the time until all tasks are processed in a way that is hard to model".
// This module models it the standard way HPC codes are modeled: each
// processor executes its assigned tasks in schedule order; every
// cross-processor DAG edge becomes a message with an alpha-beta cost
// (latency + size/bandwidth); a processor may overlap communication with
// computation up to `sends_in_flight` concurrent sends (0 = blocking sends).
// The simulator replays a *precomputed* Schedule (it keeps the schedule's
// per-processor task order) and reports when every task actually finishes —
// i.e. how the zero-communication makespan stretches on a real machine.
//
// This is the bridge between the paper's simulated study and an MPI
// implementation: C1 predicts the bandwidth term, C2 the round count, and
// the simulator shows where between those extremes a given network lands.

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"
#include "sweep/instance.hpp"

namespace sweep::sim {

struct MachineModel {
  double task_time = 1.0;       ///< execution time of one (cell,direction) task
  double latency = 0.1;         ///< alpha: per-message latency
  double byte_time = 0.01;      ///< beta: per-message transfer time (1 "unit" payload)
  /// Max concurrent outstanding sends per processor; further sends block the
  /// sender. 0 means fully synchronous (send blocks until delivered).
  std::size_t sends_in_flight = 4;
};

struct SimulationResult {
  double completion_time = 0.0;          ///< when the last task finished
  double total_busy_time = 0.0;          ///< sum of task execution times
  double total_blocked_time = 0.0;       ///< time processors spent send-blocked
  double total_wait_time = 0.0;          ///< time spent waiting for inputs
  std::size_t messages_sent = 0;         ///< == C1 cross edges
  /// completion_time / (total_busy_time / m): parallel efficiency denominator.
  [[nodiscard]] double efficiency(std::size_t n_processors) const {
    if (completion_time <= 0.0 || n_processors == 0) return 1.0;
    return total_busy_time /
           (static_cast<double>(n_processors) * completion_time);
  }
};

/// Replays `schedule` on the modeled machine. The schedule must be complete
/// and feasible; each processor executes its tasks in increasing scheduled
/// start order, waiting for upstream messages as needed.
SimulationResult simulate_execution(const dag::SweepInstance& instance,
                                    const core::Schedule& schedule,
                                    const MachineModel& model = {});

}  // namespace sweep::sim
