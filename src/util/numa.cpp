#include "util/numa.hpp"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <string>

namespace sweep::util::numa {
namespace {

/// Sanity cap: a parse that claims more nodes than this is treated as
/// malformed (the kernel's nodelist for any real machine is tiny).
constexpr std::uint64_t kMaxNodes = 4096;

bool parse_number(std::string_view text, std::size_t& pos,
                  std::uint64_t& out) {
  if (pos >= text.size() ||
      std::isdigit(static_cast<unsigned char>(text[pos])) == 0) {
    return false;
  }
  std::uint64_t v = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
    v = v * 10 + static_cast<std::uint64_t>(text[pos] - '0');
    if (v > kMaxNodes) return false;
    ++pos;
  }
  out = v;
  return true;
}

}  // namespace

std::size_t parse_node_list(std::string_view text) {
  // Trim trailing whitespace/newline (the /sys read keeps the '\n').
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  if (text.empty()) return 0;
  std::size_t pos = 0;
  std::uint64_t count = 0;
  for (;;) {
    std::uint64_t lo = 0;
    if (!parse_number(text, pos, lo)) return 0;
    std::uint64_t hi = lo;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      if (!parse_number(text, pos, hi) || hi < lo) return 0;
    }
    count += hi - lo + 1;
    if (count > kMaxNodes) return 0;
    if (pos == text.size()) return static_cast<std::size_t>(count);
    if (text[pos] != ',') return 0;
    ++pos;
  }
}

std::size_t node_count() {
  static const std::size_t count = [] {
    std::ifstream in("/sys/devices/system/node/online");
    if (!in) return std::size_t{1};
    std::string line;
    std::getline(in, line);
    const std::size_t parsed = parse_node_list(line);
    return parsed > 0 ? parsed : std::size_t{1};
  }();
  return count;
}

}  // namespace sweep::util::numa
