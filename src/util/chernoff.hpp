#pragma once
// Tail-bound machinery from the paper (Lemma 1 and Eq. (3)).
//
// These functions back the *analytical* side of the reproduction: the tests
// verify that empirical layer loads of the Random Delay algorithm stay below
// the bounds these functions predict, which is exactly the content of
// Lemmas 2-4 of the paper.

namespace sweep::util {

/// Chernoff upper-tail factor G(mu, delta) = (e^delta / (1+delta)^(1+delta))^mu
/// from Lemma 1(a). Computed in log-space for robustness.
double chernoff_g(double mu, double delta);

/// Pr[X >= mu(1+delta)] bound, i.e. min(1, G(mu, delta)).
double chernoff_tail(double mu, double delta);

/// F(mu, p) from Lemma 1(b): a load threshold such that Pr[X > F(mu,p)] < p.
/// `slack` is the constant `a` in the paper (any sufficiently large constant
/// works; the default is validated by tests against direct simulation).
double lemma1_f(double mu, double p, double slack = 2.0);

/// H(mu, p) in the spirit of Eq. (3) (used by the improved
/// O(log m log log log m) analysis): a concave-in-mu majorant of the expected
/// balls-in-bins maximum. Note: the paper's literal two-branch H is not
/// globally concave; this is its concave regularization (first branch capped
/// at mu = ln(1/p)/e^2, tangential linear extension beyond), which preserves
/// both properties Corollary 2 needs. `big_c` is the constant C of the paper.
double improved_h(double mu, double p, double big_c = 2.0);

/// Expected maximum bin load when `balls` balls are thrown into `bins` bins
/// uniformly, per Corollary 2(b): H(t/m, 1/m^2) + t/m.
double expected_max_load_bound(double balls, double bins, double big_c = 2.0);

}  // namespace sweep::util
