#include "util/chernoff.hpp"

#include <algorithm>
#include <cmath>

namespace sweep::util {

double chernoff_g(double mu, double delta) {
  if (mu <= 0.0 || delta <= 0.0) return 1.0;
  // log G = mu * (delta - (1+delta) log(1+delta))
  const double log_g = mu * (delta - (1.0 + delta) * std::log1p(delta));
  return std::exp(log_g);
}

double chernoff_tail(double mu, double delta) {
  return std::min(1.0, chernoff_g(mu, delta));
}

double lemma1_f(double mu, double p, double slack) {
  if (mu <= 0.0 || p <= 0.0 || p >= 1.0) return mu;
  const double lp = std::log(1.0 / p);
  if (mu <= lp / std::exp(1.0)) {
    // F = a * ln(1/p) / ln(ln(1/p)/mu); denominator >= 1 in this branch.
    const double denom = std::log(lp / mu);
    return slack * lp / std::max(denom, 1.0);
  }
  return mu + slack * std::sqrt(lp * mu);
}

double improved_h(double mu, double p, double big_c) {
  if (mu <= 0.0 || p <= 0.0 || p >= 1.0) return 0.0;
  const double lp = std::log(1.0 / p);
  // Concave regularization of the paper's Eq. (3): the literal two-branch H
  // is concave only for mu <= lp/e^2 (between lp/e^2 and lp/e it is convex),
  // but Corollary 2(a) needs global concavity for the Jensen step. We follow
  // the first branch while it is concave and extend tangentially (slope
  // C e^2/4) beyond; the extension still majorizes the balls-in-bins maximum
  // (verified against simulation in the tests) and is continuous/smooth at
  // the junction.
  const double e2 = std::exp(2.0);
  const double mu1 = lp / e2;
  if (mu <= mu1) {
    return big_c * lp / std::log(lp / mu);  // ln(lp/mu) >= 2 here
  }
  return big_c * (lp / 4.0 + e2 * mu / 4.0);
}

double expected_max_load_bound(double balls, double bins, double big_c) {
  if (bins <= 0.0) return balls;
  if (balls <= 0.0) return 0.0;
  const double mu = balls / bins;
  const double p = 1.0 / (bins * bins);
  return improved_h(mu, p, big_c) + mu;
}

}  // namespace sweep::util
