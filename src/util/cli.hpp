#pragma once
// Minimal command-line option parser shared by the bench harnesses and
// examples. Supports "--name value", "--name=value" and boolean flags
// ("--full"). Unknown options raise an error listing valid names so each
// binary is self-documenting via --help.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sweep::util {

class CliParser {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register options before parse(). `help` is shown by --help.
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. Returns false if --help was requested (help printed) or an
  /// error occurred (message printed); callers should exit in that case.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string str(const std::string& name) const;
  /// Numeric accessors parse strictly (whole token, in range) and throw
  /// std::invalid_argument naming the option on malformed values — a typo
  /// like "--procs=abc" must not silently become 0 processors downstream.
  [[nodiscard]] std::int64_t integer(const std::string& name) const;
  [[nodiscard]] double real(const std::string& name) const;
  /// Comma-separated integer list, e.g. "--procs 8,16,32". Empty string is
  /// the empty list; empty or malformed elements throw.
  [[nodiscard]] std::vector<std::int64_t> int_list(const std::string& name) const;

  void print_help() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
};

}  // namespace sweep::util
