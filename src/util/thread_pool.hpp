#pragma once
// Persistent worker-thread pool. parallel_for used to spawn (and join) fresh
// std::threads on every call; at bench scale that is thousands of
// spawn/join cycles per binary. The pool keeps workers alive for the process
// lifetime and feeds them closures through a simple mutex-guarded queue —
// the grain sizes in this library (one DAG induction, one schedule run) are
// far larger than the enqueue cost, so nothing fancier is needed.
//
// Deadlock safety: users of the pool (parallel_for) never *wait* for a
// queued job to start — the submitting thread always participates in the
// work itself, so nested parallel sections make progress even when every
// worker is busy.

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace sweep::util {

class ThreadPool {
 public:
  /// n_threads = 0 uses hardware_concurrency (minimum 1 worker).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a job. Jobs must not block waiting for other queued jobs.
  void submit(std::function<void()> job);

  /// The process-wide pool (lazily constructed, joined at exit). All
  /// parallel_for calls share it.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stop_ = false;
};

}  // namespace sweep::util
