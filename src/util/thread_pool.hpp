#pragma once
// Persistent worker-thread pool. parallel_for used to spawn (and join) fresh
// std::threads on every call; at bench scale that is thousands of
// spawn/join cycles per binary. The pool keeps workers alive for the process
// lifetime and feeds them closures through a simple mutex-guarded queue —
// the grain sizes in this library (one DAG induction, one schedule run) are
// far larger than the enqueue cost, so nothing fancier is needed.
//
// Deadlock safety: users of the pool (parallel_for) never *wait* for a
// queued job to start — the submitting thread always participates in the
// work itself, so nested parallel sections make progress even when every
// worker is busy.
//
// Lifetime contract:
//  - shutdown() (also run by the destructor) drains every job already
//    queued, then joins the workers. It is idempotent but must not race
//    with itself from two threads.
//  - submit() after shutdown has begun throws std::runtime_error — a late
//    job would otherwise be enqueued silently and never run.
//  - global() is a function-local static, so it is destroyed during static
//    destruction in reverse construction order. Do not submit work from
//    other static destructors or from thread_local destructors: whether the
//    pool is still alive then depends on construction order, and calling
//    any member of a destroyed pool is undefined behaviour. (parallel_for
//    degrades to serial execution if the global pool already refuses work.)

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace sweep::util {

class ThreadPool {
 public:
  /// n_threads = 0 uses hardware_concurrency (minimum 1 worker).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a job. Jobs must not block waiting for other queued jobs.
  /// Throws std::runtime_error if the pool has been shut down.
  void submit(std::function<void()> job);

  /// Drains the queue, joins all workers, and refuses further submits.
  /// Idempotent; after it returns, size() is 0.
  void shutdown();

  /// The process-wide pool (lazily constructed, joined at exit). All
  /// parallel_for calls share it. See the lifetime contract above.
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stop_ = false;
};

}  // namespace sweep::util
