#pragma once
// 64-byte-aligned bump arena for the scheduling engines' per-call scratch
// state (DESIGN.md §12). The engines' hot loops walk several parallel
// per-task lanes (indegree, slot, processor, bucket); carving them out of
// one reusable allocation
//   - starts every lane on its own cache line (no false sharing between
//     lanes that different shards write),
//   - replaces N vector allocations per call with zero once warm (trial
//     fan-outs run thousands of schedules per thread),
//   - keeps lane base pointers computable from one block pointer, which is
//     what lets the batched indegree kernels autovectorize (the compiler
//     can assume 64-byte alignment via the aligned allocation).
//
// Usage: reserve() the call's total footprint once, then alloc() each lane.
// alloc() never grows the block — growth would invalidate previously
// returned lanes — so an alloc beyond the reservation throws. Lanes are
// uninitialized unless alloc_zero() is used; only trivial types are
// supported (nothing is ever destroyed, the cursor just rewinds).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <stdexcept>
#include <type_traits>

namespace sweep::util {

class Arena {
 public:
  static constexpr std::size_t kAlignment = 64;

  Arena() = default;
  ~Arena() {
    if (block_ != nullptr) {
      ::operator delete[](block_, std::align_val_t{kAlignment});
    }
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rewinds the cursor and guarantees `bytes` of capacity (rounded up per
  /// lane to 64). Invalidates every lane returned since the last reserve.
  void reserve(std::size_t bytes) {
    if (bytes > capacity_) {
      if (block_ != nullptr) {
        ::operator delete[](block_, std::align_val_t{kAlignment});
        block_ = nullptr;
        capacity_ = 0;
      }
      block_ = static_cast<std::byte*>(
          ::operator new[](bytes, std::align_val_t{kAlignment}));
      capacity_ = bytes;
    }
    used_ = 0;
  }

  /// Worst-case footprint of a lane of `n` T's, for sizing reserve().
  template <typename T>
  [[nodiscard]] static constexpr std::size_t lane_bytes(std::size_t n) {
    return round_up(n * sizeof(T)) + kAlignment;
  }

  /// Carves an uninitialized, 64-byte-aligned lane of `n` T's.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena lanes hold trivial types only");
    const std::size_t bytes = round_up(n * sizeof(T));
    if (used_ + bytes > capacity_) {
      throw std::logic_error("Arena: allocation beyond reservation");
    }
    std::byte* p = block_ + used_;
    used_ += bytes;
    return reinterpret_cast<T*>(p);
  }

  /// alloc() + zero-fill (the vectorizable memset path).
  template <typename T>
  [[nodiscard]] T* alloc_zero(std::size_t n) {
    T* p = alloc<T>(n);
    std::memset(static_cast<void*>(p), 0, n * sizeof(T));
    return p;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t used() const { return used_; }

 private:
  static constexpr std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) & ~(kAlignment - 1);
  }

  std::byte* block_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace sweep::util
