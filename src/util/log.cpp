#include "util/log.hpp"

#include <cstdio>

namespace sweep::util {
namespace {
LogLevel g_level = LogLevel::Info;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

void log(LogLevel level, const std::string& message) {
  if (level < g_level || g_level == LogLevel::Off) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace sweep::util
