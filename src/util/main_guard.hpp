#pragma once
// guarded_main: wraps a binary's real entry point so setup exceptions —
// most commonly the strict CliParser numeric parsers rejecting a garbage
// option value — print one clean line to stderr and exit 2 instead of
// reaching std::terminate.

#include <cstdio>
#include <exception>

namespace sweep::util {

template <typename Fn>
int guarded_main(Fn&& run) {
  try {
    return run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

}  // namespace sweep::util
