#pragma once
// Lightweight descriptive statistics used by the experiment harnesses and
// by the statistical (property) tests on the randomized algorithms.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sweep::util {

/// Welford-style online accumulator: numerically stable mean/variance plus
/// min/max, O(1) space.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile with linear interpolation (q in [0,1]); copies and sorts.
double quantile(std::span<const double> values, double q);

double mean(std::span<const double> values);
double stddev(std::span<const double> values);

/// Five-number-ish summary rendered as "mean=... sd=... min=... med=... max=...".
std::string summarize(std::span<const double> values);

/// Histogram with equal-width bins over [lo, hi]; values outside are clamped
/// into the boundary bins. Used by degree/level distribution diagnostics.
std::vector<std::size_t> histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins);

}  // namespace sweep::util
