#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace sweep::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace sweep::util
