#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace sweep::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      // A silently-enqueued job would never run (workers are gone or
      // leaving); surface the misuse instead.
      throw std::runtime_error("ThreadPool::submit: pool is shut down");
    }
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
#if !defined(SWEEP_OBS_DISABLE)
  obs::set_thread_name("pool-worker-" + std::to_string(worker_index));
#else
  (void)worker_index;
#endif
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace sweep::util
