#pragma once
// Tiny leveled logger. Bench harnesses run chatty at Info; tests set Warn.

#include <string>

namespace sweep::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::Debug, m); }
inline void log_info(const std::string& m) { log(LogLevel::Info, m); }
inline void log_warn(const std::string& m) { log(LogLevel::Warn, m); }
inline void log_error(const std::string& m) { log(LogLevel::Error, m); }

}  // namespace sweep::util
