#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sweep::util {
namespace {

/// Strict integer parsing: the whole token must be one base-10 integer in
/// range. strtoll with a null endptr would silently turn "--procs=abc" into
/// 0 downstream; here every malformed value names the offending option.
std::int64_t parse_strict_int(const std::string& name,
                              const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + name + ": expected an integer, got '" +
                                text + "'");
  }
  if (errno == ERANGE) {
    throw std::invalid_argument("--" + name + ": integer out of range: '" +
                                text + "'");
  }
  return value;
}

double parse_strict_real(const std::string& name, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + name + ": expected a number, got '" +
                                text + "'");
  }
  // Overflow to +-HUGE_VAL is an error; denormal underflow (also ERANGE) is
  // an acceptable rounding and kept.
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    throw std::invalid_argument("--" + name + ": number out of range: '" +
                                text + "'");
  }
  return value;
}

bool is_boolean_token(const std::string& text) {
  return text == "true" || text == "false" || text == "1" || text == "0";
}

}  // namespace

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{help, "false", /*is_flag=*/true, false};
}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{help, default_value, /*is_flag=*/false, false};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   program_.c_str(), arg.c_str());
      print_help();
      return false;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "%s: unknown option '--%s'\n", program_.c_str(),
                   name.c_str());
      print_help();
      return false;
    }
    Option& opt = it->second;
    opt.seen = true;
    if (opt.is_flag) {
      const std::string value = inline_value.value_or("true");
      if (!is_boolean_token(value)) {
        std::fprintf(stderr,
                     "%s: flag '--%s' takes no value or true/false/1/0, "
                     "got '%s'\n",
                     program_.c_str(), name.c_str(), value.c_str());
        return false;
      }
      opt.value = value;
    } else if (inline_value) {
      opt.value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '--%s' requires a value\n",
                     program_.c_str(), name.c_str());
        return false;
      }
      opt.value = argv[++i];
    }
  }
  return true;
}

bool CliParser::flag(const std::string& name) const {
  const auto& opt = options_.at(name);
  return opt.value == "true" || opt.value == "1";
}

std::string CliParser::str(const std::string& name) const {
  return options_.at(name).value;
}

std::int64_t CliParser::integer(const std::string& name) const {
  return parse_strict_int(name, options_.at(name).value);
}

double CliParser::real(const std::string& name) const {
  return parse_strict_real(name, options_.at(name).value);
}

std::vector<std::int64_t> CliParser::int_list(const std::string& name) const {
  std::vector<std::int64_t> values;
  const std::string& text = options_.at(name).value;
  if (text.empty()) return values;  // "" is the conventional empty default
  std::size_t start = 0;
  for (;;) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    values.push_back(parse_strict_int(name, text.substr(start, comma - start)));
    if (comma == text.size()) break;
    start = comma + 1;
  }
  return values;
}

void CliParser::print_help() const {
  std::printf("%s — %s\n\nOptions:\n", program_.c_str(), description_.c_str());
  for (const auto& [name, opt] : options_) {
    if (opt.is_flag) {
      std::printf("  --%-22s %s\n", name.c_str(), opt.help.c_str());
    } else {
      std::printf("  --%-22s %s (default: %s)\n", (name + " <v>").c_str(),
                  opt.help.c_str(), opt.value.c_str());
    }
  }
}

}  // namespace sweep::util
