#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sweep::util {

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{help, "false", /*is_flag=*/true, false};
}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{help, default_value, /*is_flag=*/false, false};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   program_.c_str(), arg.c_str());
      print_help();
      return false;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "%s: unknown option '--%s'\n", program_.c_str(),
                   name.c_str());
      print_help();
      return false;
    }
    Option& opt = it->second;
    opt.seen = true;
    if (opt.is_flag) {
      opt.value = inline_value.value_or("true");
    } else if (inline_value) {
      opt.value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '--%s' requires a value\n",
                     program_.c_str(), name.c_str());
        return false;
      }
      opt.value = argv[++i];
    }
  }
  return true;
}

bool CliParser::flag(const std::string& name) const {
  const auto& opt = options_.at(name);
  return opt.value == "true" || opt.value == "1";
}

std::string CliParser::str(const std::string& name) const {
  return options_.at(name).value;
}

std::int64_t CliParser::integer(const std::string& name) const {
  return std::strtoll(options_.at(name).value.c_str(), nullptr, 10);
}

double CliParser::real(const std::string& name) const {
  return std::strtod(options_.at(name).value.c_str(), nullptr);
}

std::vector<std::int64_t> CliParser::int_list(const std::string& name) const {
  std::vector<std::int64_t> values;
  const std::string& text = options_.at(name).value;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    values.push_back(
        std::strtoll(text.substr(start, comma - start).c_str(), nullptr, 10));
    start = comma + 1;
  }
  return values;
}

void CliParser::print_help() const {
  std::printf("%s — %s\n\nOptions:\n", program_.c_str(), description_.c_str());
  for (const auto& [name, opt] : options_) {
    if (opt.is_flag) {
      std::printf("  --%-22s %s\n", name.c_str(), opt.help.c_str());
    } else {
      std::printf("  --%-22s %s (default: %s)\n", (name + " <v>").c_str(),
                  opt.help.c_str(), opt.value.c_str());
    }
  }
}

}  // namespace sweep::util
