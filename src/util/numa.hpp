#pragma once
// hwloc-free NUMA topology hints (DESIGN.md §16). The sharded scheduling
// engine places every shard's hot lanes by first-touch — each worker
// initializes its own shard's slot region before any cross-shard write —
// so on a NUMA machine the OS backs each region with pages local to the
// worker that owns it. This header only *observes* the topology (node
// count from /sys, a round-robin shard->node hint); it never binds threads
// or memory, so it needs neither libnuma nor hwloc and degrades to a
// single-node view wherever /sys is absent (non-Linux, containers).

#include <cstddef>
#include <string_view>

namespace sweep::util::numa {

/// Parses the kernel's cpulist/nodelist syntax ("0", "0-3", "0-1,4") and
/// returns the number of ids it names. Returns 0 on malformed input.
/// Exposed for tests; node_count() applies the fallback-to-1.
[[nodiscard]] std::size_t parse_node_list(std::string_view text);

/// The number of online NUMA nodes per /sys/devices/system/node/online,
/// probed once. Always >= 1: any read or parse failure means "treat the
/// machine as one node".
[[nodiscard]] std::size_t node_count();

/// Round-robin shard->node placement hint: shard % node_count(). Purely
/// advisory — recorded in metrics so operators can see how shards spread
/// across nodes under first-touch.
[[nodiscard]] inline std::size_t preferred_node(std::size_t shard,
                                                std::size_t n_nodes) {
  return n_nodes > 0 ? shard % n_nodes : 0;
}

}  // namespace sweep::util::numa
