#pragma once
// Minimal fork-join parallelism for embarrassingly parallel loops (per-
// direction DAG builds, per-trial experiment batches). Deliberately tiny:
// std::thread + static block partitioning, no work stealing — the grain
// sizes in this library (one DAG induction, one schedule run) are large
// enough that static scheduling is within noise of anything fancier.

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace sweep::util {

/// Runs body(i) for i in [0, count) across up to `threads` std::threads
/// (0 = hardware_concurrency). Blocks until all finish. body must be
/// thread-safe for distinct i; exceptions inside body terminate (keep bodies
/// noexcept in spirit).
inline void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                         std::size_t threads = 0) {
  if (count == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      // Static block partition: worker w handles [begin, end).
      const std::size_t begin = count * w / threads;
      const std::size_t end = count * (w + 1) / threads;
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace sweep::util
