#pragma once
// Fork-join parallelism for embarrassingly parallel loops (per-direction DAG
// builds, per-trial experiment batches), built on the persistent
// util::ThreadPool. The calling thread always participates in the loop and
// pool helpers are strictly optional, so nested parallel_for calls (a trial
// that itself builds an instance in parallel, say) can never deadlock even
// when every pool worker is busy.
//
// The body is a template parameter (no per-index std::function type-erasure)
// and the first exception thrown by any worker is rethrown in the caller
// once the loop has quiesced.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>

#include "util/thread_pool.hpp"

namespace sweep::util {

namespace detail {

/// Control block shared between the caller and pool helpers. Held by
/// shared_ptr so a helper that only gets scheduled after the loop finished
/// can still read `next`/`count` safely; such a stale helper finds no chunk
/// left and never touches the (by then destroyed) loop body.
struct ParallelForState {
  std::size_t count = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;            // guarded by mutex
  std::size_t running_helpers = 0;     // guarded by mutex
  std::mutex mutex;
  std::condition_variable quiesced;
};

template <typename F>
void run_chunks(ParallelForState& state, F& body) {
  for (;;) {
    if (state.failed.load(std::memory_order_relaxed)) return;
    const std::size_t begin =
        state.next.fetch_add(state.chunk, std::memory_order_relaxed);
    if (begin >= state.count) return;
    const std::size_t end = std::min(state.count, begin + state.chunk);
    try {
      for (std::size_t i = begin; i < end; ++i) body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (!state.error) state.error = std::current_exception();
      state.failed.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace detail

/// Runs body(i) for i in [0, count) across up to `threads` concurrent
/// executors (0 = all pool workers plus the caller). Blocks until all
/// indices finish. body must be thread-safe for distinct i. If body throws,
/// remaining chunks are abandoned and the first exception is rethrown here.
template <typename F>
void parallel_for(std::size_t count, F&& body, std::size_t threads = 0) {
  if (count == 0) return;
  ThreadPool& pool = ThreadPool::global();
  if (threads == 0) threads = pool.size() + 1;
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  auto state = std::make_shared<detail::ParallelForState>();
  state->count = count;
  state->chunk = std::max<std::size_t>(1, count / (threads * 8));

  using Body = std::remove_reference_t<F>;
  Body* body_ptr = std::addressof(body);
  auto submit_helper = [&](auto&& helper) {
    // A shut-down global pool (static destruction, explicit shutdown())
    // refuses work; the caller still runs every chunk itself below, so the
    // loop degrades to serial instead of failing.
    try {
      pool.submit(std::forward<decltype(helper)>(helper));
    } catch (const std::runtime_error&) {
      return false;
    }
    return true;
  };
  for (std::size_t h = 0; h + 1 < threads; ++h) {
    const bool submitted = submit_helper([state, body_ptr] {
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        // Late arrival: loop already drained (or aborted) — must not touch
        // *body_ptr, which may no longer exist.
        if (state->failed.load(std::memory_order_relaxed) ||
            state->next.load(std::memory_order_relaxed) >= state->count) {
          return;
        }
        ++state->running_helpers;
      }
      detail::run_chunks(*state, *body_ptr);
      std::lock_guard<std::mutex> lock(state->mutex);
      --state->running_helpers;
      state->quiesced.notify_all();
    });
    if (!submitted) break;
  }

  detail::run_chunks(*state, body);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->quiesced.wait(lock, [&] { return state->running_helpers == 0; });
  // Move the exception OUT of the shared state: a stale helper may drop the
  // last state reference after we return, and it must not be the one that
  // releases the exception object — the main thread has already examined it
  // by then, and the only happens-before runs through libstdc++'s
  // uninstrumented exception_ptr refcount, which ThreadSanitizer cannot see.
  std::exception_ptr error = std::move(state->error);
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace sweep::util
