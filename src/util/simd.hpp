#pragma once
// Data-parallel kernels for the scheduling engines' hot loops (DESIGN.md
// §16): batched indegree decrements with zero-crossing detection, plus a
// software-prefetch helper for the CSR edge walks.
//
// The engines' resolve phases reduce to "for each id in a drained batch,
// decrement a counter; collect the ids whose counter hit zero". The batch
// is unsorted and may contain duplicates (several predecessors of one task
// finishing in the same timestep). Because the decrements commute and each
// counter crosses zero exactly once per batch, the kernel is free to
// reorder: it sorts the batch, collapses duplicate runs into (id, count)
// pairs, and then retires the unique ids in vector blocks — gather,
// subtract the run lengths, scatter, compare-to-zero. Sorting also turns
// the scatter into an ascending walk over the counter lane, which is what
// makes the batch cache- and prefetch-friendly at 10M-task scale.
//
// Dispatch rules (also DESIGN.md §16):
//  - detected_level() probes the CPU once at runtime (AVX2 via
//    __builtin_cpu_supports on x86-64, NEON by compilation target). The
//    portable scalar path is always compiled and always available.
//  - force_level() clamps the active level downward — tests and the
//    engine_kernels bench A/B the vector and scalar paths in one binary
//    and assert bit-identical results.
//  - Building with SWEEP_SIMD=OFF (compile definition SWEEP_SIMD_DISABLE)
//    compiles the intrinsics out entirely; detected_level() is kScalar.
//
// Why bit-identity survives batching: the kernels only ever change the
// *order* of commuting counter decrements and of the zero-crossing
// callbacks; the final counter lane and the *set* of zero-crossed ids are
// order-invariant, and both engines consume that set through operations
// that also commute (bitmap set, min-hint update, count increment). The
// output order of `out` is therefore deliberately unspecified.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sweep::util::simd {

/// Instruction-set levels, ordered: forcing is only ever a downgrade.
enum class Level : std::uint8_t { kScalar = 0, kNEON = 1, kAVX2 = 2 };

[[nodiscard]] const char* level_name(Level level);

/// The best level this build + this machine supports (probed once).
[[nodiscard]] Level detected_level();

/// The level the kernels currently run at: detected_level() unless
/// force_level() lowered it.
[[nodiscard]] Level active_level();

/// Clamps the active level to min(level, detected_level()). Thread-safe
/// (relaxed atomic); intended for process-wide A/B switches in benches and
/// bit-identity tests, not for per-call toggling.
void force_level(Level level);

/// Kernel work accounting, accumulated by the caller and exported as the
/// engine.simd.{batches,fallbacks} counters: `batches` counts retired
/// vector blocks, `fallbacks` counts ids handled by the scalar path
/// (sub-threshold batches, tails shorter than a vector, scalar level).
struct BatchStats {
  std::uint64_t batches = 0;
  std::uint64_t fallbacks = 0;

  BatchStats& operator+=(const BatchStats& o) {
    batches += o.batches;
    fallbacks += o.fallbacks;
    return *this;
  }
};

/// Reusable sort/collapse scratch; keep one per thread and the kernels
/// allocate only until the high-water batch size is reached.
struct BatchScratch {
  std::vector<std::uint32_t> sorted;
  std::vector<std::uint32_t> unique;
  std::vector<std::uint32_t> counts;
};

/// Batches below this many ids skip the sort and run per-occurrence
/// scalar decrements — the sort would cost more than it saves.
inline constexpr std::size_t kSortThreshold = 48;

/// vals[id] -= multiplicity(id) for every id in [ids, ids + n); every id
/// whose counter reaches exactly zero within this batch is appended to
/// `out` (caller guarantees room for n entries). Returns the number of
/// zeros appended, in unspecified order. Duplicates are allowed; the
/// caller guarantees each counter is >= its multiplicity in the batch.
std::size_t decrement_to_zero(std::uint32_t* vals, const std::uint32_t* ids,
                              std::size_t n, std::uint32_t* out,
                              BatchScratch& scratch,
                              BatchStats* stats = nullptr);

/// Variant for the serial slot engine's packed (slot << 8) | indegree
/// words: decrements the low byte (borrow-free by the same multiplicity
/// precondition) and appends the *slot* (word >> 8) of every entry whose
/// low byte reaches zero. Returns the number of slots appended.
std::size_t decrement_packed_to_zero(std::uint32_t* vals,
                                     const std::uint32_t* ids, std::size_t n,
                                     std::uint32_t* out, BatchScratch& scratch,
                                     BatchStats* stats = nullptr);

/// Best-effort read prefetch into a near cache level; no-op where
/// unsupported. The engines issue this one iteration ahead in the CSR
/// successor walks.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/2);
#else
  (void)p;
#endif
}

}  // namespace sweep::util::simd
