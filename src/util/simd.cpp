#include "util/simd.hpp"

#include <algorithm>
#include <atomic>

#if !defined(SWEEP_SIMD_DISABLE)
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SWEEP_SIMD_X86 1
#include <immintrin.h>
#elif defined(__ARM_NEON)
#define SWEEP_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !SWEEP_SIMD_DISABLE

namespace sweep::util::simd {
namespace {

Level probe_level() {
#if defined(SWEEP_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
#elif defined(SWEEP_SIMD_NEON)
  return Level::kNEON;
#endif
  return Level::kScalar;
}

/// The force_level() clamp. Level::kAVX2 is the identity element: active =
/// min(forced, detected), and no real level exceeds kAVX2.
std::atomic<Level> g_forced{Level::kAVX2};

/// Sorts the batch and collapses duplicate runs into scratch.unique /
/// scratch.counts. Returns the number of unique ids.
std::size_t sort_collapse(const std::uint32_t* ids, std::size_t n,
                          BatchScratch& s) {
  s.sorted.assign(ids, ids + n);
  std::sort(s.sorted.begin(), s.sorted.end());
  if (s.unique.size() < n) {
    s.unique.resize(n);
    s.counts.resize(n);
  }
  std::size_t u = 0;
  for (std::size_t i = 0; i < n;) {
    const std::uint32_t id = s.sorted[i];
    std::size_t j = i + 1;
    while (j < n && s.sorted[j] == id) ++j;
    s.unique[u] = id;
    s.counts[u] = static_cast<std::uint32_t>(j - i);
    ++u;
    i = j;
  }
  return u;
}

/// Scalar retire loop over the collapsed (id, count) pairs. kPacked selects
/// the (slot << 8) | indegree semantics (zero test on the low byte, slot
/// payload out).
template <bool kPacked>
std::size_t retire_unique_scalar(std::uint32_t* vals, const BatchScratch& s,
                                 std::size_t n_unique, std::uint32_t* out) {
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < n_unique; ++i) {
    const std::uint32_t id = s.unique[i];
    const std::uint32_t res = vals[id] - s.counts[i];
    vals[id] = res;
    if constexpr (kPacked) {
      if ((res & 0xFFu) == 0) out[zeros++] = res >> 8;
    } else {
      if (res == 0) out[zeros++] = id;
    }
  }
  return zeros;
}

/// Per-occurrence scalar path for sub-threshold batches (no sort).
template <bool kPacked>
std::size_t retire_small_scalar(std::uint32_t* vals, const std::uint32_t* ids,
                                std::size_t n, std::uint32_t* out) {
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t res = --vals[ids[i]];
    if constexpr (kPacked) {
      if ((res & 0xFFu) == 0) out[zeros++] = res >> 8;
    } else {
      if (res == 0) out[zeros++] = ids[i];
    }
  }
  return zeros;
}

#if defined(SWEEP_SIMD_X86)

/// AVX2 retire loop: 8 collapsed (id, count) pairs per block — gather the
/// counters, subtract the run lengths, scatter back with scalar stores
/// (AVX2 has no scatter), and movemask the compare-to-zero lanes. The ids
/// are unique within the batch by construction, so the gather/modify/
/// scatter cannot lose a decrement to an intra-vector conflict.
template <bool kPacked>
__attribute__((target("avx2"))) std::size_t retire_unique_avx2(
    std::uint32_t* vals, const BatchScratch& s, std::size_t n_unique,
    std::uint32_t* out, BatchStats* stats) {
  const std::uint32_t* unique = s.unique.data();
  const std::uint32_t* counts = s.counts.data();
  std::size_t zeros = 0;
  std::size_t i = 0;
  const std::size_t n_blocks = n_unique / 8;
  for (std::size_t b = 0; b < n_blocks; ++b, i += 8) {
    const __m256i vidx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(unique + i));
    const __m256i vcnt = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(counts + i));
    const __m256i vold = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(vals), vidx, 4);
    const __m256i vres = _mm256_sub_epi32(vold, vcnt);
    alignas(32) std::uint32_t res[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(res), vres);
    for (int l = 0; l < 8; ++l) vals[unique[i + l]] = res[l];
    const __m256i probe =
        kPacked ? _mm256_and_si256(vres, _mm256_set1_epi32(0xFF)) : vres;
    const __m256i vzero =
        _mm256_cmpeq_epi32(probe, _mm256_setzero_si256());
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(vzero)));
    while (mask != 0) {
      const int l = __builtin_ctz(mask);
      out[zeros++] = kPacked ? (res[l] >> 8) : unique[i + l];
      mask &= mask - 1;
    }
  }
  if (stats != nullptr) {
    stats->batches += n_blocks;
    stats->fallbacks += n_unique - i;
  }
  for (; i < n_unique; ++i) {
    const std::uint32_t id = unique[i];
    const std::uint32_t res = vals[id] - counts[i];
    vals[id] = res;
    if constexpr (kPacked) {
      if ((res & 0xFFu) == 0) out[zeros++] = res >> 8;
    } else {
      if (res == 0) out[zeros++] = id;
    }
  }
  return zeros;
}

#endif  // SWEEP_SIMD_X86

#if defined(SWEEP_SIMD_NEON)

/// NEON retire loop: 4 pairs per block; NEON has no gather, so lanes are
/// loaded scalar and the subtract/compare run vectorized.
template <bool kPacked>
std::size_t retire_unique_neon(std::uint32_t* vals, const BatchScratch& s,
                               std::size_t n_unique, std::uint32_t* out,
                               BatchStats* stats) {
  const std::uint32_t* unique = s.unique.data();
  const std::uint32_t* counts = s.counts.data();
  std::size_t zeros = 0;
  std::size_t i = 0;
  const std::size_t n_blocks = n_unique / 4;
  for (std::size_t b = 0; b < n_blocks; ++b, i += 4) {
    alignas(16) std::uint32_t gathered[4];
    for (int l = 0; l < 4; ++l) gathered[l] = vals[unique[i + l]];
    const uint32x4_t vold = vld1q_u32(gathered);
    const uint32x4_t vcnt = vld1q_u32(counts + i);
    const uint32x4_t vres = vsubq_u32(vold, vcnt);
    alignas(16) std::uint32_t res[4];
    vst1q_u32(res, vres);
    for (int l = 0; l < 4; ++l) vals[unique[i + l]] = res[l];
    const uint32x4_t probe =
        kPacked ? vandq_u32(vres, vdupq_n_u32(0xFF)) : vres;
    const uint32x4_t vzero = vceqq_u32(probe, vdupq_n_u32(0));
    alignas(16) std::uint32_t zmask[4];
    vst1q_u32(zmask, vzero);
    for (int l = 0; l < 4; ++l) {
      if (zmask[l] != 0) {
        out[zeros++] = kPacked ? (res[l] >> 8) : unique[i + l];
      }
    }
  }
  if (stats != nullptr) {
    stats->batches += n_blocks;
    stats->fallbacks += n_unique - i;
  }
  for (; i < n_unique; ++i) {
    const std::uint32_t id = unique[i];
    const std::uint32_t res = vals[id] - counts[i];
    vals[id] = res;
    if constexpr (kPacked) {
      if ((res & 0xFFu) == 0) out[zeros++] = res >> 8;
    } else {
      if (res == 0) out[zeros++] = id;
    }
  }
  return zeros;
}

#endif  // SWEEP_SIMD_NEON

template <bool kPacked>
std::size_t decrement_impl(std::uint32_t* vals, const std::uint32_t* ids,
                           std::size_t n, std::uint32_t* out,
                           BatchScratch& scratch, BatchStats* stats) {
  if (n == 0) return 0;
  if (n < kSortThreshold) {
    if (stats != nullptr) stats->fallbacks += n;
    return retire_small_scalar<kPacked>(vals, ids, n, out);
  }
  const std::size_t n_unique = sort_collapse(ids, n, scratch);
  switch (active_level()) {
#if defined(SWEEP_SIMD_X86)
    case Level::kAVX2:
      return retire_unique_avx2<kPacked>(vals, scratch, n_unique, out, stats);
#endif
#if defined(SWEEP_SIMD_NEON)
    case Level::kNEON:
      return retire_unique_neon<kPacked>(vals, scratch, n_unique, out, stats);
#endif
    default:
      if (stats != nullptr) stats->fallbacks += n_unique;
      return retire_unique_scalar<kPacked>(vals, scratch, n_unique, out);
  }
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNEON:
      return "neon";
    case Level::kAVX2:
      return "avx2";
  }
  return "unknown";
}

Level detected_level() {
  static const Level level = probe_level();
  return level;
}

Level active_level() {
  return std::min(g_forced.load(std::memory_order_relaxed), detected_level());
}

void force_level(Level level) {
  g_forced.store(level, std::memory_order_relaxed);
}

std::size_t decrement_to_zero(std::uint32_t* vals, const std::uint32_t* ids,
                              std::size_t n, std::uint32_t* out,
                              BatchScratch& scratch, BatchStats* stats) {
  return decrement_impl<false>(vals, ids, n, out, scratch, stats);
}

std::size_t decrement_packed_to_zero(std::uint32_t* vals,
                                     const std::uint32_t* ids, std::size_t n,
                                     std::uint32_t* out, BatchScratch& scratch,
                                     BatchStats* stats) {
  return decrement_impl<true>(vals, ids, n, out, scratch, stats);
}

}  // namespace sweep::util::simd
