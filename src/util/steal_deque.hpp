#pragma once
// Fixed-capacity Chase–Lev work-stealing deque (Chase & Lev, "Dynamic
// Circular Work-Stealing Deque", SPAA'05; memory orderings after Lê,
// Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing for
// Weak Memory Models", PPoPP'13).
//
// Used by the sharded list-scheduling engine (DESIGN.md §12): each worker
// owns one deque holding the simulated processors it must pop this
// timestep; idle workers steal tail-level work from the other shards.
//
// The engine's superstep structure lets us keep this deque deliberately
// narrower than the general algorithm, and race-free at the plain-memory
// level (clean under ThreadSanitizer, no instrumented-atomics caveats):
//
//  - FILL phase (owner only, externally synchronized): reset() + push().
//    No take()/steal() runs concurrently, so push() never races with a
//    buffer read and the circular-array growth protocol is unnecessary —
//    capacity is fixed by reset() and push() past it is a logic error
//    (asserted).
//  - DRAIN phase: the owner calls take(), any thread calls steal().
//    Buffer elements were all written in the fill phase, so the only
//    contended state is the top/bottom indices, handled exactly as in the
//    published algorithm (seq_cst fence in take(), CAS on top).
//
// Every element pushed is claimed by exactly one take()/steal() — the
// engine relies on this for determinism (each active processor must run
// exactly once per timestep). steal() retries internally on a lost CAS,
// so a false return always means "observed empty", never "gave up".

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sweep::util {

template <typename T>
class StealDeque {
 public:
  StealDeque() = default;

  /// Fill phase: empties the deque and guarantees room for `capacity`
  /// pushes. Must not run concurrently with any other member.
  void reset(std::size_t capacity) {
    if (buffer_.size() < capacity) buffer_.resize(capacity);
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
  }

  /// Fill phase, owner only: appends at the bottom. The fill phase is
  /// externally synchronized, so the element write cannot race a reader.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    assert(static_cast<std::size_t>(b) < buffer_.size());
    buffer_[static_cast<std::size_t>(b)] = value;
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Drain phase, owner only: claims the bottom (most recently pushed)
  /// element. Returns false iff the deque is empty (every element already
  /// claimed by take() or a concurrent steal()).
  bool take(T* out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      // Non-empty.
      *out = buffer_[static_cast<std::size_t>(b)];
      if (t == b) {
        // Last element: race the thieves for it.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;
    }
    // Already empty; restore bottom.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  /// Drain phase, any thread: claims the top (oldest) element. Retries on
  /// a lost CAS; returns false only when the deque is observed empty.
  bool steal(T* out) {
    for (;;) {
      std::int64_t t = top_.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const std::int64_t b = bottom_.load(std::memory_order_acquire);
      if (t >= b) return false;  // empty
      const T value = buffer_[static_cast<std::size_t>(t)];
      if (top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        *out = value;
        return true;
      }
      // Lost the race to another thief (or the owner's last-element take);
      // retry until success or empty so no element is ever abandoned.
    }
  }

  /// Snapshot size; exact only between phases.
  [[nodiscard]] std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  std::vector<T> buffer_;
  // Both indices only grow within a fill/drain cycle; reset() rewinds them.
  // 64-byte padding between them would buy little here: the owner touches
  // both ends every take() anyway, and one deque per worker is tiny state
  // next to the engine's per-shard arrays.
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

}  // namespace sweep::util
