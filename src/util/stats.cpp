#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/obs.hpp"

namespace sweep::util {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  OnlineStats stats;
  for (double v : values) stats.add(v);
  return stats.mean();
}

double stddev(std::span<const double> values) {
  OnlineStats stats;
  for (double v : values) stats.add(v);
  return stats.stddev();
}

std::string summarize(std::span<const double> values) {
  OnlineStats stats;
  for (double v : values) stats.add(v);
  std::ostringstream out;
  out << "n=" << stats.count() << " mean=" << stats.mean()
      << " sd=" << stats.stddev() << " min=" << stats.min()
      << " med=" << quantile(values, 0.5) << " max=" << stats.max();
  return out.str();
}

std::vector<std::size_t> histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> counts(std::max<std::size_t>(bins, 1), 0);
  if (values.empty() || hi <= lo) return counts;
  const double width = (hi - lo) / static_cast<double>(counts.size());
  std::size_t non_finite = 0;
  for (double v : values) {
    // Casting NaN or ±inf to an integer is UB before any clamp can help;
    // clamp in floating point first and drop values with no defined bin.
    if (!std::isfinite(v)) {
      ++non_finite;
      continue;
    }
    const double pos = std::clamp((v - lo) / width, 0.0,
                                  static_cast<double>(counts.size()) - 1.0);
    ++counts[static_cast<std::size_t>(pos)];
  }
  if (non_finite > 0) {
    SWEEP_OBS_COUNTER_ADD("stats.histogram.non_finite", non_finite);
  }
  return counts;
}

}  // namespace sweep::util
