#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace sweep::util {

double Rng::next_normal() noexcept {
  // Marsaglia polar method.
  for (;;) {
    const double u = next_double(-1.0, 1.0);
    const double v = next_double(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::next_exponential(double lambda) noexcept {
  // Inverse CDF; guard against log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log1p(-u) / lambda;
}

std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  rng.shuffle(perm);
  return perm;
}

}  // namespace sweep::util
