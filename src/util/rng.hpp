#pragma once
// Deterministic, fast pseudo-random number generation.
//
// All randomized components of the library (random delays, random processor
// assignment, mesh jitter, partitioner tie-breaking) draw from an explicitly
// seeded Rng so that every experiment in the paper reproduction is replayable
// from a single 64-bit seed.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace sweep::util {

/// SplitMix64: used to expand a single seed into a full xoshiro state.
/// Reference: Vigna, "Further scramblings of Marsaglia's xorshift generators".
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// Deterministic stream splitting (DESIGN.md §11).
//
// Components that fan work out across a parallel_for (per-direction priority
// construction, per-subproblem partitioner bisections, per-trial benchmark
// runs) must NOT share one Rng: the draw order would then depend on which
// worker runs first, and on how much state an earlier stream happened to
// consume. Instead, every independent unit of work i derives its own seed
//
//     split_seed(base, i) = splitmix64(base ^ (PHI64 * (i + 1)))
//
// where `base` is either the caller's literal seed or a single draw from the
// caller's Rng (so the parent stream advances by exactly one step no matter
// how many children are split off). PHI64 is SplitMix64's golden-ratio
// increment, so consecutive stream ids land on well-separated points of the
// SplitMix64 sequence before the finalizer mixes them. Two properties make
// the scheme safe to rely on:
//  - order independence: stream i's seed depends only on (base, i), never on
//    which other streams exist or have already run, so serial and parallel
//    execution produce byte-identical output, and
//  - no trivial collisions: split_seed is injective in `i` for fixed base
//    (x -> PHI64 * x is invertible mod 2^64 and splitmix64's finalizer is a
//    bijection).
// ---------------------------------------------------------------------------

/// Seed for independent stream `stream` of base seed `base` (see above).
inline std::uint64_t split_seed(std::uint64_t base,
                                std::uint64_t stream) noexcept {
  std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return splitmix64(s);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it can be used
/// with <random> distributions, but the member helpers below avoid the
/// distribution objects entirely for speed and cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedba5eULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's nearly-divisionless rejection method: unbiased and fast.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    __uint128_t product = static_cast<__uint128_t>((*this)()) * bound;
    auto low = static_cast<std::uint64_t>(product);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        product = static_cast<__uint128_t>((*this)()) * bound;
        low = static_cast<std::uint64_t>(product);
      }
    }
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  bool next_bool(double probability_true = 0.5) noexcept {
    return next_double() < probability_true;
  }

  /// Standard normal via Marsaglia polar method (no cached value for
  /// determinism simplicity; discards the second variate).
  double next_normal() noexcept;

  /// Exponential with rate lambda (>0).
  double next_exponential(double lambda = 1.0) noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork() noexcept { return Rng((*this)() ^ 0xa3c59ac2ULL); }

  /// Generator for independent stream `stream` of base seed `base`
  /// (the stream-splitting scheme documented above split_seed).
  static Rng for_stream(std::uint64_t base, std::uint64_t stream) noexcept {
    return Rng(split_seed(base, stream));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// A random permutation of {0,...,n-1}.
std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace sweep::util
