#pragma once
// FNV-1a 64-bit hashing. Used as the content hash of sweep artifacts
// (sweep/artifact.hpp) and as the schedule fingerprint the serve smoke test
// compares against the in-process path ("bit-identical" is literal: same
// bytes, same FNV-1a).
//
// FNV-1a is not cryptographic; it detects corruption and divergence, not
// adversaries with hash-forging budgets. That is the right tradeoff for a
// format whose loader already validates every structural invariant.

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

namespace sweep::util {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/// Folds `bytes` into a running FNV-1a state (pass the previous return value
/// as `state` to hash discontiguous regions as one stream).
[[nodiscard]] constexpr std::uint64_t fnv1a(
    std::span<const std::byte> bytes,
    std::uint64_t state = kFnv1aOffsetBasis) {
  for (std::byte b : bytes) {
    state ^= static_cast<std::uint64_t>(b);
    state *= kFnv1aPrime;
  }
  return state;
}

/// Hashes the object representation of a trivially-copyable span (u32 CSR
/// arrays, i64 priority vectors, schedule start times, ...).
template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] std::uint64_t fnv1a_span(
    std::span<const T> values, std::uint64_t state = kFnv1aOffsetBasis) {
  return fnv1a(std::as_bytes(values), state);
}

}  // namespace sweep::util
