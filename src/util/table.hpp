#pragma once
// Console table / CSV emission for the figure-reproduction harnesses.
// Each bench binary prints the same rows/series the paper's figure plots,
// and can optionally mirror them to a CSV file for external plotting.

#include <cstdio>
#include <string>
#include <vector>

namespace sweep::util {

/// Column-aligned console table with optional CSV mirroring.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Open a CSV mirror file; empty path disables mirroring.
  void mirror_csv(const std::string& path);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt(std::int64_t value);
  static std::string fmt(std::size_t value);

  /// Renders all rows to stdout with aligned columns and flushes the CSV.
  void print(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::string csv_path_;
};

/// Print a section banner, used to separate figure panels in bench output.
void banner(const std::string& text);

}  // namespace sweep::util
