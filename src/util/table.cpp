#include "util/table.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace sweep::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::mirror_csv(const std::string& path) { csv_path_ = path; }

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::fmt(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return buf;
}

std::string Table::fmt(std::size_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu", value);
  return buf;
}

void Table::print(const std::string& title) const {
  if (!title.empty()) banner(title);
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s%s", std::string(widths[c], '-').c_str(),
                c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);

  if (!csv_path_.empty()) {
    if (std::FILE* f = std::fopen(csv_path_.c_str(), "w")) {
      auto csv_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
          std::fprintf(f, "%s%s", row[c].c_str(),
                       c + 1 == row.size() ? "\n" : ",");
        }
      };
      csv_row(headers_);
      for (const auto& row : rows_) csv_row(row);
      std::fclose(f);
      std::printf("[csv written to %s]\n", csv_path_.c_str());
    } else {
      std::fprintf(stderr, "warning: could not open csv path %s\n",
                   csv_path_.c_str());
    }
  }
}

void banner(const std::string& text) {
  std::printf("\n==== %s ====\n", text.c_str());
}

}  // namespace sweep::util
