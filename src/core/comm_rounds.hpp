#pragma once
// Realizing the C2 communication model with edge coloring.
//
// The paper (Section 5, "Objective functions") notes that performing each
// step's communication within time equal to the max per-processor send count
// "is not trivial, and requires some extra coordination. One way this can be
// done in a distributed manner is to use an edge coloring algorithm [11]."
//
// This module does exactly that: for every timestep it builds the message
// multigraph on processors (one edge per cross-processor DAG edge whose
// source finished at that step), greedily edge-colors it (<= 2*Delta - 1
// colors, Delta = max total degree), and charges one round per color. The
// result is a *feasible* round-by-round communication plan whose total length
// can be compared against the optimistic C2 measure.

#include <cstdint>

#include "core/schedule.hpp"
#include "sweep/instance.hpp"

namespace sweep::core {

struct CommRoundsResult {
  std::size_t total_rounds = 0;   ///< sum over steps of colors used
  std::size_t max_round_count = 0;  ///< worst single step
  std::size_t total_messages = 0;   ///< == C1 cross edges
  /// Largest total (send+receive) degree seen at any step; the greedy
  /// coloring guarantee is colors <= 2*max_degree - 1 per step.
  std::size_t max_total_degree = 0;
};

/// Builds the per-step message multigraphs of `schedule` and colors them.
/// The schedule must be complete.
CommRoundsResult realize_c2_rounds(const dag::SweepInstance& instance,
                                   const Schedule& schedule);

}  // namespace sweep::core
