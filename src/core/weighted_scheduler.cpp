#include "core/weighted_scheduler.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace sweep::core {

WeightedSchedule weighted_list_schedule(const dag::SweepInstance& instance,
                                        const Assignment& assignment,
                                        std::size_t n_processors,
                                        std::span<const double> cell_weights,
                                        const WeightedScheduleOptions& options) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::size_t total = n * k;
  if (assignment.size() != n) {
    throw std::invalid_argument("weighted_list_schedule: assignment size != n");
  }
  if (cell_weights.size() != n) {
    throw std::invalid_argument("weighted_list_schedule: weights size != n");
  }
  if (n_processors == 0) {
    throw std::invalid_argument("weighted_list_schedule: need >= 1 processor");
  }
  for (double w : cell_weights) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("weighted_list_schedule: weights must be > 0");
    }
  }
  for (ProcessorId p : assignment) {
    if (p >= n_processors) {
      throw std::invalid_argument("weighted_list_schedule: assignment out of range");
    }
  }
  if (!options.priorities.empty() && options.priorities.size() != total) {
    throw std::invalid_argument("weighted_list_schedule: priorities size != n*k");
  }

  auto priority_of = [&](TaskId t) -> std::int64_t {
    return options.priorities.empty() ? 0 : options.priorities[t];
  };

  WeightedSchedule result;
  result.start.assign(total, -1.0);
  result.assignment = assignment;
  result.n_cells = n;
  result.n_directions = k;
  result.n_processors = n_processors;

  std::vector<std::uint32_t> indegree(total);
  using ReadyEntry = std::pair<std::int64_t, TaskId>;
  using ReadyHeap =
      std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, std::greater<>>;
  std::vector<ReadyHeap> ready(n_processors);
  std::vector<char> busy(n_processors, 0);

  using Completion = std::pair<double, TaskId>;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;

  auto dispatch = [&](ProcessorId p, double now) {
    if (busy[p] || ready[p].empty()) return;
    const TaskId t = ready[p].top().second;
    ready[p].pop();
    busy[p] = 1;
    result.start[t] = now;
    const double weight = cell_weights[task_cell(t, n)];
    completions.push({now + weight, t});
  };

  for (std::size_t i = 0; i < k; ++i) {
    const dag::SweepDag& g = instance.dag(i);
    for (dag::NodeId v = 0; v < n; ++v) {
      const TaskId t = task_id(v, static_cast<DirectionId>(i), n);
      indegree[t] = static_cast<std::uint32_t>(g.in_degree(v));
      if (indegree[t] == 0) {
        ready[assignment[v]].push({priority_of(t), t});
      }
    }
  }
  for (ProcessorId p = 0; p < n_processors; ++p) dispatch(p, 0.0);

  std::size_t done = 0;
  std::vector<ProcessorId> woken;
  while (!completions.empty()) {
    const double now = completions.top().first;
    // Drain every completion at this instant before dispatching, so that
    // simultaneous finishes release all their successors first (matching
    // the unit engine's step semantics).
    woken.clear();
    while (!completions.empty() && completions.top().first <= now) {
      const TaskId t = completions.top().second;
      completions.pop();
      ++done;
      const ProcessorId p = result.assignment[task_cell(t, n)];
      busy[p] = 0;
      woken.push_back(p);
      const auto v = task_cell(t, n);
      const auto dir = task_direction(t, n);
      const dag::SweepDag& g = instance.dag(dir);
      for (dag::NodeId w : g.successors(v)) {
        const TaskId succ = task_id(w, dir, n);
        if (--indegree[succ] == 0) {
          const ProcessorId q = assignment[w];
          ready[q].push({priority_of(succ), succ});
          woken.push_back(q);
        }
      }
      result.makespan = std::max(result.makespan, now);
    }
    for (ProcessorId p : woken) dispatch(p, now);
  }
  if (done != total) {
    throw std::logic_error("weighted_list_schedule: instance DAG has a cycle");
  }
  return result;
}

std::string validate_weighted_schedule(const dag::SweepInstance& instance,
                                       const WeightedSchedule& schedule,
                                       std::span<const double> cell_weights) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  if (schedule.start.size() != n * k || cell_weights.size() != n) {
    return "shape mismatch";
  }
  constexpr double kEps = 1e-9;
  for (TaskId t = 0; t < schedule.start.size(); ++t) {
    if (schedule.start[t] < 0.0) return "task never scheduled";
  }
  // Precedence with durations.
  for (DirectionId i = 0; i < k; ++i) {
    const dag::SweepDag& g = instance.dag(i);
    for (dag::NodeId u = 0; u < n; ++u) {
      const double finish_u = schedule.start_of(u, i) + cell_weights[u];
      for (dag::NodeId v : g.successors(u)) {
        if (schedule.start_of(v, i) + kEps < finish_u) {
          std::ostringstream msg;
          msg << "precedence violated in direction " << i << ": " << u
              << " -> " << v;
          return msg.str();
        }
      }
    }
  }
  // Per-processor non-overlap: sort each processor's intervals.
  std::vector<std::vector<std::pair<double, double>>> intervals(
      schedule.n_processors);
  for (TaskId t = 0; t < schedule.start.size(); ++t) {
    const CellId v = task_cell(t, n);
    intervals[schedule.assignment[v]].push_back(
        {schedule.start[t], schedule.start[t] + cell_weights[v]});
  }
  for (auto& list : intervals) {
    std::sort(list.begin(), list.end());
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i].first + kEps < list[i - 1].second) {
        return "processor runs two tasks at once";
      }
    }
  }
  return "";
}

double weighted_lower_bound(const dag::SweepInstance& instance,
                            std::size_t n_processors,
                            std::span<const double> cell_weights) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  double total = 0.0;
  double min_weight = cell_weights.empty() ? 0.0 : cell_weights[0];
  for (double w : cell_weights) {
    total += w;
    min_weight = std::min(min_weight, w);
  }
  double lb = total * static_cast<double>(k) / static_cast<double>(n_processors);
  lb = std::max(lb, static_cast<double>(k) * min_weight);

  // Longest weighted path per DAG via topological DP.
  for (const dag::SweepDag& g : instance.dags()) {
    std::vector<double> path(n, 0.0);
    double longest = 0.0;
    for (dag::NodeId v : g.topological_order()) {
      path[v] += cell_weights[v];
      longest = std::max(longest, path[v]);
      for (dag::NodeId w : g.successors(v)) {
        path[w] = std::max(path[w], path[v]);
      }
    }
    lb = std::max(lb, longest);
  }
  return lb;
}

std::vector<double> face_count_weights(const mesh::UnstructuredMesh& mesh,
                                       double base, double per_face) {
  std::vector<double> weights(mesh.n_cells());
  for (mesh::CellId c = 0; c < mesh.n_cells(); ++c) {
    weights[c] = base + per_face * static_cast<double>(mesh.faces_of(c).size());
  }
  return weights;
}

}  // namespace sweep::core
