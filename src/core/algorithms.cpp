#include "core/algorithms.hpp"

#include <stdexcept>

#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "core/random_delay.hpp"

namespace sweep::core {

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> kAll = {
      Algorithm::kRandomDelay,          Algorithm::kRandomDelayPriorities,
      Algorithm::kImprovedRandomDelay,  Algorithm::kLevelPriorities,
      Algorithm::kDescendantPriorities, Algorithm::kDescendantDelays,
      Algorithm::kDfdsPriorities,       Algorithm::kDfdsDelays,
      Algorithm::kBLevelPriorities,
  };
  return kAll;
}

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kRandomDelay: return "random_delay";
    case Algorithm::kRandomDelayPriorities: return "rd_priorities";
    case Algorithm::kImprovedRandomDelay: return "improved_rd";
    case Algorithm::kLevelPriorities: return "level";
    case Algorithm::kDescendantPriorities: return "descendant";
    case Algorithm::kDescendantDelays: return "descendant_delays";
    case Algorithm::kDfdsPriorities: return "dfds";
    case Algorithm::kDfdsDelays: return "dfds_delays";
    case Algorithm::kBLevelPriorities: return "blevel";
  }
  return "unknown";
}

Algorithm algorithm_from_name(const std::string& name) {
  for (Algorithm a : all_algorithms()) {
    if (algorithm_name(a) == name) return a;
  }
  throw std::invalid_argument("unknown algorithm name: " + name);
}

Schedule run_algorithm(Algorithm algorithm, const dag::SweepInstance& instance,
                       std::size_t n_processors, util::Rng& rng,
                       Assignment assignment) {
  const std::size_t n = instance.n_cells();
  if (assignment.empty()) {
    assignment = random_assignment(n, n_processors, rng);
  }

  switch (algorithm) {
    case Algorithm::kRandomDelay:
      return random_delay_schedule(instance, n_processors, rng,
                                   std::move(assignment))
          .schedule;
    case Algorithm::kImprovedRandomDelay:
      return improved_random_delay_schedule(instance, n_processors, rng,
                                            std::move(assignment))
          .schedule;
    case Algorithm::kRandomDelayPriorities: {
      const auto delays = random_delays(instance.n_directions(), rng);
      const auto priorities = random_delay_priorities(instance, delays);
      ListScheduleOptions options;
      options.priorities = priorities;
      return list_schedule(instance, assignment, n_processors, options);
    }
    case Algorithm::kLevelPriorities: {
      const auto priorities = level_priorities(instance);
      ListScheduleOptions options;
      options.priorities = priorities;
      return list_schedule(instance, assignment, n_processors, options);
    }
    case Algorithm::kBLevelPriorities: {
      const auto priorities = blevel_priorities(instance);
      ListScheduleOptions options;
      options.priorities = priorities;
      return list_schedule(instance, assignment, n_processors, options);
    }
    case Algorithm::kDescendantPriorities: {
      const auto priorities = descendant_priorities(instance, rng);
      ListScheduleOptions options;
      options.priorities = priorities;
      return list_schedule(instance, assignment, n_processors, options);
    }
    case Algorithm::kDescendantDelays: {
      const auto priorities = descendant_priorities(instance, rng);
      const auto delays = random_delays(instance.n_directions(), rng);
      const auto releases = delay_release_times(instance, delays);
      ListScheduleOptions options;
      options.priorities = priorities;
      options.release_times = releases;
      return list_schedule(instance, assignment, n_processors, options);
    }
    case Algorithm::kDfdsPriorities: {
      const auto priorities = dfds_priorities(instance, assignment);
      ListScheduleOptions options;
      options.priorities = priorities;
      return list_schedule(instance, assignment, n_processors, options);
    }
    case Algorithm::kDfdsDelays: {
      const auto priorities = dfds_priorities(instance, assignment);
      const auto delays = random_delays(instance.n_directions(), rng);
      const auto releases = delay_release_times(instance, delays);
      ListScheduleOptions options;
      options.priorities = priorities;
      options.release_times = releases;
      return list_schedule(instance, assignment, n_processors, options);
    }
  }
  throw std::logic_error("run_algorithm: unhandled algorithm");
}

double approximation_ratio(const Schedule& schedule,
                           const LowerBounds& bounds) {
  const double lb = bounds.value();
  return lb > 0.0 ? static_cast<double>(schedule.makespan()) / lb : 0.0;
}

}  // namespace sweep::core
