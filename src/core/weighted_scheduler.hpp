#pragma once
// Weighted-task list scheduling — the natural extension the paper's model
// abstracts away ("we will assume that each task takes uniform time p").
// Real meshes mix element types with different local-solve costs (e.g. a
// prism's corner-balance solve costs more than a tet's), so this engine
// schedules tasks whose processing time is a per-cell weight, event-driven
// in continuous time, under the same three sweep-scheduling constraints.
//
// With all weights equal to 1 it reproduces the unit engine's makespan
// exactly (tested), so the unit-time analysis carries over as the special
// case.

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "sweep/instance.hpp"

namespace sweep::core {

struct WeightedScheduleOptions {
  /// Per-task priority; SMALLER runs first; ties broken by task id.
  std::span<const std::int64_t> priorities = {};
};

struct WeightedSchedule {
  std::vector<double> start;  ///< per task, continuous time
  Assignment assignment;
  std::size_t n_cells = 0;
  std::size_t n_directions = 0;
  std::size_t n_processors = 0;
  double makespan = 0.0;

  [[nodiscard]] double start_of(CellId v, DirectionId i) const {
    return start[task_id(v, i, n_cells)];
  }
};

/// Runs prioritized list scheduling with per-cell processing times
/// `cell_weights` (all > 0; task (v,i) costs cell_weights[v] for every i).
WeightedSchedule weighted_list_schedule(const dag::SweepInstance& instance,
                                        const Assignment& assignment,
                                        std::size_t n_processors,
                                        std::span<const double> cell_weights,
                                        const WeightedScheduleOptions& options = {});

/// Feasibility check for weighted schedules: precedence with durations,
/// per-processor non-overlap. Returns an empty string when feasible.
std::string validate_weighted_schedule(const dag::SweepInstance& instance,
                                       const WeightedSchedule& schedule,
                                       std::span<const double> cell_weights);

/// Lower bound: max{ total weighted load / m, max weighted path, k * min w }.
double weighted_lower_bound(const dag::SweepInstance& instance,
                            std::size_t n_processors,
                            std::span<const double> cell_weights);

/// Cell weights from mesh element type: cells with more faces cost more.
/// weight(v) = base + per_face * faces(v); a cheap, physical cost model
/// (prisms have 5 faces, tets 4).
std::vector<double> face_count_weights(const mesh::UnstructuredMesh& mesh,
                                       double base = 0.0,
                                       double per_face = 0.25);

}  // namespace sweep::core
