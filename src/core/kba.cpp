#include "core/kba.hpp"

#include <cmath>
#include <stdexcept>

#include "core/list_scheduler.hpp"
#include "core/types.hpp"

namespace sweep::core {

Assignment kba_assignment(const mesh::StructuredDims& dims, std::size_t px,
                          std::size_t py) {
  if (px == 0 || py == 0) {
    throw std::invalid_argument("kba_assignment: zero processor grid");
  }
  if (px > dims.nx || py > dims.ny) {
    throw std::invalid_argument(
        "kba_assignment: processor grid exceeds mesh columns");
  }
  Assignment assignment(dims.n_cells());
  for (CellId c = 0; c < assignment.size(); ++c) {
    const auto [i, j, k] = mesh::structured_cell_coords(c, dims);
    (void)k;  // KBA columns span all of z
    const std::size_t pi = i * px / dims.nx;
    const std::size_t pj = j * py / dims.ny;
    assignment[c] = static_cast<ProcessorId>(pi + px * pj);
  }
  return assignment;
}

std::vector<std::int64_t> kba_priorities(const dag::SweepInstance& instance,
                                         const dag::DirectionSet& directions) {
  if (directions.size() != instance.n_directions()) {
    throw std::invalid_argument("kba_priorities: direction count mismatch");
  }
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const auto& levels = instance.levels();
  // BIG must dominate any level so octants are strictly ordered.
  std::int64_t big = 1;
  for (DirectionId i = 0; i < k; ++i) {
    for (CellId v = 0; v < n; ++v) {
      big = std::max(big, static_cast<std::int64_t>(levels[i][v]) + 2);
    }
  }
  auto octant = [&](DirectionId i) -> std::int64_t {
    const auto& d = directions.directions[i];
    return (d.x >= 0 ? 0 : 1) + 2 * (d.y >= 0 ? 0 : 1) + 4 * (d.z >= 0 ? 0 : 1);
  };
  std::vector<std::int64_t> priorities(n * k);
  for (DirectionId i = 0; i < k; ++i) {
    const std::int64_t base = octant(i) * big;
    for (CellId v = 0; v < n; ++v) {
      priorities[task_id(v, i, n)] = base + levels[i][v];
    }
  }
  return priorities;
}

Schedule kba_schedule(const dag::SweepInstance& instance,
                      const dag::DirectionSet& directions,
                      const mesh::StructuredDims& dims, std::size_t px,
                      std::size_t py) {
  if (instance.n_cells() != dims.n_cells()) {
    throw std::invalid_argument("kba_schedule: instance/grid size mismatch");
  }
  const Assignment assignment = kba_assignment(dims, px, py);
  const auto priorities = kba_priorities(instance, directions);
  ListScheduleOptions options;
  options.priorities = priorities;
  return list_schedule(instance, assignment, px * py, options);
}

std::pair<std::size_t, std::size_t> kba_processor_grid(std::size_t m) {
  if (m == 0) throw std::invalid_argument("kba_processor_grid: m must be >= 1");
  auto px = static_cast<std::size_t>(std::sqrt(static_cast<double>(m)));
  while (px > 1 && m % px != 0) --px;
  return {px, m / px};
}

}  // namespace sweep::core
