#pragma once
// Schedule serialization and lightweight terminal visualization — snapshot a
// schedule for exact replay, eyeball its pipelining structure, and extract
// per-step utilization profiles for the harnesses.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/schedule.hpp"

namespace sweep::core {

/// Format: "sweepsched 1", shape line, assignment line, start-times line.
void save_schedule(const Schedule& schedule, std::ostream& out);
void save_schedule(const Schedule& schedule, const std::string& path);

/// Throws std::runtime_error on malformed input.
Schedule load_schedule(std::istream& in);
Schedule load_schedule(const std::string& path);

/// fraction of busy (processor, step) slots per timestep, length = makespan.
std::vector<double> utilization_profile(const Schedule& schedule);

/// ASCII utilization strip: one character per bucket of timesteps,
/// ' .:-=+*#%@' from idle to fully busy. `width` characters total.
std::string utilization_strip(const Schedule& schedule, std::size_t width = 80);

/// Per-processor ASCII Gantt chart for SMALL schedules (first `max_procs`
/// processors, first `max_steps` steps): '#' busy, '.' idle. Each row is one
/// processor. Intended for examples/debugging, not big instances.
std::string ascii_gantt(const Schedule& schedule, std::size_t max_procs = 16,
                        std::size_t max_steps = 100);

}  // namespace sweep::core
