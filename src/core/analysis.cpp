#include "core/analysis.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sweep::core {

ScheduleAnalysis analyze_schedule(const dag::SweepInstance& instance,
                                  const Schedule& schedule) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::size_t total = n * k;
  if (schedule.n_tasks() != total) {
    throw std::invalid_argument("analyze_schedule: shape mismatch");
  }
  if (!schedule.complete()) {
    throw std::invalid_argument("analyze_schedule: incomplete schedule");
  }

  ScheduleAnalysis result;
  result.makespan = schedule.makespan();
  const std::size_t m = schedule.n_processors();

  // Loads and busy bitmaps.
  const std::size_t words = (result.makespan + 63) / 64;
  std::vector<std::uint64_t> busy(m * words, 0);
  std::vector<std::size_t> loads(m, 0);
  for (TaskId t = 0; t < total; ++t) {
    const ProcessorId p = schedule.processor_of(t);
    const TimeStep s = schedule.start(t);
    busy[p * words + s / 64] |= 1ull << (s % 64);
    ++loads[p];
  }
  result.min_load = *std::min_element(loads.begin(), loads.end());
  result.max_load = *std::max_element(loads.begin(), loads.end());
  result.total_idle_slots = result.makespan * m - total;
  result.mean_utilization =
      result.makespan == 0
          ? 1.0
          : static_cast<double>(total) /
                static_cast<double>(result.makespan * m);

  // Ready times: max over predecessors of (start + 1).
  std::vector<TimeStep> ready(total, 0);
  for (DirectionId i = 0; i < k; ++i) {
    const dag::SweepDag& g = instance.dag(i);
    for (dag::NodeId u = 0; u < n; ++u) {
      const TimeStep finish = schedule.start(u, i) + 1;
      for (dag::NodeId v : g.successors(u)) {
        const TaskId succ = task_id(v, i, n);
        ready[succ] = std::max(ready[succ], finish);
      }
    }
  }

  // Avoidable idle: idle (proc, slot) pairs overlapping some waiting ready
  // task; flagged bitmap dedupes across tasks.
  std::vector<std::uint64_t> flagged(m * words, 0);
  for (TaskId t = 0; t < total; ++t) {
    const ProcessorId p = schedule.processor_of(t);
    for (TimeStep s = ready[t]; s < schedule.start(t); ++s) {
      const std::size_t idx = p * words + s / 64;
      const std::uint64_t bit = 1ull << (s % 64);
      if (!(busy[idx] & bit) && !(flagged[idx] & bit)) {
        flagged[idx] |= bit;
        ++result.avoidable_idle_slots;
      }
    }
  }

  // Per-direction finish times.
  result.direction_finish.assign(k, 0);
  for (DirectionId i = 0; i < k; ++i) {
    for (CellId v = 0; v < n; ++v) {
      result.direction_finish[i] = std::max<std::size_t>(
          result.direction_finish[i], schedule.start(v, i) + 1);
    }
  }

  // Realized critical path: longest chain of back-to-back dependent tasks.
  std::vector<TaskId> order(total);
  for (TaskId t = 0; t < total; ++t) order[t] = t;
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    return schedule.start(a) < schedule.start(b);
  });
  std::vector<std::uint32_t> chain(total, 1);
  for (TaskId t : order) {
    const auto v = task_cell(t, n);
    const auto dir = task_direction(t, n);
    const dag::SweepDag& g = instance.dag(dir);
    const TimeStep st = schedule.start(t);
    for (dag::NodeId u : g.predecessors(v)) {
      const TaskId pred = task_id(u, dir, n);
      if (schedule.start(pred) + 1 == st) {
        chain[t] = std::max(chain[t], chain[pred] + 1);
      }
    }
    result.realized_critical_path =
        std::max<std::size_t>(result.realized_critical_path, chain[t]);
  }
  return result;
}

std::string to_string(const ScheduleAnalysis& a) {
  std::ostringstream out;
  out << "makespan=" << a.makespan << " idle=" << a.total_idle_slots
      << " (avoidable " << a.avoidable_idle_slots << ")"
      << " load[min/max]=" << a.min_load << "/" << a.max_load
      << " utilization=" << a.mean_utilization
      << " realized_critical_path=" << a.realized_critical_path;
  return out.str();
}

}  // namespace sweep::core
