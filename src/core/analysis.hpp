#pragma once
// Schedule analysis: where does the time go? Decomposes a schedule's idle
// slots into *unavoidable* (no ready task existed for that processor) and
// *avoidable* (a ready task was waiting while the processor idled — a
// work-conservation violation). Algorithm 2's defining property is zero
// avoidable idle; Algorithm 1's layer synchronization creates plenty, which
// is exactly the gap Figure 2(c) plots. Also reports load balance and
// per-direction completion ("pipeline drain") statistics used by the
// tournament example.

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "sweep/instance.hpp"

namespace sweep::core {

struct ScheduleAnalysis {
  std::size_t makespan = 0;
  std::size_t total_idle_slots = 0;
  std::size_t avoidable_idle_slots = 0;  ///< idle while a ready task waited
  std::size_t min_load = 0;              ///< tasks on least-loaded processor
  std::size_t max_load = 0;
  double mean_utilization = 0.0;         ///< busy slots / (m * makespan)
  /// Step at which the last task of each direction completes (+1).
  std::vector<std::size_t> direction_finish;
  /// Longest chain of tasks where each starts exactly one step after its
  /// predecessor finishes — the realized critical path.
  std::size_t realized_critical_path = 0;
};

/// Full analysis; requires a complete schedule. O(nk + edges + m*T/64) time.
ScheduleAnalysis analyze_schedule(const dag::SweepInstance& instance,
                                  const Schedule& schedule);

std::string to_string(const ScheduleAnalysis& analysis);

}  // namespace sweep::core
