#pragma once
// Shared identifiers for the scheduling core.
//
// A *task* is a (cell, direction) pair (paper Section 3). Tasks are flattened
// to ids `tid = direction * n_cells + cell` so per-task arrays are contiguous
// and the same-processor constraint ("every copy of v runs on the processor
// of v") reduces to indexing one per-cell assignment array.

#include <cstdint>
#include <limits>

namespace sweep::core {

using CellId = std::uint32_t;
using DirectionId = std::uint32_t;
using ProcessorId = std::uint32_t;
using TaskId = std::uint64_t;
using TimeStep = std::uint32_t;

inline constexpr TimeStep kUnscheduled = std::numeric_limits<TimeStep>::max();

constexpr TaskId task_id(CellId cell, DirectionId direction, std::size_t n_cells) {
  return static_cast<TaskId>(direction) * n_cells + cell;
}
constexpr CellId task_cell(TaskId tid, std::size_t n_cells) {
  return static_cast<CellId>(tid % n_cells);
}
constexpr DirectionId task_direction(TaskId tid, std::size_t n_cells) {
  return static_cast<DirectionId>(tid / n_cells);
}

}  // namespace sweep::core
