#pragma once
// KBA-style baseline (Koch-Baker-Alcouffe [6], referenced in the paper's
// Related Work as "essentially optimal" on regular meshes).
//
// KBA decomposes a structured nx x ny x nz grid into px x py vertical
// columns, one per processor; sweeps pipeline along z so that wavefronts of
// different z-planes (and of different directions in the same octant)
// overlap. In this library the KBA baseline is expressed on top of the same
// list-scheduling engine as everything else: the KBA *column assignment*
// plus *octant-ordered level priorities*. This keeps the comparison with the
// randomized algorithms apples-to-apples (same engine, same feasibility
// constraints) while reproducing KBA's pipelining behaviour.

#include "core/schedule.hpp"
#include "mesh/structured.hpp"
#include "sweep/instance.hpp"

namespace sweep::core {

/// Column-block assignment: processor grid px x py over the x-y plane; cell
/// (i,j,k) goes to processor (i * px / nx) + px * (j * py / ny), for all k.
/// Throws if px * py processors cannot be laid out on the grid.
Assignment kba_assignment(const mesh::StructuredDims& dims, std::size_t px,
                          std::size_t py);

/// KBA priorities: directions are processed octant-major (all directions of
/// an octant share wavefronts), and within a direction by DAG level. Order:
/// Gamma(v, i) = octant(i) * BIG + level_i(v), which yields the classic
/// KBA pipelining when combined with kba_assignment and list scheduling.
std::vector<std::int64_t> kba_priorities(const dag::SweepInstance& instance,
                                         const dag::DirectionSet& directions);

/// Convenience: full KBA baseline schedule on a structured grid.
Schedule kba_schedule(const dag::SweepInstance& instance,
                      const dag::DirectionSet& directions,
                      const mesh::StructuredDims& dims, std::size_t px,
                      std::size_t py);

/// Choose a near-square px x py factorization of m (px * py == m).
std::pair<std::size_t, std::size_t> kba_processor_grid(std::size_t m);

}  // namespace sweep::core
