#include "core/schedule_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sweep::core {

void save_schedule(const Schedule& schedule, std::ostream& out) {
  out << "sweepsched 1\n";
  out << schedule.n_cells() << ' ' << schedule.n_directions() << ' '
      << schedule.n_processors() << "\n";
  for (CellId v = 0; v < schedule.n_cells(); ++v) {
    out << schedule.assignment()[v] << (v + 1 == schedule.n_cells() ? "\n" : " ");
  }
  for (TaskId t = 0; t < schedule.n_tasks(); ++t) {
    out << schedule.start(t) << (t + 1 == schedule.n_tasks() ? "\n" : " ");
  }
}

void save_schedule(const Schedule& schedule, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_schedule: cannot open " + path);
  save_schedule(schedule, out);
}

Schedule load_schedule(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "sweepsched" || version != 1) {
    throw std::runtime_error("load_schedule: bad header");
  }
  // The shape line is untrusted: a hostile or truncated file must throw here
  // rather than produce a schedule that later corrupts comm_rounds /
  // utilization_profile. Parse into fixed-width integers, then range-check
  // before any allocation or arithmetic.
  std::uint64_t n = 0;
  std::uint64_t k = 0;
  std::uint64_t m = 0;
  if (!(in >> n >> k >> m)) {
    throw std::runtime_error("load_schedule: bad shape line");
  }
  if (k != 0 && n > std::numeric_limits<std::size_t>::max() / k) {
    throw std::runtime_error("load_schedule: n*k overflows size_t");
  }
  if (n > std::numeric_limits<CellId>::max() ||
      k > std::numeric_limits<DirectionId>::max() ||
      m > std::numeric_limits<ProcessorId>::max()) {
    throw std::runtime_error("load_schedule: shape exceeds id range");
  }
  if (m == 0 && n != 0) {
    throw std::runtime_error("load_schedule: zero processors with cells");
  }
  Assignment assignment(n);
  for (auto& p : assignment) {
    if (!(in >> p)) throw std::runtime_error("load_schedule: truncated assignment");
    if (p >= m) {
      throw std::runtime_error("load_schedule: assignment entry out of range");
    }
  }
  Schedule schedule(n, k, m, std::move(assignment));
  for (TaskId t = 0; t < schedule.n_tasks(); ++t) {
    TimeStep start = 0;
    if (!(in >> start)) throw std::runtime_error("load_schedule: truncated starts");
    if (start == kUnscheduled) {
      throw std::runtime_error("load_schedule: start equals the unscheduled "
                               "sentinel");
    }
    schedule.set_start(t, start);
  }
  return schedule;
}

Schedule load_schedule(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_schedule: cannot open " + path);
  return load_schedule(in);
}

std::vector<double> utilization_profile(const Schedule& schedule) {
  const std::size_t horizon = schedule.makespan();
  std::vector<double> profile(horizon, 0.0);
  if (horizon == 0 || schedule.n_processors() == 0) return profile;
  for (TaskId t = 0; t < schedule.n_tasks(); ++t) {
    const TimeStep s = schedule.start(t);
    if (s != kUnscheduled) profile[s] += 1.0;
  }
  const auto m = static_cast<double>(schedule.n_processors());
  for (double& p : profile) p /= m;
  return profile;
}

std::string utilization_strip(const Schedule& schedule, std::size_t width) {
  static const char kLevels[] = " .:-=+*#%@";
  const auto profile = utilization_profile(schedule);
  if (profile.empty() || width == 0) return "";
  std::string strip;
  strip.reserve(width);
  const double bucket = static_cast<double>(profile.size()) /
                        static_cast<double>(width);
  for (std::size_t c = 0; c < width; ++c) {
    const auto begin = static_cast<std::size_t>(static_cast<double>(c) * bucket);
    auto end = static_cast<std::size_t>(static_cast<double>(c + 1) * bucket);
    end = std::max(end, begin + 1);
    end = std::min(end, profile.size());
    double mean = 0.0;
    for (std::size_t i = begin; i < end; ++i) mean += profile[i];
    mean /= static_cast<double>(end - begin);
    const auto idx = static_cast<std::size_t>(mean * 9.999);
    strip.push_back(kLevels[std::min<std::size_t>(idx, 9)]);
  }
  return strip;
}

std::string ascii_gantt(const Schedule& schedule, std::size_t max_procs,
                        std::size_t max_steps) {
  const std::size_t procs = std::min(max_procs, schedule.n_processors());
  const std::size_t steps = std::min(max_steps, schedule.makespan());
  std::vector<std::string> rows(procs, std::string(steps, '.'));
  for (TaskId t = 0; t < schedule.n_tasks(); ++t) {
    const TimeStep s = schedule.start(t);
    const ProcessorId p = schedule.processor_of(t);
    if (s != kUnscheduled && s < steps && p < procs) rows[p][s] = '#';
  }
  std::ostringstream out;
  for (std::size_t p = 0; p < procs; ++p) {
    out << "P" << p << (p < 10 ? "  |" : " |") << rows[p] << "\n";
  }
  if (schedule.n_processors() > procs || schedule.makespan() > steps) {
    out << "(truncated to " << procs << " processors x " << steps
        << " steps)\n";
  }
  return out.str();
}

}  // namespace sweep::core
