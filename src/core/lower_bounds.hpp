#pragma once
// Lower bounds on the optimal sweep-schedule makespan (paper Sections 4-5):
//   - average load nk/m (the paper's main empirical yardstick),
//   - k (every direction's DAGs share cells, so some processor sees >= k tasks
//     ... more precisely OPT >= k because all k copies of one cell run on one
//     processor),
//   - D = max level count over directions (critical path of unit tasks).
// OPT >= max of all three; the experiments report makespan / lower_bound.

#include "sweep/instance.hpp"

namespace sweep::core {

struct LowerBounds {
  double average_load = 0.0;   ///< nk/m
  std::size_t directions = 0;  ///< k
  std::size_t depth = 0;       ///< D, max #levels over directions

  [[nodiscard]] double value() const {
    double lb = average_load;
    lb = std::max(lb, static_cast<double>(directions));
    lb = std::max(lb, static_cast<double>(depth));
    return lb;
  }
};

LowerBounds compute_lower_bounds(const dag::SweepInstance& instance,
                                 std::size_t n_processors);

}  // namespace sweep::core
