#include "core/sharded_schedule.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/arena.hpp"
#include "util/numa.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"
#include "util/steal_deque.hpp"
#include "util/thread_pool.hpp"

// The sharded superstep engine (DESIGN.md §12, kernels §16).
//
// The serial slot-map engine (list_scheduler.cpp) already reduces a
// timestep to "for each active processor, pop the lowest live slot, then
// decrement successors". This file distributes exactly that over W worker
// shards while keeping the output bit-identical to list_schedule_reference
// for every W:
//
//   - Every simulated processor belongs to one shard (static contiguous
//     map). A processor's ready state — its padded slot region's indegree
//     words, bitmap words, hint and queued counters — is only ever touched
//     by (a) the one thread that pops it this step (pop phase) or (b) its
//     owner shard (resolve phase); the phases are fork/join-separated, so
//     no atomics guard any per-task or per-processor state.
//   - Pop phase: each worker drains its own Chase–Lev deque of active
//     processors, then steals from the other shards, so skewed shards
//     (tail levels where only a few processors are active) cannot idle the
//     rest of the machine. Which thread pops a processor affects only load
//     balance: the popped task is the processor's (priority, task-id)
//     minimum either way. Completions do not touch successor state
//     directly; the popper walks each finished task's contiguous CSR
//     successor run — software-prefetching the row and the next edge's
//     slot lookup one iteration ahead — and buffers each successor's
//     *slot* into per-(worker, destination-shard) outboxes.
//   - Resolve phase: each shard concatenates the W outboxes addressed to
//     it into one batch and retires it with the batched decrement kernel
//     (util/simd.hpp): sort, collapse duplicate runs, then SIMD
//     gather/subtract/compare over its own slot-indexed indegree lane.
//     The scatter stays shard-private, which is what makes the whole step
//     lock-free, and every slot whose indegree reached zero enters the
//     bitmap via push_slot. All of these updates commute (decrements, bit
//     sets, min-hints), so neither the arrival order nor the kernel's
//     sorted retirement order — the only things stealing and batching
//     perturb — can change the outcome. The shard then rebuilds its deque
//     for the next step in fixed processor order.
//
// Memory layout and placement: scheduling state lives in one 64-byte-
// aligned structure-of-arrays arena. The indegree lane is indexed by
// *slot*, not task id, so a shard's entire mutable hot state — indegree
// region, bitmap region, hint/queued lanes — is one contiguous block that
// only its owner writes. Each worker first-touches its own shard's
// regions (and its outbox buffers) at build time, before any cross-shard
// write, so a NUMA kernel backs every region with worker-local pages;
// util::numa records the node count (no binding — first-touch placement
// needs neither libnuma nor hwloc). Shard count is pinned by `jobs` (the
// determinism anchor), while the number of OS threads driving the phases
// is capped at the machine's executor count — oversubscribing a small
// machine would only add scheduling noise, and which executor runs which
// shard body never affects the schedule.

namespace sweep::core::detail {
namespace {

using Task32 = dag::TaskGraph::Task;

/// Padded slot-space cap: task_at + the slot-indexed indegree lane are one
/// u32 each per slot, so 2^26 slots caps them at 256 MiB each. Beyond this
/// (pathologically skewed assignments) the caller falls back to the serial
/// heap engine, as the serial slot engine does at its own cap.
constexpr std::size_t kMaxShardedSlots = 1u << 26;

/// Per-shard worker state. alignas(64): pops/active/steals are written by
/// one thread per phase but sit in an indexed array; padding keeps a
/// worker's counters off its neighbours' cache lines.
struct alignas(64) WorkerState {
  util::StealDeque<std::uint32_t> deque;        // active procs this step
  std::vector<std::vector<std::uint32_t>> outbox;  // [dest shard] slot ids
  std::vector<std::size_t> outbox_cap;          // capacity at run start
  std::vector<std::uint32_t> resolve_batch;     // concatenated inboxes
  std::vector<std::uint32_t> ready_slots;       // kernel zero output
  util::simd::BatchScratch batch_scratch;       // kernel sort/collapse
  util::simd::BatchStats simd_stats;            // batches/fallbacks this run
  std::uint32_t proc_lo = 0;                    // owned processor range
  std::uint32_t proc_hi = 0;
  std::uint32_t pops = 0;                       // pops this step
  std::uint32_t active = 0;                     // active procs after resolve
  std::uint64_t steals = 0;                     // cumulative
  std::uint64_t queue_depth = 0;                // Σ queued over owned procs
  std::uint64_t outbox_growths = 0;             // reallocations this run
};

/// Reused per-thread scratch: the SoA arena plus the containers whose
/// capacity should survive across calls (trial fan-outs and fuzz campaigns
/// schedule thousands of instances per thread).
struct ShardedScratch {
  util::Arena arena;
  // unique_ptr: WorkerState holds atomics (non-movable), so the vector
  // could never resize holding them by value.
  std::vector<std::unique_ptr<WorkerState>> workers;
  std::vector<std::uint32_t> hist;  // [block][proc * width + bucket]
  std::vector<std::uint32_t> shard_of;  // processor -> shard
};

ShardedScratch& sharded_scratch() {
  thread_local ShardedScratch scratch;
  return scratch;
}

}  // namespace

std::size_t resolve_engine_workers(std::size_t jobs,
                                   std::size_t n_processors) {
  std::size_t w = jobs != 0 ? jobs : util::ThreadPool::global().size() + 1;
  w = std::min(w, n_processors);
  return std::max<std::size_t>(w, 1);
}

std::optional<Schedule> sharded_list_schedule(
    const dag::TaskGraph& tg, const Assignment& assignment,
    std::size_t n_processors, std::span<const std::int64_t> priorities,
    std::int64_t min_priority, std::size_t width, std::size_t jobs) {
  SWEEP_OBS_SPAN("engine.sharded.run");
  const std::size_t total = tg.n_tasks();
  const std::size_t m = n_processors;
  const std::size_t W = resolve_engine_workers(jobs, m);
  // OS threads driving the phases: shard state stays W-way (bit-identity
  // anchor), but running more phase bodies concurrently than the machine
  // has cores only adds queueing overhead — the global pool keeps at least
  // one worker even on a single-core host, so clamp by the hardware too.
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t executors =
      std::min({W, util::ThreadPool::global().size() + 1, hw});
  const std::uint32_t* cell = tg.cells().data();
  const std::uint32_t* offsets = tg.offsets().data();
  const Task32* targets = tg.targets().data();
  const std::int64_t* priority =
      priorities.empty() ? nullptr : priorities.data();
  assert(width >= 1);

  obs::PhaseSpan build_phase("engine.sharded.build");
  ShardedScratch& scratch = sharded_scratch();

  // ---- Pass 1: per-block (processor, bucket) histograms. Fixed block
  // boundaries make the layered slot cursors — and hence the whole slot
  // map — independent of how parallel_for interleaves the blocks.
  const std::size_t n_blocks = W;
  auto block_lo = [&](std::size_t i) { return i * total / n_blocks; };
  scratch.hist.assign(n_blocks * m * width, 0);
  std::uint32_t* hist = scratch.hist.data();
  util::parallel_for(
      n_blocks,
      [&](std::size_t i) {
        std::uint32_t* h = hist + i * m * width;
        const std::size_t lo = block_lo(i);
        const std::size_t hi = block_lo(i + 1);
        for (std::size_t t = lo; t < hi; ++t) {
          const std::size_t p = assignment[cell[t]];
          const std::size_t b =
              priority != nullptr
                  ? static_cast<std::size_t>(priority[t] - min_priority)
                  : 0;
          ++h[p * width + b];
        }
      },
      executors);

  // Per-processor load and the padded region size (same power-of-two
  // layout as the serial slot engine: region base p << log2r, >= 1 bitmap
  // word per processor so no two processors share a word — and, because
  // the region size is a multiple of 64, no two *shards* share a bitmap
  // word either).
  std::size_t max_per_proc = 64;
  {
    for (std::size_t p = 0; p < m; ++p) {
      std::size_t load = 0;
      for (std::size_t i = 0; i < n_blocks; ++i) {
        const std::uint32_t* h = hist + i * m * width + p * width;
        for (std::size_t b = 0; b < width; ++b) load += h[b];
      }
      max_per_proc = std::max(max_per_proc, load);
    }
  }
  const auto log2r =
      static_cast<std::uint32_t>(std::bit_width(max_per_proc - 1));
  const std::size_t n_slots = m << log2r;
  if (n_slots > kMaxShardedSlots) return std::nullopt;

  // ---- SoA arena: every per-task / per-slot lane in one 64-byte-aligned
  // block. indeg_at is slot-indexed (see the header comment): a shard's
  // mutable state is the contiguous [proc_lo << log2r, proc_hi << log2r)
  // range of indeg_at + bitmap plus its hint/queued/load sub-ranges.
  util::Arena& arena = scratch.arena;
  arena.reserve(util::Arena::lane_bytes<std::uint32_t>(total) +
                util::Arena::lane_bytes<Task32>(n_slots) +
                util::Arena::lane_bytes<std::uint32_t>(n_slots) +
                util::Arena::lane_bytes<std::uint64_t>(n_slots / 64 + 1) +
                util::Arena::lane_bytes<std::uint32_t>(m) * 3);
  std::uint32_t* slot_of = arena.alloc<std::uint32_t>(total);
  Task32* task_at = arena.alloc<Task32>(n_slots);
  std::uint32_t* indeg_at = arena.alloc<std::uint32_t>(n_slots);
  std::uint64_t* bitmap = arena.alloc<std::uint64_t>(n_slots / 64 + 1);
  std::uint32_t* hint = arena.alloc<std::uint32_t>(m);
  std::uint32_t* queued = arena.alloc<std::uint32_t>(m);
  std::uint32_t* load = arena.alloc<std::uint32_t>(m);

  // ---- Pass 2: layered exclusive scan, in place. hist[block i] becomes
  // block i's next-free-slot cursor per (processor, bucket): slots are
  // ordered (processor, bucket, block, task id) = (processor, priority,
  // task id), the reference tie-break order, since task ids ascend within
  // a block and blocks are task-ordered.
  for (std::size_t p = 0; p < m; ++p) {
    auto acc = static_cast<std::uint32_t>(p << log2r);
    for (std::size_t b = 0; b < width; ++b) {
      for (std::size_t i = 0; i < n_blocks; ++i) {
        std::uint32_t& h = hist[i * m * width + p * width + b];
        const std::uint32_t count = h;
        h = acc;
        acc += count;
      }
    }
    load[p] = acc - static_cast<std::uint32_t>(p << log2r);
  }

  // ---- Shard map + worker state.
  scratch.shard_of.resize(m);
  std::uint32_t* shard_of = scratch.shard_of.data();
  while (scratch.workers.size() < W) {
    scratch.workers.push_back(std::make_unique<WorkerState>());
  }
  const std::unique_ptr<WorkerState>* workers = scratch.workers.data();
  for (std::size_t w = 0; w < W; ++w) {
    WorkerState& ws = *workers[w];
    ws.proc_lo = static_cast<std::uint32_t>(w * m / W);
    ws.proc_hi = static_cast<std::uint32_t>((w + 1) * m / W);
    for (std::uint32_t p = ws.proc_lo; p < ws.proc_hi; ++p) shard_of[p] = w;
    ws.outbox.resize(W);
    ws.outbox_cap.resize(W);
    for (std::size_t d = 0; d < W; ++d) {
      ws.outbox[d].clear();
      // Snapshot warm capacities: outbox_growths counts reallocations
      // *within this run* — zero once the scratch has seen this shape.
      ws.outbox_cap[d] = ws.outbox[d].capacity();
    }
    ws.pops = 0;
    ws.active = 0;
    ws.steals = 0;
    ws.queue_depth = 0;
    ws.outbox_growths = 0;
    ws.simd_stats = {};
  }

  // ---- First-touch placement: each worker initializes its own shard's
  // indegree and bitmap regions (and zeroes its queued lane) before any
  // cross-shard write lands there, so the pages become worker-local on
  // NUMA kernels. Shard regions start at proc_lo << log2r and log2r >= 6,
  // so bitmap word ranges are shard-disjoint.
  util::parallel_for(
      W,
      [&](std::size_t w) {
        WorkerState& ws = *workers[w];
        const std::size_t s_lo = static_cast<std::size_t>(ws.proc_lo)
                                 << log2r;
        const std::size_t s_hi = static_cast<std::size_t>(ws.proc_hi)
                                 << log2r;
        std::memset(indeg_at + s_lo, 0, (s_hi - s_lo) * sizeof(*indeg_at));
        std::memset(bitmap + s_lo / 64, 0, (s_hi - s_lo) / 64 * sizeof(*bitmap));
        std::memset(queued + ws.proc_lo, 0,
                    (ws.proc_hi - ws.proc_lo) * sizeof(*queued));
      },
      executors);
  bitmap[n_slots / 64] = 0;  // the scan sentinel word past the last region

  // ---- Pass 3: fill the lanes. Each block owns its cursor copy, so the
  // scatter into slot_of/task_at/indeg_at is write-disjoint across blocks.
  util::parallel_for(
      n_blocks,
      [&](std::size_t i) {
        std::uint32_t* h = hist + i * m * width;
        const std::size_t lo = block_lo(i);
        const std::size_t hi = block_lo(i + 1);
        const std::uint32_t* indeg_src = tg.indegrees().data();
        for (std::size_t t = lo; t < hi; ++t) {
          const auto p = static_cast<std::uint32_t>(assignment[cell[t]]);
          const std::size_t b =
              priority != nullptr
                  ? static_cast<std::size_t>(priority[t] - min_priority)
                  : 0;
          const std::uint32_t s = h[p * width + b]++;
          slot_of[t] = s;
          task_at[s] = static_cast<Task32>(t);
          indeg_at[s] = indeg_src[t];
        }
      },
      executors);

  Schedule schedule(tg.n_cells(), tg.n_directions(), m, assignment);

  // Pushes slot s of a processor owned by the calling shard.
  auto push_slot = [&](std::uint32_t s) {
    const std::uint32_t p = s >> log2r;
    bitmap[s >> 6] |= 1ull << (s & 63);
    if (queued[p] == 0 || s < hint[p]) hint[p] = s;
    ++queued[p];
  };

  // Rebuilds shard w's deque from its queued counters (fixed processor
  // order => deterministic deque contents) and publishes its active count
  // and aggregate queue depth.
  auto rebuild_deque = [&](WorkerState& ws) {
    ws.deque.reset(ws.proc_hi - ws.proc_lo);
    std::uint32_t active = 0;
    std::uint64_t depth = 0;
    for (std::uint32_t p = ws.proc_lo; p < ws.proc_hi; ++p) {
      if (queued[p] > 0) {
        ws.deque.push(p);
        ++active;
        depth += queued[p];
      }
    }
    ws.active = active;
    ws.queue_depth = depth;
  };

  // ---- Initial ready set: each shard scans its processors' populated
  // slot ranges (Σ load = n_tasks total work, shard-disjoint writes).
  util::parallel_for(
      W,
      [&](std::size_t w) {
        WorkerState& ws = *workers[w];
        for (std::uint32_t p = ws.proc_lo; p < ws.proc_hi; ++p) {
          const std::uint32_t base = p << log2r;
          for (std::uint32_t s = base; s < base + load[p]; ++s) {
            if (indeg_at[s] == 0) push_slot(s);
          }
        }
        rebuild_deque(ws);
      },
      executors);
  build_phase.done();
  obs::PhaseSpan run_phase("engine.sharded.steps");

  // ---- Superstep loop.
  std::size_t done = 0;
  std::size_t total_active = 0;
  std::uint64_t queue_depth_sum = 0;
  std::size_t peak_active = 0;
  for (std::size_t w = 0; w < W; ++w) {
    total_active += workers[w]->active;
    queue_depth_sum += workers[w]->queue_depth;
  }

  TimeStep now = 0;
  while (total_active > 0) {
    peak_active = std::max(peak_active, total_active);
    // Pop phase: drain own deque, then steal from the other shards.
    util::parallel_for(
        W,
        [&](std::size_t w) {
          WorkerState& ws = *workers[w];
          std::uint32_t pops = 0;
          std::uint64_t steals = 0;
          auto run_processor = [&](std::uint32_t p) {
            // Pop the processor's lowest live slot — its (priority, task
            // id) minimum, exactly the reference heap's choice.
            std::size_t word = hint[p] >> 6;
            std::uint64_t bits = bitmap[word] & (~0ull << (hint[p] & 63));
            while (bits == 0) bits = bitmap[++word];
            const auto s = static_cast<std::uint32_t>(
                (word << 6) + static_cast<std::uint32_t>(
                                  std::countr_zero(bits)));
            bitmap[word] &= ~(1ull << (s & 63));
            hint[p] = s;
            --queued[p];
            const Task32 task = task_at[s];
            schedule.set_start(task, now);
            ++pops;
            // Walk the finished task's contiguous CSR successor run into
            // the per-destination-shard outboxes, prefetching the row and
            // the next edge's slot lookup one iteration ahead.
            const std::uint32_t e_lo = offsets[task];
            const std::uint32_t e_hi = offsets[task + 1];
            util::simd::prefetch_read(targets + e_lo);
            for (std::uint32_t e = e_lo; e < e_hi; ++e) {
              if (e + 1 < e_hi) {
                util::simd::prefetch_read(slot_of + targets[e + 1]);
              }
              const std::uint32_t s2 = slot_of[targets[e]];
              ws.outbox[shard_of[s2 >> log2r]].push_back(s2);
            }
          };
          std::uint32_t p;
          while (ws.deque.take(&p)) run_processor(p);
          // Stealing only buys wall-clock when another executor could
          // otherwise idle; with the phase bodies serialized on a single
          // executor every deque is drained by its own body anyway, and
          // the Chase-Lev steal CAS per task is pure loss.
          if (executors > 1) {
            for (std::size_t d = 1; d < W; ++d) {
              util::StealDeque<std::uint32_t>& victim =
                  workers[(w + d) % W]->deque;
              while (victim.steal(&p)) {
                run_processor(p);
                ++steals;
              }
            }
          }
          for (std::size_t d = 0; d < W; ++d) {
            if (ws.outbox[d].capacity() > ws.outbox_cap[d]) {
              ++ws.outbox_growths;
              ws.outbox_cap[d] = ws.outbox[d].capacity();
            }
          }
          ws.pops = pops;
          ws.steals += steals;
        },
        executors);
    for (std::size_t w = 0; w < W; ++w) done += workers[w]->pops;

    // Resolve phase: each shard concatenates the outboxes addressed to it
    // and retires the batch with the SIMD decrement kernel over its own
    // slot-indexed indegree region; every slot that reached zero enters
    // the ready bitmap.
    util::parallel_for(
        W,
        [&](std::size_t w) {
          WorkerState& ws = *workers[w];
          std::vector<std::uint32_t>& batch = ws.resolve_batch;
          batch.clear();
          for (std::size_t src = 0; src < W; ++src) {
            std::vector<std::uint32_t>& box = workers[src]->outbox[w];
            batch.insert(batch.end(), box.begin(), box.end());
            box.clear();
          }
          if (!batch.empty()) {
            if (ws.ready_slots.size() < batch.size()) {
              ws.ready_slots.resize(batch.size());
            }
            const std::size_t zeros = util::simd::decrement_to_zero(
                indeg_at, batch.data(), batch.size(), ws.ready_slots.data(),
                ws.batch_scratch, &ws.simd_stats);
            for (std::size_t i = 0; i < zeros; ++i) {
              push_slot(ws.ready_slots[i]);
            }
          }
          rebuild_deque(ws);
        },
        executors);
    total_active = 0;
    for (std::size_t w = 0; w < W; ++w) {
      total_active += workers[w]->active;
      queue_depth_sum += workers[w]->queue_depth;
    }
    ++now;
  }
  run_phase.done();
  if (done < total) {
    throw std::logic_error(
        "list_schedule: deadlock — instance DAG has a cycle");
  }

  std::uint64_t steals = 0;
  util::simd::BatchStats simd_stats;
  std::uint64_t outbox_growths = 0;
  for (std::size_t w = 0; w < W; ++w) {
    steals += workers[w]->steals;
    simd_stats += workers[w]->simd_stats;
    outbox_growths += workers[w]->outbox_growths;
  }
  SWEEP_OBS_COUNTER_ADD("engine.sharded.runs", 1);
  SWEEP_OBS_COUNTER_ADD("engine.sharded.steals", steals);
  SWEEP_OBS_COUNTER_ADD("engine.simd.batches", simd_stats.batches);
  SWEEP_OBS_COUNTER_ADD("engine.simd.fallbacks", simd_stats.fallbacks);
  SWEEP_OBS_COUNTER_ADD("engine.sharded.outbox_growths", outbox_growths);
  SWEEP_OBS_COUNTER_ADD("engine.pops", done);
  SWEEP_OBS_COUNTER_ADD("engine.steps", now);
  SWEEP_OBS_GAUGE_SET("engine.sharded.numa_nodes",
                      static_cast<std::int64_t>(util::numa::node_count()));
  SWEEP_OBS_OBSERVE("engine.sharded.workers", static_cast<double>(W));
  if (now > 0) {
    SWEEP_OBS_OBSERVE("engine.occupancy",
                      static_cast<double>(done) /
                          (static_cast<double>(now) * static_cast<double>(m)));
    SWEEP_OBS_OBSERVE("engine.sharded.queue_depth",
                      static_cast<double>(queue_depth_sum) /
                          static_cast<double>(now));
    SWEEP_OBS_OBSERVE("engine.peak_active_procs",
                      static_cast<double>(peak_active));
  }
  return schedule;
}

}  // namespace sweep::core::detail
