#include "core/sharded_schedule.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"
#include "util/arena.hpp"
#include "util/parallel.hpp"
#include "util/steal_deque.hpp"
#include "util/thread_pool.hpp"

// The sharded superstep engine (DESIGN.md §12).
//
// The serial slot-map engine (list_scheduler.cpp) already reduces a
// timestep to "for each active processor, pop the lowest live slot, then
// decrement successors". This file distributes exactly that over W worker
// shards while keeping the output bit-identical to list_schedule_reference
// for every W:
//
//   - Every simulated processor belongs to one shard (static contiguous
//     map). A processor's ready state — its padded slot region's bitmap
//     words, hint and queued counters — is only ever touched by (a) the
//     one thread that pops it this step (pop phase) or (b) its owner shard
//     (resolve phase); the phases are fork/join-separated, so no atomics
//     guard any per-task or per-processor state.
//   - Pop phase: each worker drains its own Chase–Lev deque of active
//     processors, then steals from the other shards, so skewed shards
//     (tail levels where only a few processors are active) cannot idle the
//     rest of the machine. Which thread pops a processor affects only load
//     balance: the popped task is the processor's (priority, task-id)
//     minimum either way. Completions do not touch successor state
//     directly; the popper drains each finished task's contiguous CSR
//     successor run into per-(worker, destination-shard) outboxes.
//   - Resolve phase: each shard drains the W outboxes addressed to it and
//     decrements its own tasks' indegrees in one batched pass over the
//     buffered ids — the scatter stays shard-private, which is what makes
//     the whole step lock-free, and newly-ready tasks enter the bitmap via
//     their precomputed slot. All of these updates commute (decrements,
//     bit sets, min-hints), so the arrival order — the only thing stealing
//     perturbs — cannot change the outcome. The shard then rebuilds its
//     deque for the next step in fixed processor order.
//
// Scheduling state lives in one 64-byte-aligned structure-of-arrays arena
// (indegree / slot / processor lanes plus the slot->task map and bitmap)
// instead of the scattered per-call vectors of the serial engines; the
// lane fills are contiguous uint32 loops over the arena (memcpy /
// subtract-and-store, autovectorized), and the per-call footprint is
// reused across calls per thread.

namespace sweep::core::detail {
namespace {

using Task32 = dag::TaskGraph::Task;

/// Padded slot-space cap: task_at is one u32 per slot, so 2^26 slots caps
/// the map at 256 MiB. Beyond this (pathologically skewed assignments) the
/// caller falls back to the serial heap engine, as the serial slot engine
/// does at its own cap.
constexpr std::size_t kMaxShardedSlots = 1u << 26;

/// Per-shard worker state. alignas(64): pops/active/steals are written by
/// one thread per phase but sit in an indexed array; padding keeps a
/// worker's counters off its neighbours' cache lines.
struct alignas(64) WorkerState {
  util::StealDeque<std::uint32_t> deque;        // active procs this step
  std::vector<std::vector<Task32>> outbox;      // [dest shard] successor ids
  std::uint32_t proc_lo = 0;                    // owned processor range
  std::uint32_t proc_hi = 0;
  std::uint32_t pops = 0;                       // pops this step
  std::uint32_t active = 0;                     // active procs after resolve
  std::uint64_t steals = 0;                     // cumulative
  std::uint64_t queue_depth = 0;                // Σ queued over owned procs
};

/// Reused per-thread scratch: the SoA arena plus the containers whose
/// capacity should survive across calls (trial fan-outs and fuzz campaigns
/// schedule thousands of instances per thread).
struct ShardedScratch {
  util::Arena arena;
  // unique_ptr: WorkerState holds atomics (non-movable), so the vector
  // could never resize holding them by value.
  std::vector<std::unique_ptr<WorkerState>> workers;
  std::vector<std::uint32_t> hist;  // [block][proc * width + bucket]
  std::vector<std::uint32_t> shard_of;  // processor -> shard
};

ShardedScratch& sharded_scratch() {
  thread_local ShardedScratch scratch;
  return scratch;
}

}  // namespace

std::size_t resolve_engine_workers(std::size_t jobs,
                                   std::size_t n_processors) {
  std::size_t w = jobs != 0 ? jobs : util::ThreadPool::global().size() + 1;
  w = std::min(w, n_processors);
  return std::max<std::size_t>(w, 1);
}

std::optional<Schedule> sharded_list_schedule(
    const dag::TaskGraph& tg, const Assignment& assignment,
    std::size_t n_processors, std::span<const std::int64_t> priorities,
    std::int64_t min_priority, std::size_t width, std::size_t jobs) {
  SWEEP_OBS_SPAN("engine.sharded.run");
  const std::size_t total = tg.n_tasks();
  const std::size_t m = n_processors;
  const std::size_t W = resolve_engine_workers(jobs, m);
  const std::uint32_t* cell = tg.cells().data();
  const std::uint32_t* offsets = tg.offsets().data();
  const Task32* targets = tg.targets().data();
  const std::int64_t* priority =
      priorities.empty() ? nullptr : priorities.data();
  assert(width >= 1);

  obs::PhaseSpan build_phase("engine.sharded.build");
  ShardedScratch& scratch = sharded_scratch();

  // ---- Pass 1: per-block (processor, bucket) histograms. Fixed block
  // boundaries make the layered slot cursors — and hence the whole slot
  // map — independent of how parallel_for interleaves the blocks.
  const std::size_t n_blocks = W;
  auto block_lo = [&](std::size_t i) { return i * total / n_blocks; };
  scratch.hist.assign(n_blocks * m * width, 0);
  std::uint32_t* hist = scratch.hist.data();
  util::parallel_for(
      n_blocks,
      [&](std::size_t i) {
        std::uint32_t* h = hist + i * m * width;
        const std::size_t lo = block_lo(i);
        const std::size_t hi = block_lo(i + 1);
        for (std::size_t t = lo; t < hi; ++t) {
          const std::size_t p = assignment[cell[t]];
          const std::size_t b =
              priority != nullptr
                  ? static_cast<std::size_t>(priority[t] - min_priority)
                  : 0;
          ++h[p * width + b];
        }
      },
      W);

  // Per-processor load and the padded region size (same power-of-two
  // layout as the serial slot engine: region base p << log2r, >= 1 bitmap
  // word per processor so no two processors share a word).
  std::size_t max_per_proc = 64;
  {
    for (std::size_t p = 0; p < m; ++p) {
      std::size_t load = 0;
      for (std::size_t i = 0; i < n_blocks; ++i) {
        const std::uint32_t* h = hist + i * m * width + p * width;
        for (std::size_t b = 0; b < width; ++b) load += h[b];
      }
      max_per_proc = std::max(max_per_proc, load);
    }
  }
  const auto log2r =
      static_cast<std::uint32_t>(std::bit_width(max_per_proc - 1));
  const std::size_t n_slots = m << log2r;
  if (n_slots > kMaxShardedSlots) return std::nullopt;

  // ---- SoA arena: every per-task / per-slot lane in one 64-byte-aligned
  // block.
  util::Arena& arena = scratch.arena;
  arena.reserve(util::Arena::lane_bytes<std::uint32_t>(total) * 3 +
                util::Arena::lane_bytes<Task32>(n_slots) +
                util::Arena::lane_bytes<std::uint64_t>(n_slots / 64 + 1) +
                util::Arena::lane_bytes<std::uint32_t>(m) * 3);
  std::uint32_t* indeg = arena.alloc<std::uint32_t>(total);
  std::uint32_t* slot_of = arena.alloc<std::uint32_t>(total);
  std::uint32_t* proc_of = arena.alloc<std::uint32_t>(total);
  Task32* task_at = arena.alloc<Task32>(n_slots);
  std::uint64_t* bitmap = arena.alloc_zero<std::uint64_t>(n_slots / 64 + 1);
  std::uint32_t* hint = arena.alloc<std::uint32_t>(m);
  std::uint32_t* queued = arena.alloc_zero<std::uint32_t>(m);
  std::uint32_t* load = arena.alloc<std::uint32_t>(m);

  // ---- Pass 2: layered exclusive scan, in place. hist[block i] becomes
  // block i's next-free-slot cursor per (processor, bucket): slots are
  // ordered (processor, bucket, block, task id) = (processor, priority,
  // task id), the reference tie-break order, since task ids ascend within
  // a block and blocks are task-ordered.
  for (std::size_t p = 0; p < m; ++p) {
    auto acc = static_cast<std::uint32_t>(p << log2r);
    for (std::size_t b = 0; b < width; ++b) {
      for (std::size_t i = 0; i < n_blocks; ++i) {
        std::uint32_t& h = hist[i * m * width + p * width + b];
        const std::uint32_t count = h;
        h = acc;
        acc += count;
      }
    }
    load[p] = acc - static_cast<std::uint32_t>(p << log2r);
  }

  // ---- Pass 3: fill the lanes. Each block owns its cursor copy, so the
  // scatter into slot_of/task_at is write-disjoint across blocks.
  util::parallel_for(
      n_blocks,
      [&](std::size_t i) {
        std::uint32_t* h = hist + i * m * width;
        const std::size_t lo = block_lo(i);
        const std::size_t hi = block_lo(i + 1);
        const std::uint32_t* indeg_src = tg.indegrees().data();
        // Contiguous u32 lane copy (vectorized memcpy).
        std::memcpy(indeg + lo, indeg_src + lo, (hi - lo) * sizeof(*indeg));
        for (std::size_t t = lo; t < hi; ++t) {
          const auto p = static_cast<std::uint32_t>(assignment[cell[t]]);
          const std::size_t b =
              priority != nullptr
                  ? static_cast<std::size_t>(priority[t] - min_priority)
                  : 0;
          const std::uint32_t s = h[p * width + b]++;
          proc_of[t] = p;
          slot_of[t] = s;
          task_at[s] = static_cast<Task32>(t);
        }
      },
      W);

  // ---- Shard map + worker state.
  scratch.shard_of.resize(m);
  std::uint32_t* shard_of = scratch.shard_of.data();
  while (scratch.workers.size() < W) {
    scratch.workers.push_back(std::make_unique<WorkerState>());
  }
  const std::unique_ptr<WorkerState>* workers = scratch.workers.data();
  for (std::size_t w = 0; w < W; ++w) {
    WorkerState& ws = *workers[w];
    ws.proc_lo = static_cast<std::uint32_t>(w * m / W);
    ws.proc_hi = static_cast<std::uint32_t>((w + 1) * m / W);
    for (std::uint32_t p = ws.proc_lo; p < ws.proc_hi; ++p) shard_of[p] = w;
    ws.outbox.resize(W);
    for (auto& box : ws.outbox) box.clear();
    ws.pops = 0;
    ws.active = 0;
    ws.steals = 0;
    ws.queue_depth = 0;
  }

  Schedule schedule(tg.n_cells(), tg.n_directions(), m, assignment);

  // Pushes slot s of a processor owned by the calling shard.
  auto push_slot = [&](std::uint32_t s) {
    const std::uint32_t p = s >> log2r;
    bitmap[s >> 6] |= 1ull << (s & 63);
    if (queued[p] == 0 || s < hint[p]) hint[p] = s;
    ++queued[p];
  };

  // Rebuilds shard w's deque from its queued counters (fixed processor
  // order => deterministic deque contents) and publishes its active count
  // and aggregate queue depth.
  auto rebuild_deque = [&](WorkerState& ws) {
    ws.deque.reset(ws.proc_hi - ws.proc_lo);
    std::uint32_t active = 0;
    std::uint64_t depth = 0;
    for (std::uint32_t p = ws.proc_lo; p < ws.proc_hi; ++p) {
      if (queued[p] > 0) {
        ws.deque.push(p);
        ++active;
        depth += queued[p];
      }
    }
    ws.active = active;
    ws.queue_depth = depth;
  };

  // ---- Initial ready set: each shard scans its processors' populated
  // slot ranges (Σ load = n_tasks total work, shard-disjoint writes).
  util::parallel_for(
      W,
      [&](std::size_t w) {
        WorkerState& ws = *workers[w];
        for (std::uint32_t p = ws.proc_lo; p < ws.proc_hi; ++p) {
          const std::uint32_t base = p << log2r;
          for (std::uint32_t s = base; s < base + load[p]; ++s) {
            if (indeg[task_at[s]] == 0) push_slot(s);
          }
        }
        rebuild_deque(ws);
      },
      W);
  build_phase.done();
  obs::PhaseSpan run_phase("engine.sharded.steps");

  // ---- Superstep loop.
  std::size_t done = 0;
  std::size_t total_active = 0;
  std::uint64_t queue_depth_sum = 0;
  std::size_t peak_active = 0;
  for (std::size_t w = 0; w < W; ++w) {
    total_active += workers[w]->active;
    queue_depth_sum += workers[w]->queue_depth;
  }

  TimeStep now = 0;
  while (total_active > 0) {
    peak_active = std::max(peak_active, total_active);
    // Pop phase: drain own deque, then steal from the other shards.
    util::parallel_for(
        W,
        [&](std::size_t w) {
          WorkerState& ws = *workers[w];
          std::uint32_t pops = 0;
          std::uint64_t steals = 0;
          auto run_processor = [&](std::uint32_t p) {
            // Pop the processor's lowest live slot — its (priority, task
            // id) minimum, exactly the reference heap's choice.
            std::size_t word = hint[p] >> 6;
            std::uint64_t bits = bitmap[word] & (~0ull << (hint[p] & 63));
            while (bits == 0) bits = bitmap[++word];
            const auto s = static_cast<std::uint32_t>(
                (word << 6) + static_cast<std::uint32_t>(
                                  std::countr_zero(bits)));
            bitmap[word] &= ~(1ull << (s & 63));
            hint[p] = s;
            --queued[p];
            const Task32 task = task_at[s];
            schedule.set_start(task, now);
            ++pops;
            // Drain the finished task's contiguous CSR successor run into
            // the per-destination-shard outboxes.
            for (std::uint32_t e = offsets[task]; e < offsets[task + 1];
                 ++e) {
              const Task32 succ = targets[e];
              ws.outbox[shard_of[proc_of[succ]]].push_back(succ);
            }
          };
          std::uint32_t p;
          while (ws.deque.take(&p)) run_processor(p);
          for (std::size_t d = 1; d < W; ++d) {
            util::StealDeque<std::uint32_t>& victim =
                workers[(w + d) % W]->deque;
            while (victim.steal(&p)) {
              run_processor(p);
              ++steals;
            }
          }
          ws.pops = pops;
          ws.steals += steals;
        },
        W);
    for (std::size_t w = 0; w < W; ++w) done += workers[w]->pops;

    // Resolve phase: each shard drains the outboxes addressed to it —
    // contiguous u32 batches — and decrements its own tasks' indegrees.
    util::parallel_for(
        W,
        [&](std::size_t w) {
          for (std::size_t src = 0; src < W; ++src) {
            std::vector<Task32>& box = workers[src]->outbox[w];
            for (const Task32 succ : box) {
              if (--indeg[succ] == 0) push_slot(slot_of[succ]);
            }
            box.clear();
          }
          rebuild_deque(*workers[w]);
        },
        W);
    total_active = 0;
    for (std::size_t w = 0; w < W; ++w) {
      total_active += workers[w]->active;
      queue_depth_sum += workers[w]->queue_depth;
    }
    ++now;
  }
  run_phase.done();
  if (done < total) {
    throw std::logic_error(
        "list_schedule: deadlock — instance DAG has a cycle");
  }

  std::uint64_t steals = 0;
  for (std::size_t w = 0; w < W; ++w) steals += workers[w]->steals;
  SWEEP_OBS_COUNTER_ADD("engine.sharded.runs", 1);
  SWEEP_OBS_COUNTER_ADD("engine.sharded.steals", steals);
  SWEEP_OBS_COUNTER_ADD("engine.pops", done);
  SWEEP_OBS_COUNTER_ADD("engine.steps", now);
  SWEEP_OBS_OBSERVE("engine.sharded.workers", static_cast<double>(W));
  if (now > 0) {
    SWEEP_OBS_OBSERVE("engine.occupancy",
                      static_cast<double>(done) /
                          (static_cast<double>(now) * static_cast<double>(m)));
    SWEEP_OBS_OBSERVE("engine.sharded.queue_depth",
                      static_cast<double>(queue_depth_sum) /
                          static_cast<double>(now));
    SWEEP_OBS_OBSERVE("engine.peak_active_procs",
                      static_cast<double>(peak_active));
  }
  return schedule;
}

}  // namespace sweep::core::detail
