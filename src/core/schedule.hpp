#pragma once
// Schedule: the output of every scheduling algorithm in this library.
// Stores, for each task, its (unit-length) start timestep, plus the per-cell
// processor assignment; the processor of task (v,i) is assignment[v] by the
// sweep-scheduling same-processor constraint.

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace sweep::core {

/// Per-cell processor assignment.
using Assignment = std::vector<ProcessorId>;

class Schedule {
 public:
  Schedule() = default;
  Schedule(std::size_t n_cells, std::size_t n_directions,
           std::size_t n_processors, Assignment assignment)
      : n_cells_(n_cells),
        n_directions_(n_directions),
        n_processors_(n_processors),
        assignment_(std::move(assignment)),
        start_(n_cells * n_directions, kUnscheduled) {}

  [[nodiscard]] std::size_t n_cells() const { return n_cells_; }
  [[nodiscard]] std::size_t n_directions() const { return n_directions_; }
  [[nodiscard]] std::size_t n_processors() const { return n_processors_; }
  [[nodiscard]] std::size_t n_tasks() const { return start_.size(); }

  [[nodiscard]] const Assignment& assignment() const { return assignment_; }
  [[nodiscard]] ProcessorId processor_of_cell(CellId v) const {
    return assignment_[v];
  }
  [[nodiscard]] ProcessorId processor_of(TaskId t) const {
    return assignment_[task_cell(t, n_cells_)];
  }

  void set_start(TaskId t, TimeStep time) { start_[t] = time; }
  [[nodiscard]] TimeStep start(TaskId t) const { return start_[t]; }
  [[nodiscard]] TimeStep start(CellId v, DirectionId i) const {
    return start_[task_id(v, i, n_cells_)];
  }
  [[nodiscard]] const std::vector<TimeStep>& starts() const { return start_; }

  /// True iff every task has been given a start time.
  [[nodiscard]] bool complete() const;

  /// Makespan = 1 + max start time (unit tasks); 0 if nothing scheduled.
  [[nodiscard]] std::size_t makespan() const;

  /// Number of (processor, timestep) slots left idle below the makespan.
  [[nodiscard]] std::size_t idle_slots() const;

  /// Per-processor task counts (load balance diagnostics).
  [[nodiscard]] std::vector<std::size_t> processor_loads() const;

 private:
  std::size_t n_cells_ = 0;
  std::size_t n_directions_ = 0;
  std::size_t n_processors_ = 0;
  Assignment assignment_;
  std::vector<TimeStep> start_;
};

}  // namespace sweep::core
