#include "core/assignment.hpp"

#include <algorithm>
#include <stdexcept>

namespace sweep::core {

Assignment random_assignment(std::size_t n_cells, std::size_t n_processors,
                             util::Rng& rng) {
  if (n_processors == 0) {
    throw std::invalid_argument("random_assignment: need >= 1 processor");
  }
  Assignment assignment(n_cells);
  for (auto& p : assignment) {
    p = static_cast<ProcessorId>(rng.next_below(n_processors));
  }
  return assignment;
}

Assignment block_assignment(const partition::Partition& blocks,
                            std::size_t n_processors, util::Rng& rng) {
  if (n_processors == 0) {
    throw std::invalid_argument("block_assignment: need >= 1 processor");
  }
  std::uint32_t max_block = 0;
  for (std::uint32_t b : blocks) max_block = std::max(max_block, b);
  std::vector<ProcessorId> block_proc(static_cast<std::size_t>(max_block) + 1);
  for (auto& p : block_proc) {
    p = static_cast<ProcessorId>(rng.next_below(n_processors));
  }
  Assignment assignment(blocks.size());
  for (std::size_t v = 0; v < blocks.size(); ++v) {
    assignment[v] = block_proc[blocks[v]];
  }
  return assignment;
}

Assignment round_robin_block_assignment(const partition::Partition& blocks,
                                        std::size_t n_processors) {
  if (n_processors == 0) {
    throw std::invalid_argument("round_robin_block_assignment: need >= 1 processor");
  }
  Assignment assignment(blocks.size());
  for (std::size_t v = 0; v < blocks.size(); ++v) {
    assignment[v] = static_cast<ProcessorId>(blocks[v] % n_processors);
  }
  return assignment;
}

std::vector<std::size_t> assignment_loads(const Assignment& assignment,
                                          std::size_t n_processors) {
  std::vector<std::size_t> loads(n_processors, 0);
  for (ProcessorId p : assignment) ++loads[p];
  return loads;
}

}  // namespace sweep::core
