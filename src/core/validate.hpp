#pragma once
// Feasibility validation of schedules against the three constraints of the
// sweep scheduling problem (paper Section 3):
//   1. precedence within each direction DAG,
//   2. one task per processor per timestep, no preemption (unit tasks),
//   3. all copies of a cell on one processor (structural in our Schedule
//      representation, but re-checked via the assignment bounds).
// Used pervasively by tests and optionally by harnesses (--validate).

#include <string>

#include "core/schedule.hpp"
#include "sweep/instance.hpp"

namespace sweep::core {

struct ValidationResult {
  bool ok = true;
  std::string error;  ///< first violation found, empty when ok

  explicit operator bool() const { return ok; }
};

ValidationResult validate_schedule(const dag::SweepInstance& instance,
                                   const Schedule& schedule);

}  // namespace sweep::core
