#pragma once
// Algorithm 1 ("Random Delay") and Algorithm 3 ("Improved Random Delay") —
// the paper's provable algorithms. Both build a combined DAG by shifting each
// direction's layers by a uniform random delay X_i, assign each cell to a
// uniform random processor, and process the combined layers synchronously
// (layer r+1 starts only after layer r completes). They differ in the layers
// used: Algorithm 1 uses the natural DAG levels (O(log^2 n)-approximation,
// Theorem 1); Algorithm 3 first re-levels each DAG with a greedy m-machine
// list schedule of the union DAG so every layer has width <= m
// (O(log m log log log m) expected, Theorem 3/Corollary 1).

#include <cstdint>

#include "core/schedule.hpp"
#include "sweep/instance.hpp"
#include "util/rng.hpp"

namespace sweep::core {

struct RandomDelayResult {
  Schedule schedule;
  std::vector<TimeStep> delays;     ///< X_i per direction
  std::size_t combined_layers = 0;  ///< R, number of layers in combined DAG
  std::size_t max_layer_load = 0;   ///< max tasks on one processor in one layer
};

/// Algorithm 1. `assignment` may be empty, in which case step 3's uniform
/// random per-cell assignment is drawn from `rng` (pass a block assignment to
/// reproduce the Section 5.1 block experiments).
RandomDelayResult random_delay_schedule(const dag::SweepInstance& instance,
                                        std::size_t n_processors,
                                        util::Rng& rng,
                                        Assignment assignment = {});

/// Algorithm 3: greedy union-DAG preprocessing then random delays.
RandomDelayResult improved_random_delay_schedule(
    const dag::SweepInstance& instance, std::size_t n_processors,
    util::Rng& rng, Assignment assignment = {});

}  // namespace sweep::core
