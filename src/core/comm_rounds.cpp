#include "core/comm_rounds.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sweep/task_graph.hpp"

namespace sweep::core {
namespace {

/// Greedy edge coloring of a multigraph given as (u, v) endpoint pairs:
/// each edge takes the smallest color unused at both endpoints. Returns the
/// number of colors used (<= 2*Delta - 1).
std::size_t greedy_edge_color(
    const std::vector<std::pair<ProcessorId, ProcessorId>>& edges) {
  if (edges.empty()) return 0;
  // Per-endpoint bitmask of used colors, kept sparse via a map from
  // processor id to color bitset (vector<bool> sized lazily).
  struct Palette {
    std::vector<char> used;
  };
  std::vector<Palette> palettes;
  std::vector<std::uint32_t> palette_of;  // proc -> palette index + 1

  ProcessorId max_proc = 0;
  for (const auto& [u, v] : edges) max_proc = std::max({max_proc, u, v});
  palette_of.assign(static_cast<std::size_t>(max_proc) + 1, 0);

  auto palette_index = [&](ProcessorId p) -> std::size_t {
    if (palette_of[p] == 0) {
      palettes.emplace_back();
      palette_of[p] = static_cast<std::uint32_t>(palettes.size());
    }
    return palette_of[p] - 1;
  };

  std::size_t colors = 0;
  for (const auto& [u, v] : edges) {
    // Resolve both indices before taking references: palette_index may grow
    // the vector and would invalidate an earlier reference.
    const std::size_t iu = palette_index(u);
    const std::size_t iv = palette_index(v);
    Palette& pu = palettes[iu];
    Palette& pv = palettes[iv];
    std::size_t color = 0;
    for (;; ++color) {
      const bool used_u = color < pu.used.size() && pu.used[color];
      const bool used_v = color < pv.used.size() && pv.used[color];
      if (!used_u && !used_v) break;
    }
    if (color >= pu.used.size()) pu.used.resize(color + 1, 0);
    if (color >= pv.used.size()) pv.used.resize(color + 1, 0);
    pu.used[color] = 1;
    pv.used[color] = 1;
    colors = std::max(colors, color + 1);
  }
  return colors;
}

}  // namespace

CommRoundsResult realize_c2_rounds(const dag::SweepInstance& instance,
                                   const Schedule& schedule) {
  const dag::TaskGraph& tg = instance.task_graph();
  const std::uint32_t* cell = tg.cells().data();
  const std::size_t horizon = schedule.makespan();

  // Bucket messages by the step their source finishes.
  std::vector<std::vector<std::pair<ProcessorId, ProcessorId>>> by_step(horizon);
  CommRoundsResult result;
  for (std::size_t t = 0; t < tg.n_tasks(); ++t) {
    const TimeStep tu = schedule.start(t);
    if (tu == kUnscheduled) {
      throw std::invalid_argument("realize_c2_rounds: incomplete schedule");
    }
    const ProcessorId pu = schedule.processor_of_cell(cell[t]);
    for (dag::TaskGraph::Task succ : tg.successors(t)) {
      const ProcessorId pv = schedule.processor_of_cell(cell[succ]);
      if (pu != pv) {
        by_step[tu].push_back({pu, pv});
        ++result.total_messages;
      }
    }
  }

  std::vector<std::size_t> degree;
  for (auto& edges : by_step) {
    if (edges.empty()) continue;
    // Track the max total degree for the coloring-quality guarantee.
    degree.clear();
    ProcessorId max_proc = 0;
    for (const auto& [u, v] : edges) max_proc = std::max({max_proc, u, v});
    degree.assign(static_cast<std::size_t>(max_proc) + 1, 0);
    std::size_t delta = 0;
    for (const auto& [u, v] : edges) {
      delta = std::max({delta, ++degree[u], ++degree[v]});
    }
    result.max_total_degree = std::max(result.max_total_degree, delta);

    const std::size_t colors = greedy_edge_color(edges);
    result.total_rounds += colors;
    result.max_round_count = std::max(result.max_round_count, colors);
  }
  return result;
}

}  // namespace sweep::core
