#pragma once
// Priority vectors for the list-scheduling engine (paper Sections 4.2, 5.2).
// All vectors are indexed by flattened task id and use the engine's
// "smaller value runs first" convention, so "higher preferred" schemes
// (descendants, DFDS) are stored negated.
//
// Every per-direction construction loop below fans out across the global
// util::ThreadPool (DESIGN.md §11): direction i fills its own contiguous
// slice priorities[i*n, (i+1)*n) and, when it needs randomness, draws from
// its own util::Rng::for_stream(base, i) stream, where `base` is a single
// draw from the caller's Rng. Output is therefore byte-identical for any
// `jobs` (0 = all cores, 1 = serial) and independent of direction iteration
// order. The `*_reference` twins are preserved plain serial loops used by
// the tests, the fuzz oracle bank, and bench/pipeline_throughput as
// differential baselines.

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"
#include "sweep/instance.hpp"
#include "util/rng.hpp"

namespace sweep::core {

/// Uniform random delays X_i in {0,...,k-1}, one per direction (step 1 of
/// Algorithms 1-3).
std::vector<TimeStep> random_delays(std::size_t n_directions, util::Rng& rng);

/// Level priorities: Gamma(v,i) = level_i(v) (Section 5.2, "Level
/// Priorities").
std::vector<std::int64_t> level_priorities(const dag::SweepInstance& instance);

/// Algorithm 2 priorities: Gamma(v,i) = level_i(v) + X_i, built in parallel
/// across directions.
std::vector<std::int64_t> random_delay_priorities(
    const dag::SweepInstance& instance, const std::vector<TimeStep>& delays,
    std::size_t jobs = 0);

/// Preserved serial twin of random_delay_priorities.
std::vector<std::int64_t> random_delay_priorities_reference(
    const dag::SweepInstance& instance, const std::vector<TimeStep>& delays);

/// Descendant priorities (Plimpton et al. [15]): more descendants run first.
/// Exact (tiled) counts for small DAGs, Cohen-estimated for large ones.
/// Consumes exactly one draw from `rng` to derive the per-direction streams,
/// regardless of k or of which directions take the estimator path.
std::vector<std::int64_t> descendant_priorities(
    const dag::SweepInstance& instance, util::Rng& rng, std::size_t jobs = 0);

/// Preserved serial twin of descendant_priorities: identical stream
/// derivation, but plain loop + reference (naive bitset) exact counter.
std::vector<std::int64_t> descendant_priorities_reference(
    const dag::SweepInstance& instance, util::Rng& rng);

/// b-level (critical-path-first) priorities: tasks with the longest
/// remaining path to a sink run first. A standard DAG-scheduling heuristic
/// (the backbone of DFDS's tie-breaking) included as an extra comparator.
std::vector<std::int64_t> blevel_priorities(const dag::SweepInstance& instance,
                                            std::size_t jobs = 0);

/// Preserved serial twin of blevel_priorities.
std::vector<std::int64_t> blevel_priorities_reference(
    const dag::SweepInstance& instance);

/// DFDS priorities (Pautz [14], as described in Section 5.2). Priorities
/// depend on the processor assignment through "off-processor children":
///  - a task with off-processor children gets C + max b-level of those
///    children, where C >= #levels of the DAG;
///  - a task whose children are all on-processor gets (max child priority)-1;
///  - a task with no off-processor descendants gets 0.
/// Higher preferred (stored negated for the engine).
std::vector<std::int64_t> dfds_priorities(const dag::SweepInstance& instance,
                                          const Assignment& assignment,
                                          std::size_t jobs = 0);

/// Preserved serial twin of dfds_priorities.
std::vector<std::int64_t> dfds_priorities_reference(
    const dag::SweepInstance& instance, const Assignment& assignment);

/// Per-task release times from per-direction delays: task (v,i) may not
/// start before X_i. This is how "random delays" are added to heuristics
/// whose priority scale is not level-based (descendants, DFDS).
std::vector<TimeStep> delay_release_times(const dag::SweepInstance& instance,
                                          const std::vector<TimeStep>& delays);

}  // namespace sweep::core
