#include "core/schedule.hpp"

#include <algorithm>

namespace sweep::core {

bool Schedule::complete() const {
  return std::none_of(start_.begin(), start_.end(),
                      [](TimeStep t) { return t == kUnscheduled; });
}

std::size_t Schedule::makespan() const {
  std::size_t last = 0;
  bool any = false;
  for (TimeStep t : start_) {
    if (t == kUnscheduled) continue;
    last = std::max<std::size_t>(last, t);
    any = true;
  }
  return any ? last + 1 : 0;
}

std::size_t Schedule::idle_slots() const {
  const std::size_t total_slots = makespan() * n_processors_;
  std::size_t scheduled = 0;
  for (TimeStep t : start_) {
    if (t != kUnscheduled) ++scheduled;
  }
  return total_slots >= scheduled ? total_slots - scheduled : 0;
}

std::vector<std::size_t> Schedule::processor_loads() const {
  std::vector<std::size_t> loads(n_processors_, 0);
  for (TaskId t = 0; t < start_.size(); ++t) {
    if (start_[t] != kUnscheduled) ++loads[processor_of(t)];
  }
  return loads;
}

}  // namespace sweep::core
