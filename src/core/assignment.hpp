#pragma once
// Processor assignments for cells.
//
// The paper's two assignment modes (Section 5.1): per-cell uniform random
// (used by the provable algorithms) and block-based — partition the mesh into
// blocks (METIS in the paper, our multilevel partitioner here) and pick a
// uniform random processor per *block*, which slashes the number of
// inter-processor edges at a small makespan cost.

#include <cstdint>

#include "core/schedule.hpp"
#include "partition/graph.hpp"
#include "util/rng.hpp"

namespace sweep::core {

/// Each cell independently to a uniform random processor (Algorithms 1-3).
Assignment random_assignment(std::size_t n_cells, std::size_t n_processors,
                             util::Rng& rng);

/// Each block of `blocks` (block id per cell) to a uniform random processor.
Assignment block_assignment(const partition::Partition& blocks,
                            std::size_t n_processors, util::Rng& rng);

/// Round-robin over blocks (deterministic comparator; not used by the
/// provable algorithms but handy for ablations).
Assignment round_robin_block_assignment(const partition::Partition& blocks,
                                        std::size_t n_processors);

/// Histogram: cells per processor.
std::vector<std::size_t> assignment_loads(const Assignment& assignment,
                                          std::size_t n_processors);

}  // namespace sweep::core
