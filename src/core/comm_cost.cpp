#include "core/comm_cost.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace sweep::core {

C1Cost comm_cost_c1(const dag::SweepInstance& instance,
                    const Assignment& assignment) {
  if (assignment.size() != instance.n_cells()) {
    throw std::invalid_argument("comm_cost_c1: assignment size != n_cells");
  }
  C1Cost cost;
  for (const dag::SweepDag& g : instance.dags()) {
    cost.total_edges += g.n_edges();
    for (dag::NodeId u = 0; u < g.n_nodes(); ++u) {
      for (dag::NodeId v : g.successors(u)) {
        if (assignment[u] != assignment[v]) ++cost.cross_edges;
      }
    }
  }
  return cost;
}

C2Cost comm_cost_c2(const dag::SweepInstance& instance,
                    const Schedule& schedule) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::size_t horizon = schedule.makespan();

  // sends[t * m + p] would be O(T*m) memory; use per-step accumulation
  // keyed by (step, sender) in a flat hash map instead, then reduce.
  std::unordered_map<std::uint64_t, std::uint32_t> sends;
  sends.reserve(n * k / 4 + 16);
  for (DirectionId i = 0; i < k; ++i) {
    const dag::SweepDag& g = instance.dag(i);
    for (dag::NodeId u = 0; u < n; ++u) {
      const ProcessorId pu = schedule.processor_of_cell(u);
      const TimeStep tu = schedule.start(u, i);
      if (tu == kUnscheduled) {
        throw std::invalid_argument("comm_cost_c2: schedule is incomplete");
      }
      std::uint32_t messages = 0;
      for (dag::NodeId v : g.successors(u)) {
        if (schedule.processor_of_cell(v) != pu) ++messages;
      }
      if (messages > 0) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(tu) * schedule.n_processors() + pu;
        sends[key] += messages;
      }
    }
  }

  // Reduce: per step, the round length is the max over senders.
  std::vector<std::uint32_t> step_max(horizon, 0);
  for (const auto& [key, count] : sends) {
    const auto step = static_cast<std::size_t>(key / schedule.n_processors());
    step_max[step] = std::max(step_max[step], count);
  }
  C2Cost cost;
  for (std::uint32_t mx : step_max) {
    cost.total_delay += mx;
    cost.max_step_degree = std::max<std::size_t>(cost.max_step_degree, mx);
    if (mx > 0) ++cost.busy_steps;
  }
  return cost;
}

}  // namespace sweep::core
