#include "core/comm_cost.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sweep/task_graph.hpp"

namespace sweep::core {

C1Cost comm_cost_c1(const dag::SweepInstance& instance,
                    const Assignment& assignment) {
  if (assignment.size() != instance.n_cells()) {
    throw std::invalid_argument("comm_cost_c1: assignment size != n_cells");
  }
  const dag::TaskGraph& tg = instance.task_graph();
  const std::uint32_t* cell = tg.cells().data();
  C1Cost cost;
  cost.total_edges = tg.n_edges();
  for (std::size_t t = 0; t < tg.n_tasks(); ++t) {
    const ProcessorId p = assignment[cell[t]];
    for (dag::TaskGraph::Task succ : tg.successors(t)) {
      if (assignment[cell[succ]] != p) ++cost.cross_edges;
    }
  }
  return cost;
}

C2Cost comm_cost_c2(const dag::SweepInstance& instance,
                    const Schedule& schedule) {
  const dag::TaskGraph& tg = instance.task_graph();
  // A schedule from a different (or truncated) instance would make the
  // start/assignment reads below run out of bounds, and zero processors
  // would divide by zero in the (step, sender) key arithmetic.
  if (schedule.n_processors() == 0) {
    throw std::invalid_argument("comm_cost_c2: schedule has zero processors");
  }
  if (schedule.n_cells() != instance.n_cells() ||
      schedule.n_tasks() != tg.n_tasks()) {
    throw std::invalid_argument(
        "comm_cost_c2: schedule does not match instance "
        "(truncated or foreign schedule)");
  }
  const std::uint32_t* cell = tg.cells().data();
  const std::size_t horizon = schedule.makespan();

  // sends[t * m + p] would be O(T*m) memory; use per-step accumulation
  // keyed by (step, sender) in a flat hash map instead, then reduce.
  std::unordered_map<std::uint64_t, std::uint32_t> sends;
  sends.reserve(tg.n_tasks() / 4 + 16);
  for (std::size_t t = 0; t < tg.n_tasks(); ++t) {
    const ProcessorId pu = schedule.processor_of_cell(cell[t]);
    const TimeStep tu = schedule.start(t);
    if (tu == kUnscheduled) {
      throw std::invalid_argument("comm_cost_c2: schedule is incomplete");
    }
    if (static_cast<std::size_t>(tu) >= horizon) {
      // makespan() bounds every scheduled start; a start past it means the
      // schedule was mutated mid-call. Writing step_max[tu] would be OOB.
      throw std::invalid_argument(
          "comm_cost_c2: start step beyond schedule horizon");
    }
    std::uint32_t messages = 0;
    for (dag::TaskGraph::Task succ : tg.successors(t)) {
      if (schedule.processor_of_cell(cell[succ]) != pu) ++messages;
    }
    if (messages > 0) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(tu) * schedule.n_processors() + pu;
      sends[key] += messages;
    }
  }

  // Reduce: per step, the round length is the max over senders.
  std::vector<std::uint32_t> step_max(horizon, 0);
  for (const auto& [key, count] : sends) {
    const auto step = static_cast<std::size_t>(key / schedule.n_processors());
    step_max[step] = std::max(step_max[step], count);
  }
  C2Cost cost;
  for (std::uint32_t mx : step_max) {
    cost.total_delay += mx;
    cost.max_step_degree = std::max<std::size_t>(cost.max_step_degree, mx);
    if (mx > 0) ++cost.busy_steps;
  }
  return cost;
}

}  // namespace sweep::core
