#include "core/comm_cost.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "sweep/task_graph.hpp"
#include "util/parallel.hpp"

namespace sweep::core {
namespace {

void check_c2_schedule(const dag::TaskGraph& tg, const Schedule& schedule) {
  // A schedule from a different (or truncated) instance would make the
  // start/assignment reads below run out of bounds, and zero processors
  // would divide by zero in the (step, sender) key arithmetic.
  if (schedule.n_processors() == 0) {
    throw std::invalid_argument("comm_cost_c2: schedule has zero processors");
  }
  if (schedule.n_cells() != tg.n_cells() ||
      schedule.n_tasks() != tg.n_tasks()) {
    throw std::invalid_argument(
        "comm_cost_c2: schedule does not match instance "
        "(truncated or foreign schedule)");
  }
}

}  // namespace

C1Cost comm_cost_c1(const dag::SweepInstance& instance,
                    const Assignment& assignment, std::size_t jobs) {
  return comm_cost_c1(instance.task_graph(), assignment, jobs);
}

C1Cost comm_cost_c1(const dag::TaskGraph& tg, const Assignment& assignment,
                    std::size_t jobs) {
  if (assignment.size() != tg.n_cells()) {
    throw std::invalid_argument("comm_cost_c1: assignment size != n_cells");
  }
  SWEEP_OBS_TIMER("comm.c1");
  const std::uint32_t* cell = tg.cells().data();
  const std::size_t n = tg.n_cells();
  const std::size_t k = tg.n_directions();
  C1Cost cost;
  cost.total_edges = tg.n_edges();
  // Each direction's tasks are the contiguous id range [i*n, (i+1)*n) and
  // all successors stay in-direction, so per-direction counts are
  // independent and sum without synchronization.
  std::vector<std::size_t> cross(k, 0);
  util::parallel_for(
      k,
      [&](std::size_t i) {
        std::size_t local = 0;
        const std::size_t begin = i * n;
        const std::size_t end = begin + n;
        for (std::size_t t = begin; t < end; ++t) {
          const ProcessorId p = assignment[cell[t]];
          for (dag::TaskGraph::Task succ : tg.successors(t)) {
            if (assignment[cell[succ]] != p) ++local;
          }
        }
        cross[i] = local;
      },
      jobs);
  for (std::size_t c : cross) cost.cross_edges += c;
  return cost;
}

C1Cost comm_cost_c1_reference(const dag::SweepInstance& instance,
                              const Assignment& assignment) {
  if (assignment.size() != instance.n_cells()) {
    throw std::invalid_argument("comm_cost_c1: assignment size != n_cells");
  }
  const dag::TaskGraph& tg = instance.task_graph();
  const std::uint32_t* cell = tg.cells().data();
  C1Cost cost;
  cost.total_edges = tg.n_edges();
  for (std::size_t t = 0; t < tg.n_tasks(); ++t) {
    const ProcessorId p = assignment[cell[t]];
    for (dag::TaskGraph::Task succ : tg.successors(t)) {
      if (assignment[cell[succ]] != p) ++cost.cross_edges;
    }
  }
  return cost;
}

C2Cost comm_cost_c2(const dag::SweepInstance& instance,
                    const Schedule& schedule) {
  return comm_cost_c2(instance.task_graph(), schedule);
}

C2Cost comm_cost_c2(const dag::TaskGraph& tg, const Schedule& schedule) {
  check_c2_schedule(tg, schedule);
  SWEEP_OBS_TIMER("comm.c2");
  const std::uint32_t* cell = tg.cells().data();
  const std::size_t m = schedule.n_processors();
  const std::size_t horizon = schedule.makespan();
  // Key arithmetic guard: every (step, sender) pair below packs into
  // step * m + sender <= horizon * m - 1. A schedule whose horizon * m
  // exceeds 2^64 cannot be keyed (and could only come from a corrupted or
  // adversarial schedule); reject it instead of wrapping silently.
  if (horizon > 0 &&
      horizon > std::numeric_limits<std::uint64_t>::max() / m) {
    throw std::invalid_argument(
        "comm_cost_c2: makespan * n_processors overflows the (step, sender) "
        "key space");
  }

  // One flat record per sending task; sorted by packed key and reduced in
  // one pass. No hash map, and no O(horizon) dense array — sparse huge
  // horizons cost O(senders log senders).
  struct SendRecord {
    std::uint64_t key;       // step * m + sender
    std::uint32_t messages;  // cross-processor successors of one task
  };
  std::vector<SendRecord> sends;
  sends.reserve(256);
  for (std::size_t t = 0; t < tg.n_tasks(); ++t) {
    const ProcessorId pu = schedule.processor_of_cell(cell[t]);
    const TimeStep tu = schedule.start(t);
    if (tu == kUnscheduled) {
      throw std::invalid_argument("comm_cost_c2: schedule is incomplete");
    }
    if (static_cast<std::size_t>(tu) >= horizon) {
      // makespan() bounds every scheduled start; a start past it means the
      // schedule was mutated mid-call.
      throw std::invalid_argument(
          "comm_cost_c2: start step beyond schedule horizon");
    }
    std::uint32_t messages = 0;
    for (dag::TaskGraph::Task succ : tg.successors(t)) {
      if (schedule.processor_of_cell(cell[succ]) != pu) ++messages;
    }
    if (messages > 0) {
      sends.push_back({static_cast<std::uint64_t>(tu) * m + pu, messages});
    }
  }
  std::sort(sends.begin(), sends.end(),
            [](const SendRecord& a, const SendRecord& b) {
              return a.key < b.key;
            });

  // Grouped reduction: per (step, sender) sum the messages, per step take
  // the max over senders, then fold the step maxima into the cost.
  C2Cost cost;
  std::size_t i = 0;
  while (i < sends.size()) {
    const std::uint64_t step = sends[i].key / m;
    std::uint64_t step_max = 0;
    while (i < sends.size() && sends[i].key / m == step) {
      const std::uint64_t key = sends[i].key;
      std::uint64_t sender_total = 0;
      while (i < sends.size() && sends[i].key == key) {
        sender_total += sends[i].messages;
        ++i;
      }
      step_max = std::max(step_max, sender_total);
    }
    cost.total_delay += step_max;
    cost.max_step_degree =
        std::max<std::size_t>(cost.max_step_degree, step_max);
    ++cost.busy_steps;
  }
  return cost;
}

C2Cost comm_cost_c2_reference(const dag::SweepInstance& instance,
                              const Schedule& schedule) {
  const dag::TaskGraph& tg = instance.task_graph();
  check_c2_schedule(tg, schedule);
  const std::uint32_t* cell = tg.cells().data();
  const std::size_t horizon = schedule.makespan();

  // sends[t * m + p] would be O(T*m) memory; use per-step accumulation
  // keyed by (step, sender) in a flat hash map instead, then reduce.
  std::unordered_map<std::uint64_t, std::uint32_t> sends;
  sends.reserve(tg.n_tasks() / 4 + 16);
  for (std::size_t t = 0; t < tg.n_tasks(); ++t) {
    const ProcessorId pu = schedule.processor_of_cell(cell[t]);
    const TimeStep tu = schedule.start(t);
    if (tu == kUnscheduled) {
      throw std::invalid_argument("comm_cost_c2: schedule is incomplete");
    }
    if (static_cast<std::size_t>(tu) >= horizon) {
      throw std::invalid_argument(
          "comm_cost_c2: start step beyond schedule horizon");
    }
    std::uint32_t messages = 0;
    for (dag::TaskGraph::Task succ : tg.successors(t)) {
      if (schedule.processor_of_cell(cell[succ]) != pu) ++messages;
    }
    if (messages > 0) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(tu) * schedule.n_processors() + pu;
      sends[key] += messages;
    }
  }

  // Reduce: per step, the round length is the max over senders.
  std::vector<std::uint32_t> step_max(horizon, 0);
  for (const auto& [key, count] : sends) {
    const auto step = static_cast<std::size_t>(key / schedule.n_processors());
    step_max[step] = std::max(step_max[step], count);
  }
  C2Cost cost;
  for (std::uint32_t mx : step_max) {
    cost.total_delay += mx;
    cost.max_step_degree = std::max<std::size_t>(cost.max_step_degree, mx);
    if (mx > 0) ++cost.busy_steps;
  }
  return cost;
}

}  // namespace sweep::core
