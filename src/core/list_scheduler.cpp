#include "core/list_scheduler.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace sweep::core {

Schedule list_schedule(const dag::SweepInstance& instance,
                       const Assignment& assignment, std::size_t n_processors,
                       const ListScheduleOptions& options) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::size_t total = n * k;
  if (assignment.size() != n) {
    throw std::invalid_argument("list_schedule: assignment size != n_cells");
  }
  if (n_processors == 0) {
    throw std::invalid_argument("list_schedule: need >= 1 processor");
  }
  for (ProcessorId p : assignment) {
    if (p >= n_processors) {
      throw std::invalid_argument("list_schedule: assignment out of range");
    }
  }
  if (!options.priorities.empty() && options.priorities.size() != total) {
    throw std::invalid_argument("list_schedule: priorities size != n*k");
  }
  if (!options.release_times.empty() && options.release_times.size() != total) {
    throw std::invalid_argument("list_schedule: release_times size != n*k");
  }

  auto priority_of = [&](TaskId t) -> std::int64_t {
    return options.priorities.empty() ? 0 : options.priorities[t];
  };
  auto release_of = [&](TaskId t) -> TimeStep {
    return options.release_times.empty() ? 0 : options.release_times[t];
  };

  Schedule schedule(n, k, n_processors, assignment);

  // Remaining predecessor counts per task.
  std::vector<std::uint32_t> indegree(total);
  for (std::size_t i = 0; i < k; ++i) {
    const dag::SweepDag& g = instance.dag(i);
    for (dag::NodeId v = 0; v < n; ++v) {
      indegree[task_id(v, static_cast<DirectionId>(i), n)] =
          static_cast<std::uint32_t>(g.in_degree(v));
    }
  }

  // Per-processor ready min-heaps keyed by (priority, task id).
  using Entry = std::pair<std::int64_t, TaskId>;
  using MinHeap = std::priority_queue<Entry, std::vector<Entry>, std::greater<>>;
  std::vector<MinHeap> ready(n_processors);

  // Ready-but-not-yet-released tasks, keyed by release time.
  using Release = std::pair<TimeStep, TaskId>;
  std::priority_queue<Release, std::vector<Release>, std::greater<>> pending;

  // Earliest start induced by cross-processor predecessor messages.
  std::vector<TimeStep> earliest;
  if (options.cross_message_delay > 0) earliest.assign(total, 0);

  std::vector<char> active_flag(n_processors, 0);
  std::vector<ProcessorId> active;
  active.reserve(n_processors);

  auto enqueue_ready = [&](TaskId t, TimeStep now) {
    TimeStep release = release_of(t);
    if (!earliest.empty()) release = std::max(release, earliest[t]);
    if (release > now) {
      pending.push({release, t});
      return;
    }
    const ProcessorId p = schedule.processor_of(t);
    ready[p].push({priority_of(t), t});
    if (!active_flag[p]) {
      active_flag[p] = 1;
      active.push_back(p);
    }
  };

  for (TaskId t = 0; t < total; ++t) {
    if (indegree[t] == 0) enqueue_ready(t, 0);
  }

  std::size_t done = 0;
  std::vector<TaskId> finished;
  finished.reserve(n_processors);
  std::vector<ProcessorId> still_active;
  still_active.reserve(n_processors);

  TimeStep t = 0;
  while (done < total) {
    // Releases that have come due.
    while (!pending.empty() && pending.top().first <= t) {
      const TaskId task = pending.top().second;
      pending.pop();
      const ProcessorId p = schedule.processor_of(task);
      ready[p].push({priority_of(task), task});
      if (!active_flag[p]) {
        active_flag[p] = 1;
        active.push_back(p);
      }
    }
    if (active.empty()) {
      if (pending.empty()) {
        throw std::logic_error(
            "list_schedule: deadlock — instance DAG has a cycle");
      }
      t = pending.top().first;
      continue;
    }

    // Each active processor runs its best ready task this step.
    finished.clear();
    still_active.clear();
    for (ProcessorId p : active) {
      const TaskId task = ready[p].top().second;
      ready[p].pop();
      schedule.set_start(task, t);
      finished.push_back(task);
      if (ready[p].empty()) {
        active_flag[p] = 0;
      } else {
        still_active.push_back(p);
      }
    }
    active.swap(still_active);
    done += finished.size();

    // Newly ready successors become available from t+1 (or their release;
    // or t+1+c if the message must cross processors).
    for (TaskId task : finished) {
      const CellId v = task_cell(task, n);
      const DirectionId dir = task_direction(task, n);
      const dag::SweepDag& g = instance.dag(dir);
      const ProcessorId pv = schedule.processor_of(task);
      for (dag::NodeId w : g.successors(v)) {
        const TaskId succ = task_id(w, dir, n);
        if (!earliest.empty() && assignment[w] != pv) {
          earliest[succ] = std::max(
              earliest[succ], t + 1 + options.cross_message_delay);
        }
        if (--indegree[succ] == 0) enqueue_ready(succ, t + 1);
      }
    }
    ++t;
  }
  return schedule;
}

std::vector<TimeStep> greedy_union_schedule(const dag::SweepInstance& instance,
                                            std::size_t n_processors,
                                            std::size_t* makespan) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::size_t total = n * k;
  if (n_processors == 0) {
    throw std::invalid_argument("greedy_union_schedule: need >= 1 processor");
  }

  std::vector<TimeStep> step(total, kUnscheduled);
  std::vector<std::uint32_t> indegree(total);
  std::vector<TaskId> frontier;
  for (std::size_t i = 0; i < k; ++i) {
    const dag::SweepDag& g = instance.dag(i);
    for (dag::NodeId v = 0; v < n; ++v) {
      const TaskId t = task_id(v, static_cast<DirectionId>(i), n);
      indegree[t] = static_cast<std::uint32_t>(g.in_degree(v));
      if (indegree[t] == 0) frontier.push_back(t);
    }
  }

  std::size_t done = 0;
  TimeStep now = 0;
  std::vector<TaskId> next_frontier;
  while (done < total) {
    if (frontier.empty()) {
      throw std::logic_error("greedy_union_schedule: instance DAG has a cycle");
    }
    // Run up to m tasks from the frontier; the overflow stays ready.
    const std::size_t run = std::min(frontier.size(), n_processors);
    next_frontier.assign(frontier.begin() + static_cast<std::ptrdiff_t>(run),
                         frontier.end());
    for (std::size_t i = 0; i < run; ++i) {
      const TaskId task = frontier[i];
      step[task] = now;
      const CellId v = task_cell(task, n);
      const DirectionId dir = task_direction(task, n);
      const dag::SweepDag& g = instance.dag(dir);
      for (dag::NodeId w : g.successors(v)) {
        const TaskId succ = task_id(w, dir, n);
        if (--indegree[succ] == 0) next_frontier.push_back(succ);
      }
    }
    done += run;
    frontier.swap(next_frontier);
    ++now;
  }
  if (makespan != nullptr) *makespan = now;
  return step;
}

}  // namespace sweep::core
