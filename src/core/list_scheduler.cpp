#include "core/list_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/sharded_schedule.hpp"
#include "obs/obs.hpp"
#include "sweep/task_graph.hpp"
#include "util/arena.hpp"
#include "util/simd.hpp"

namespace sweep::core {
namespace {

using Task32 = dag::TaskGraph::Task;

// Eligibility limits for the slot-map ready queues (the kAuto fast path).
// Level-derived priorities span at most depth + k values, which is tiny;
// descendant counts span up to n and fall back to the heap. The range and
// total-bucket bounds cap the per-call histogram at (range + 1) * m
// counters; the indegree and slot bounds come from the packed
// (slot << 8) | indegree representation below.
constexpr std::uint64_t kMaxBucketRange = (1u << 16) - 1;
constexpr std::uint64_t kMaxTotalBuckets = 1u << 20;
constexpr std::uint32_t kMaxPackedIndegree = 0xFF;
constexpr std::uint32_t kMaxPackedSlots = 1u << 24;

/// Per-processor binary min-heaps keyed by (priority, task id) — the
/// general fallback for arbitrary 64-bit priorities.
struct HeapReadyQueues {
  using Entry = std::pair<std::int64_t, Task32>;
  std::vector<std::priority_queue<Entry, std::vector<Entry>, std::greater<>>>
      heaps;

  explicit HeapReadyQueues(std::size_t n_processors) : heaps(n_processors) {}

  void push(std::size_t p, std::int64_t priority, Task32 t) {
    heaps[p].push({priority, t});
  }
  Task32 pop(std::size_t p) {
    const Task32 t = heaps[p].top().second;
    heaps[p].pop();
    return t;
  }
  [[nodiscard]] bool empty(std::size_t p) const { return heaps[p].empty(); }
};

/// Heap-path per-task hot state: the engine touches a task's remaining
/// predecessor count on every incoming edge, and its processor + priority
/// when the count hits zero; packing them into one record costs one
/// cache-line touch where three scattered arrays (indegree, cell ->
/// assignment, priorities) cost up to three.
struct HeapRec {
  std::uint32_t indegree;
  std::uint32_t proc;
  std::int64_t prio;
};

/// The generic engine, used with HeapReadyQueues. Semantics are identical to
/// list_schedule_reference; the differences are the flat-CSR successor walk
/// and the packed records. kGated compiles the release-time /
/// cross-message-delay machinery out entirely for the common ungated call.
template <bool kGated, typename ReadyQueues>
Schedule run_heap_engine(const dag::TaskGraph& tg, const Assignment& assignment,
                         std::size_t n_processors,
                         const ListScheduleOptions& options, ReadyQueues& ready,
                         std::vector<HeapRec>& rec) {
  SWEEP_OBS_SPAN("engine.heap.run");
  const std::size_t total = tg.n_tasks();
  Schedule schedule(tg.n_cells(), tg.n_directions(), n_processors, assignment);

  std::vector<char> active_flag(n_processors, 0);
  std::vector<ProcessorId> active;
  active.reserve(n_processors);

  auto push_ready = [&](Task32 t) {
    const std::size_t p = rec[t].proc;
    ready.push(p, rec[t].prio, t);
    if (!active_flag[p]) {
      active_flag[p] = 1;
      active.push_back(static_cast<ProcessorId>(p));
    }
  };

  // Gated-only state: tasks whose predecessors are done but whose release
  // (or cross-processor message) has not yet come due, keyed by due time.
  using Release = std::pair<TimeStep, Task32>;
  std::priority_queue<Release, std::vector<Release>, std::greater<>> pending;
  const TimeStep* release =
      options.release_times.empty() ? nullptr : options.release_times.data();
  std::vector<TimeStep> earliest;
  if (kGated && options.cross_message_delay > 0) earliest.assign(total, 0);

  auto enqueue_ready = [&](Task32 t, TimeStep now) {
    if constexpr (kGated) {
      TimeStep rel = release != nullptr ? release[t] : 0;
      if (!earliest.empty()) rel = std::max(rel, earliest[t]);
      if (rel > now) {
        pending.push({rel, t});
        return;
      }
    }
    push_ready(t);
  };

  for (Task32 t = 0; t < total; ++t) {
    if (rec[t].indegree == 0) enqueue_ready(t, 0);
  }

  std::size_t done = 0;
  std::vector<Task32> finished;
  finished.reserve(n_processors);
  std::vector<ProcessorId> still_active;
  still_active.reserve(n_processors);

  TimeStep now = 0;
  while (done < total) {
    if constexpr (kGated) {
      // Releases that have come due.
      while (!pending.empty() && pending.top().first <= now) {
        const Task32 task = pending.top().second;
        pending.pop();
        push_ready(task);
      }
      if (active.empty()) {
        if (pending.empty()) {
          throw std::logic_error(
              "list_schedule: deadlock — instance DAG has a cycle");
        }
        now = pending.top().first;
        continue;
      }
    } else {
      if (active.empty()) {
        throw std::logic_error(
            "list_schedule: deadlock — instance DAG has a cycle");
      }
    }

    // Each active processor runs its best ready task this step.
    finished.clear();
    still_active.clear();
    for (ProcessorId p : active) {
      const Task32 task = ready.pop(p);
      schedule.set_start(task, now);
      finished.push_back(task);
      if (ready.empty(p)) {
        active_flag[p] = 0;
      } else {
        still_active.push_back(p);
      }
    }
    active.swap(still_active);
    done += finished.size();

    // Newly ready successors become available from now+1 (or their release;
    // or now+1+c if the message must cross processors).
    for (Task32 task : finished) {
      for (Task32 succ : tg.successors(task)) {
        if constexpr (kGated) {
          if (!earliest.empty() && rec[succ].proc != rec[task].proc) {
            earliest[succ] = std::max(earliest[succ],
                                      now + 1 + options.cross_message_delay);
          }
        }
        if (--rec[succ].indegree == 0) enqueue_ready(succ, now + 1);
      }
    }
    ++now;
  }
  SWEEP_OBS_COUNTER_ADD("engine.heap.runs", 1);
  SWEEP_OBS_COUNTER_ADD("engine.pops", done);
  SWEEP_OBS_COUNTER_ADD("engine.steps", now);
  if (now > 0) {
    SWEEP_OBS_OBSERVE("engine.occupancy",
                      static_cast<double>(done) /
                          (static_cast<double>(now) *
                           static_cast<double>(n_processors)));
  }
  return schedule;
}

/// Per-thread scratch for the slot engine. list_schedule is called in tight
/// loops (trial fan-outs run thousands of schedules per thread); reusing the
/// large per-call lanes instead of reallocating them avoids ~1MB of
/// mmap/page-zeroing traffic per call. The hot lanes (packed, task_at,
/// bitmap, hint, queued, active_flag) live as a structure-of-arrays in one
/// 64-byte-aligned arena — each lane starts on its own cache line and the
/// per-call carve-out is free once the arena is warm. Only bucket_next stays
/// a vector: the histogram that sizes the slot space must run before the
/// arena can be reserved. Lanes are either zero-filled per call (bitmap,
/// queued, active_flag) or fully overwritten before use (packed; task_at and
/// hint are only read at slots / processors the current call populated).
struct SlotScratch {
  std::vector<std::uint32_t> bucket_next;
  util::Arena arena;
  std::vector<std::uint32_t> succ_batch;  // step's successor ids (ungated)
  std::vector<std::uint32_t> ready_out;   // slots returned by the kernel
  util::simd::BatchScratch batch_scratch;
};

SlotScratch& slot_scratch() {
  thread_local SlotScratch scratch;
  return scratch;
}

/// The slot-map engine: the fast path for bounded-small-integer priorities.
///
/// Every task is assigned a static SLOT, dense within its processor's padded
/// region: slots are ordered by (processor, rebased priority, task id), and
/// each processor's region starts at p << log2r (r = padded region size, a
/// power of two), so the processor of a slot is slot >> log2r. The ready set
/// is then a single bitmap over slots, and:
///   push  = set the task's slot bit (plus per-processor hint/count upkeep);
///           no random loads — the slot rides in the packed indegree word.
///   pop   = find-first-set from the processor's hint; the lowest live slot
///           IS the (priority, task id) minimum, so this reproduces the
///           reference heap order bit-for-bit with ~2 word reads + ctz.
/// The per-task word packs (slot << 8) | remaining_indegree, so the edge
/// walk's decrement also delivers the slot of a newly-ready task for free.
/// Requires max indegree <= 255 and m << log2r < 2^24 (checked; the caller
/// falls back to the heap engine when this returns nullopt).
template <bool kGated>
std::optional<Schedule> run_slot_engine(const dag::TaskGraph& tg,
                                        const Assignment& assignment,
                                        std::size_t n_processors,
                                        const ListScheduleOptions& options,
                                        std::int64_t min_priority,
                                        std::size_t width) {
  const std::size_t total = tg.n_tasks();
  const std::uint32_t* indeg = tg.indegrees().data();
  const std::uint32_t* cell = tg.cells().data();
  const std::int64_t* priority =
      options.priorities.empty() ? nullptr : options.priorities.data();

  obs::PhaseSpan build_phase("engine.slot.build");
  SlotScratch& scratch = slot_scratch();

  // Pass 1: per-(processor, priority) histogram.
  scratch.bucket_next.assign(n_processors * width, 0);
  std::uint32_t* bucket_next = scratch.bucket_next.data();
  for (std::size_t t = 0; t < total; ++t) {
    const std::size_t p = assignment[cell[t]];
    const std::size_t b =
        priority != nullptr
            ? static_cast<std::size_t>(priority[t] - min_priority)
            : 0;
    ++bucket_next[p * width + b];
  }
  std::size_t max_per_proc = 64;  // at least one bitmap word per processor
  for (std::size_t p = 0; p < n_processors; ++p) {
    std::size_t load = 0;
    for (std::size_t b = 0; b < width; ++b) load += bucket_next[p * width + b];
    max_per_proc = std::max(max_per_proc, load);
  }
  const auto log2r =
      static_cast<std::uint32_t>(std::bit_width(max_per_proc - 1));
  const std::size_t n_slots = n_processors << log2r;
  if (n_slots > kMaxPackedSlots) return std::nullopt;

  // One reservation covers every lane of this call; the allocs below are
  // cursor bumps into the warm block.
  util::Arena& arena = scratch.arena;
  arena.reserve(util::Arena::lane_bytes<std::uint32_t>(total) +
                util::Arena::lane_bytes<Task32>(n_slots) +
                util::Arena::lane_bytes<std::uint64_t>(n_slots / 64 + 1) +
                util::Arena::lane_bytes<std::uint32_t>(n_processors) * 2 +
                util::Arena::lane_bytes<char>(n_processors));

  // Exclusive scan, in place: bucket_next[pb] becomes the next free slot of
  // bucket pb, starting each processor's run at its padded region base.
  for (std::size_t p = 0; p < n_processors; ++p) {
    auto acc = static_cast<std::uint32_t>(p << log2r);
    for (std::size_t b = 0; b < width; ++b) {
      const std::uint32_t count = bucket_next[p * width + b];
      bucket_next[p * width + b] = acc;
      acc += count;
    }
  }

  // Pass 2: assign slots (ascending t within a bucket => ascending task id,
  // the tie-break order) and build the packed words + slot -> task map.
  std::uint32_t* packed = arena.alloc<std::uint32_t>(total);
  Task32* task_at = arena.alloc<Task32>(n_slots);
  for (std::size_t t = 0; t < total; ++t) {
    const std::size_t p = assignment[cell[t]];
    const std::size_t b =
        priority != nullptr
            ? static_cast<std::size_t>(priority[t] - min_priority)
            : 0;
    const std::uint32_t s = bucket_next[p * width + b]++;
    packed[t] = (s << 8) | indeg[t];
    task_at[s] = static_cast<Task32>(t);
  }

  Schedule schedule(tg.n_cells(), tg.n_directions(), n_processors, assignment);
  std::uint64_t* bitmap = arena.alloc_zero<std::uint64_t>(n_slots / 64 + 1);
  // hint[p]: no live slot of processor p is below this (valid iff queued>0).
  std::uint32_t* hint = arena.alloc<std::uint32_t>(n_processors);
  std::uint32_t* queued = arena.alloc_zero<std::uint32_t>(n_processors);
  char* active_flag = arena.alloc_zero<char>(n_processors);
  std::vector<ProcessorId> active;
  active.reserve(n_processors);

  auto push_slot = [&](std::uint32_t s) {
    const std::size_t p = s >> log2r;
    bitmap[s >> 6] |= 1ull << (s & 63);
    if (queued[p] == 0 || s < hint[p]) hint[p] = s;
    ++queued[p];
    if (!active_flag[p]) {
      active_flag[p] = 1;
      active.push_back(static_cast<ProcessorId>(p));
    }
  };

  // Gated-only state, as in the heap engine.
  using Release = std::pair<TimeStep, Task32>;
  std::priority_queue<Release, std::vector<Release>, std::greater<>> pending;
  const TimeStep* release =
      options.release_times.empty() ? nullptr : options.release_times.data();
  std::vector<TimeStep> earliest;
  if (kGated && options.cross_message_delay > 0) earliest.assign(total, 0);

  auto enqueue_ready = [&](Task32 t, TimeStep now) {
    if constexpr (kGated) {
      TimeStep rel = release != nullptr ? release[t] : 0;
      if (!earliest.empty()) rel = std::max(rel, earliest[t]);
      if (rel > now) {
        pending.push({rel, t});
        return;
      }
    }
    push_slot(packed[t] >> 8);
  };

  for (std::size_t t = 0; t < total; ++t) {
    if ((packed[t] & 0xFF) == 0) enqueue_ready(static_cast<Task32>(t), 0);
  }
  build_phase.done();
  obs::PhaseSpan run_phase("engine.slot.run");

  std::size_t done = 0;
  std::vector<Task32> finished;
  finished.reserve(n_processors);
  std::vector<ProcessorId> still_active;
  still_active.reserve(n_processors);
  std::uint64_t scan_words = 0;
  std::size_t peak_active = 0;
  const std::uint32_t* offsets = tg.offsets().data();
  util::simd::BatchStats simd_stats;

  TimeStep now = 0;
  while (done < total) {
    if constexpr (kGated) {
      while (!pending.empty() && pending.top().first <= now) {
        const Task32 task = pending.top().second;
        pending.pop();
        push_slot(packed[task] >> 8);
      }
      if (active.empty()) {
        if (pending.empty()) {
          throw std::logic_error(
              "list_schedule: deadlock — instance DAG has a cycle");
        }
        now = pending.top().first;
        continue;
      }
    } else {
      if (active.empty()) {
        throw std::logic_error(
            "list_schedule: deadlock — instance DAG has a cycle");
      }
    }

    // Each active processor runs its lowest live slot this step.
    finished.clear();
    still_active.clear();
    peak_active = std::max(peak_active, active.size());
    for (ProcessorId p : active) {
      std::size_t w = hint[p] >> 6;
      std::uint64_t word = bitmap[w] & (~0ull << (hint[p] & 63));
      while (word == 0) {
        word = bitmap[++w];
        ++scan_words;
      }
      const auto s =
          static_cast<std::uint32_t>((w << 6) + std::countr_zero(word));
      bitmap[w] &= ~(1ull << (s & 63));
      hint[p] = s;
      const Task32 task = task_at[s];
      --queued[p];
      schedule.set_start(task, now);
      finished.push_back(task);
      if (queued[p] == 0) {
        active_flag[p] = 0;
      } else {
        still_active.push_back(p);
      }
    }
    active.swap(still_active);
    done += finished.size();

    for (Task32 task : finished) {
      if constexpr (kGated) {
        const std::uint32_t task_proc = (packed[task] >> 8) >> log2r;
        for (Task32 succ : tg.successors(task)) {
          if (!earliest.empty() &&
              ((packed[succ] >> 8) >> log2r) != task_proc) {
            earliest[succ] = std::max(earliest[succ],
                                      now + 1 + options.cross_message_delay);
          }
          if ((--packed[succ] & 0xFF) == 0) enqueue_ready(succ, now + 1);
        }
      }
    }
    if constexpr (!kGated) {
      // Batch every finished task's successors and retire the step's edge
      // set with the SIMD decrement kernel (util/simd.hpp). The kernel
      // decrements each packed word's low indegree byte by the id's
      // multiplicity and hands back the slot payloads (word >> 8) of the
      // words that reached zero; the zero-crossing set is order-invariant
      // under decrements, so batching cannot change which slots get
      // pushed. Prefetch the next finished task's CSR row header one
      // iteration ahead — finished ids jump across the offsets lane.
      std::vector<std::uint32_t>& batch = scratch.succ_batch;
      batch.clear();
      for (std::size_t i = 0; i < finished.size(); ++i) {
        if (i + 1 < finished.size()) {
          util::simd::prefetch_read(offsets + finished[i + 1]);
        }
        const auto succs = tg.successors(finished[i]);
        batch.insert(batch.end(), succs.begin(), succs.end());
      }
      if (!batch.empty()) {
        if (scratch.ready_out.size() < batch.size()) {
          scratch.ready_out.resize(batch.size());
        }
        const std::size_t zeros = util::simd::decrement_packed_to_zero(
            packed, batch.data(), batch.size(), scratch.ready_out.data(),
            scratch.batch_scratch, &simd_stats);
        for (std::size_t i = 0; i < zeros; ++i) {
          push_slot(scratch.ready_out[i]);
        }
      }
    }
    ++now;
  }
  run_phase.done();
  SWEEP_OBS_COUNTER_ADD("engine.slot.runs", 1);
  SWEEP_OBS_COUNTER_ADD("engine.slot.scan_words", scan_words);
  SWEEP_OBS_COUNTER_ADD("engine.simd.batches", simd_stats.batches);
  SWEEP_OBS_COUNTER_ADD("engine.simd.fallbacks", simd_stats.fallbacks);
  SWEEP_OBS_COUNTER_ADD("engine.pops", done);
  SWEEP_OBS_COUNTER_ADD("engine.steps", now);
  if (now > 0) {
    SWEEP_OBS_OBSERVE("engine.occupancy",
                      static_cast<double>(done) /
                          (static_cast<double>(now) *
                           static_cast<double>(n_processors)));
    SWEEP_OBS_OBSERVE("engine.peak_active_procs",
                      static_cast<double>(peak_active));
  }
  return schedule;
}

void validate_inputs(std::size_t n, std::size_t total,
                     const Assignment& assignment, std::size_t n_processors,
                     const ListScheduleOptions& options, const char* who) {
  if (assignment.size() != n) {
    throw std::invalid_argument(std::string(who) +
                                ": assignment size != n_cells");
  }
  if (n_processors == 0) {
    throw std::invalid_argument(std::string(who) + ": need >= 1 processor");
  }
  for (ProcessorId p : assignment) {
    if (p >= n_processors) {
      throw std::invalid_argument(std::string(who) +
                                  ": assignment out of range");
    }
  }
  if (!options.priorities.empty() && options.priorities.size() != total) {
    throw std::invalid_argument(std::string(who) + ": priorities size != n*k");
  }
  if (!options.release_times.empty() &&
      options.release_times.size() != total) {
    throw std::invalid_argument(std::string(who) +
                                ": release_times size != n*k");
  }
}

}  // namespace

Schedule list_schedule(const dag::SweepInstance& instance,
                       const Assignment& assignment, std::size_t n_processors,
                       const ListScheduleOptions& options) {
  return list_schedule(instance.task_graph(), assignment, n_processors,
                       options);
}

Schedule list_schedule(const dag::TaskGraph& tg, const Assignment& assignment,
                       std::size_t n_processors,
                       const ListScheduleOptions& options) {
  SWEEP_OBS_SCOPE("core.list_schedule");
  validate_inputs(tg.n_cells(), tg.n_tasks(), assignment, n_processors,
                  options, "list_schedule");
  const std::int64_t* priority =
      options.priorities.empty() ? nullptr : options.priorities.data();

  std::int64_t min_priority = 0;
  std::int64_t max_priority = 0;
  if (priority != nullptr) {
    const auto [lo, hi] = std::minmax_element(options.priorities.begin(),
                                              options.priorities.end());
    min_priority = *lo;
    max_priority = *hi;
  }
  const auto range = static_cast<std::uint64_t>(max_priority - min_priority);
  // Bucketable = the priority span fits the (range + 1) * m bucket layout.
  // The serial slot engine additionally needs indegrees to fit its packed
  // (slot << 8) | indegree words; the sharded engine keeps a full u32
  // indegree lane and has no such cap.
  const bool bucketable = range <= kMaxBucketRange &&
                          (range + 1) * n_processors <= kMaxTotalBuckets;
  const bool slottable = bucketable && tg.max_indegree() <= kMaxPackedIndegree;
  if (options.ready_queue == ReadyQueueKind::kBucket && !slottable) {
    // The explicit kBucket request is about to be served by the heap; the
    // fallback used to be silent, which hid misconfigured benchmarks.
    SWEEP_OBS_COUNTER_ADD("engine.bucket_fallback", 1);
  }
  const bool use_slots =
      options.ready_queue != ReadyQueueKind::kHeap && slottable;
  const bool gated =
      !options.release_times.empty() || options.cross_message_delay > 0;

  if (options.jobs != 1 && !gated && bucketable &&
      options.ready_queue != ReadyQueueKind::kHeap &&
      detail::resolve_engine_workers(options.jobs, n_processors) > 1) {
    const auto width = static_cast<std::size_t>(range) + 1;
    std::optional<Schedule> result = detail::sharded_list_schedule(
        tg, assignment, n_processors, options.priorities, min_priority, width,
        options.jobs);
    if (result.has_value()) return *std::move(result);
    // Padded slot space overflowed: fall through to the serial engines.
    SWEEP_OBS_COUNTER_ADD("engine.sharded.fallbacks", 1);
  }

  if (use_slots) {
    const auto width = static_cast<std::size_t>(range) + 1;
    std::optional<Schedule> result =
        gated ? run_slot_engine<true>(tg, assignment, n_processors, options,
                                      min_priority, width)
              : run_slot_engine<false>(tg, assignment, n_processors, options,
                                       min_priority, width);
    if (result.has_value()) return *std::move(result);
    // Slot space overflowed (pathologically skewed assignment): fall through.
    SWEEP_OBS_COUNTER_ADD("engine.slot.fallbacks", 1);
  }
  std::vector<HeapRec> rec(tg.n_tasks());
  {
    const std::uint32_t* indeg = tg.indegrees().data();
    const std::uint32_t* cell = tg.cells().data();
    for (std::size_t t = 0; t < tg.n_tasks(); ++t) {
      rec[t].indegree = indeg[t];
      rec[t].proc = assignment[cell[t]];
      rec[t].prio = priority != nullptr ? priority[t] : 0;
    }
  }
  HeapReadyQueues ready(n_processors);
  return gated ? run_heap_engine<true>(tg, assignment, n_processors, options,
                                       ready, rec)
               : run_heap_engine<false>(tg, assignment, n_processors, options,
                                        ready, rec);
}

Schedule list_schedule_reference(const dag::SweepInstance& instance,
                                 const Assignment& assignment,
                                 std::size_t n_processors,
                                 const ListScheduleOptions& options) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::size_t total = n * k;
  validate_inputs(n, total, assignment, n_processors, options,
                  "list_schedule");

  auto priority_of = [&](TaskId t) -> std::int64_t {
    return options.priorities.empty() ? 0 : options.priorities[t];
  };
  auto release_of = [&](TaskId t) -> TimeStep {
    return options.release_times.empty() ? 0 : options.release_times[t];
  };

  Schedule schedule(n, k, n_processors, assignment);

  // Remaining predecessor counts per task.
  std::vector<std::uint32_t> indegree(total);
  for (std::size_t i = 0; i < k; ++i) {
    const dag::SweepDag& g = instance.dag(i);
    for (dag::NodeId v = 0; v < n; ++v) {
      indegree[task_id(v, static_cast<DirectionId>(i), n)] =
          static_cast<std::uint32_t>(g.in_degree(v));
    }
  }

  // Per-processor ready min-heaps keyed by (priority, task id).
  using Entry = std::pair<std::int64_t, TaskId>;
  using MinHeap = std::priority_queue<Entry, std::vector<Entry>, std::greater<>>;
  std::vector<MinHeap> ready(n_processors);

  // Ready-but-not-yet-released tasks, keyed by release time.
  using Release = std::pair<TimeStep, TaskId>;
  std::priority_queue<Release, std::vector<Release>, std::greater<>> pending;

  // Earliest start induced by cross-processor predecessor messages.
  std::vector<TimeStep> earliest;
  if (options.cross_message_delay > 0) earliest.assign(total, 0);

  std::vector<char> active_flag(n_processors, 0);
  std::vector<ProcessorId> active;
  active.reserve(n_processors);

  auto enqueue_ready = [&](TaskId t, TimeStep now) {
    TimeStep release = release_of(t);
    if (!earliest.empty()) release = std::max(release, earliest[t]);
    if (release > now) {
      pending.push({release, t});
      return;
    }
    const ProcessorId p = schedule.processor_of(t);
    ready[p].push({priority_of(t), t});
    if (!active_flag[p]) {
      active_flag[p] = 1;
      active.push_back(p);
    }
  };

  for (TaskId t = 0; t < total; ++t) {
    if (indegree[t] == 0) enqueue_ready(t, 0);
  }

  std::size_t done = 0;
  std::vector<TaskId> finished;
  finished.reserve(n_processors);
  std::vector<ProcessorId> still_active;
  still_active.reserve(n_processors);

  TimeStep t = 0;
  while (done < total) {
    // Releases that have come due.
    while (!pending.empty() && pending.top().first <= t) {
      const TaskId task = pending.top().second;
      pending.pop();
      const ProcessorId p = schedule.processor_of(task);
      ready[p].push({priority_of(task), task});
      if (!active_flag[p]) {
        active_flag[p] = 1;
        active.push_back(p);
      }
    }
    if (active.empty()) {
      if (pending.empty()) {
        throw std::logic_error(
            "list_schedule: deadlock — instance DAG has a cycle");
      }
      t = pending.top().first;
      continue;
    }

    // Each active processor runs its best ready task this step.
    finished.clear();
    still_active.clear();
    for (ProcessorId p : active) {
      const TaskId task = ready[p].top().second;
      ready[p].pop();
      schedule.set_start(task, t);
      finished.push_back(task);
      if (ready[p].empty()) {
        active_flag[p] = 0;
      } else {
        still_active.push_back(p);
      }
    }
    active.swap(still_active);
    done += finished.size();

    // Newly ready successors become available from t+1 (or their release;
    // or t+1+c if the message must cross processors).
    for (TaskId task : finished) {
      const CellId v = task_cell(task, n);
      const DirectionId dir = task_direction(task, n);
      const dag::SweepDag& g = instance.dag(dir);
      const ProcessorId pv = schedule.processor_of(task);
      for (dag::NodeId w : g.successors(v)) {
        const TaskId succ = task_id(w, dir, n);
        if (!earliest.empty() && assignment[w] != pv) {
          earliest[succ] = std::max(
              earliest[succ], t + 1 + options.cross_message_delay);
        }
        if (--indegree[succ] == 0) enqueue_ready(succ, t + 1);
      }
    }
    ++t;
  }
  return schedule;
}

std::vector<TimeStep> greedy_union_schedule(const dag::SweepInstance& instance,
                                            std::size_t n_processors,
                                            std::size_t* makespan) {
  if (n_processors == 0) {
    throw std::invalid_argument("greedy_union_schedule: need >= 1 processor");
  }
  const dag::TaskGraph& tg = instance.task_graph();
  const std::size_t total = tg.n_tasks();

  std::vector<TimeStep> step(total, kUnscheduled);
  std::vector<std::uint32_t> indegree(tg.indegrees().begin(),
                                      tg.indegrees().end());
  std::vector<Task32> frontier;
  for (Task32 t = 0; t < total; ++t) {
    if (indegree[t] == 0) frontier.push_back(t);
  }

  std::size_t done = 0;
  TimeStep now = 0;
  std::vector<Task32> next_frontier;
  while (done < total) {
    if (frontier.empty()) {
      throw std::logic_error("greedy_union_schedule: instance DAG has a cycle");
    }
    // Run up to m tasks from the frontier; the overflow stays ready.
    const std::size_t run = std::min(frontier.size(), n_processors);
    next_frontier.assign(frontier.begin() + static_cast<std::ptrdiff_t>(run),
                         frontier.end());
    for (std::size_t i = 0; i < run; ++i) {
      const Task32 task = frontier[i];
      step[task] = now;
      for (Task32 succ : tg.successors(task)) {
        if (--indegree[succ] == 0) next_frontier.push_back(succ);
      }
    }
    done += run;
    frontier.swap(next_frontier);
    ++now;
  }
  if (makespan != nullptr) *makespan = now;
  return step;
}

}  // namespace sweep::core
