#pragma once
// Uniform facade over every scheduling algorithm in the reproduction. The
// bench harnesses and examples drive this interface so each figure compares
// algorithms under identical assignments and instances.

#include <string>
#include <vector>

#include "core/lower_bounds.hpp"
#include "core/schedule.hpp"
#include "sweep/instance.hpp"
#include "util/rng.hpp"

namespace sweep::core {

enum class Algorithm {
  kRandomDelay,            ///< Algorithm 1 (layer-synchronous)
  kRandomDelayPriorities,  ///< Algorithm 2 (priority list scheduling)
  kImprovedRandomDelay,    ///< Algorithm 3 (greedy preprocessing + delays)
  kLevelPriorities,        ///< level list scheduling, no delays
  kDescendantPriorities,   ///< Plimpton-style descendant counts
  kDescendantDelays,       ///< descendants + random delay release times
  kDfdsPriorities,         ///< Pautz DFDS
  kDfdsDelays,             ///< DFDS + random delay release times
  kBLevelPriorities,       ///< critical-path-first (b-level) comparator
};
// Note: the KBA baseline is deliberately NOT in this enum — it needs the
// structured-grid geometry and its own assignment; see core/kba.hpp.

/// All algorithms, in presentation order.
const std::vector<Algorithm>& all_algorithms();

std::string algorithm_name(Algorithm algorithm);

/// Parses the names returned by algorithm_name; throws on unknown names.
Algorithm algorithm_from_name(const std::string& name);

/// Runs `algorithm` on `instance` with `n_processors`. If `assignment` is
/// empty a fresh uniform random per-cell assignment is drawn (the provable
/// setting); pass a block assignment for the Section 5 block experiments.
Schedule run_algorithm(Algorithm algorithm, const dag::SweepInstance& instance,
                       std::size_t n_processors, util::Rng& rng,
                       Assignment assignment = {});

/// makespan / lower-bound ratio, the paper's plotted quantity.
double approximation_ratio(const Schedule& schedule,
                           const LowerBounds& bounds);

}  // namespace sweep::core
