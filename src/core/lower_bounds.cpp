#include "core/lower_bounds.hpp"

namespace sweep::core {

LowerBounds compute_lower_bounds(const dag::SweepInstance& instance,
                                 std::size_t n_processors) {
  LowerBounds lb;
  lb.average_load = static_cast<double>(instance.n_tasks()) /
                    static_cast<double>(n_processors);
  lb.directions = instance.n_directions();
  lb.depth = instance.max_depth();
  return lb;
}

}  // namespace sweep::core
