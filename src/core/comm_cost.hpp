#pragma once
// The paper's two extreme communication-cost measures (Section 5,
// "Objective functions"):
//
//   C1 — static: the number of DAG edges ((u,i),(v,i)) whose endpoints are
//        assigned to different processors (each such edge is a message that
//        must cross the network at some point).
//   C2 — synchronous-round: after every computation step there is a
//        communication round whose duration is the maximum number of
//        messages any single processor must send in that round; C2 is the
//        sum of those maxima over the schedule. (An optimistic model — the
//        paper notes it can be realized with distributed edge coloring.)

#include <cstdint>

#include "core/schedule.hpp"
#include "sweep/instance.hpp"

namespace sweep::core {

struct C1Cost {
  std::size_t cross_edges = 0;  ///< interprocessor edges over all DAGs
  std::size_t total_edges = 0;
  [[nodiscard]] double fraction() const {
    return total_edges == 0
               ? 0.0
               : static_cast<double>(cross_edges) / static_cast<double>(total_edges);
  }
};

/// C1 depends only on the assignment, not on start times.
C1Cost comm_cost_c1(const dag::SweepInstance& instance,
                    const Assignment& assignment);

struct C2Cost {
  std::size_t total_delay = 0;       ///< sum over steps of max per-proc sends
  std::size_t max_step_degree = 0;   ///< worst single round
  std::size_t busy_steps = 0;        ///< steps with at least one message
};

/// C2 requires the schedule (who finishes what when). A message is one cross-
/// processor DAG edge, charged to the sender at the step its source finishes.
C2Cost comm_cost_c2(const dag::SweepInstance& instance,
                    const Schedule& schedule);

}  // namespace sweep::core
