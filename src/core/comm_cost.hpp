#pragma once
// The paper's two extreme communication-cost measures (Section 5,
// "Objective functions"):
//
//   C1 — static: the number of DAG edges ((u,i),(v,i)) whose endpoints are
//        assigned to different processors (each such edge is a message that
//        must cross the network at some point).
//   C2 — synchronous-round: after every computation step there is a
//        communication round whose duration is the maximum number of
//        messages any single processor must send in that round; C2 is the
//        sum of those maxima over the schedule. (An optimistic model — the
//        paper notes it can be realized with distributed edge coloring.)
//
// Evaluation throughput (DESIGN.md §11): C1 fans the edge scan out across
// directions (each direction's tasks are a contiguous id range with
// same-direction successors, so per-direction cross-edge counts sum without
// synchronization). C2 accumulates (step, sender, messages) records flat
// and sorts by a packed 64-bit step*m+sender key instead of funneling every
// task through an unordered_map — no hash, no per-node allocation, and no
// O(horizon) dense array, so schedules with huge sparse horizons cost
// O(senders log senders), not O(makespan). The *_reference twins preserve
// the original serial implementations as differential baselines.

#include <cstdint>

#include "core/schedule.hpp"
#include "sweep/instance.hpp"

namespace sweep::core {

struct C1Cost {
  std::size_t cross_edges = 0;  ///< interprocessor edges over all DAGs
  std::size_t total_edges = 0;
  [[nodiscard]] double fraction() const {
    return total_edges == 0
               ? 0.0
               : static_cast<double>(cross_edges) / static_cast<double>(total_edges);
  }
};

/// C1 depends only on the assignment, not on start times. Counted in
/// parallel over directions; identical for any `jobs` (0 = all cores,
/// 1 = serial).
C1Cost comm_cost_c1(const dag::SweepInstance& instance,
                    const Assignment& assignment, std::size_t jobs = 0);

/// TaskGraph-direct variant used by the serving path (the daemon evaluates
/// costs straight from an mmap'ed artifact). Identical result to the
/// instance overload for instance.task_graph().
C1Cost comm_cost_c1(const dag::TaskGraph& graph, const Assignment& assignment,
                    std::size_t jobs = 0);

/// Preserved serial single-loop C1 (differential baseline).
C1Cost comm_cost_c1_reference(const dag::SweepInstance& instance,
                              const Assignment& assignment);

struct C2Cost {
  std::size_t total_delay = 0;       ///< sum over steps of max per-proc sends
  std::size_t max_step_degree = 0;   ///< worst single round
  std::size_t busy_steps = 0;        ///< steps with at least one message
};

/// C2 requires the schedule (who finishes what when). A message is one cross-
/// processor DAG edge, charged to the sender at the step its source finishes.
/// Throws std::invalid_argument if makespan * n_processors overflows the
/// packed 64-bit (step, sender) key space (a schedule that large is
/// malformed, not merely expensive).
C2Cost comm_cost_c2(const dag::SweepInstance& instance,
                    const Schedule& schedule);

/// TaskGraph-direct variant (serving path); identical result to the
/// instance overload for instance.task_graph().
C2Cost comm_cost_c2(const dag::TaskGraph& graph, const Schedule& schedule);

/// Preserved unordered_map implementation (differential baseline). Unlike
/// comm_cost_c2 it allocates an O(makespan) dense reduction array, so only
/// feed it schedules with modest horizons.
C2Cost comm_cost_c2_reference(const dag::SweepInstance& instance,
                              const Schedule& schedule);

}  // namespace sweep::core
