#pragma once
// Internal: the multi-threaded sharded superstep engine behind
// list_schedule(options.jobs != 1) — see DESIGN.md §12. Not part of the
// public scheduling API; exposed in a header so the engine-identity tests
// and the fuzz oracle can drive it directly.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "core/schedule.hpp"
#include "sweep/task_graph.hpp"

namespace sweep::core::detail {

/// Runs prioritized list scheduling with the sharded work-stealing engine:
/// the m simulated processors are statically sharded over `jobs` workers,
/// every timestep is a superstep (pop phase, then a dependency-resolution
/// phase that drains per-shard completion buffers), and idle workers steal
/// tail-level processors through Chase–Lev deques. The emitted schedule is
/// bit-identical to list_schedule_reference for every `jobs` value.
///
/// Preconditions (checked by the list_schedule dispatcher, asserted here):
/// no release times / cross-message delay, and the priority span fits the
/// bucket layout: max - min <= 2^16 - 1 and (span + 1) * m <= 2^20.
/// `priorities` may be empty (all tasks equal). Returns nullopt when the
/// padded slot space would overflow (pathologically skewed assignment);
/// the caller falls back to the serial engines.
std::optional<Schedule> sharded_list_schedule(
    const dag::TaskGraph& tg, const Assignment& assignment,
    std::size_t n_processors, std::span<const std::int64_t> priorities,
    std::int64_t min_priority, std::size_t width, std::size_t jobs);

/// The static processor->shard map: shard w of `n_shards` owns the
/// contiguous processor block [floor(w*m/W), floor((w+1)*m/W)). The closed
/// form below is the inverse of those floor boundaries. Exposed for tests.
[[nodiscard]] inline std::size_t shard_of_processor(std::size_t p,
                                                    std::size_t m,
                                                    std::size_t n_shards) {
  return (p * n_shards + n_shards - 1) / m;
}

/// Resolves options.jobs to a worker count: 0 = all cores, otherwise
/// `jobs`, clamped to [1, n_processors].
[[nodiscard]] std::size_t resolve_engine_workers(std::size_t jobs,
                                                 std::size_t n_processors);

}  // namespace sweep::core::detail
