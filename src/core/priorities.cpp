#include "core/priorities.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "obs/obs.hpp"
#include "sweep/descendants.hpp"
#include "sweep/task_graph.hpp"
#include "util/parallel.hpp"

namespace sweep::core {
namespace {

/// Fills direction i's slice of a descendant-priority vector from its
/// counts; shared by the parallel path and the serial reference.
void fill_descendant_slice(const std::vector<double>& counts, std::size_t n,
                           DirectionId i, std::vector<std::int64_t>& out) {
  for (CellId v = 0; v < n; ++v) {
    // Higher descendant count runs first -> negate for the min-first engine.
    out[task_id(v, i, n)] =
        -static_cast<std::int64_t>(std::llround(counts[v]));
  }
}

/// Direction i's DFDS priority slice (off-processor-children rule); shared
/// by the parallel path and the serial reference.
void fill_dfds_slice(const dag::SweepInstance& instance,
                     const Assignment& assignment, std::size_t n,
                     DirectionId i, std::vector<std::int64_t>& out) {
  const dag::SweepDag& g = instance.dag(i);
  const std::vector<std::uint32_t> blevel = g.b_levels();
  std::uint32_t depth = 0;
  for (std::uint32_t b : blevel) depth = std::max(depth, b);
  const auto big_c = static_cast<std::int64_t>(depth);  // C >= #levels

  // Reverse topological order so children are finalized before parents.
  const std::vector<dag::NodeId> topo = g.topological_order();
  std::vector<std::int64_t> prio(n, 0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const dag::NodeId v = *it;
    std::int64_t max_offproc_blevel = -1;
    std::int64_t max_child_prio = -1;
    for (dag::NodeId w : g.successors(v)) {
      if (assignment[w] != assignment[v]) {
        max_offproc_blevel =
            std::max(max_offproc_blevel, static_cast<std::int64_t>(blevel[w]));
      }
      max_child_prio = std::max(max_child_prio, prio[w]);
    }
    if (max_offproc_blevel >= 0) {
      prio[v] = big_c + max_offproc_blevel;
    } else if (max_child_prio > 0) {
      prio[v] = max_child_prio - 1;
    } else {
      prio[v] = 0;  // no off-processor descendants
    }
  }
  for (CellId v = 0; v < n; ++v) {
    out[task_id(v, i, n)] = -prio[v];  // higher preferred
  }
}

void fill_blevel_slice(const dag::SweepInstance& instance, std::size_t n,
                       DirectionId i, std::vector<std::int64_t>& out) {
  const std::vector<std::uint32_t> blevel = instance.dag(i).b_levels();
  for (CellId v = 0; v < n; ++v) {
    // Deeper remaining path runs first -> negate for the min-first engine.
    out[task_id(v, i, n)] = -static_cast<std::int64_t>(blevel[v]);
  }
}

}  // namespace

std::vector<TimeStep> random_delays(std::size_t n_directions, util::Rng& rng) {
  std::vector<TimeStep> delays(n_directions);
  for (auto& x : delays) {
    x = static_cast<TimeStep>(rng.next_below(n_directions));
  }
  return delays;
}

std::vector<std::int64_t> level_priorities(const dag::SweepInstance& instance) {
  const std::span<const std::uint32_t> level = instance.task_graph().levels();
  return {level.begin(), level.end()};
}

std::vector<std::int64_t> random_delay_priorities(
    const dag::SweepInstance& instance, const std::vector<TimeStep>& delays,
    std::size_t jobs) {
  if (delays.size() != instance.n_directions()) {
    throw std::invalid_argument("random_delay_priorities: delays size != k");
  }
  SWEEP_OBS_TIMER("priorities.random_delay");
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::span<const std::uint32_t> level = instance.task_graph().levels();
  std::vector<std::int64_t> priorities(n * k);
  util::parallel_for(
      k,
      [&](std::size_t i) {
        const auto delay = static_cast<std::int64_t>(delays[i]);
        const std::size_t base = i * n;
        for (std::size_t v = 0; v < n; ++v) {
          priorities[base + v] =
              static_cast<std::int64_t>(level[base + v]) + delay;
        }
      },
      jobs);
  return priorities;
}

std::vector<std::int64_t> random_delay_priorities_reference(
    const dag::SweepInstance& instance, const std::vector<TimeStep>& delays) {
  if (delays.size() != instance.n_directions()) {
    throw std::invalid_argument("random_delay_priorities: delays size != k");
  }
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::span<const std::uint32_t> level = instance.task_graph().levels();
  std::vector<std::int64_t> priorities(n * k);
  for (DirectionId i = 0; i < k; ++i) {
    const auto delay = static_cast<std::int64_t>(delays[i]);
    const std::size_t base = static_cast<std::size_t>(i) * n;
    for (std::size_t v = 0; v < n; ++v) {
      priorities[base + v] = static_cast<std::int64_t>(level[base + v]) + delay;
    }
  }
  return priorities;
}

std::vector<std::int64_t> descendant_priorities(
    const dag::SweepInstance& instance, util::Rng& rng, std::size_t jobs) {
  SWEEP_OBS_SPAN_ARGS("priorities.descendant", "k",
                      static_cast<std::int64_t>(instance.n_directions()),
                      "n", static_cast<std::int64_t>(instance.n_cells()));
  SWEEP_OBS_TIMER("priorities.descendant");
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  // One draw splits the caller's stream; each direction then owns an
  // order-independent stream (see the stream-splitting note in rng.hpp).
  const std::uint64_t base = rng();
  std::vector<std::int64_t> priorities(n * k);
  util::parallel_for(
      k,
      [&](std::size_t i) {
        if (n <= dag::kDefaultExactThreshold) {
          // Exact counts are rng-independent and trial-invariant, so reuse
          // the instance-level cache: the figure harnesses rebuild these
          // priorities once per trial and pay for the transitive closure
          // only on the first call. The stream draw above is still
          // consumed, keeping rng state identical to the reference.
          const std::vector<std::uint64_t>& counts =
              instance.exact_descendant_counts(i);
          for (CellId v = 0; v < n; ++v) {
            priorities[task_id(v, static_cast<DirectionId>(i), n)] =
                -static_cast<std::int64_t>(counts[v]);
          }
        } else {
          util::Rng dir_rng = util::Rng::for_stream(base, i);
          const std::vector<double> counts =
              dag::estimated_descendant_counts(instance.dag(i), dir_rng);
          fill_descendant_slice(counts, n, static_cast<DirectionId>(i),
                                priorities);
        }
      },
      jobs);
  return priorities;
}

std::vector<std::int64_t> descendant_priorities_reference(
    const dag::SweepInstance& instance, util::Rng& rng) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::uint64_t base = rng();  // same split as the parallel path
  std::vector<std::int64_t> priorities(n * k);
  for (DirectionId i = 0; i < k; ++i) {
    util::Rng dir_rng = util::Rng::for_stream(base, i);
    const std::vector<double> counts =
        dag::descendant_counts_reference(instance.dag(i), dir_rng);
    fill_descendant_slice(counts, n, i, priorities);
  }
  return priorities;
}

std::vector<std::int64_t> blevel_priorities(const dag::SweepInstance& instance,
                                            std::size_t jobs) {
  SWEEP_OBS_TIMER("priorities.blevel");
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  std::vector<std::int64_t> priorities(n * k);
  util::parallel_for(
      k,
      [&](std::size_t i) {
        fill_blevel_slice(instance, n, static_cast<DirectionId>(i),
                          priorities);
      },
      jobs);
  return priorities;
}

std::vector<std::int64_t> blevel_priorities_reference(
    const dag::SweepInstance& instance) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  std::vector<std::int64_t> priorities(n * k);
  for (DirectionId i = 0; i < k; ++i) {
    fill_blevel_slice(instance, n, i, priorities);
  }
  return priorities;
}

std::vector<std::int64_t> dfds_priorities(const dag::SweepInstance& instance,
                                          const Assignment& assignment,
                                          std::size_t jobs) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  if (assignment.size() != n) {
    throw std::invalid_argument("dfds_priorities: assignment size != n_cells");
  }
  SWEEP_OBS_TIMER("priorities.dfds");
  std::vector<std::int64_t> priorities(n * k);
  util::parallel_for(
      k,
      [&](std::size_t i) {
        fill_dfds_slice(instance, assignment, n, static_cast<DirectionId>(i),
                        priorities);
      },
      jobs);
  return priorities;
}

std::vector<std::int64_t> dfds_priorities_reference(
    const dag::SweepInstance& instance, const Assignment& assignment) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  if (assignment.size() != n) {
    throw std::invalid_argument("dfds_priorities: assignment size != n_cells");
  }
  std::vector<std::int64_t> priorities(n * k);
  for (DirectionId i = 0; i < k; ++i) {
    fill_dfds_slice(instance, assignment, n, i, priorities);
  }
  return priorities;
}

std::vector<TimeStep> delay_release_times(const dag::SweepInstance& instance,
                                          const std::vector<TimeStep>& delays) {
  if (delays.size() != instance.n_directions()) {
    throw std::invalid_argument("delay_release_times: delays size != k");
  }
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  std::vector<TimeStep> releases(n * k);
  for (DirectionId i = 0; i < k; ++i) {
    std::fill_n(releases.begin() + static_cast<std::ptrdiff_t>(i * n), n,
                delays[i]);
  }
  return releases;
}

}  // namespace sweep::core
