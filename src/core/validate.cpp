#include "core/validate.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace sweep::core {
namespace {

ValidationResult fail(const std::string& message) {
  return ValidationResult{false, message};
}

}  // namespace

ValidationResult validate_schedule(const dag::SweepInstance& instance,
                                   const Schedule& schedule) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  if (schedule.n_cells() != n || schedule.n_directions() != k) {
    return fail("schedule shape does not match instance");
  }
  if (schedule.assignment().size() != n) {
    return fail("assignment size does not match cell count");
  }
  for (CellId v = 0; v < n; ++v) {
    if (schedule.assignment()[v] >= schedule.n_processors()) {
      std::ostringstream msg;
      msg << "cell " << v << " assigned to out-of-range processor "
          << schedule.assignment()[v];
      return fail(msg.str());
    }
  }

  // Completeness.
  for (TaskId t = 0; t < schedule.n_tasks(); ++t) {
    if (schedule.start(t) == kUnscheduled) {
      std::ostringstream msg;
      msg << "task " << t << " (cell " << task_cell(t, n) << ", dir "
          << task_direction(t, n) << ") was never scheduled";
      return fail(msg.str());
    }
  }

  // Precedence: start(u,i) < start(v,i) for every edge.
  for (DirectionId i = 0; i < k; ++i) {
    const dag::SweepDag& g = instance.dag(i);
    for (dag::NodeId u = 0; u < n; ++u) {
      const TimeStep su = schedule.start(u, i);
      for (dag::NodeId v : g.successors(u)) {
        if (schedule.start(v, i) <= su) {
          std::ostringstream msg;
          msg << "precedence violated in direction " << i << ": cell " << u
              << " at t=" << su << " must precede cell " << v
              << " at t=" << schedule.start(v, i);
          return fail(msg.str());
        }
      }
    }
  }

  // One task per (processor, timestep).
  std::vector<std::pair<std::uint64_t, TaskId>> slots;
  slots.reserve(schedule.n_tasks());
  for (TaskId t = 0; t < schedule.n_tasks(); ++t) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(schedule.processor_of(t)) << 32) |
        schedule.start(t);
    slots.emplace_back(key, t);
  }
  std::sort(slots.begin(), slots.end());
  for (std::size_t i = 1; i < slots.size(); ++i) {
    if (slots[i].first == slots[i - 1].first) {
      std::ostringstream msg;
      msg << "processor " << (slots[i].first >> 32) << " runs tasks "
          << slots[i - 1].second << " and " << slots[i].second
          << " at the same timestep " << (slots[i].first & 0xffffffffu);
      return fail(msg.str());
    }
  }
  return ValidationResult{};
}

}  // namespace sweep::core
