#pragma once
// The prioritized list-scheduling engine (paper Section 3, "List
// Scheduling"): at each timestep every processor runs the ready task of
// smallest priority value among the tasks assigned to it. All list-based
// algorithms in the paper — Algorithm 2 (random delays with priorities),
// level priorities, descendant priorities, DFDS — are this engine with
// different priority vectors, which keeps comparisons apples-to-apples.
//
// Optional per-task release times implement the "add random delays to a
// heuristic" variants of Section 5.2: task (v,i) may not start before its
// release time X_i.

#include <span>

#include "core/schedule.hpp"
#include "sweep/instance.hpp"

namespace sweep::core {

/// Ready-set data structure used by the engine. kAuto picks per-processor
/// bucket queues when the priority range is a bounded small integer span
/// (levels, depths — the common case), falling back to binary heaps for
/// arbitrary 64-bit priorities (descendant counts). All choices produce
/// bit-identical schedules; the options exist for testing and benchmarking.
enum class ReadyQueueKind { kAuto, kHeap, kBucket };

struct ListScheduleOptions {
  /// Per-task priority; SMALLER runs first; ties broken by task id.
  /// Empty means all tasks have equal priority.
  std::span<const std::int64_t> priorities = {};
  /// Per-task earliest start times. Empty means no release constraints.
  std::span<const TimeStep> release_times = {};
  /// Communication delay c (in task units): a task whose predecessor ran on
  /// a DIFFERENT processor may start no earlier than c steps after that
  /// predecessor finished (the P|prec,c|Cmax model of Related Work [4,13],
  /// restricted by the sweep same-processor constraint). 0 = the paper's
  /// zero-communication analysis setting.
  TimeStep cross_message_delay = 0;
  /// Ready-set implementation. kBucket is honored only when the priority
  /// range is narrow enough to bucket (otherwise the heap is used anyway,
  /// counted by the `engine.bucket_fallback` metric).
  ReadyQueueKind ready_queue = ReadyQueueKind::kAuto;
  /// Engine worker threads: 1 (default) = the serial engines; 0 = one
  /// worker per core; N = at most N workers (clamped to n_processors).
  /// Values other than 1 route eligible calls through the sharded
  /// work-stealing engine (DESIGN.md §12). Every value of `jobs` produces
  /// the same bit-identical schedule; gated calls (release times or
  /// cross_message_delay), ready_queue == kHeap, and priority ranges too
  /// wide to bucket always use the serial engines regardless.
  std::size_t jobs = 1;
};

/// Runs prioritized list scheduling of `instance` on `n_processors`
/// processors under the fixed cell->processor `assignment`.
/// Guarantees: result is complete and feasible (precedence + same-processor
/// + one-task-per-slot), and no processor idles while it has a ready,
/// released task — the "no idle times" property of Algorithm 2.
Schedule list_schedule(const dag::SweepInstance& instance,
                       const Assignment& assignment, std::size_t n_processors,
                       const ListScheduleOptions& options = {});

/// Same engine, driven straight from a flat TaskGraph — the serving path
/// (sweep_serve) schedules out of an mmap'ed artifact without ever
/// materializing a SweepInstance. Bit-identical to the instance overload for
/// the graph that instance.task_graph() returns.
Schedule list_schedule(const dag::TaskGraph& graph, const Assignment& assignment,
                       std::size_t n_processors,
                       const ListScheduleOptions& options = {});

/// The pre-engine implementation (per-direction DAG walks, task-id
/// arithmetic per edge, binary heaps). Produces bit-identical schedules to
/// list_schedule; kept as the oracle for the engine equivalence tests and as
/// the "old path" in the throughput microbenchmarks. Ignores
/// options.ready_queue.
Schedule list_schedule_reference(const dag::SweepInstance& instance,
                                 const Assignment& assignment,
                                 std::size_t n_processors,
                                 const ListScheduleOptions& options = {});

/// Greedy (Graham) list schedule of the union DAG H on m identical machines,
/// ignoring the same-processor constraint — the preprocessing step of
/// Algorithm 3 and a natural baseline/lower-bound helper. Returns the step at
/// which each task runs; `makespan` (if non-null) receives the step count.
/// Within a step at most m tasks run; a task never runs before a predecessor.
std::vector<TimeStep> greedy_union_schedule(const dag::SweepInstance& instance,
                                            std::size_t n_processors,
                                            std::size_t* makespan = nullptr);

}  // namespace sweep::core
