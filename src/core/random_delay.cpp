#include "core/random_delay.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"

namespace sweep::core {
namespace {

/// Entry validation shared by Algorithms 1 and 3. The caller-supplied
/// assignment is untrusted: an entry >= n_processors would index past
/// proc_cursor in execute_layered and corrupt the heap, so reject it here
/// (mirrors validate_inputs in the list-scheduling engine).
void validate_rd_inputs(std::size_t n_cells, std::size_t n_processors,
                        const Assignment& assignment, const char* who) {
  if (n_processors == 0) {
    throw std::invalid_argument(std::string(who) + ": need >= 1 processor");
  }
  if (assignment.size() != n_cells) {
    throw std::invalid_argument(std::string(who) + ": bad assignment size");
  }
  for (ProcessorId p : assignment) {
    if (p >= n_processors) {
      throw std::invalid_argument(std::string(who) +
                                  ": assignment entry out of range");
    }
  }
}

/// Shared core of Algorithms 1 and 3: given per-task layer indices
/// (combined-DAG layers, already including the random delays), execute the
/// layers synchronously — within a layer each processor runs its tasks
/// back-to-back, and layer r+1 starts after the slowest processor of layer r.
RandomDelayResult execute_layered(const dag::SweepInstance& instance,
                                  std::size_t n_processors,
                                  const std::vector<std::uint32_t>& task_layer,
                                  std::vector<TimeStep> delays,
                                  Assignment assignment) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  const std::size_t total = n * k;

  std::uint32_t max_layer = 0;
  for (std::uint32_t l : task_layer) max_layer = std::max(max_layer, l);
  const std::size_t n_layers = total == 0 ? 0 : max_layer + 1;

  // Bucket tasks by layer (counting sort to keep it linear).
  std::vector<std::uint32_t> layer_offsets(n_layers + 1, 0);
  for (std::uint32_t l : task_layer) ++layer_offsets[l + 1];
  for (std::size_t r = 0; r < n_layers; ++r) {
    layer_offsets[r + 1] += layer_offsets[r];
  }
  std::vector<TaskId> layer_tasks(total);
  {
    std::vector<std::uint32_t> cursor(layer_offsets.begin(),
                                      layer_offsets.end() - 1);
    for (TaskId t = 0; t < total; ++t) {
      layer_tasks[cursor[task_layer[t]]++] = t;
    }
  }

  RandomDelayResult result{
      Schedule(n, k, n_processors, std::move(assignment)), std::move(delays),
      n_layers, 0};
  Schedule& schedule = result.schedule;

  std::vector<TimeStep> proc_cursor(n_processors, 0);
  TimeStep layer_start = 0;
  for (std::size_t r = 0; r < n_layers; ++r) {
    std::fill(proc_cursor.begin(), proc_cursor.end(), layer_start);
    TimeStep layer_end = layer_start;
    for (std::uint32_t idx = layer_offsets[r]; idx < layer_offsets[r + 1];
         ++idx) {
      const TaskId t = layer_tasks[idx];
      const ProcessorId p = schedule.processor_of(t);
      schedule.set_start(t, proc_cursor[p]);
      ++proc_cursor[p];
      layer_end = std::max(layer_end, proc_cursor[p]);
      result.max_layer_load =
          std::max<std::size_t>(result.max_layer_load,
                                proc_cursor[p] - layer_start);
    }
    layer_start = layer_end;
  }
  return result;
}

}  // namespace

RandomDelayResult random_delay_schedule(const dag::SweepInstance& instance,
                                        std::size_t n_processors,
                                        util::Rng& rng, Assignment assignment) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  if (assignment.empty() && n > 0) {
    if (n_processors == 0) {
      throw std::invalid_argument("random_delay_schedule: need >= 1 processor");
    }
    assignment = random_assignment(n, n_processors, rng);
  }
  validate_rd_inputs(n, n_processors, assignment, "random_delay_schedule");

  std::vector<TimeStep> delays = random_delays(k, rng);
  // Combined layer of task (v,i) = level_i(v) + X_i (step 2 of Algorithm 1).
  // Levels come flattened from the cached TaskGraph; tasks of direction i
  // occupy the contiguous id block [i*n, (i+1)*n).
  const std::span<const std::uint32_t> level = instance.task_graph().levels();
  std::vector<std::uint32_t> task_layer(n * k);
  for (DirectionId i = 0; i < k; ++i) {
    const std::uint32_t delay = delays[i];
    const std::size_t base = static_cast<std::size_t>(i) * n;
    for (std::size_t v = 0; v < n; ++v) {
      task_layer[base + v] = level[base + v] + delay;
    }
  }
  return execute_layered(instance, n_processors, task_layer, std::move(delays),
                         std::move(assignment));
}

RandomDelayResult improved_random_delay_schedule(
    const dag::SweepInstance& instance, std::size_t n_processors,
    util::Rng& rng, Assignment assignment) {
  const std::size_t n = instance.n_cells();
  const std::size_t k = instance.n_directions();
  if (assignment.empty() && n > 0) {
    if (n_processors == 0) {
      throw std::invalid_argument(
          "improved_random_delay_schedule: need >= 1 processor");
    }
    assignment = random_assignment(n, n_processors, rng);
  }
  validate_rd_inputs(n, n_processors, assignment,
                     "improved_random_delay_schedule");

  // Preprocessing (step 1 of Algorithm 3): greedy list schedule of the union
  // DAG H on m machines; L'_{i,j} = direction-i tasks run at step j. Every
  // new level has at most m tasks, which is what the improved analysis needs.
  const std::vector<TimeStep> new_level =
      greedy_union_schedule(instance, n_processors);

  std::vector<TimeStep> delays = random_delays(k, rng);
  std::vector<std::uint32_t> task_layer(n * k);
  for (DirectionId i = 0; i < k; ++i) {
    const std::uint32_t delay = delays[i];
    const std::size_t base = static_cast<std::size_t>(i) * n;
    for (std::size_t v = 0; v < n; ++v) {
      task_layer[base + v] = new_level[base + v] + delay;
    }
  }
  return execute_layered(instance, n_processors, task_layer, std::move(delays),
                         std::move(assignment));
}

}  // namespace sweep::core
