#include "transport/transport.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sweep::transport {

using core::TaskId;

std::vector<TaskId> execution_order(const core::Schedule& schedule) {
  std::vector<TaskId> order(schedule.n_tasks());
  for (TaskId t = 0; t < order.size(); ++t) order[t] = t;
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (schedule.start(a) != schedule.start(b)) {
      return schedule.start(a) < schedule.start(b);
    }
    if (schedule.processor_of(a) != schedule.processor_of(b)) {
      return schedule.processor_of(a) < schedule.processor_of(b);
    }
    return a < b;
  });
  return order;
}

std::vector<TaskId> sequential_order(const dag::SweepInstance& instance) {
  const std::size_t n = instance.n_cells();
  std::vector<TaskId> order;
  order.reserve(instance.n_tasks());
  for (std::size_t i = 0; i < instance.n_directions(); ++i) {
    for (dag::NodeId v : instance.dag(i).topological_order()) {
      order.push_back(core::task_id(v, static_cast<core::DirectionId>(i), n));
    }
  }
  return order;
}

TransportResult solve_transport(const mesh::UnstructuredMesh& mesh,
                                const dag::DirectionSet& directions,
                                const dag::SweepInstance& instance,
                                std::span<const TaskId> task_order,
                                const TransportOptions& options) {
  const std::size_t n = mesh.n_cells();
  const std::size_t k = directions.size();
  if (instance.n_cells() != n || instance.n_directions() != k) {
    throw std::invalid_argument("solve_transport: instance/mesh/directions mismatch");
  }
  if (task_order.size() != n * k) {
    throw std::invalid_argument("solve_transport: order must cover all tasks");
  }
  {
    std::vector<char> seen(n * k, 0);
    for (TaskId t : task_order) {
      if (t >= n * k || seen[t]) {
        throw std::invalid_argument("solve_transport: order is not a permutation");
      }
      seen[t] = 1;
    }
  }
  if (options.sigma_t <= 0.0) {
    throw std::invalid_argument("solve_transport: sigma_t must be positive");
  }
  if (!options.per_cell_source.empty() && options.per_cell_source.size() != n) {
    throw std::invalid_argument("solve_transport: per_cell_source size != n");
  }

  constexpr double kFourPi = 4.0 * std::numbers::pi;
  std::vector<double> psi(n * k, 0.0);
  std::vector<char> computed(n * k, 0);
  std::vector<double> phi(n, 0.0);
  std::vector<double> phi_new(n, 0.0);
  std::vector<double> emission(n, 0.0);

  TransportResult result;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    for (std::size_t c = 0; c < n; ++c) {
      const double q = options.per_cell_source.empty()
                           ? options.volumetric_source
                           : options.per_cell_source[c];
      emission[c] = (options.sigma_s * phi[c] + q) / kFourPi;
    }
    std::fill(computed.begin(), computed.end(), 0);

    for (TaskId t : task_order) {
      const auto c = core::task_cell(t, n);
      const auto i = core::task_direction(t, n);
      const mesh::Vec3& omega = directions.directions[i];
      const double volume = mesh.volume(c);
      double inflow = emission[c] * volume;
      double removal = options.sigma_t * volume;
      for (mesh::FaceId f : mesh.faces_of(c)) {
        const mesh::Face& face = mesh.face(f);
        const double mu = dot(omega, mesh.outward_normal(c, f));
        if (mu > options.flow_tolerance) {
          removal += mu * face.area;
        } else if (mu < -options.flow_tolerance) {
          double upwind = options.boundary_flux;
          if (!face.is_boundary()) {
            const mesh::CellId nb = mesh.neighbor_across(c, f);
            const TaskId up = core::task_id(nb, i, n);
            if (!computed[up]) {
              if (!options.allow_lagged_upwind) {
                throw std::logic_error(
                    "solve_transport: upwind value consumed before production "
                    "(task order violates precedence)");
              }
              ++result.lagged_uses;
            }
            upwind = psi[up];
          }
          inflow += -mu * face.area * upwind;
        }
      }
      psi[t] = inflow / removal;
      computed[t] = 1;
    }

    std::fill(phi_new.begin(), phi_new.end(), 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      const double w = directions.weights[i];
      for (std::size_t c = 0; c < n; ++c) {
        phi_new[c] += w * psi[i * n + c];
      }
    }

    double max_change = 0.0;
    double max_flux = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      max_change = std::max(max_change, std::abs(phi_new[c] - phi[c]));
      max_flux = std::max(max_flux, std::abs(phi_new[c]));
    }
    phi.swap(phi_new);
    result.iterations = iter + 1;
    result.residual = max_flux > 0.0 ? max_change / max_flux : max_change;
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.scalar_flux = std::move(phi);
  return result;
}

double infinite_medium_flux(const TransportOptions& options) {
  const double sigma_a = options.sigma_t - options.sigma_s;
  if (sigma_a <= 0.0) return 0.0;
  return options.volumetric_source / sigma_a;
}

}  // namespace sweep::transport
