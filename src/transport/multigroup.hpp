#pragma once
// Multigroup extension of the transport substrate: G energy groups coupled
// by a (lower-triangular) downscatter matrix, solved group-by-group from the
// highest energy down. Every group solve runs the same scheduled sweeps, so
// a single sweep schedule is amortized over G source-iteration solves — the
// production usage pattern that motivates investing in good schedules.

#include <span>
#include <vector>

#include "transport/transport.hpp"

namespace sweep::transport {

struct MultigroupOptions {
  /// Per-group total cross sections (size G, all > 0).
  std::vector<double> sigma_t;
  /// scatter[g][g'] = cross section for scattering from group g' INTO group
  /// g. Must be lower-triangular including the diagonal (g' <= g): only
  /// within-group scattering and downscatter, no upscatter.
  std::vector<std::vector<double>> scatter;
  /// Per-group volumetric sources (size G).
  std::vector<double> source;
  double boundary_flux = 0.0;
  std::size_t max_iterations = 200;
  double tolerance = 1e-8;
};

struct MultigroupResult {
  /// scalar_flux[g][c]
  std::vector<std::vector<double>> scalar_flux;
  std::size_t total_iterations = 0;
  bool converged = false;  ///< all group solves converged
};

/// Solves all groups, reusing `task_order` for every sweep.
/// Throws std::invalid_argument on inconsistent option shapes or upscatter.
MultigroupResult solve_multigroup(const mesh::UnstructuredMesh& mesh,
                                  const dag::DirectionSet& directions,
                                  const dag::SweepInstance& instance,
                                  std::span<const core::TaskId> task_order,
                                  const MultigroupOptions& options);

}  // namespace sweep::transport
