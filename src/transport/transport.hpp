#pragma once
// Minimal single-group discrete-ordinates (S_n) radiation transport solver —
// the application the paper's sweeps come from ("streaming-plus-collision"
// operator inversion). It is deliberately simple physics (first-order upwind
// finite volume, isotropic scattering, vacuum-or-constant boundary flux) but
// it executes each source-iteration sweep *in the task order produced by a
// sweep schedule*, demonstrating end-to-end that the scheduling layer feeds a
// real solver and that any feasible schedule yields the same answer as a
// sequential sweep.
//
// Per-cell upwind balance for direction w with outward face normals n_f:
//   psi_c = (sum_in |w.n_f| A_f psi_up(f) + s_c V_c)
//           / (sigma_t V_c + sum_out (w.n_f) A_f)
// where psi_up is the upwind neighbor's angular flux (already computed by
// precedence) or the boundary flux on boundary faces.

#include <cstdint>
#include <span>
#include <vector>
// (TransportOptions::per_cell_source allows spatially varying sources; the
// multigroup driver in multigroup.hpp uses it for downscatter sources.)

#include "core/schedule.hpp"
#include "mesh/mesh.hpp"
#include "sweep/directions.hpp"
#include "sweep/instance.hpp"

namespace sweep::transport {

struct TransportOptions {
  double sigma_t = 1.0;        ///< total cross section (1/cm)
  double sigma_s = 0.5;        ///< isotropic scattering cross section
  double volumetric_source = 1.0;  ///< isotropic source q (per unit volume)
  /// Optional per-cell source overriding volumetric_source (size n_cells).
  std::span<const double> per_cell_source = {};
  double boundary_flux = 0.0;  ///< incoming angular flux on the boundary
  std::size_t max_iterations = 200;
  double tolerance = 1e-8;     ///< relative scalar-flux change
  /// Flow tolerance: |omega . n| below this is treated as no flow across the
  /// face. Must match the DAG builder's tolerance or sweeps may consume
  /// values the precedence graph never ordered.
  double flow_tolerance = 1e-9;
  /// Cycle-broken meshes drop a few precedence edges; sweeping then consumes
  /// a not-yet-updated ("lagged") upwind value across those faces, as
  /// production transport codes do. false = treat as an error instead.
  bool allow_lagged_upwind = false;
};

struct TransportResult {
  std::vector<double> scalar_flux;  ///< phi per cell
  std::size_t iterations = 0;
  double residual = 0.0;            ///< final relative change
  bool converged = false;
  std::size_t lagged_uses = 0;      ///< upwind values consumed before update
};

/// Tasks sorted by (start time, processor) — a sequentialized execution of a
/// parallel schedule that respects all precedence constraints.
std::vector<core::TaskId> execution_order(const core::Schedule& schedule);

/// Per-direction topological order (the trivial serial schedule).
std::vector<core::TaskId> sequential_order(const dag::SweepInstance& instance);

/// Runs source iteration; each sweep executes tasks in `task_order`.
/// Throws std::invalid_argument if the order does not cover every task
/// exactly once; precedence violations surface as a std::logic_error when an
/// upwind value is consumed before it was produced.
TransportResult solve_transport(const mesh::UnstructuredMesh& mesh,
                                const dag::DirectionSet& directions,
                                const dag::SweepInstance& instance,
                                std::span<const core::TaskId> task_order,
                                const TransportOptions& options = {});

/// Analytic sanity value: for an infinite homogeneous pure-absorber medium,
/// phi = q / sigma_a. Interior cells of a large mesh should approach this.
double infinite_medium_flux(const TransportOptions& options);

}  // namespace sweep::transport
