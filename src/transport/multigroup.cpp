#include "transport/multigroup.hpp"

#include <stdexcept>

namespace sweep::transport {

MultigroupResult solve_multigroup(const mesh::UnstructuredMesh& mesh,
                                  const dag::DirectionSet& directions,
                                  const dag::SweepInstance& instance,
                                  std::span<const core::TaskId> task_order,
                                  const MultigroupOptions& options) {
  const std::size_t groups = options.sigma_t.size();
  if (groups == 0) {
    throw std::invalid_argument("solve_multigroup: need >= 1 group");
  }
  if (options.scatter.size() != groups || options.source.size() != groups) {
    throw std::invalid_argument("solve_multigroup: option shape mismatch");
  }
  for (std::size_t g = 0; g < groups; ++g) {
    if (options.scatter[g].size() != groups) {
      throw std::invalid_argument("solve_multigroup: scatter row size mismatch");
    }
    for (std::size_t gp = g + 1; gp < groups; ++gp) {
      if (options.scatter[g][gp] != 0.0) {
        throw std::invalid_argument("solve_multigroup: upscatter not supported");
      }
    }
  }

  const std::size_t n = mesh.n_cells();
  MultigroupResult result;
  result.scalar_flux.assign(groups, std::vector<double>(n, 0.0));
  result.converged = true;

  std::vector<double> group_source(n);
  for (std::size_t g = 0; g < groups; ++g) {
    // Effective source: external + downscatter from faster groups.
    for (std::size_t c = 0; c < n; ++c) {
      double q = options.source[g];
      for (std::size_t gp = 0; gp < g; ++gp) {
        q += options.scatter[g][gp] * result.scalar_flux[gp][c];
      }
      group_source[c] = q;
    }
    TransportOptions gopts;
    gopts.sigma_t = options.sigma_t[g];
    gopts.sigma_s = options.scatter[g][g];  // within-group scattering
    gopts.per_cell_source = group_source;
    gopts.boundary_flux = options.boundary_flux;
    gopts.max_iterations = options.max_iterations;
    gopts.tolerance = options.tolerance;
    TransportResult solved =
        solve_transport(mesh, directions, instance, task_order, gopts);
    result.total_iterations += solved.iterations;
    result.converged = result.converged && solved.converged;
    result.scalar_flux[g] = std::move(solved.scalar_flux);
  }
  return result;
}

}  // namespace sweep::transport
