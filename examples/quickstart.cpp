// Quickstart: the minimal end-to-end pipeline.
//
//   mesh -> direction set -> per-direction DAGs -> schedule -> metrics
//
// Builds a small unstructured tetrahedral mesh, induces the sweep DAGs for an
// S_4 direction set (24 directions, as in the paper's Figure 2), runs
// Algorithm 2 ("Random Delays with Priorities") on 32 processors, validates
// the schedule and prints the quantities the paper reports: makespan, the
// nk/m lower bound, their ratio, and the two communication costs.

#include <cstdio>

#include "core/algorithms.hpp"
#include "core/comm_cost.hpp"
#include "core/lower_bounds.hpp"
#include "core/schedule_io.hpp"
#include "core/validate.hpp"
#include "mesh/mesh_stats.hpp"
#include "mesh/zoo.hpp"
#include "sweep/instance.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sweep;

  // 1. An unstructured mesh (scaled-down "tetonly" stand-in, ~4k cells).
  const mesh::UnstructuredMesh m = mesh::MeshZoo::tetonly_like(/*scale=*/0.5);
  std::printf("mesh: %s\n", to_string(mesh::compute_stats(m)).c_str());

  // 2. S_4 level-symmetric quadrature: 24 sweep directions.
  const dag::DirectionSet dirs = dag::level_symmetric(4);
  std::printf("directions: %zu (S_4 level-symmetric)\n", dirs.size());

  // 3. Induce one precedence DAG per direction.
  dag::InstanceBuildStats build_stats;
  const dag::SweepInstance instance =
      dag::build_instance(m, dirs, 1e-9, &build_stats);
  std::printf("instance: %zu tasks, %zu precedence edges (%zu dropped to break cycles)\n",
              instance.n_tasks(), instance.total_edges(),
              build_stats.total_dropped_edges);

  // 4. Schedule with Algorithm 2 on 32 processors.
  const std::size_t n_processors = 32;
  util::Rng rng(42);
  const core::Schedule schedule = core::run_algorithm(
      core::Algorithm::kRandomDelayPriorities, instance, n_processors, rng);

  // 5. Validate and report.
  const core::ValidationResult valid = core::validate_schedule(instance, schedule);
  std::printf("schedule valid: %s\n", valid ? "yes" : valid.error.c_str());

  const core::LowerBounds lb = core::compute_lower_bounds(instance, n_processors);
  std::printf("makespan: %zu   lower bound (max{nk/m, k, D}): %.0f   ratio: %.3f\n",
              schedule.makespan(), lb.value(),
              core::approximation_ratio(schedule, lb));

  const core::C1Cost c1 = core::comm_cost_c1(instance, schedule.assignment());
  const core::C2Cost c2 = core::comm_cost_c2(instance, schedule);
  std::printf("C1 (interprocessor edges): %zu of %zu (%.1f%%)\n", c1.cross_edges,
              c1.total_edges, 100.0 * c1.fraction());
  std::printf("C2 (sum of per-step max sends): %zu (worst round %zu)\n",
              c2.total_delay, c2.max_step_degree);
  std::printf("utilization over time (idle ' ' .. busy '@'):\n[%s]\n",
              core::utilization_strip(schedule, 78).c_str());
  return valid ? 0 : 1;
}
