// partition_explorer: interactively explore the communication/makespan
// trade-off of Section 5.1 — choose a mesh, sweep block sizes across
// partitioners, and see edge cut, C1, C2 and makespan side by side. This is
// the tool you would use to pick a block size for a new mesh before a
// production run.

#include <cstdio>

#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "mesh/mesh_stats.hpp"
#include "mesh/zoo.hpp"
#include "partition/multilevel.hpp"
#include "partition/simple_partitioners.hpp"
#include "sweep/instance.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include "util/main_guard.hpp"

static int run_main(int argc, char** argv) {
  using namespace sweep;
  util::CliParser cli("partition_explorer",
                      "Explore block partitioning trade-offs for a mesh");
  cli.add_option("mesh", "prismtet", "zoo mesh name");
  cli.add_option("scale", "0.4", "mesh scale");
  cli.add_option("m", "32", "number of processors");
  cli.add_option("sn", "4", "S_n order");
  cli.add_option("blocks", "1,8,32,128,512", "block sizes to explore");
  cli.add_option("partitioner", "multilevel",
                 "multilevel | rcb | bfs | random");
  if (!cli.parse(argc, argv)) return 1;

  const auto m = mesh::MeshZoo::by_name(cli.str("mesh"), cli.real("scale"));
  std::printf("%s\n", to_string(mesh::compute_stats(m)).c_str());
  const auto dirs = dag::level_symmetric(static_cast<std::size_t>(cli.integer("sn")));
  const auto instance = dag::build_instance(m, dirs);
  const auto graph = partition::graph_from_mesh(m);
  const auto n_procs = static_cast<std::size_t>(cli.integer("m"));
  const double lb = static_cast<double>(instance.n_tasks()) /
                    static_cast<double>(n_procs);

  auto build_blocks = [&](std::size_t block_size) -> partition::Partition {
    const std::size_t n_blocks =
        (m.n_cells() + block_size - 1) / block_size;
    const std::string which = cli.str("partitioner");
    if (which == "rcb") return partition::coordinate_bisection(m.centroids(), n_blocks);
    if (which == "bfs") return partition::bfs_blocks(graph, block_size);
    if (which == "random") return partition::random_partition(m.n_cells(), n_blocks, 5);
    return partition::partition_into_blocks(graph, block_size);
  };

  util::Table table({"block_size", "blocks", "edge_cut", "imbalance", "C1",
                     "C1_frac", "C2", "makespan", "makespan/LB"});
  for (std::int64_t bs : cli.int_list("blocks")) {
    const auto block_size = static_cast<std::size_t>(bs);
    const auto blocks = build_blocks(block_size);
    const std::size_t n_blocks = partition::count_blocks(blocks);
    util::Rng rng(99);
    const auto assignment = core::block_assignment(blocks, n_procs, rng);
    const auto delays = core::random_delays(instance.n_directions(), rng);
    const auto priorities = core::random_delay_priorities(instance, delays);
    core::ListScheduleOptions options;
    options.priorities = priorities;
    const auto schedule = core::list_schedule(instance, assignment, n_procs, options);
    const auto c1 = core::comm_cost_c1(instance, assignment);
    const auto c2 = core::comm_cost_c2(instance, schedule);
    table.add_row({util::Table::fmt(bs), util::Table::fmt(n_blocks),
                   util::Table::fmt(partition::edge_cut(graph, blocks)),
                   util::Table::fmt(partition::imbalance(graph, blocks, n_blocks), 2),
                   util::Table::fmt(c1.cross_edges),
                   util::Table::fmt(c1.fraction(), 3),
                   util::Table::fmt(c2.total_delay),
                   util::Table::fmt(schedule.makespan()),
                   util::Table::fmt(static_cast<double>(schedule.makespan()) / lb, 2)});
  }
  table.print("Partition exploration (" + cli.str("partitioner") + ", " +
              m.name() + ", m=" + cli.str("m") + ")");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
