// transport_solve: the motivating application end to end.
//
// Solves a single-group, isotropically scattering radiation transport
// problem on an unstructured mesh by source iteration, where every sweep is
// executed in the order produced by a parallel sweep schedule — first with
// the serial order, then with Algorithm 2's schedule — and verifies that the
// two agree bitwise (a feasible schedule changes *when* cells are solved,
// never *what* is computed). Also reports the simulated parallel time:
// makespan plus the C2 communication rounds.

#include <cmath>
#include <cstdio>

#include "core/algorithms.hpp"
#include "core/comm_cost.hpp"
#include "core/lower_bounds.hpp"
#include "mesh/zoo.hpp"
#include "sweep/instance.hpp"
#include "transport/transport.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

#include "util/main_guard.hpp"

static int run_main(int argc, char** argv) {
  using namespace sweep;
  util::CliParser cli("transport_solve",
                      "Source-iteration transport solve driven by a sweep schedule");
  cli.add_option("mesh", "well_logging", "zoo mesh name");
  cli.add_option("scale", "0.4", "mesh scale");
  cli.add_option("m", "32", "number of processors");
  cli.add_option("sn", "4", "S_n order (k = n(n+2))");
  cli.add_option("sigma-t", "2.0", "total cross section");
  cli.add_option("sigma-s", "1.2", "scattering cross section");
  cli.add_option("source", "1.0", "volumetric source");
  if (!cli.parse(argc, argv)) return 1;

  const auto m = mesh::MeshZoo::by_name(cli.str("mesh"), cli.real("scale"));
  const auto dirs = dag::level_symmetric(static_cast<std::size_t>(cli.integer("sn")));
  const auto instance = dag::build_instance(m, dirs);
  std::printf("mesh %s: %zu cells, %zu directions, %zu tasks\n",
              m.name().c_str(), m.n_cells(), dirs.size(), instance.n_tasks());

  transport::TransportOptions topts;
  topts.sigma_t = cli.real("sigma-t");
  topts.sigma_s = cli.real("sigma-s");
  topts.volumetric_source = cli.real("source");

  // Serial reference sweep.
  util::Timer timer;
  const auto serial = transport::solve_transport(
      m, dirs, instance, transport::sequential_order(instance), topts);
  std::printf("serial solve: %zu source iterations, residual %.2e, %.2fs\n",
              serial.iterations, serial.residual, timer.seconds());

  // Parallel schedule (Algorithm 2).
  const auto n_procs = static_cast<std::size_t>(cli.integer("m"));
  util::Rng rng(2024);
  const auto schedule = core::run_algorithm(
      core::Algorithm::kRandomDelayPriorities, instance, n_procs, rng);
  const auto lb = core::compute_lower_bounds(instance, n_procs);
  const auto c2 = core::comm_cost_c2(instance, schedule);
  std::printf("schedule on %zu processors: makespan %zu (lower bound %.0f, "
              "ratio %.2f), C2 comm rounds add %zu\n",
              n_procs, schedule.makespan(), lb.value(),
              core::approximation_ratio(schedule, lb), c2.total_delay);

  timer.reset();
  const auto parallel = transport::solve_transport(
      m, dirs, instance, transport::execution_order(schedule), topts);
  std::printf("schedule-ordered solve: %zu iterations, %.2fs\n",
              parallel.iterations, timer.seconds());

  double max_diff = 0.0;
  double max_flux = 0.0;
  for (std::size_t c = 0; c < m.n_cells(); ++c) {
    max_diff = std::max(max_diff,
                        std::abs(parallel.scalar_flux[c] - serial.scalar_flux[c]));
    max_flux = std::max(max_flux, serial.scalar_flux[c]);
  }
  std::printf("max |phi_parallel - phi_serial| = %.3e (max flux %.4f)\n",
              max_diff, max_flux);
  std::printf("infinite-medium check: interior flux should approach q/sigma_a "
              "= %.4f\n", transport::infinite_medium_flux(topts));

  const bool identical = max_diff == 0.0;
  std::printf("bitwise identical: %s\n", identical ? "yes" : "NO");
  return identical && serial.converged ? 0 : 1;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
