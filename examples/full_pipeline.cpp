// full_pipeline: a production-style study using every extension in the
// library at once:
//
//   1. build a mixed prism+tet mesh and punch a void through it,
//   2. partition into blocks (multilevel) and schedule with Algorithm 2,
//   3. analyze the schedule (idle decomposition, pipeline drain),
//   4. price it on a modeled machine (alpha-beta network),
//   5. run a 3-group transport solve with downscatter, amortizing the one
//      schedule over all group solves, with per-element (weighted) costs
//      reported for comparison.

#include <cstdio>

#include "core/algorithms.hpp"
#include "core/analysis.hpp"
#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/lower_bounds.hpp"
#include "core/schedule_io.hpp"
#include "core/validate.hpp"
#include "core/weighted_scheduler.hpp"
#include "mesh/mesh_stats.hpp"
#include "mesh/submesh.hpp"
#include "mesh/zoo.hpp"
#include "partition/multilevel.hpp"
#include "sim/machine.hpp"
#include "sweep/instance.hpp"
#include "transport/multigroup.hpp"
#include "util/cli.hpp"

#include "util/main_guard.hpp"

static int run_main(int argc, char** argv) {
  using namespace sweep;
  util::CliParser cli("full_pipeline", "End-to-end sweep scheduling study");
  cli.add_option("scale", "0.35", "mesh scale");
  cli.add_option("m", "24", "number of processors");
  if (!cli.parse(argc, argv)) return 1;

  // 1. Geometry: prismtet with a cylindrical void (drill hole).
  const auto solid = mesh::MeshZoo::prismtet_like(cli.real("scale"));
  const auto m = mesh::punch_void(solid, [](const mesh::Vec3& p) {
    const double dx = p.x - 0.5;
    const double dy = p.y - 0.5;
    return dx * dx + dy * dy < 0.02;  // r ~ 0.14 vertical bore
  });
  std::printf("mesh: %s\n", to_string(mesh::compute_stats(m)).c_str());

  const auto dirs = dag::level_symmetric(4);
  const auto instance = dag::build_instance(m, dirs);
  const auto n_procs = static_cast<std::size_t>(cli.integer("m"));

  // 2. Block partition + Algorithm 2.
  const auto graph = partition::graph_from_mesh(m);
  const auto blocks = partition::partition_into_blocks(graph, 24);
  util::Rng rng(7);
  const auto assignment = core::block_assignment(blocks, n_procs, rng);
  const auto schedule = core::run_algorithm(
      core::Algorithm::kRandomDelayPriorities, instance, n_procs, rng,
      assignment);
  const auto valid = core::validate_schedule(instance, schedule);
  if (!valid) {
    std::fprintf(stderr, "invalid schedule: %s\n", valid.error.c_str());
    return 1;
  }
  const auto lb = core::compute_lower_bounds(instance, n_procs);
  std::printf("schedule: makespan %zu, LB %.0f, ratio %.2f\n",
              schedule.makespan(), lb.value(),
              core::approximation_ratio(schedule, lb));

  // 3. Analysis.
  const auto analysis = core::analyze_schedule(instance, schedule);
  std::printf("analysis: %s\n", to_string(analysis).c_str());
  std::printf("utilization: [%s]\n",
              core::utilization_strip(schedule, 70).c_str());

  // 4. Machine pricing.
  sim::MachineModel net;
  net.latency = 0.3;
  net.byte_time = 0.05;
  const auto priced = sim::simulate_execution(instance, schedule, net);
  std::printf("on an alpha=%.2f beta=%.2f machine: %.0f time units "
              "(stretch %.2f, efficiency %.2f, %zu messages)\n",
              net.latency, net.byte_time, priced.completion_time,
              priced.completion_time / static_cast<double>(schedule.makespan()),
              priced.efficiency(n_procs), priced.messages_sent);

  // 5. Weighted cost view (prisms cost 25% more than tets).
  const auto weights = core::face_count_weights(m);
  const auto weighted = core::weighted_list_schedule(
      instance, assignment, n_procs, weights);
  std::printf("weighted (per-element-cost) makespan: %.0f vs weighted LB %.0f\n",
              weighted.makespan,
              core::weighted_lower_bound(instance, n_procs, weights));

  // 6. 3-group transport with downscatter, sweeping in schedule order.
  transport::MultigroupOptions mg;
  mg.sigma_t = {4.0, 2.5, 1.5};
  mg.scatter = {{1.0, 0.0, 0.0},
                {1.5, 0.8, 0.0},
                {0.3, 0.9, 0.6}};
  mg.source = {5.0, 0.0, 0.0};  // fast-group source only
  const auto order = transport::execution_order(schedule);
  const auto solved = transport::solve_multigroup(m, dirs, instance, order, mg);
  std::printf("multigroup solve: %zu total source iterations, converged=%s\n",
              solved.total_iterations, solved.converged ? "yes" : "no");
  for (std::size_t g = 0; g < mg.sigma_t.size(); ++g) {
    double mean = 0.0;
    for (double phi : solved.scalar_flux[g]) mean += phi;
    mean /= static_cast<double>(m.n_cells());
    std::printf("  group %zu mean scalar flux: %.4f\n", g, mean);
  }
  return solved.converged ? 0 : 1;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
