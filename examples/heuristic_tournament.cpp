// heuristic_tournament: run every scheduling algorithm in the library on one
// instance and rank them — the quickest way to see the landscape the paper's
// Section 5.2 explores (and to test your own mesh via --load, see mesh/io).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/algorithms.hpp"
#include "core/comm_cost.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "core/assignment.hpp"
#include "mesh/io.hpp"
#include "mesh/zoo.hpp"
#include "partition/multilevel.hpp"
#include "sweep/instance.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#include "util/main_guard.hpp"

static int run_main(int argc, char** argv) {
  using namespace sweep;
  util::CliParser cli("heuristic_tournament",
                      "Rank all scheduling algorithms on one instance");
  cli.add_option("mesh", "long", "zoo mesh name");
  cli.add_option("load", "", "load a mesh file instead (see mesh/io.hpp)");
  cli.add_option("scale", "0.5", "mesh scale");
  cli.add_option("m", "64", "number of processors");
  cli.add_option("sn", "4", "S_n order");
  cli.add_option("block", "0", "block size (0 = per-cell assignment)");
  cli.add_option("trials", "3", "trials per algorithm");
  if (!cli.parse(argc, argv)) return 1;

  const mesh::UnstructuredMesh m =
      cli.str("load").empty()
          ? mesh::MeshZoo::by_name(cli.str("mesh"), cli.real("scale"))
          : mesh::load_mesh(cli.str("load"));
  const auto dirs = dag::level_symmetric(static_cast<std::size_t>(cli.integer("sn")));
  const auto instance = dag::build_instance(m, dirs);
  const auto n_procs = static_cast<std::size_t>(cli.integer("m"));
  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto lb = core::compute_lower_bounds(instance, n_procs);
  std::printf("%s: %zu cells, k=%zu, m=%zu, LB=%.0f\n", m.name().c_str(),
              m.n_cells(), dirs.size(), n_procs, lb.value());

  // Optional common block partition (as in the paper's Section 5.2 setup).
  partition::Partition blocks;
  if (cli.integer("block") > 0) {
    const auto graph = partition::graph_from_mesh(m);
    blocks = partition::partition_into_blocks(
        graph, static_cast<std::size_t>(cli.integer("block")));
    std::printf("block assignment: %zu blocks of ~%lld cells\n",
                partition::count_blocks(blocks),
                static_cast<long long>(cli.integer("block")));
  }

  struct Row {
    std::string name;
    double makespan;
    double ratio;
    double c1;
    double seconds;
  };
  std::vector<Row> rows;
  for (core::Algorithm algorithm : core::all_algorithms()) {
    double mean_makespan = 0.0;
    double mean_c1 = 0.0;
    util::Timer timer;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      util::Rng rng(7000 + trial);
      core::Assignment assignment;
      if (!blocks.empty()) {
        assignment = core::block_assignment(blocks, n_procs, rng);
      }
      const auto schedule = core::run_algorithm(algorithm, instance, n_procs,
                                                rng, std::move(assignment));
      const auto valid = core::validate_schedule(instance, schedule);
      if (!valid) {
        std::fprintf(stderr, "%s produced an invalid schedule: %s\n",
                     core::algorithm_name(algorithm).c_str(),
                     valid.error.c_str());
        return 1;
      }
      mean_makespan += static_cast<double>(schedule.makespan()) /
                       static_cast<double>(trials);
      mean_c1 += static_cast<double>(
                     core::comm_cost_c1(instance, schedule.assignment())
                         .cross_edges) /
                 static_cast<double>(trials);
    }
    rows.push_back({core::algorithm_name(algorithm), mean_makespan,
                    mean_makespan / lb.value(), mean_c1,
                    timer.seconds() / static_cast<double>(trials)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.makespan < b.makespan; });

  util::Table table({"rank", "algorithm", "makespan", "ratio_to_LB", "C1",
                     "seconds/run"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({util::Table::fmt(i + 1), rows[i].name,
                   util::Table::fmt(rows[i].makespan, 0),
                   util::Table::fmt(rows[i].ratio, 2),
                   util::Table::fmt(rows[i].c1, 0),
                   util::Table::fmt(rows[i].seconds, 3)});
  }
  table.print("Tournament results");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
