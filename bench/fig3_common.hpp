#pragma once
// Shared driver for the Figure 3 panels. Each panel compares the paper's
// "random delays algorithm" (Algorithm 2) against one heuristic without and
// with random delays, all under the SAME block partitioning (the paper fixes
// the block assignment so C1 is identical and only makespans differ).
// Plotted quantity: makespan / (nk/m) approximation ratio, for a grid of
// direction counts and processor counts.

#include "bench_common.hpp"
#include "core/lower_bounds.hpp"

namespace sweep::bench {

struct Fig3Config {
  std::string figure;            ///< e.g. "Figure 3(a)"
  std::string mesh;              ///< default zoo mesh
  std::size_t block_size;        ///< paper's block size for this panel
  core::Algorithm heuristic;     ///< without delays
  core::Algorithm heuristic_delayed;  ///< with delays
  std::string heuristic_label;
};

inline int run_fig3(const Fig3Config& config, int argc, const char* const* argv) {
  util::CliParser cli(config.figure,
                      config.figure + ": random delays vs " +
                          config.heuristic_label +
                          " priorities (ratio to nk/m lower bound)");
  add_common_options(cli);
  cli.add_option("mesh", config.mesh, "zoo mesh name");
  cli.add_option("block", std::to_string(config.block_size),
                 "paper block size (scaled by scale^3 unless --block-absolute)");
  cli.add_flag("block-absolute", "use --block verbatim, without scaling");
  cli.add_option("procs", "32,64,128,256,512", "processor counts");
  cli.add_option("orders", "2,4,6", "S_n orders (k = 8, 24, 48)");
  if (!cli.parse(argc, argv)) return 1;
  configure_jobs(cli);

  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const bool validate = cli.flag("validate");

  util::Table table({"k", "m", "RD+prio/LB",
                     config.heuristic_label + "/LB",
                     config.heuristic_label + "+delays/LB"});
  table.mirror_csv(cli.str("csv"));
  for (std::int64_t order : cli.int_list("orders")) {
    const auto setup =
        make_instance(cli.str("mesh"), resolve_scale(cli),
                      static_cast<std::size_t>(order));
    const auto block_size =
        cli.flag("block-absolute")
            ? static_cast<std::size_t>(cli.integer("block"))
            : scaled_block_size(static_cast<std::size_t>(cli.integer("block")),
                                resolve_scale(cli));
    std::printf("[setup] effective block size %zu (~%zu blocks)\n", block_size,
                (setup.mesh.n_cells() + block_size - 1) / block_size);
    const auto blocks = make_blocks(setup.graph, block_size, seed);
    const std::size_t k = setup.directions.size();
    for (std::int64_t m64 : cli.int_list("procs")) {
      const auto m = static_cast<std::size_t>(m64);
      SWEEP_OBS_SPAN_ARGS("fig3.point", "k", static_cast<std::int64_t>(k),
                          "m", m64);
      const double lb =
          core::compute_lower_bounds(setup.instance, m).value();
      const double rd = mean_makespan(core::Algorithm::kRandomDelayPriorities,
                                      setup.instance, m, trials, seed, &blocks,
                                      validate);
      const double heur = mean_makespan(config.heuristic, setup.instance, m,
                                        trials, seed, &blocks, validate);
      const double heur_delay =
          mean_makespan(config.heuristic_delayed, setup.instance, m, trials,
                        seed, &blocks, validate);
      const TrialSpec quality_specs[] = {
          {core::Algorithm::kRandomDelayPriorities, m, &blocks},
          {config.heuristic, m, &blocks},
          {config.heuristic_delayed, m, &blocks}};
      record_spec_quality(setup.instance, quality_specs, seed);
      table.add_row({util::Table::fmt(static_cast<std::int64_t>(k)),
                     util::Table::fmt(static_cast<std::int64_t>(m)),
                     util::Table::fmt(rd / lb, 2),
                     util::Table::fmt(heur / lb, 2),
                     util::Table::fmt(heur_delay / lb, 2)});
    }
  }
  table.print(config.figure + ": approximation ratios (" + cli.str("mesh") +
              ", block " + cli.str("block") + ")");
  return 0;
}

}  // namespace sweep::bench
