// Kernel-level engine benchmark (DESIGN.md §16): A/Bs the batched SIMD
// decrement kernels (util/simd.hpp) against their forced-scalar fallbacks,
// first in isolation (synthetic resolve batches, ns/id) and then end-to-end
// through the scheduling engines on a prismtet instance at --scale/--order,
// sweeping the engine worker count. Every engine configuration — every
// thread count, SIMD on AND forced scalar — is FNV-1a-checksummed against
// list_schedule_reference; any divergence exits nonzero, so the same binary
// doubles as the bench_kernels_smoke ctest at tiny scale (default,
// tsan-concurrency, and simd-off presets: the third proves the scalar build
// reproduces the same schedules).
//
// Output: --json PATH (default BENCH_engine_kernels.json), schema:
//   { "mesh": ..., "scale": ..., "n_tasks": ..., "hardware_concurrency": ...,
//     "simd": {"detected_level": ..., "active_level": ...},
//     "kernel_micro": [ {"batch": B, "duplication": D,
//                        "scalar_ns_per_id": ..., "simd_ns_per_id": ...,
//                        "speedup": ...}, ... ],
//     "reference": {"seconds_per_run": ..., "tasks_per_sec": ...,
//                   "checksum": "0x..."},
//     "engine": [ {"threads": T,
//                  "simd":   {"seconds_per_run": ..., "tasks_per_sec": ...,
//                             "checksum": "0x...", "identical": true},
//                  "scalar": { same fields }}, ... ],
//     "baseline_jobs8_tasks_per_sec": N,     // --baseline8 (0 = not given)
//     "speedup_vs_baseline_jobs8": X }
// tasks_per_sec is the aggregate rate across all engine workers. Pass the
// regenerated PR-5 sharded baseline's jobs=8 rate via --baseline8 so the
// committed report carries the cross-PR comparison inline.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "util/simd.hpp"

namespace {

using namespace sweep;
using util::simd::Level;

std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}

template <typename T>
std::uint64_t fnv1a(const std::vector<T>& values) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const T& v : values) {
    hash = fnv1a_mix(hash, static_cast<std::uint64_t>(v));
  }
  return hash;
}

/// Times fn() (one schedule run returning a checksum) `reps` times and
/// returns the fastest; every rep's checksum must agree with the first.
template <typename Fn>
double time_runs(std::size_t reps, std::uint64_t& checksum, Fn&& fn) {
  double best = -1.0;
  for (std::size_t r = 0; r < std::max<std::size_t>(reps, 1); ++r) {
    util::Timer timer;
    const std::uint64_t h = fn();
    const double s = timer.seconds();
    if (r == 0) checksum = h;
    if (h != checksum) {
      std::fprintf(stderr, "FATAL: checksum unstable across repetitions\n");
      std::exit(1);
    }
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Micro A/B: the decrement kernel on synthetic resolve batches.

struct MicroRow {
  std::size_t batch = 0;
  std::size_t duplication = 0;  // average occurrences per distinct id
  double scalar_ns_per_id = 0.0;
  double simd_ns_per_id = 0.0;
};

/// One micro measurement: batches of `batch` ids drawn over batch /
/// duplication distinct counters, retired at `level`. Counters are refilled
/// each round so the kernel always runs its full decrement + zero-detect
/// path; reported as ns per id, min over `reps` timed rounds.
double time_kernel(std::size_t batch, std::size_t duplication, Level level,
                   std::size_t reps) {
  const std::size_t n_counters =
      std::max<std::size_t>(batch / std::max<std::size_t>(duplication, 1), 1);
  util::Rng rng(0xD15C);
  std::vector<std::uint32_t> ids(batch);
  std::vector<std::uint32_t> base(n_counters, 0);
  for (auto& id : ids) {
    id = static_cast<std::uint32_t>(rng.next_below(n_counters));
    ++base[id];  // exact multiplicity => every touched counter zero-crosses
  }
  std::size_t n_touched = 0;
  for (const std::uint32_t b : base) n_touched += b > 0 ? 1 : 0;
  std::vector<std::uint32_t> vals(n_counters);
  std::vector<std::uint32_t> out(batch);
  util::simd::BatchScratch scratch;
  util::simd::force_level(level);

  // ~4M retired ids per rep lifts tiny batches above timer resolution.
  const std::size_t rounds = std::max<std::size_t>(1, (1u << 22) / batch);
  double best = -1.0;
  for (std::size_t r = 0; r < std::max<std::size_t>(reps, 1); ++r) {
    double elapsed = 0.0;
    std::size_t retired = 0;
    for (std::size_t round = 0; round < rounds; ++round) {
      vals = base;  // refill outside the timed section
      util::Timer timer;
      const std::size_t zeros = util::simd::decrement_to_zero(
          vals.data(), ids.data(), batch, out.data(), scratch);
      elapsed += timer.seconds();
      retired += batch;
      if (zeros != n_touched) {
        std::fprintf(stderr, "FATAL: kernel missed zero-crossings\n");
        std::exit(1);
      }
    }
    const double ns_per_id = elapsed * 1e9 / static_cast<double>(retired);
    if (best < 0.0 || ns_per_id < best) best = ns_per_id;
  }
  util::simd::force_level(util::simd::detected_level());
  return best;
}

// ---------------------------------------------------------------------------

struct EngineCell {
  double seconds_per_run = 0.0;
  std::uint64_t checksum = 0;
  bool identical = false;
};

struct EngineRow {
  std::size_t threads = 0;
  EngineCell simd;
  EngineCell scalar;
};

std::vector<std::size_t> parse_threads(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto v =
        static_cast<std::size_t>(std::strtoul(item.c_str(), nullptr, 10));
    if (v > 0) out.push_back(v);
  }
  return out;
}

void print_cell(const char* label, std::size_t threads, const EngineCell& c,
                double n_tasks) {
  std::printf("[kernels] threads=%-2zu %-6s %8.3fs  %12.0f tasks/s  %s\n",
              threads, label, c.seconds_per_run,
              n_tasks / c.seconds_per_run,
              c.identical ? "identical" : "MISMATCH");
}

}  // namespace

int main(int argc, const char** argv) {
  util::CliParser cli("engine_kernels",
                      "SIMD vs scalar kernel A/B: micro decrement batches + "
                      "end-to-end engine runs, checksummed against "
                      "list_schedule_reference");
  bench::add_common_options(cli);
  cli.add_option("order", "8", "Sn quadrature order (8 => 80 directions)");
  cli.add_option("procs", "512", "simulated processors m");
  cli.add_option("threads", "1,2,4,8", "engine worker counts to sweep");
  cli.add_option("reps", "3", "timing repetitions per point (fastest wins)");
  cli.add_option("baseline8", "0",
                 "prior sharded baseline tasks/sec at jobs=8 (embedded in "
                 "the report for the cross-PR speedup; 0 = omit)");
  cli.add_flag("skip-micro", "skip the synthetic kernel micro A/B");
  cli.add_option("json", "BENCH_engine_kernels.json", "output report path");
  if (!cli.parse(argc, argv)) return 2;
  bench::configure_jobs(cli);

  const double scale = bench::resolve_scale(cli);
  const auto order = static_cast<std::size_t>(cli.integer("order"));
  const auto m = static_cast<std::size_t>(cli.integer("procs"));
  const auto reps = static_cast<std::size_t>(cli.integer("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const double baseline8 = cli.real("baseline8");
  const std::vector<std::size_t> thread_counts =
      parse_threads(cli.str("threads"));
  if (thread_counts.empty()) {
    std::fprintf(stderr, "FATAL: --threads parsed to an empty sweep\n");
    return 2;
  }

  std::printf("[kernels] simd: detected=%s active=%s\n",
              util::simd::level_name(util::simd::detected_level()),
              util::simd::level_name(util::simd::active_level()));

  // ---- Micro A/B over batch sizes straddling the engines' real resolve
  // batches (a superstep drains up to one batch per shard; tail levels are
  // tiny, bulk levels are tens of thousands of ids).
  std::vector<MicroRow> micro;
  if (!cli.flag("skip-micro")) {
    for (const std::size_t batch : {64u, 512u, 4096u, 32768u}) {
      for (const std::size_t dup : {1u, 4u}) {
        MicroRow row;
        row.batch = batch;
        row.duplication = dup;
        row.scalar_ns_per_id = time_kernel(batch, dup, Level::kScalar, reps);
        row.simd_ns_per_id =
            time_kernel(batch, dup, util::simd::detected_level(), reps);
        micro.push_back(row);
        std::printf(
            "[kernels] micro batch=%-6zu dup=%zu  scalar %6.2f ns/id  "
            "simd %6.2f ns/id  (%.2fx)\n",
            batch, dup, row.scalar_ns_per_id, row.simd_ns_per_id,
            row.simd_ns_per_id > 0.0
                ? row.scalar_ns_per_id / row.simd_ns_per_id
                : 0.0);
      }
    }
  }

  // ---- End-to-end engine A/B.
  const bench::BenchInstance bi =
      bench::make_instance("prismtet", scale, order, seed);
  const dag::SweepInstance& inst = bi.instance;
  (void)inst.task_graph();  // warm the lazy CSR outside every timer
  const double n_tasks = static_cast<double>(inst.n_tasks());

  util::Rng rng(seed);
  const core::Assignment assignment =
      core::random_assignment(inst.n_cells(), m, rng);
  const std::vector<std::int64_t> priorities = core::level_priorities(inst);

  std::uint64_t reference_checksum = 0;
  double reference_seconds = 0.0;
  {
    core::ListScheduleOptions options;
    options.priorities = priorities;
    reference_seconds = time_runs(reps, reference_checksum, [&] {
      return fnv1a(
          core::list_schedule_reference(inst, assignment, m, options)
              .starts());
    });
    std::printf("[kernels] reference          %8.3fs  %12.0f tasks/s\n",
                reference_seconds, n_tasks / reference_seconds);
  }

  std::vector<EngineRow> rows;
  bool all_identical = true;
  for (const std::size_t threads : thread_counts) {
    core::ListScheduleOptions options;
    options.priorities = priorities;
    options.jobs = threads;
    EngineRow row;
    row.threads = threads;

    util::simd::force_level(util::simd::detected_level());
    row.simd.seconds_per_run = time_runs(reps, row.simd.checksum, [&] {
      return fnv1a(list_schedule(inst, assignment, m, options).starts());
    });
    row.simd.identical = row.simd.checksum == reference_checksum;
    print_cell("simd", threads, row.simd, n_tasks);

    util::simd::force_level(Level::kScalar);
    row.scalar.seconds_per_run = time_runs(reps, row.scalar.checksum, [&] {
      return fnv1a(list_schedule(inst, assignment, m, options).starts());
    });
    row.scalar.identical = row.scalar.checksum == reference_checksum;
    util::simd::force_level(util::simd::detected_level());
    print_cell("scalar", threads, row.scalar, n_tasks);

    all_identical =
        all_identical && row.simd.identical && row.scalar.identical;
    rows.push_back(row);
  }

  double jobs8_tasks_per_sec = 0.0;
  for (const EngineRow& r : rows) {
    if (r.threads == 8) jobs8_tasks_per_sec = n_tasks / r.simd.seconds_per_run;
  }

  const std::string path = cli.str("json");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    return 1;
  }
  auto cell_json = [&](const EngineCell& c) {
    std::ostringstream s;
    s << "{\"seconds_per_run\": " << c.seconds_per_run
      << ", \"tasks_per_sec\": "
      << static_cast<std::uint64_t>(n_tasks / c.seconds_per_run)
      << ", \"checksum\": \"0x" << std::hex << c.checksum << std::dec
      << "\", \"identical\": " << (c.identical ? "true" : "false") << "}";
    return s.str();
  };
  out << "{\n"
      << "  \"mesh\": \"prismtet\",\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"n_cells\": " << inst.n_cells() << ",\n"
      << "  \"n_directions\": " << inst.n_directions() << ",\n"
      << "  \"n_tasks\": " << inst.n_tasks() << ",\n"
      << "  \"n_edges\": " << inst.total_edges() << ",\n"
      << "  \"n_processors\": " << m << ",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"simd\": {\"detected_level\": \""
      << util::simd::level_name(util::simd::detected_level())
      << "\", \"active_level\": \""
      << util::simd::level_name(util::simd::active_level()) << "\"},\n"
      << "  \"kernel_micro\": [\n";
  for (std::size_t i = 0; i < micro.size(); ++i) {
    const MicroRow& r = micro[i];
    out << "    {\"batch\": " << r.batch
        << ", \"duplication\": " << r.duplication
        << ", \"scalar_ns_per_id\": " << r.scalar_ns_per_id
        << ", \"simd_ns_per_id\": " << r.simd_ns_per_id << ", \"speedup\": "
        << (r.simd_ns_per_id > 0.0 ? r.scalar_ns_per_id / r.simd_ns_per_id
                                   : 0.0)
        << "}" << (i + 1 < micro.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"reference\": {\"seconds_per_run\": " << reference_seconds
      << ", \"tasks_per_sec\": "
      << static_cast<std::uint64_t>(n_tasks / reference_seconds)
      << ", \"checksum\": \"0x" << std::hex << reference_checksum << std::dec
      << "\"},\n"
      << "  \"engine\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const EngineRow& r = rows[i];
    out << "    {\"threads\": " << r.threads
        << ", \"simd\": " << cell_json(r.simd)
        << ", \"scalar\": " << cell_json(r.scalar) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"baseline_jobs8_tasks_per_sec\": "
      << static_cast<std::uint64_t>(baseline8) << ",\n"
      << "  \"speedup_vs_baseline_jobs8\": "
      << (baseline8 > 0.0 && jobs8_tasks_per_sec > 0.0
              ? jobs8_tasks_per_sec / baseline8
              : 0.0)
      << "\n}\n";
  out.close();
  std::printf("[kernels] wrote %s\n", path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: an engine configuration diverged from the "
                 "reference\n");
    return 1;
  }
  return 0;
}
