// Ablation (Section 5.1, "Partitioning into Blocks"): sweep the block size
// and watch C1 fall while the makespan rises only slightly. Block size 1 is
// the per-cell assignment; larger blocks trade load-balance freedom for
// locality.

#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

static int run_main(int argc, char** argv) {
  util::CliParser cli("ablation_block_size",
                      "Block-size sweep: C1 vs makespan trade-off");
  bench::add_common_options(cli);
  cli.add_option("mesh", "tetonly", "zoo mesh name");
  cli.add_option("m", "64", "processor count");
  cli.add_option("blocks", "1,4,16,64,256,1024", "block sizes to sweep");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const auto setup =
      bench::make_instance(cli.str("mesh"), bench::resolve_scale(cli), 4);
  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto m = static_cast<std::size_t>(cli.integer("m"));
  const double lb = static_cast<double>(setup.instance.n_tasks()) /
                    static_cast<double>(m);

  util::Table table({"block_size", "n_blocks", "edge_cut", "makespan",
                     "makespan/LB", "C1", "C1_fraction", "C2"});
  table.mirror_csv(cli.str("csv"));
  for (std::int64_t bs : cli.int_list("blocks")) {
    const auto block_size = static_cast<std::size_t>(bs);
    SWEEP_OBS_SPAN_ARGS("ablation.block_size.point", "block_size", bs);
    const auto blocks = bench::make_blocks(setup.graph, block_size, seed);
    const auto cut = partition::edge_cut(setup.graph, blocks);

    util::OnlineStats makespan_stats;
    util::OnlineStats c1_stats;
    util::OnlineStats frac_stats;
    util::OnlineStats c2_stats;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      util::Rng rng(seed + trial * 104729);
      const auto assignment = core::block_assignment(blocks, m, rng);
      const auto delays = core::random_delays(setup.instance.n_directions(), rng);
      const auto priorities =
          core::random_delay_priorities(setup.instance, delays);
      core::ListScheduleOptions options;
      options.priorities = priorities;
      const auto schedule =
          core::list_schedule(setup.instance, assignment, m, options);
      const auto c1 = core::comm_cost_c1(setup.instance, assignment);
      const auto c2 = core::comm_cost_c2(setup.instance, schedule);
      bench::record_schedule_quality(setup.instance, schedule);
      makespan_stats.add(static_cast<double>(schedule.makespan()));
      c1_stats.add(static_cast<double>(c1.cross_edges));
      frac_stats.add(c1.fraction());
      c2_stats.add(static_cast<double>(c2.total_delay));
    }
    table.add_row({util::Table::fmt(bs),
                   util::Table::fmt(partition::count_blocks(blocks)),
                   util::Table::fmt(cut),
                   util::Table::fmt(makespan_stats.mean(), 0),
                   util::Table::fmt(makespan_stats.mean() / lb, 2),
                   util::Table::fmt(c1_stats.mean(), 0),
                   util::Table::fmt(frac_stats.mean(), 3),
                   util::Table::fmt(c2_stats.mean(), 0)});
  }
  table.print("Ablation: block size sweep (" + cli.str("mesh") +
              ", m=" + cli.str("m") + ", k=24)");
  std::printf("\nExpected shape: C1 drops steeply with block size; makespan/LB "
              "rises gently until blocks get so large that load balance "
              "collapses.\n");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
