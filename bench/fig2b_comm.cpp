// Figure 2(b): communication costs on mesh `tetonly` with 24 directions.
// C1 = number of interprocessor edges; C2 = "Max Off-Proc-Outdegree" summed
// per round (the paper's label). The paper's observations: per-cell random
// assignment crosses ~ (m-1)/m of all edges; block partitioning slashes C1;
// C2 is much smaller than C1 and barely moves with blocking.

#include "core/comm_cost.hpp"
#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

namespace {

struct CommPoint {
  double c1 = 0.0;
  double c2 = 0.0;
  double fraction = 0.0;
};

CommPoint measure(const dag::SweepInstance& instance, std::size_t m,
                  std::size_t trials, std::uint64_t seed,
                  const partition::Partition* blocks) {
  SWEEP_OBS_SPAN_ARGS("fig2b.measure", "m", static_cast<std::int64_t>(m));
  CommPoint point;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    util::Rng rng(seed + trial * 7919);
    core::Assignment assignment =
        blocks ? core::block_assignment(*blocks, m, rng)
               : core::random_assignment(instance.n_cells(), m, rng);
    const auto c1 = core::comm_cost_c1(instance, assignment);
    // C2 needs a schedule: use Algorithm 2 under this assignment.
    const auto delays = core::random_delays(instance.n_directions(), rng);
    const auto priorities = core::random_delay_priorities(instance, delays);
    core::ListScheduleOptions options;
    options.priorities = priorities;
    const auto schedule = core::list_schedule(instance, assignment, m, options);
    const auto c2 = core::comm_cost_c2(instance, schedule);
    bench::record_schedule_quality(instance, schedule);
    point.c1 += static_cast<double>(c1.cross_edges) / static_cast<double>(trials);
    point.c2 += static_cast<double>(c2.total_delay) / static_cast<double>(trials);
    point.fraction += c1.fraction() / static_cast<double>(trials);
  }
  return point;
}

}  // namespace

static int run_main(int argc, char** argv) {
  util::CliParser cli("fig2b_comm",
                      "Figure 2(b): interprocessor edges (C1) and max "
                      "off-proc outdegree cost (C2) vs processors");
  bench::add_common_options(cli);
  cli.add_option("mesh", "tetonly", "zoo mesh name");
  cli.add_option("procs", "8,16,32,64,128,256,512", "processor counts");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const auto setup =
      bench::make_instance(cli.str("mesh"), bench::resolve_scale(cli), 4);
  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  const auto bs64 = bench::scaled_block_size(64, bench::resolve_scale(cli));
  const auto bs256 = bench::scaled_block_size(256, bench::resolve_scale(cli));
  std::printf("[setup] effective block sizes %zu / %zu\n", bs64, bs256);
  const auto blocks64 = bench::make_blocks(setup.graph, bs64, seed);
  const auto blocks256 = bench::make_blocks(setup.graph, bs256, seed + 1);

  util::Table table({"m", "C1_cell", "frac_cell", "(m-1)/m", "C1_block64",
                     "C1_block256", "C2_cell", "C2_block64", "C2_block256"});
  table.mirror_csv(cli.str("csv"));
  for (std::int64_t m64 : cli.int_list("procs")) {
    const auto m = static_cast<std::size_t>(m64);
    const auto cell = measure(setup.instance, m, trials, seed, nullptr);
    const auto b64 = measure(setup.instance, m, trials, seed, &blocks64);
    const auto b256 = measure(setup.instance, m, trials, seed, &blocks256);
    table.add_row(
        {util::Table::fmt(static_cast<std::int64_t>(m)),
         util::Table::fmt(cell.c1, 0), util::Table::fmt(cell.fraction, 3),
         util::Table::fmt(static_cast<double>(m - 1) / static_cast<double>(m), 3),
         util::Table::fmt(b64.c1, 0), util::Table::fmt(b256.c1, 0),
         util::Table::fmt(cell.c2, 0), util::Table::fmt(b64.c2, 0),
         util::Table::fmt(b256.c2, 0)});
  }
  table.print("Figure 2(b): communication costs vs processors (" +
              cli.str("mesh") + ", k=24)");
  std::printf("\nExpected shape: frac_cell ~ (m-1)/m; blocks cut C1 by a "
              "large factor (more with bigger blocks); C2 << C1 and changes "
              "much less with blocking.\n");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
