// Preprocessing-pipeline throughput report (DESIGN.md §11).
//
// Times every stage of the scheduling preprocessing pipeline — descendant
// priorities, tiled exact descendant counting, multilevel block
// partitioning, and the C1/C2 communication-cost evaluation — against the
// preserved *_reference implementations, on the fig3b workload (tetonly
// mesh, level-symmetric directions, block partition). The priority stage
// replays the figure harness's trial loop: run_fig3 rebuilds descendant
// priorities once per (processor count, trial) point, so the stage times
// --trials consecutive constructions. The reference recomputes the
// transitive closure on every construction (the original behaviour); the
// production path computes it once per direction and serves the remaining
// trials from the instance-level cache. Each stage is also
// checksummed: the parallel paths must be byte-identical to their serial
// references for every --jobs, and the binary exits nonzero on any
// mismatch or if the written JSON is missing a stage, so the bench doubles
// as an integration check (see the bench-pipeline-smoke preset).
//
// Output: --json PATH (default BENCH_pipeline_throughput.json), schema:
//   { "mesh": ..., "scale": ..., "n_cells": ..., "n_directions": ...,
//     "jobs": J, "trials": T,
//     "stages": [ { "name": ..., "in_pipeline": true|false,
//                   "reference_seconds": ..., "serial_seconds": ...,
//                   "parallel_seconds": ..., "speedup_vs_reference": ...,
//                   "checksum": "0x...", "identical": true } , ... ],
//     "end_to_end": { "reference_seconds": ..., "parallel_seconds": ...,
//                     "speedup": ... } }
// end_to_end sums the in_pipeline stages only (the isolated
// exact_descendant_counts stage re-times work already inside
// descendant_priorities).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/comm_cost.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "sweep/descendants.hpp"

namespace {

using namespace sweep;

std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}

template <typename T>
std::uint64_t fnv1a(const std::vector<T>& values) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const T& v : values) hash = fnv1a_mix(hash, static_cast<std::uint64_t>(v));
  return hash;
}

struct StageResult {
  std::string name;
  bool in_pipeline = true;
  double reference_seconds = 0.0;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  std::uint64_t checksum = 0;
  bool identical = false;
};

/// Times `fn` (which returns a checksum) `reps` times; returns the fastest
/// run and writes the checksum of the last run (all runs must agree — the
/// pipeline is deterministic, so any instability would be a bug caught by
/// the identical flags below).
template <typename Fn>
double time_stage(std::size_t reps, std::uint64_t& checksum, Fn&& fn) {
  double best = -1.0;
  for (std::size_t r = 0; r < std::max<std::size_t>(reps, 1); ++r) {
    util::Timer timer;
    checksum = fn();
    const double s = timer.seconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

void print_stage(const StageResult& s) {
  std::printf("[stage] %-26s ref %8.4fs  jobs=1 %8.4fs  jobs=N %8.4fs  "
              "speedup %5.2fx  %s\n",
              s.name.c_str(), s.reference_seconds, s.serial_seconds,
              s.parallel_seconds,
              s.parallel_seconds > 0.0 ? s.reference_seconds / s.parallel_seconds
                                       : 0.0,
              s.identical ? "identical" : "MISMATCH");
}

std::string json_escape_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", v);
  return buffer;
}

bool write_json(const std::string& path, const std::string& mesh_name,
                double scale, const dag::SweepInstance& inst, std::size_t jobs,
                std::size_t trials, const std::vector<StageResult>& stages) {
  double ref_total = 0.0;
  double par_total = 0.0;
  for (const StageResult& s : stages) {
    if (!s.in_pipeline) continue;
    ref_total += s.reference_seconds;
    par_total += s.parallel_seconds;
  }
  std::ostringstream out;
  out << "{\n"
      << "  \"mesh\": \"" << mesh_name << "\",\n"
      << "  \"scale\": " << json_escape_double(scale) << ",\n"
      << "  \"n_cells\": " << inst.n_cells() << ",\n"
      << "  \"n_directions\": " << inst.n_directions() << ",\n"
      << "  \"n_tasks\": " << inst.n_tasks() << ",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"trials\": " << trials << ",\n"
      << "  \"stages\": [\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageResult& s = stages[i];
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "0x%016llx",
                  static_cast<unsigned long long>(s.checksum));
    out << "    {\"name\": \"" << s.name << "\", \"in_pipeline\": "
        << (s.in_pipeline ? "true" : "false")
        << ", \"reference_seconds\": " << json_escape_double(s.reference_seconds)
        << ", \"serial_seconds\": " << json_escape_double(s.serial_seconds)
        << ", \"parallel_seconds\": " << json_escape_double(s.parallel_seconds)
        << ", \"speedup_vs_reference\": "
        << json_escape_double(s.parallel_seconds > 0.0
                                  ? s.reference_seconds / s.parallel_seconds
                                  : 0.0)
        << ", \"checksum\": \"" << checksum << "\""
        << ", \"identical\": " << (s.identical ? "true" : "false") << "}"
        << (i + 1 < stages.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"end_to_end\": {\"reference_seconds\": "
      << json_escape_double(ref_total)
      << ", \"parallel_seconds\": " << json_escape_double(par_total)
      << ", \"speedup\": "
      << json_escape_double(par_total > 0.0 ? ref_total / par_total : 0.0)
      << "}\n"
      << "}\n";
  std::ofstream file(path);
  if (!file) return false;
  file << out.str();
  return static_cast<bool>(file.flush());
}

/// Re-reads the written JSON and verifies every expected stage is present
/// and no stage reported a mismatch — the smoke preset relies on this.
bool validate_json(const std::string& path,
                   const std::vector<StageResult>& stages) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "FATAL: cannot re-read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  bool ok = true;
  for (const StageResult& s : stages) {
    if (text.find("\"name\": \"" + s.name + "\"") == std::string::npos) {
      std::fprintf(stderr, "FATAL: stage '%s' missing from %s\n",
                   s.name.c_str(), path.c_str());
      ok = false;
    }
  }
  if (text.find("\"identical\": false") != std::string::npos) {
    std::fprintf(stderr, "FATAL: %s records a checksum mismatch\n",
                 path.c_str());
    ok = false;
  }
  if (text.find("\"end_to_end\"") == std::string::npos) {
    std::fprintf(stderr, "FATAL: end_to_end summary missing from %s\n",
                 path.c_str());
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, const char** argv) {
  util::CliParser cli("pipeline_throughput",
                      "preprocessing pipeline throughput vs reference paths");
  bench::add_common_options(cli);
  cli.add_option("order", "4", "Sn quadrature order (fig3 uses 2/4/6)");
  cli.add_option("procs", "64", "processors for the C1/C2 evaluation");
  cli.add_option("block", "256", "paper block size (scaled by scale^3)");
  cli.add_option("reps", "3", "timing repetitions per stage (fastest wins)");
  cli.add_option("trials", "15",
                 "priority constructions per rep, matching run_fig3's 5 "
                 "processor counts x 3 trials at one order");
  cli.add_option("json", "BENCH_pipeline_throughput.json",
                 "output report path");
  if (!cli.parse(argc, argv)) return 2;
  bench::configure_jobs(cli);

  const double scale = bench::resolve_scale(cli);
  const auto order = static_cast<std::size_t>(cli.integer("order"));
  const auto m = static_cast<std::size_t>(cli.integer("procs"));
  const auto reps = static_cast<std::size_t>(cli.integer("reps"));
  const auto trials =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.integer("trials")));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const std::size_t jobs = bench::trial_jobs();
  const std::string mesh_name = "tetonly";

  const bench::BenchInstance bi = bench::make_instance(mesh_name, scale, order, seed);
  const dag::SweepInstance& inst = bi.instance;
  (void)inst.task_graph();  // warm the lazy cache outside the timed stages
  const std::size_t block_size = bench::scaled_block_size(
      static_cast<std::size_t>(cli.integer("block")), scale);

  std::vector<StageResult> stages;

  // Stage 1: descendant priorities over the fig3b trial loop — one
  // construction per (processor count, trial) point, each trial with its
  // own seed, exactly as run_fig3 replays them. The production runs use a
  // fresh instance copy per rep (copies start with cold caches, and the
  // copy itself is outside the timer) so the first trial pays the full
  // transitive closure and the remaining trials hit the cache, matching
  // what a real figure run experiences.
  {
    StageResult s;
    s.name = "descendant_priorities";
    auto run_trials = [&](const dag::SweepInstance& instance, auto&& one) {
      std::uint64_t hash = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        util::Rng rng(seed + 1000003 * t);  // per-trial stream
        hash ^= fnv1a(one(instance, rng));
      }
      return hash;
    };
    std::uint64_t ref_sum = 0;
    s.reference_seconds = time_stage(reps, ref_sum, [&] {
      return run_trials(inst, [&](const dag::SweepInstance& instance,
                                  util::Rng& rng) {
        return core::descendant_priorities_reference(instance, rng);
      });
    });
    auto timed_production = [&](std::size_t j, std::uint64_t& out_sum) {
      double best = -1.0;
      for (std::size_t r = 0; r < std::max<std::size_t>(reps, 1); ++r) {
        const dag::SweepInstance fresh(inst);  // cold caches, untimed copy
        util::Timer timer;
        out_sum = run_trials(fresh, [&](const dag::SweepInstance& instance,
                                        util::Rng& rng) {
          return core::descendant_priorities(instance, rng, j);
        });
        const double sec = timer.seconds();
        if (best < 0.0 || sec < best) best = sec;
      }
      return best;
    };
    std::uint64_t serial_sum = 0;
    s.serial_seconds = timed_production(1, serial_sum);
    s.parallel_seconds = timed_production(jobs, s.checksum);
    s.identical = ref_sum == serial_sum && serial_sum == s.checksum;
    stages.push_back(s);
    print_stage(s);
  }

  // Stage 2 (isolated): tiled exact descendant counting across all
  // directions — the kernel inside stage 1, re-timed alone so the tiling
  // win is visible separately from the RNG/fill work.
  {
    StageResult s;
    s.name = "exact_descendant_counts";
    s.in_pipeline = false;
    std::uint64_t ref_sum = 0;
    s.reference_seconds = time_stage(reps, ref_sum, [&] {
      std::uint64_t hash = 0;
      for (std::size_t i = 0; i < inst.n_directions(); ++i) {
        hash ^= fnv1a(dag::exact_descendant_counts_reference(inst.dag(i)));
      }
      return hash;
    });
    s.serial_seconds = time_stage(reps, s.checksum, [&] {
      std::uint64_t hash = 0;
      for (std::size_t i = 0; i < inst.n_directions(); ++i) {
        hash ^= fnv1a(dag::exact_descendant_counts(inst.dag(i)));
      }
      return hash;
    });
    s.parallel_seconds = s.serial_seconds;  // the kernel itself is serial
    s.identical = ref_sum == s.checksum;
    stages.push_back(s);
    print_stage(s);
  }

  // Stage 3: multilevel block partitioning (pool-task bisection branches).
  partition::Partition blocks;
  {
    StageResult s;
    s.name = "multilevel_partition";
    partition::MultilevelOptions options;
    options.seed = seed;
    options.n_parts = std::max<std::size_t>(
        1, (bi.graph.n_vertices() + block_size - 1) / block_size);
    std::uint64_t ref_sum = 0;
    s.reference_seconds = time_stage(reps, ref_sum, [&] {
      return fnv1a(partition::multilevel_partition_reference(bi.graph, options));
    });
    std::uint64_t serial_sum = 0;
    s.serial_seconds = time_stage(reps, serial_sum, [&] {
      partition::MultilevelOptions o = options;
      o.jobs = 1;
      return fnv1a(partition::multilevel_partition(bi.graph, o));
    });
    s.parallel_seconds = time_stage(reps, s.checksum, [&] {
      partition::MultilevelOptions o = options;
      o.jobs = jobs;
      blocks = partition::multilevel_partition(bi.graph, o);
      return fnv1a(blocks);
    });
    s.identical = ref_sum == serial_sum && serial_sum == s.checksum;
    stages.push_back(s);
    print_stage(s);
  }

  // Assignment + schedule for the cost stages (not timed: scheduling
  // throughput has its own report, BENCH_schedule_throughput.json).
  util::Rng assign_rng(seed + 1);
  const core::Assignment assignment =
      core::block_assignment(blocks, m, assign_rng);
  core::ListScheduleOptions ls_options;
  util::Rng prio_rng(seed + 2);
  const auto priorities = core::descendant_priorities(inst, prio_rng, jobs);
  ls_options.priorities = priorities;
  const core::Schedule schedule =
      core::list_schedule(inst, assignment, m, ls_options);

  // Stage 4: C1 (parallel over directions).
  {
    StageResult s;
    s.name = "comm_cost_c1";
    std::uint64_t ref_sum = 0;
    s.reference_seconds = time_stage(reps, ref_sum, [&] {
      return core::comm_cost_c1_reference(inst, assignment).cross_edges;
    });
    std::uint64_t serial_sum = 0;
    s.serial_seconds = time_stage(reps, serial_sum, [&] {
      return core::comm_cost_c1(inst, assignment, 1).cross_edges;
    });
    s.parallel_seconds = time_stage(reps, s.checksum, [&] {
      return core::comm_cost_c1(inst, assignment, jobs).cross_edges;
    });
    s.identical = ref_sum == serial_sum && serial_sum == s.checksum;
    stages.push_back(s);
    print_stage(s);
  }

  // Stage 5: C2 (flat sort-based accumulation vs the map reference).
  {
    StageResult s;
    s.name = "comm_cost_c2";
    auto pack = [](const core::C2Cost& c) {
      std::uint64_t hash = fnv1a_mix(14695981039346656037ull, c.total_delay);
      hash = fnv1a_mix(hash, c.max_step_degree);
      return fnv1a_mix(hash, c.busy_steps);
    };
    std::uint64_t ref_sum = 0;
    s.reference_seconds = time_stage(reps, ref_sum, [&] {
      return pack(core::comm_cost_c2_reference(inst, schedule));
    });
    s.serial_seconds = time_stage(reps, s.checksum, [&] {
      return pack(core::comm_cost_c2(inst, schedule));
    });
    s.parallel_seconds = s.serial_seconds;  // C2 accumulation is serial
    s.identical = ref_sum == s.checksum;
    stages.push_back(s);
    print_stage(s);
  }

  const std::string path = cli.str("json");
  if (!write_json(path, mesh_name, scale, inst, jobs, trials, stages)) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("[json] report written to %s\n", path.c_str());

  bool ok = validate_json(path, stages);
  for (const StageResult& s : stages) ok = ok && s.identical;
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: pipeline output diverges from the serial reference\n");
    return 1;
  }
  double ref_total = 0.0;
  double par_total = 0.0;
  for (const StageResult& s : stages) {
    if (!s.in_pipeline) continue;
    ref_total += s.reference_seconds;
    par_total += s.parallel_seconds;
  }
  std::printf("[total] end-to-end: reference %.4fs, pipeline %.4fs "
              "(%.2fx), all stages byte-identical\n",
              ref_total, par_total,
              par_total > 0.0 ? ref_total / par_total : 0.0);
  return 0;
}
