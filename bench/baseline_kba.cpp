// Baseline comparison on KBA's home turf (paper Related Work: "When the
// mesh is very regular, the KBA algorithm [6] is known to be essentially
// optimal"): a structured grid, KBA column assignment + octant-pipelined
// wavefronts vs the randomized algorithms, over a processor sweep. On the
// regular mesh KBA should win or tie; the unstructured zoo meshes are where
// the paper's algorithms earn their keep.

#include "core/comm_cost.hpp"
#include "core/kba.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "mesh/structured.hpp"
#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

static int run_main(int argc, char** argv) {
  util::CliParser cli("baseline_kba",
                      "KBA vs randomized algorithms on a regular grid");
  bench::add_common_options(cli);
  cli.add_option("nx", "24", "grid cells per side (nx = ny = nz)");
  cli.add_option("procs", "4,16,64", "processor counts (KBA grid factors)");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const double scale = bench::resolve_scale(cli);
  const auto side = std::max<std::size_t>(
      4, static_cast<std::size_t>(static_cast<double>(cli.integer("nx")) *
                                  scale * 2.0));
  const mesh::StructuredDims dims{side, side, side};
  const auto grid = mesh::make_structured_grid(dims);
  const auto dirs = dag::level_symmetric(4);
  const auto instance = dag::build_instance(grid, dirs);
  std::printf("[setup] structured %zu^3 grid: %zu cells, k=%zu, %zu tasks\n",
              side, grid.n_cells(), dirs.size(), instance.n_tasks());

  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"m", "LB", "KBA", "KBA/LB", "RD+prio", "RD+prio/LB",
                     "KBA_C1", "RDprio_C1"});
  table.mirror_csv(cli.str("csv"));
  for (std::int64_t m64 : cli.int_list("procs")) {
    const auto m = static_cast<std::size_t>(m64);
    const auto [px, py] = core::kba_processor_grid(m);
    if (px > dims.nx || py > dims.ny) {
      std::printf("skipping m=%zu (grid too small for %zux%zu columns)\n", m,
                  px, py);
      continue;
    }
    const double lb = core::compute_lower_bounds(instance, m).value();

    const auto kba = core::kba_schedule(instance, dirs, dims, px, py);
    const auto kba_valid = core::validate_schedule(instance, kba);
    if (!kba_valid) {
      std::fprintf(stderr, "KBA invalid: %s\n", kba_valid.error.c_str());
      return 1;
    }
    const auto kba_c1 = core::comm_cost_c1(instance, kba.assignment());

    util::OnlineStats rd_stats;
    util::OnlineStats rd_c1_stats;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      util::Rng rng(seed + trial * 7919);
      const auto schedule = core::run_algorithm(
          core::Algorithm::kRandomDelayPriorities, instance, m, rng);
      rd_stats.add(static_cast<double>(schedule.makespan()));
      rd_c1_stats.add(static_cast<double>(
          core::comm_cost_c1(instance, schedule.assignment()).cross_edges));
    }

    table.add_row({util::Table::fmt(m64), util::Table::fmt(lb, 0),
                   util::Table::fmt(kba.makespan()),
                   util::Table::fmt(static_cast<double>(kba.makespan()) / lb, 2),
                   util::Table::fmt(rd_stats.mean(), 0),
                   util::Table::fmt(rd_stats.mean() / lb, 2),
                   util::Table::fmt(kba_c1.cross_edges),
                   util::Table::fmt(rd_c1_stats.mean(), 0)});
  }
  table.print("Baseline: KBA vs Random Delays with Priorities (regular grid)");
  std::printf("\nExpected shape: both stay within a small factor of the "
              "lower bound on makespan (KBA pays octant pipeline fill/drain), "
              "but KBA's column assignment cuts C1 by an order of magnitude "
              "versus random assignment — communication locality is what "
              "makes KBA 'essentially optimal' on regular meshes (Related "
              "Work [6]); on unstructured meshes no such columns exist, "
              "which is the gap the paper's algorithms fill.\n");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
