// Ablation: non-uniform task costs. The paper assumes unit task times; real
// mixed-element meshes (prismtet!) have per-cell costs that differ by element
// type. This harness runs the weighted event-driven engine with
// face-count-proportional cell costs on the mixed prism+tet mesh and checks
// that the paper's qualitative conclusions (priorities ~ small constant of
// the weighted lower bound) survive heterogeneity.

#include "core/assignment.hpp"
#include "core/priorities.hpp"
#include "core/weighted_scheduler.hpp"
#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

static int run_main(int argc, char** argv) {
  util::CliParser cli("ablation_weighted",
                      "Weighted (per-element-cost) sweep scheduling");
  bench::add_common_options(cli);
  cli.add_option("mesh", "prismtet", "zoo mesh name (prismtet is mixed-type)");
  cli.add_option("procs", "8,32,128", "processor counts");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const auto setup =
      bench::make_instance(cli.str("mesh"), bench::resolve_scale(cli), 4);
  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto weights = core::face_count_weights(setup.mesh);
  {
    util::OnlineStats ws;
    for (double w : weights) ws.add(w);
    std::printf("[setup] cell weights: min %.2f max %.2f mean %.3f\n",
                ws.min(), ws.max(), ws.mean());
  }

  util::Table table({"m", "weighted_LB", "level_prio", "rd_prio",
                     "level/LB", "rd/LB"});
  table.mirror_csv(cli.str("csv"));
  for (std::int64_t m64 : cli.int_list("procs")) {
    const auto m = static_cast<std::size_t>(m64);
    const double lb = core::weighted_lower_bound(setup.instance, m, weights);
    util::OnlineStats level_stats;
    util::OnlineStats rd_stats;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      util::Rng rng(seed + trial * 2741);
      const auto assignment =
          core::random_assignment(setup.mesh.n_cells(), m, rng);
      {
        const auto priorities = core::level_priorities(setup.instance);
        core::WeightedScheduleOptions options;
        options.priorities = priorities;
        level_stats.add(core::weighted_list_schedule(setup.instance, assignment,
                                                     m, weights, options)
                            .makespan);
      }
      {
        const auto delays =
            core::random_delays(setup.instance.n_directions(), rng);
        const auto priorities =
            core::random_delay_priorities(setup.instance, delays);
        core::WeightedScheduleOptions options;
        options.priorities = priorities;
        rd_stats.add(core::weighted_list_schedule(setup.instance, assignment,
                                                  m, weights, options)
                         .makespan);
      }
    }
    table.add_row({util::Table::fmt(m64), util::Table::fmt(lb, 0),
                   util::Table::fmt(level_stats.mean(), 0),
                   util::Table::fmt(rd_stats.mean(), 0),
                   util::Table::fmt(level_stats.mean() / lb, 2),
                   util::Table::fmt(rd_stats.mean() / lb, 2)});
  }
  table.print("Ablation: weighted tasks on " + cli.str("mesh"));
  std::printf("\nExpected shape: ratios to the weighted lower bound stay in "
              "the same small-constant band as the unit-cost experiments — "
              "the randomized approach is insensitive to moderate task-cost "
              "heterogeneity.\n");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
