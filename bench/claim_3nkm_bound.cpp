// Headline empirical claim (Section 2, observation 3): "For all the real
// mesh instances we tried, with varying number of directions, block size and
// processors, the length of our schedule was always at most 3nk/m" — which
// implies linear speedup up to 128 processors and beyond.
//
// This harness sweeps all four zoo meshes x direction counts x processor
// counts x {per-cell, block} assignments with Algorithm 2 and reports the
// worst observed makespan/(nk/m); exit status is nonzero if the 3x bound is
// ever violated.

#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

static int run_main(int argc, char** argv) {
  util::CliParser cli("claim_3nkm_bound",
                      "Verify makespan <= 3nk/m across the full grid");
  bench::add_common_options(cli);
  cli.add_option("procs", "2,8,32,128,512", "processor counts");
  cli.add_option("orders", "2,4", "S_n orders");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const bool validate = cli.flag("validate");

  util::Table table({"mesh", "k", "m", "assignment", "makespan", "nk/m",
                     "ratio"});
  table.mirror_csv(cli.str("csv"));
  double worst = 0.0;
  std::string worst_where;
  std::size_t violations = 0;  // ratio > 3 while the load term dominates
  for (const std::string& mesh_name : mesh::MeshZoo::names()) {
    for (std::int64_t order : cli.int_list("orders")) {
      const auto setup = bench::make_instance(
          mesh_name, bench::resolve_scale(cli), static_cast<std::size_t>(order));
      const auto block_size =
          bench::scaled_block_size(64, bench::resolve_scale(cli));
      const auto blocks = bench::make_blocks(setup.graph, block_size, seed);
      const auto n_blocks =
          static_cast<double>(partition::count_blocks(blocks));
      const auto depth = static_cast<double>(setup.instance.max_depth());
      for (std::int64_t m64 : cli.int_list("procs")) {
        const auto m = static_cast<std::size_t>(m64);
        const double avg_load = static_cast<double>(setup.instance.n_tasks()) /
                                static_cast<double>(m);
        for (const bool use_blocks : {false, true}) {
          const double makespan = bench::mean_makespan(
              core::Algorithm::kRandomDelayPriorities, setup.instance, m,
              trials, seed, use_blocks ? &blocks : nullptr, validate);
          const double ratio = makespan / avg_load;
          // The paper's 3x claim is observed in its regime: meshes of 31k+
          // cells on up to ~500 processors, i.e. n/m >= ~60 (= 31481/512)
          // and the average load comfortably above the critical path. Flag
          // violations only inside that regime (n >= 32m and nk/m >= 2D);
          // outside it granularity/imbalance effects legitimately push the
          // ratio up.
          // Block assignments additionally need several blocks per
          // processor, else the random block->processor map is imbalanced
          // by construction (e.g. 508 blocks on 512 processors).
          const bool paper_regime =
              static_cast<double>(setup.instance.n_cells()) >=
                  32.0 * static_cast<double>(m) &&
              avg_load >= 2.0 * depth &&
              (!use_blocks || n_blocks >= 4.0 * static_cast<double>(m));
          if (ratio > 3.0 && paper_regime) ++violations;
          if (ratio > worst) {
            worst = ratio;
            worst_where = mesh_name + " k=" +
                          std::to_string(setup.directions.size()) +
                          " m=" + std::to_string(m) +
                          (use_blocks ? " blocks" : " cells");
          }
          table.add_row({mesh_name,
                         util::Table::fmt(static_cast<std::int64_t>(
                             setup.directions.size())),
                         util::Table::fmt(static_cast<std::int64_t>(m)),
                         use_blocks ? "block64" : "per-cell",
                         util::Table::fmt(makespan, 0),
                         util::Table::fmt(avg_load, 0),
                         util::Table::fmt(ratio, 2)});
        }
      }
    }
  }
  table.print("Claim: makespan <= 3 nk/m everywhere");
  std::printf("\nWorst ratio observed: %.2f at %s (paper: always <= 3; note "
              "that when m is large enough that nk/m drops below the DAG "
              "depth D, the bound nk/m is no longer the binding one)\n",
              worst, worst_where.c_str());
  std::printf("Violations of 3nk/m in the load-dominated regime: %zu\n",
              violations);
  return violations == 0 ? 0 : 2;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
