// Ablation: end-to-end simulated execution time on a modeled machine
// (alpha-beta network, overlappable sends). The paper measures C1 and C2 as
// proxies because "in reality, interprocessor communication will increase
// the time ... in a way that is hard to model"; this harness runs the
// discrete-event machine simulator on the same schedules and shows where
// between the two extremes various networks land — and that block
// partitioning pays off precisely when the network (not the CPU) is the
// bottleneck.

#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "sim/machine.hpp"
#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

static int run_main(int argc, char** argv) {
  util::CliParser cli("ablation_machine_sim",
                      "Simulated wall-clock on alpha-beta machines");
  bench::add_common_options(cli);
  cli.add_option("mesh", "tetonly", "zoo mesh name");
  cli.add_option("m", "32", "processor count");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const auto setup =
      bench::make_instance(cli.str("mesh"), bench::resolve_scale(cli), 4);
  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto m = static_cast<std::size_t>(cli.integer("m"));
  const auto block_size =
      bench::scaled_block_size(64, bench::resolve_scale(cli));
  const auto blocks = bench::make_blocks(setup.graph, block_size, seed);

  struct Network {
    const char* name;
    sim::MachineModel model;
  };
  std::vector<Network> networks;
  networks.push_back({"free", {1.0, 0.0, 0.0, 4}});
  networks.push_back({"latency-bound", {1.0, 2.0, 0.01, 4}});
  networks.push_back({"bandwidth-bound", {1.0, 0.1, 1.0, 4}});
  networks.push_back({"sync-sends", {1.0, 0.5, 0.2, 0}});

  util::Table table({"network", "assignment", "makespan", "sim_time",
                     "stretch", "efficiency", "messages"});
  table.mirror_csv(cli.str("csv"));
  for (const auto& network : networks) {
    for (const bool use_blocks : {false, true}) {
      util::OnlineStats makespan_stats;
      util::OnlineStats time_stats;
      util::OnlineStats eff_stats;
      util::OnlineStats msg_stats;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        util::Rng rng(seed + trial * 48611);
        core::Assignment assignment;
        if (use_blocks) assignment = core::block_assignment(blocks, m, rng);
        const auto schedule =
            core::run_algorithm(core::Algorithm::kRandomDelayPriorities,
                                setup.instance, m, rng, std::move(assignment));
        const auto sim = sim::simulate_execution(setup.instance, schedule,
                                                 network.model);
        makespan_stats.add(static_cast<double>(schedule.makespan()));
        time_stats.add(sim.completion_time);
        eff_stats.add(sim.efficiency(m));
        msg_stats.add(static_cast<double>(sim.messages_sent));
      }
      table.add_row({network.name, use_blocks ? "block64" : "per-cell",
                     util::Table::fmt(makespan_stats.mean(), 0),
                     util::Table::fmt(time_stats.mean(), 0),
                     util::Table::fmt(time_stats.mean() / makespan_stats.mean(), 2),
                     util::Table::fmt(eff_stats.mean(), 2),
                     util::Table::fmt(msg_stats.mean(), 0)});
    }
  }
  table.print("Ablation: simulated machine execution (" + cli.str("mesh") +
              ", m=" + cli.str("m") + ")");
  std::printf("\nExpected shape: 'free' sim_time == makespan; latency-bound "
              "networks stretch both assignments mildly (list scheduling "
              "hides latency); bandwidth-bound and sync-send networks punish "
              "the per-cell assignment's ~(m-1)/m message volume, and the "
              "block assignment wins end-to-end — the paper's reason for "
              "partitioning.\n");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
