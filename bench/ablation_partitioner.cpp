// Ablation: how much does the partitioner quality matter? Compares the
// multilevel partitioner (METIS substitute) against random blocks, BFS
// blocks and recursive coordinate bisection at equal block counts, measuring
// edge cut, C1 after block->processor mapping, and resulting makespan.

#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "partition/simple_partitioners.hpp"
#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

static int run_main(int argc, char** argv) {
  util::CliParser cli("ablation_partitioner",
                      "Partitioner quality ablation at fixed block count");
  bench::add_common_options(cli);
  cli.add_option("mesh", "tetonly", "zoo mesh name");
  cli.add_option("m", "64", "processor count");
  cli.add_option("block", "64", "block size");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const auto setup =
      bench::make_instance(cli.str("mesh"), bench::resolve_scale(cli), 4);
  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto m = static_cast<std::size_t>(cli.integer("m"));
  const auto block_size = static_cast<std::size_t>(cli.integer("block"));
  const std::size_t n_blocks =
      (setup.mesh.n_cells() + block_size - 1) / block_size;

  struct Candidate {
    std::string name;
    partition::Partition blocks;
    double build_seconds;
  };
  std::vector<Candidate> candidates;
  SWEEP_OBS_SPAN("ablation.partitioner.build_candidates");
  {
    util::Timer t;
    auto blocks = bench::make_blocks(setup.graph, block_size, seed);
    candidates.push_back({"multilevel", std::move(blocks), t.seconds()});
  }
  {
    util::Timer t;
    auto blocks = partition::coordinate_bisection(setup.mesh.centroids(), n_blocks);
    candidates.push_back({"rcb", std::move(blocks), t.seconds()});
  }
  {
    util::Timer t;
    auto blocks = partition::bfs_blocks(setup.graph, block_size);
    candidates.push_back({"bfs", std::move(blocks), t.seconds()});
  }
  {
    util::Timer t;
    auto blocks = partition::random_partition(setup.mesh.n_cells(), n_blocks, seed);
    candidates.push_back({"random", std::move(blocks), t.seconds()});
  }

  util::Table table({"partitioner", "blocks", "edge_cut", "C1", "makespan",
                     "makespan/LB", "build_s"});
  table.mirror_csv(cli.str("csv"));
  const double lb = static_cast<double>(setup.instance.n_tasks()) /
                    static_cast<double>(m);
  for (const auto& candidate : candidates) {
    util::OnlineStats makespan_stats;
    util::OnlineStats c1_stats;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      util::Rng rng(seed + trial * 31337);
      const auto assignment = core::block_assignment(candidate.blocks, m, rng);
      const auto delays = core::random_delays(setup.instance.n_directions(), rng);
      const auto priorities =
          core::random_delay_priorities(setup.instance, delays);
      core::ListScheduleOptions options;
      options.priorities = priorities;
      const auto schedule =
          core::list_schedule(setup.instance, assignment, m, options);
      makespan_stats.add(static_cast<double>(schedule.makespan()));
      c1_stats.add(static_cast<double>(
          core::comm_cost_c1(setup.instance, assignment).cross_edges));
    }
    table.add_row({candidate.name,
                   util::Table::fmt(partition::count_blocks(candidate.blocks)),
                   util::Table::fmt(partition::edge_cut(setup.graph,
                                                        candidate.blocks)),
                   util::Table::fmt(c1_stats.mean(), 0),
                   util::Table::fmt(makespan_stats.mean(), 0),
                   util::Table::fmt(makespan_stats.mean() / lb, 2),
                   util::Table::fmt(candidate.build_seconds, 3)});
  }
  table.print("Ablation: partitioner quality (" + cli.str("mesh") + ", m=" +
              cli.str("m") + ", block " + cli.str("block") + ")");
  std::printf("\nExpected shape: multilevel <= rcb < bfs << random on edge "
              "cut and C1; makespans stay comparable (C1 is the quantity the "
              "partitioner buys).\n");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
