// Google-benchmark microbenchmarks for the performance-critical kernels:
// mesh generation, DAG induction, level computation, the list-scheduling
// engine, Algorithm 1's layered construction, and the multilevel
// partitioner. These back the paper's remark that the algorithms run in
// near-linear time in the schedule length.

#include <benchmark/benchmark.h>

#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "core/random_delay.hpp"
#include "mesh/zoo.hpp"
#include "partition/multilevel.hpp"
#include "sweep/dag_builder.hpp"
#include "sweep/instance.hpp"
#include "util/rng.hpp"

namespace {

using namespace sweep;

const mesh::UnstructuredMesh& bench_mesh() {
  static const mesh::UnstructuredMesh m = mesh::MeshZoo::tetonly_like(0.5);
  return m;
}

const dag::SweepInstance& bench_instance() {
  static const dag::SweepInstance inst =
      dag::build_instance(bench_mesh(), dag::level_symmetric(4));
  return inst;
}

void BM_MeshGeneration(benchmark::State& state) {
  for (auto _ : state) {
    const auto m = mesh::MeshZoo::tetonly_like(
        0.1 * static_cast<double>(state.range(0)));
    benchmark::DoNotOptimize(m.n_cells());
  }
}
BENCHMARK(BM_MeshGeneration)->Arg(2)->Arg(4)->Arg(6);

void BM_DagInduction(benchmark::State& state) {
  const auto& m = bench_mesh();
  const mesh::Vec3 dir = mesh::normalized({0.5, 0.3, 0.8});
  for (auto _ : state) {
    auto result = dag::build_sweep_dag(m, dir);
    benchmark::DoNotOptimize(result.dag.n_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.n_cells()));
}
BENCHMARK(BM_DagInduction);

void BM_Levels(benchmark::State& state) {
  const auto& inst = bench_instance();
  for (auto _ : state) {
    auto levels = inst.dag(0).levels();
    benchmark::DoNotOptimize(levels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n_cells()));
}
BENCHMARK(BM_Levels);

void BM_ListScheduler(benchmark::State& state) {
  const auto& inst = bench_instance();
  const auto m = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const auto assignment = core::random_assignment(inst.n_cells(), m, rng);
  const auto delays = core::random_delays(inst.n_directions(), rng);
  const auto priorities = core::random_delay_priorities(inst, delays);
  core::ListScheduleOptions options;
  options.priorities = priorities;
  for (auto _ : state) {
    auto schedule = core::list_schedule(inst, assignment, m, options);
    benchmark::DoNotOptimize(schedule.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n_tasks()));
}
BENCHMARK(BM_ListScheduler)->Arg(8)->Arg(64)->Arg(512);

void BM_RandomDelaySchedule(benchmark::State& state) {
  const auto& inst = bench_instance();
  util::Rng rng(2);
  for (auto _ : state) {
    auto result = core::random_delay_schedule(inst, 64, rng);
    benchmark::DoNotOptimize(result.schedule.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n_tasks()));
}
BENCHMARK(BM_RandomDelaySchedule);

void BM_ImprovedRandomDelaySchedule(benchmark::State& state) {
  const auto& inst = bench_instance();
  util::Rng rng(3);
  for (auto _ : state) {
    auto result = core::improved_random_delay_schedule(inst, 64, rng);
    benchmark::DoNotOptimize(result.schedule.makespan());
  }
}
BENCHMARK(BM_ImprovedRandomDelaySchedule);

void BM_MultilevelPartition(benchmark::State& state) {
  const auto graph = partition::graph_from_mesh(bench_mesh());
  partition::MultilevelOptions options;
  options.n_parts = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto part = partition::multilevel_partition(graph, options);
    benchmark::DoNotOptimize(part.data());
  }
}
BENCHMARK(BM_MultilevelPartition)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
