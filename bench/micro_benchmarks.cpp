// Google-benchmark microbenchmarks for the performance-critical kernels:
// mesh generation, DAG induction, level computation, the list-scheduling
// engine (old per-direction-walk path vs. the flat TaskGraph engine, bucket
// and heap ready queues), Algorithm 1's layered construction, and the
// multilevel partitioner. These back the paper's remark that the algorithms
// run in near-linear time in the schedule length.
//
// After the google-benchmark run, main() times each scheduling algorithm
// end-to-end and writes a machine-readable throughput report (tasks/sec per
// algorithm, old vs. new list-scheduler path) so later PRs can track the
// perf trajectory:
//   path: $SWEEP_BENCH_JSON, default "BENCH_schedule_throughput.json"
//   skip: set SWEEP_BENCH_JSON=none
//   reps: --reps N (default 5) — each report entry is the min over N
//         repetitions (noise filter)
//   csv:  --csv PATH (or --csv=PATH) — additionally write the throughput
//         rows as CSV (name,seconds_per_run,tasks_per_sec) for spreadsheet
//         / plotting pipelines that don't want to parse JSON

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "core/random_delay.hpp"
#include "mesh/zoo.hpp"
#include "partition/multilevel.hpp"
#include "sweep/dag_builder.hpp"
#include "sweep/instance.hpp"
#include "sweep/task_graph.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace sweep;

const mesh::UnstructuredMesh& bench_mesh() {
  static const mesh::UnstructuredMesh m = mesh::MeshZoo::tetonly_like(0.5);
  return m;
}

const dag::SweepInstance& bench_instance() {
  static const dag::SweepInstance inst =
      dag::build_instance(bench_mesh(), dag::level_symmetric(4));
  return inst;
}

/// Shared fixture for the list-scheduler benchmarks: one assignment and one
/// random-delay priority vector, reused so old and new paths time the exact
/// same scheduling problem.
struct SchedFixture {
  core::Assignment assignment;
  std::vector<core::TimeStep> delays;
  std::vector<std::int64_t> priorities;
};

const SchedFixture& sched_fixture(std::size_t m) {
  // std::map: node-based, so references stay valid as entries are added.
  static std::map<std::size_t, SchedFixture> cache;
  const auto it = cache.find(m);
  if (it != cache.end()) return it->second;
  util::Rng rng(1);
  SchedFixture fix;
  fix.assignment = core::random_assignment(bench_instance().n_cells(), m, rng);
  fix.delays = core::random_delays(bench_instance().n_directions(), rng);
  fix.priorities = core::random_delay_priorities(bench_instance(), fix.delays);
  return cache.emplace(m, std::move(fix)).first->second;
}

void BM_MeshGeneration(benchmark::State& state) {
  for (auto _ : state) {
    const auto m = mesh::MeshZoo::tetonly_like(
        0.1 * static_cast<double>(state.range(0)));
    benchmark::DoNotOptimize(m.n_cells());
  }
}
BENCHMARK(BM_MeshGeneration)->Arg(2)->Arg(4)->Arg(6);

void BM_DagInduction(benchmark::State& state) {
  const auto& m = bench_mesh();
  const mesh::Vec3 dir = mesh::normalized({0.5, 0.3, 0.8});
  for (auto _ : state) {
    auto result = dag::build_sweep_dag(m, dir);
    benchmark::DoNotOptimize(result.dag.n_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.n_cells()));
}
BENCHMARK(BM_DagInduction);

void BM_Levels(benchmark::State& state) {
  const auto& inst = bench_instance();
  for (auto _ : state) {
    auto levels = inst.dag(0).levels();
    benchmark::DoNotOptimize(levels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n_cells()));
}
BENCHMARK(BM_Levels);

void BM_TaskGraphBuild(benchmark::State& state) {
  const auto& inst = bench_instance();
  const auto& levels = inst.levels();
  for (auto _ : state) {
    auto tg = dag::TaskGraph::build(inst.n_cells(), inst.dags(), levels);
    benchmark::DoNotOptimize(tg.n_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n_tasks()));
}
BENCHMARK(BM_TaskGraphBuild);

/// New engine, kAuto ready queues (bucket for these priorities).
void BM_ListScheduler(benchmark::State& state) {
  const auto& inst = bench_instance();
  const auto m = static_cast<std::size_t>(state.range(0));
  const SchedFixture& fix = sched_fixture(m);
  core::ListScheduleOptions options;
  options.priorities = fix.priorities;
  (void)inst.task_graph();  // exclude the one-time CSR build from the timing
  for (auto _ : state) {
    auto schedule = core::list_schedule(inst, fix.assignment, m, options);
    benchmark::DoNotOptimize(schedule.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n_tasks()));
}
BENCHMARK(BM_ListScheduler)->Arg(8)->Arg(64)->Arg(512);

/// New engine forced onto binary heaps — isolates the bucket-queue gain.
void BM_ListSchedulerHeap(benchmark::State& state) {
  const auto& inst = bench_instance();
  const auto m = static_cast<std::size_t>(state.range(0));
  const SchedFixture& fix = sched_fixture(m);
  core::ListScheduleOptions options;
  options.priorities = fix.priorities;
  options.ready_queue = core::ReadyQueueKind::kHeap;
  (void)inst.task_graph();
  for (auto _ : state) {
    auto schedule = core::list_schedule(inst, fix.assignment, m, options);
    benchmark::DoNotOptimize(schedule.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n_tasks()));
}
BENCHMARK(BM_ListSchedulerHeap)->Arg(8)->Arg(64)->Arg(512);

/// Old path: per-direction DAG walks + task-id arithmetic per edge.
void BM_ListSchedulerReference(benchmark::State& state) {
  const auto& inst = bench_instance();
  const auto m = static_cast<std::size_t>(state.range(0));
  const SchedFixture& fix = sched_fixture(m);
  core::ListScheduleOptions options;
  options.priorities = fix.priorities;
  for (auto _ : state) {
    auto schedule =
        core::list_schedule_reference(inst, fix.assignment, m, options);
    benchmark::DoNotOptimize(schedule.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n_tasks()));
}
BENCHMARK(BM_ListSchedulerReference)->Arg(8)->Arg(64)->Arg(512);

void BM_GreedyUnionSchedule(benchmark::State& state) {
  const auto& inst = bench_instance();
  (void)inst.task_graph();
  for (auto _ : state) {
    auto step = core::greedy_union_schedule(inst, 64);
    benchmark::DoNotOptimize(step.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n_tasks()));
}
BENCHMARK(BM_GreedyUnionSchedule);

void BM_RandomDelaySchedule(benchmark::State& state) {
  const auto& inst = bench_instance();
  util::Rng rng(2);
  for (auto _ : state) {
    auto result = core::random_delay_schedule(inst, 64, rng);
    benchmark::DoNotOptimize(result.schedule.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.n_tasks()));
}
BENCHMARK(BM_RandomDelaySchedule);

void BM_ImprovedRandomDelaySchedule(benchmark::State& state) {
  const auto& inst = bench_instance();
  util::Rng rng(3);
  for (auto _ : state) {
    auto result = core::improved_random_delay_schedule(inst, 64, rng);
    benchmark::DoNotOptimize(result.schedule.makespan());
  }
}
BENCHMARK(BM_ImprovedRandomDelaySchedule);

void BM_MultilevelPartition(benchmark::State& state) {
  const auto graph = partition::graph_from_mesh(bench_mesh());
  partition::MultilevelOptions options;
  options.n_parts = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto part = partition::multilevel_partition(graph, options);
    benchmark::DoNotOptimize(part.data());
  }
}
BENCHMARK(BM_MultilevelPartition)->Arg(8)->Arg(64);

// ---------------------------------------------------------------------------
// Machine-readable throughput report.

/// Repetition count for the throughput report (--reps N, default 5). Each
/// measurement is repeated this many times and the MINIMUM per-run time is
/// reported: the min is the standard noise filter for benchmarks on shared
/// machines — scheduling hiccups and cache-cold outliers only ever slow a
/// rep down, never speed it up.
std::size_t g_reps = 5;

/// One repetition: times runner() until >= min_seconds of accumulated
/// runtime (at least two runs) and returns seconds per run. time_per_run
/// takes the min over g_reps such repetitions.
template <typename F>
double time_one_rep(F& runner, double min_seconds) {
  util::Timer timer;
  double elapsed = 0.0;
  std::size_t runs = 0;
  while (elapsed < min_seconds || runs < 2) {
    runner();
    ++runs;
    elapsed = timer.seconds();
  }
  return elapsed / static_cast<double>(runs);
}

template <typename F>
double time_per_run(F&& runner, double min_seconds = 0.4) {
  runner();  // warm-up (also forces lazy caches)
  // Keep the total budget ~min_seconds regardless of the rep count.
  const double per_rep =
      min_seconds / static_cast<double>(std::max<std::size_t>(g_reps, 1));
  double best = time_one_rep(runner, per_rep);
  for (std::size_t rep = 1; rep < g_reps; ++rep) {
    best = std::min(best, time_one_rep(runner, per_rep));
  }
  return best;
}

struct ThroughputRow {
  std::string name;
  double seconds_per_run;
  double tasks_per_sec;
};

/// --csv PATH: mirror the throughput rows as CSV. Empty = off.
std::string g_csv_path;

void write_throughput_csv(const std::string& path,
                          const std::vector<ThroughputRow>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "name,seconds_per_run,tasks_per_sec\n");
  for (const ThroughputRow& row : rows) {
    std::fprintf(out, "%s,%.6f,%.0f\n", row.name.c_str(),
                 row.seconds_per_run, row.tasks_per_sec);
  }
  std::fclose(out);
  std::printf("[throughput] wrote %s\n", path.c_str());
}

void write_throughput_json(const std::string& path) {
  const auto& inst = bench_instance();
  const std::size_t m = 64;
  const SchedFixture& fix = sched_fixture(m);
  const double n_tasks = static_cast<double>(inst.n_tasks());

  std::vector<ThroughputRow> rows;
  auto add = [&](const std::string& name, double secs) {
    rows.push_back({name, secs, n_tasks / secs});
  };

  {
    core::ListScheduleOptions options;
    options.priorities = fix.priorities;
    add("list_schedule", time_per_run([&] {
          benchmark::DoNotOptimize(
              core::list_schedule(inst, fix.assignment, m, options)
                  .makespan());
        }));
    options.ready_queue = core::ReadyQueueKind::kHeap;
    add("list_schedule_heap", time_per_run([&] {
          benchmark::DoNotOptimize(
              core::list_schedule(inst, fix.assignment, m, options)
                  .makespan());
        }));
    add("list_schedule_reference", time_per_run([&] {
          benchmark::DoNotOptimize(
              core::list_schedule_reference(inst, fix.assignment, m, options)
                  .makespan());
        }));
  }
  add("greedy_union_schedule", time_per_run([&] {
        benchmark::DoNotOptimize(core::greedy_union_schedule(inst, m).data());
      }));
  {
    util::Rng rng(2);
    add("random_delay_schedule", time_per_run([&] {
          benchmark::DoNotOptimize(
              core::random_delay_schedule(inst, m, rng).schedule.makespan());
        }));
  }
  {
    util::Rng rng(3);
    add("improved_random_delay_schedule", time_per_run([&] {
          benchmark::DoNotOptimize(
              core::improved_random_delay_schedule(inst, m, rng)
                  .schedule.makespan());
        }));
  }

  double reference_secs = 0.0;
  double engine_secs = 0.0;
  for (const ThroughputRow& row : rows) {
    if (row.name == "list_schedule_reference") reference_secs = row.seconds_per_run;
    if (row.name == "list_schedule") engine_secs = row.seconds_per_run;
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"mesh\": \"%s\",\n", bench_mesh().name().c_str());
  std::fprintf(out, "  \"scale\": 0.5,\n");
  std::fprintf(out, "  \"n_cells\": %zu,\n", inst.n_cells());
  std::fprintf(out, "  \"n_directions\": %zu,\n", inst.n_directions());
  std::fprintf(out, "  \"n_tasks\": %zu,\n", inst.n_tasks());
  std::fprintf(out, "  \"n_edges\": %zu,\n", inst.total_edges());
  std::fprintf(out, "  \"n_processors\": %zu,\n", m);
  std::fprintf(out, "  \"list_schedule_speedup_vs_reference\": %.3f,\n",
               engine_secs > 0.0 ? reference_secs / engine_secs : 0.0);
  std::fprintf(out, "  \"algorithms\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"seconds_per_run\": %.6f, "
                 "\"tasks_per_sec\": %.0f}%s\n",
                 rows[i].name.c_str(), rows[i].seconds_per_run,
                 rows[i].tasks_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("[throughput] wrote %s (list_schedule %.2fx vs reference)\n",
              path.c_str(),
              engine_secs > 0.0 ? reference_secs / engine_secs : 0.0);
  if (!g_csv_path.empty()) write_throughput_csv(g_csv_path, rows);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --reps N / --reps=N before google-benchmark sees the arguments
  // (it rejects flags it does not know).
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      g_reps = std::max(1ul, std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--reps=", 0) == 0) {
      g_reps = std::max(1ul, std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg == "--csv" && i + 1 < argc) {
      g_csv_path = argv[++i];
    } else if (arg.rfind("--csv=", 0) == 0) {
      g_csv_path = arg.substr(6);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  const char* json_path = std::getenv("SWEEP_BENCH_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_schedule_throughput.json";
  if (path != "none") write_throughput_json(path);
  return 0;
}
