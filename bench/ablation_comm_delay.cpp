// Ablation: scheduling under explicit communication delays (the
// P|prec,c|Cmax-style model from the paper's Related Work [4,13], with the
// sweep same-processor constraint). The paper analyzes c=0 and measures C1 /
// C2 as proxies; this harness closes the loop by re-running the list
// scheduler with per-message delays c and comparing per-cell random vs block
// assignments, plus the edge-coloring realization of the communication
// rounds (reference [11]).

#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/comm_rounds.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

static int run_main(int argc, char** argv) {
  util::CliParser cli("ablation_comm_delay",
                      "Makespan under per-message delays c; cell vs block");
  bench::add_common_options(cli);
  cli.add_option("mesh", "tetonly", "zoo mesh name");
  cli.add_option("m", "32", "processor count");
  cli.add_option("delays", "0,1,2,4,8,16", "message delays c to sweep");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const auto setup =
      bench::make_instance(cli.str("mesh"), bench::resolve_scale(cli), 4);
  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto m = static_cast<std::size_t>(cli.integer("m"));
  const auto block_size =
      bench::scaled_block_size(64, bench::resolve_scale(cli));
  const auto blocks = bench::make_blocks(setup.graph, block_size, seed);
  const auto priorities = [&] {
    util::Rng rng(seed);
    const auto delays = core::random_delays(setup.instance.n_directions(), rng);
    return core::random_delay_priorities(setup.instance, delays);
  }();

  util::Table table({"c", "cell_makespan", "block_makespan", "cell/c0",
                     "block/c0", "cell_rounds", "block_rounds"});
  table.mirror_csv(cli.str("csv"));
  double cell_c0 = 0.0;
  double block_c0 = 0.0;
  for (std::int64_t c64 : cli.int_list("delays")) {
    const auto c = static_cast<core::TimeStep>(c64);
    util::OnlineStats cell_stats;
    util::OnlineStats block_stats;
    util::OnlineStats cell_rounds;
    util::OnlineStats block_rounds;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      util::Rng rng(seed + trial * 65537);
      const auto cell_assign =
          core::random_assignment(setup.mesh.n_cells(), m, rng);
      const auto block_assign = core::block_assignment(blocks, m, rng);
      core::ListScheduleOptions options;
      options.priorities = priorities;
      options.cross_message_delay = c;
      const auto s_cell =
          core::list_schedule(setup.instance, cell_assign, m, options);
      const auto s_block =
          core::list_schedule(setup.instance, block_assign, m, options);
      cell_stats.add(static_cast<double>(s_cell.makespan()));
      block_stats.add(static_cast<double>(s_block.makespan()));
      cell_rounds.add(static_cast<double>(
          core::realize_c2_rounds(setup.instance, s_cell).total_rounds));
      block_rounds.add(static_cast<double>(
          core::realize_c2_rounds(setup.instance, s_block).total_rounds));
    }
    if (c == 0) {
      cell_c0 = cell_stats.mean();
      block_c0 = block_stats.mean();
    }
    table.add_row({util::Table::fmt(c64),
                   util::Table::fmt(cell_stats.mean(), 0),
                   util::Table::fmt(block_stats.mean(), 0),
                   util::Table::fmt(cell_c0 > 0 ? cell_stats.mean() / cell_c0 : 1.0, 2),
                   util::Table::fmt(block_c0 > 0 ? block_stats.mean() / block_c0 : 1.0, 2),
                   util::Table::fmt(cell_rounds.mean(), 0),
                   util::Table::fmt(block_rounds.mean(), 0)});
  }
  table.print("Ablation: per-message delay sweep (" + cli.str("mesh") +
              ", m=" + cli.str("m") + ", block " + std::to_string(block_size) +
              ")");
  std::printf("\nExpected shape: abundant ready work hides latency (growth "
              "<< 1+c for both); block assignment's advantage shows in the "
              "realized communication rounds (last two columns), which track "
              "C1, not in the latency-only makespan.\n");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
