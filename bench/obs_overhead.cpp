// Overhead microbenchmark for the observability layer: runs list_schedule
// repeatedly with collection disarmed, with metrics armed, and with metrics
// plus tracing armed, and reports the relative slowdown. The acceptance bar
// is < 2% with everything enabled; a disarmed run should be indistinguishable
// from the un-instrumented baseline (each macro site is one relaxed load).
//
// A second section runs the serve-path request loop (ServeService::handle
// answering level-scheme queries plus a stats frame per rep) through the
// same three modes; the armed serve path — phase histograms, quality
// metrics, status counters — must stay under 1% over disarmed.
//
// Run directly (not via google-benchmark) so the three modes share the exact
// same instance, assignment, and iteration structure:
//   obs_overhead [--n 20000] [--k 8] [--m 32] [--reps 30]

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "obs/obs.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "sweep/artifact.hpp"
#include "sweep/random_dag.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

namespace {

enum class Mode { kOff, kMetrics, kFull };

void arm(Mode mode) {
  obs::set_metrics_enabled(mode != Mode::kOff);
  if (mode == Mode::kFull) {
    obs::start_tracing();
  } else {
    obs::stop_tracing();
  }
}

double median(std::vector<double>& times) {
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

static int run_main(int argc, char** argv) {
  util::CliParser cli("obs_overhead",
                      "Instrumentation overhead: list_schedule with "
                      "observability off / metrics / metrics+trace");
  cli.add_option("n", "20000", "cells in the synthetic instance");
  cli.add_option("k", "8", "directions");
  cli.add_option("m", "32", "processors");
  cli.add_option("reps", "30", "repetitions per mode (median reported)");
  cli.add_option("seed", "2024", "RNG seed");
  cli.add_option("serve-n", "2000", "cells in the serve-path artifact");
  cli.add_option("serve-reqs", "60", "queries per serve-path rep");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto k = static_cast<std::size_t>(cli.integer("k"));
  const auto m = static_cast<std::size_t>(cli.integer("m"));
  const auto reps = static_cast<std::size_t>(cli.integer("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  const auto instance = dag::random_instance(n, k, 9, 2.0, seed);
  util::Rng rng(seed);
  const auto assignment = core::random_assignment(n, m, rng);
  (void)instance.task_graph();  // warm the lazy CSR outside the timing

  // Interleave the three modes within every rep (off, metrics, full) so
  // machine-load drift and frequency scaling hit all modes equally; report
  // per-mode medians. Medians are robust against scheduler hiccups.
  std::size_t checksum_off = 0, checksum_metrics = 0, checksum_full = 0;
  std::vector<double> times_off, times_metrics, times_full;
  times_off.reserve(reps);
  times_metrics.reserve(reps);
  times_full.reserve(reps);

  arm(Mode::kOff);
  // Warm-up: touch code and data once before any timed rep.
  (void)core::list_schedule(instance, assignment, m);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const Mode mode : {Mode::kOff, Mode::kMetrics, Mode::kFull}) {
      arm(mode);
      util::Timer timer;
      const auto schedule = core::list_schedule(instance, assignment, m);
      const double t = timer.seconds();
      const std::size_t makespan = schedule.makespan();
      switch (mode) {
        case Mode::kOff: times_off.push_back(t); checksum_off += makespan; break;
        case Mode::kMetrics:
          times_metrics.push_back(t);
          checksum_metrics += makespan;
          break;
        case Mode::kFull: times_full.push_back(t); checksum_full += makespan; break;
      }
    }
  }
  arm(Mode::kOff);
  const double t_off = median(times_off);
  const double t_metrics = median(times_metrics);
  const double t_full = median(times_full);

  if (checksum_metrics != checksum_off || checksum_full != checksum_off) {
    std::fprintf(stderr,
                 "FAIL: instrumentation changed the schedules "
                 "(makespan checksums %zu / %zu / %zu)\n",
                 checksum_off, checksum_metrics, checksum_full);
    return 2;
  }

#if defined(SWEEP_OBS_DISABLE)
  std::printf("built with SWEEP_OBS=OFF: macros are compiled out\n");
#endif
  std::printf("list_schedule on %zu cells x %zu dirs, m=%zu, %zu reps "
              "(median):\n", n, k, m, reps);
  std::printf("  obs off            %8.3f ms\n", t_off * 1e3);
  std::printf("  metrics            %8.3f ms  (%+.2f%%)\n", t_metrics * 1e3,
              100.0 * (t_metrics / t_off - 1.0));
  std::printf("  metrics + trace    %8.3f ms  (%+.2f%%)\n", t_full * 1e3,
              100.0 * (t_full / t_off - 1.0));
  std::printf("identical schedules in all three modes (checksum %zu)\n",
              checksum_off);

  // ---- Serve path. Same interleaving discipline over ServeService::handle:
  // each rep answers `serve-reqs` level-scheme queries and one stats frame,
  // so every hot-path telemetry site (phase histograms, quality metrics,
  // status counters, stats snapshotting) is on the measured loop.
  const auto serve_n = static_cast<std::size_t>(cli.integer("serve-n"));
  const auto serve_reqs = static_cast<std::size_t>(cli.integer("serve-reqs"));
  const std::string artifact_path =
      "/tmp/obs_overhead." + std::to_string(static_cast<long>(::getpid())) +
      ".sweepart";
  const auto serve_instance =
      dag::random_instance(serve_n, 4, 7, 2.0, seed + 1);
  const dag::ArtifactWriteOptions pack_options;
  dag::save_artifact(serve_instance, artifact_path, pack_options);
  serve::ServeService service(dag::Artifact::map_file(artifact_path));

  // Per-request interleaving: every request index is answered three times
  // back to back, once per mode, with the mode ORDER rotating each request
  // so cache warmth and frequency drift land on all modes equally. Medians
  // over reps * serve-reqs samples per mode; rep-granularity timing sits
  // inside this machine's ±2% run-to-run noise and cannot resolve a 1%
  // target. The two clock reads per request cost the same in every mode.
  const auto serve_one = [&](std::size_t i, std::vector<double>& times)
      -> std::uint64_t {
    serve::Request request;
    request.type = serve::MsgType::kQuery;
    request.query.scheme = serve::Scheme::kLevel;
    request.query.m = static_cast<std::uint32_t>(m);
    request.query.seed = i;
    util::Timer timer;
    const serve::Response r = service.handle(request);
    times.push_back(timer.seconds());
    return r.query.makespan + r.status;
  };

  std::uint64_t serve_check_off = 0, serve_check_metrics = 0,
                serve_check_full = 0;
  std::vector<double> serve_off, serve_metrics, serve_full;
  serve_off.reserve(reps * serve_reqs);
  serve_metrics.reserve(reps * serve_reqs);
  serve_full.reserve(reps * serve_reqs);
  arm(Mode::kOff);
  {
    std::vector<double> warm;
    (void)serve_one(0, warm);
  }
  constexpr Mode kOrders[3][3] = {
      {Mode::kOff, Mode::kMetrics, Mode::kFull},
      {Mode::kMetrics, Mode::kFull, Mode::kOff},
      {Mode::kFull, Mode::kOff, Mode::kMetrics}};
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < serve_reqs; ++i) {
      for (const Mode mode : kOrders[(rep * serve_reqs + i) % 3]) {
        arm(mode);
        switch (mode) {
          case Mode::kOff: serve_check_off += serve_one(i, serve_off); break;
          case Mode::kMetrics:
            serve_check_metrics += serve_one(i, serve_metrics);
            break;
          case Mode::kFull:
            serve_check_full += serve_one(i, serve_full);
            break;
        }
      }
    }
    // One stats frame per rep keeps the armed snapshot path exercised; it
    // is not part of the per-request distribution.
    arm(Mode::kMetrics);
    serve::Request stats;
    stats.type = serve::MsgType::kStats;
    const std::uint32_t status = service.handle(stats).status;
    serve_check_off += status;
    serve_check_metrics += status;
    serve_check_full += status;
    // Drop the full-mode spans accumulated this rep: tens of MB of live
    // trace events would degrade cache behaviour for every mode and the
    // buffer is not what this bench measures.
    obs::clear_trace();
  }
  arm(Mode::kOff);
  std::remove(artifact_path.c_str());

  if (serve_check_metrics != serve_check_off ||
      serve_check_full != serve_check_off) {
    std::fprintf(stderr,
                 "FAIL: serve-path instrumentation changed the responses "
                 "(checksums %llu / %llu / %llu)\n",
                 static_cast<unsigned long long>(serve_check_off),
                 static_cast<unsigned long long>(serve_check_metrics),
                 static_cast<unsigned long long>(serve_check_full));
    return 2;
  }
  const double s_off = median(serve_off);
  const double s_metrics = median(serve_metrics);
  const double s_full = median(serve_full);
  std::printf("\nserve path: per-request median over %zu queries per mode "
              "on %zu cells (%zu reps x %zu, rotating order):\n",
              reps * serve_reqs, serve_n, reps, serve_reqs);
  std::printf("  obs off            %8.1f us\n", s_off * 1e6);
  std::printf("  metrics            %8.1f us  (%+.2f%%)\n", s_metrics * 1e6,
              100.0 * (s_metrics / s_off - 1.0));
  std::printf("  metrics + trace    %8.1f us  (%+.2f%%)\n", s_full * 1e6,
              100.0 * (s_full / s_off - 1.0));
  std::printf("identical responses in all three modes (checksum %llu); "
              "armed target < 1%%\n",
              static_cast<unsigned long long>(serve_check_off));
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
