// Overhead microbenchmark for the observability layer: runs list_schedule
// repeatedly with collection disarmed, with metrics armed, and with metrics
// plus tracing armed, and reports the relative slowdown. The acceptance bar
// is < 2% with everything enabled; a disarmed run should be indistinguishable
// from the un-instrumented baseline (each macro site is one relaxed load).
//
// Run directly (not via google-benchmark) so the three modes share the exact
// same instance, assignment, and iteration structure:
//   obs_overhead [--n 20000] [--k 8] [--m 32] [--reps 30]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "obs/obs.hpp"
#include "sweep/random_dag.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

namespace {

enum class Mode { kOff, kMetrics, kFull };

void arm(Mode mode) {
  obs::set_metrics_enabled(mode != Mode::kOff);
  if (mode == Mode::kFull) {
    obs::start_tracing();
  } else {
    obs::stop_tracing();
  }
}

double median(std::vector<double>& times) {
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

static int run_main(int argc, char** argv) {
  util::CliParser cli("obs_overhead",
                      "Instrumentation overhead: list_schedule with "
                      "observability off / metrics / metrics+trace");
  cli.add_option("n", "20000", "cells in the synthetic instance");
  cli.add_option("k", "8", "directions");
  cli.add_option("m", "32", "processors");
  cli.add_option("reps", "30", "repetitions per mode (median reported)");
  cli.add_option("seed", "2024", "RNG seed");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto k = static_cast<std::size_t>(cli.integer("k"));
  const auto m = static_cast<std::size_t>(cli.integer("m"));
  const auto reps = static_cast<std::size_t>(cli.integer("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  const auto instance = dag::random_instance(n, k, 9, 2.0, seed);
  util::Rng rng(seed);
  const auto assignment = core::random_assignment(n, m, rng);
  (void)instance.task_graph();  // warm the lazy CSR outside the timing

  // Interleave the three modes within every rep (off, metrics, full) so
  // machine-load drift and frequency scaling hit all modes equally; report
  // per-mode medians. Medians are robust against scheduler hiccups.
  std::size_t checksum_off = 0, checksum_metrics = 0, checksum_full = 0;
  std::vector<double> times_off, times_metrics, times_full;
  times_off.reserve(reps);
  times_metrics.reserve(reps);
  times_full.reserve(reps);

  arm(Mode::kOff);
  // Warm-up: touch code and data once before any timed rep.
  (void)core::list_schedule(instance, assignment, m);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const Mode mode : {Mode::kOff, Mode::kMetrics, Mode::kFull}) {
      arm(mode);
      util::Timer timer;
      const auto schedule = core::list_schedule(instance, assignment, m);
      const double t = timer.seconds();
      const std::size_t makespan = schedule.makespan();
      switch (mode) {
        case Mode::kOff: times_off.push_back(t); checksum_off += makespan; break;
        case Mode::kMetrics:
          times_metrics.push_back(t);
          checksum_metrics += makespan;
          break;
        case Mode::kFull: times_full.push_back(t); checksum_full += makespan; break;
      }
    }
  }
  arm(Mode::kOff);
  const double t_off = median(times_off);
  const double t_metrics = median(times_metrics);
  const double t_full = median(times_full);

  if (checksum_metrics != checksum_off || checksum_full != checksum_off) {
    std::fprintf(stderr,
                 "FAIL: instrumentation changed the schedules "
                 "(makespan checksums %zu / %zu / %zu)\n",
                 checksum_off, checksum_metrics, checksum_full);
    return 2;
  }

#if defined(SWEEP_OBS_DISABLE)
  std::printf("built with SWEEP_OBS=OFF: macros are compiled out\n");
#endif
  std::printf("list_schedule on %zu cells x %zu dirs, m=%zu, %zu reps "
              "(median):\n", n, k, m, reps);
  std::printf("  obs off            %8.3f ms\n", t_off * 1e3);
  std::printf("  metrics            %8.3f ms  (%+.2f%%)\n", t_metrics * 1e3,
              100.0 * (t_metrics / t_off - 1.0));
  std::printf("  metrics + trace    %8.3f ms  (%+.2f%%)\n", t_full * 1e3,
              100.0 * (t_full / t_off - 1.0));
  std::printf("identical schedules in all three modes (checksum %zu)\n",
              checksum_off);
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
