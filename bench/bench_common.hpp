#pragma once
// Shared plumbing for the figure-reproduction harnesses: common CLI options,
// instance construction, and trial averaging. Every binary accepts:
//   --scale S    mesh linear-scale multiplier (default 0.5; cells ~ S^3)
//   --full       paper-scale meshes (equivalent to --scale 1.0)
//   --trials T   trials per randomized data point (default 3)
//   --seed X     base RNG seed
//   --csv PATH   mirror the printed table to a CSV file
//   --validate   validate every schedule (slower)
//   --jobs J     parallel trial workers (0 = all cores, 1 = serial)

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "core/assignment.hpp"
#include "core/validate.hpp"
#include "mesh/mesh_stats.hpp"
#include "mesh/zoo.hpp"
#include "partition/multilevel.hpp"
#include "sweep/instance.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace sweep::bench {

inline void add_common_options(util::CliParser& cli) {
  cli.add_option("scale", "0.5", "mesh linear scale (1.0 = paper size)");
  cli.add_flag("full", "run at paper scale (--scale 1.0)");
  cli.add_option("trials", "3", "trials per randomized data point");
  cli.add_option("seed", "12345", "base RNG seed");
  cli.add_option("csv", "", "mirror table to CSV file");
  cli.add_flag("validate", "validate every schedule produced");
  cli.add_option("jobs", "0",
                 "parallel trial workers (0 = all cores, 1 = serial)");
}

inline double resolve_scale(const util::CliParser& cli) {
  return cli.flag("full") ? 1.0 : cli.real("scale");
}

/// The process-wide trial fan-out width used by mean_makespan /
/// parallel_trials: 0 = all cores, 1 = serial. Results are identical either
/// way (see parallel_trials); this only trades wall-clock for cores.
inline std::size_t& trial_jobs() {
  static std::size_t jobs = 0;
  return jobs;
}

/// Reads --jobs into the process-wide fan-out width. Call once after parse.
inline void configure_jobs(const util::CliParser& cli) {
  trial_jobs() = static_cast<std::size_t>(cli.integer("jobs"));
}

struct BenchInstance {
  mesh::UnstructuredMesh mesh;
  dag::DirectionSet directions;
  dag::SweepInstance instance;
  partition::Graph graph;
};

/// Builds mesh + S_n directions + DAGs + adjacency graph; prints a summary.
inline BenchInstance make_instance(const std::string& mesh_name, double scale,
                                   std::size_t sn_order,
                                   std::uint64_t seed = 100) {
  util::Timer timer;
  mesh::UnstructuredMesh m = mesh::MeshZoo::by_name(mesh_name, scale, seed);
  dag::DirectionSet dirs = dag::level_symmetric(sn_order);
  dag::InstanceBuildStats stats;
  dag::SweepInstance inst = dag::build_instance(m, dirs, 1e-9, &stats);
  partition::Graph graph = partition::graph_from_mesh(m);
  std::printf("[setup] mesh=%s %s\n", mesh_name.c_str(),
              to_string(mesh::compute_stats(m)).c_str());
  std::printf("[setup] k=%zu directions, %zu tasks, %zu edges, "
              "%zu cycle-broken, built in %.2fs\n",
              dirs.size(), inst.n_tasks(), inst.total_edges(),
              stats.total_dropped_edges, timer.seconds());
  return BenchInstance{std::move(m), std::move(dirs), std::move(inst),
                       std::move(graph)};
}

/// The paper's block sizes (64/128/256) are calibrated to its 31k-118k cell
/// meshes. At reduced scale the same absolute block size would leave far
/// fewer blocks than processors and the figures would only show granularity
/// starvation. Scaling the block size by scale^3 keeps the number of blocks
/// (and hence blocks-per-processor) in the paper's regime at any scale.
inline std::size_t scaled_block_size(std::size_t paper_block, double scale) {
  const double scaled = static_cast<double>(paper_block) * scale * scale * scale;
  return std::max<std::size_t>(1, static_cast<std::size_t>(scaled + 0.5));
}

/// Block partition via the multilevel partitioner (the METIS substitute).
inline partition::Partition make_blocks(const partition::Graph& graph,
                                        std::size_t block_size,
                                        std::uint64_t seed = 7) {
  partition::MultilevelOptions options;
  options.seed = seed;
  return partition::partition_into_blocks(graph, block_size, options);
}

/// One data point of a trial batch: run `algorithm` on `n_processors`
/// processors (block->processor assignment drawn per trial when `blocks` is
/// non-null, fresh random per-cell assignment otherwise).
struct TrialSpec {
  core::Algorithm algorithm;
  std::size_t n_processors;
  const partition::Partition* blocks = nullptr;
};

/// Runs `trials` trials of every spec, fanning the (spec, trial) points
/// across the thread pool, and returns the per-spec mean makespans.
///
/// Determinism: trial `trial` of EVERY spec seeds its own Rng with
/// `seed + trial * 1000003` — exactly the per-trial seeding the serial loop
/// used — and the Welford reduction consumes the makespans in serial trial
/// order from a buffer, so the result is bit-identical for any `jobs`
/// (0 = all cores, 1 = serial). Optionally validates every schedule and
/// aborts on infeasibility.
inline std::vector<double> parallel_trials(const dag::SweepInstance& instance,
                                           std::span<const TrialSpec> specs,
                                           std::size_t trials,
                                           std::uint64_t seed, bool validate,
                                           std::size_t jobs = 0) {
  std::vector<double> means(specs.size(), 0.0);
  if (specs.empty() || trials == 0) return means;
  // Warm the shared lazy caches serially so no worker pays the one-time
  // build inside its first trial (call_once already makes this safe).
  (void)instance.task_graph();

  std::vector<double> makespans(specs.size() * trials);
  util::parallel_for(
      makespans.size(),
      [&](std::size_t idx) {
        const TrialSpec& spec = specs[idx / trials];
        const std::size_t trial = idx % trials;
        util::Rng rng(seed + trial * 1000003);
        core::Assignment assignment;
        if (spec.blocks != nullptr) {
          assignment =
              core::block_assignment(*spec.blocks, spec.n_processors, rng);
        }
        const core::Schedule schedule = core::run_algorithm(
            spec.algorithm, instance, spec.n_processors, rng,
            std::move(assignment));
        if (validate) {
          const auto result = core::validate_schedule(instance, schedule);
          if (!result) {
            std::fprintf(stderr, "FATAL: invalid schedule (%s, m=%zu): %s\n",
                         core::algorithm_name(spec.algorithm).c_str(),
                         spec.n_processors, result.error.c_str());
            std::abort();
          }
        }
        makespans[idx] = static_cast<double>(schedule.makespan());
      },
      jobs);

  for (std::size_t s = 0; s < specs.size(); ++s) {
    util::OnlineStats stats;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      stats.add(makespans[s * trials + trial]);
    }
    means[s] = stats.mean();
  }
  return means;
}

/// Runs `algorithm` `trials` times with per-trial RNGs (and fresh random
/// assignments unless `blocks` is non-null, in which case a fresh random
/// block->processor map per trial); returns mean makespan. Optionally
/// validates each schedule and aborts on infeasibility. Trials fan out
/// across trial_jobs() workers; the result is identical to the serial loop.
inline double mean_makespan(core::Algorithm algorithm,
                            const dag::SweepInstance& instance, std::size_t m,
                            std::size_t trials, std::uint64_t seed,
                            const partition::Partition* blocks,
                            bool validate) {
  const TrialSpec spec{algorithm, m, blocks};
  return parallel_trials(instance, {&spec, 1}, trials, seed, validate,
                         trial_jobs())[0];
}

inline std::vector<std::int64_t> default_proc_sweep() {
  return {8, 16, 32, 64, 128, 256, 512};
}

}  // namespace sweep::bench
