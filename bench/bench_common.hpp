#pragma once
// Shared plumbing for the figure-reproduction harnesses: common CLI options,
// instance construction, and trial averaging. Every binary accepts:
//   --scale S    mesh linear-scale multiplier (default 0.5; cells ~ S^3)
//   --full       paper-scale meshes (equivalent to --scale 1.0)
//   --trials T   trials per randomized data point (default 3)
//   --seed X     base RNG seed
//   --csv PATH   mirror the printed table to a CSV file
//   --validate   validate every schedule (slower)
//   --jobs J     parallel trial workers (0 = all cores, 1 = serial)

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "mesh/mesh_stats.hpp"
#include "mesh/zoo.hpp"
#include "obs/obs.hpp"
#include "partition/multilevel.hpp"
#include "sweep/instance.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace sweep::bench {

inline void add_common_options(util::CliParser& cli) {
  cli.add_option("scale", "0.5", "mesh linear scale (1.0 = paper size)");
  cli.add_flag("full", "run at paper scale (--scale 1.0)");
  cli.add_option("trials", "3", "trials per randomized data point");
  cli.add_option("seed", "12345", "base RNG seed");
  cli.add_option("csv", "", "mirror table to CSV file");
  cli.add_flag("validate", "validate every schedule produced");
  cli.add_option("jobs", "0",
                 "parallel trial workers (0 = all cores, 1 = serial)");
  cli.add_option("trace-out", "",
                 "write a Chrome trace-event JSON (chrome://tracing / "
                 "Perfetto) of the run to this path");
  cli.add_option("metrics-out", "",
                 "write the merged metrics registry (runtime timers + "
                 "schedule quality) as JSON to this path");
}

inline double resolve_scale(const util::CliParser& cli) {
  return cli.flag("full") ? 1.0 : cli.real("scale");
}

/// The process-wide trial fan-out width used by mean_makespan /
/// parallel_trials: 0 = all cores, 1 = serial. Results are identical either
/// way (see parallel_trials); this only trades wall-clock for cores.
inline std::size_t& trial_jobs() {
  static std::size_t jobs = 0;
  return jobs;
}

/// Output paths for the observability artifacts, shared with the atexit
/// flusher (which cannot capture state).
inline std::string& trace_out_path() {
  static std::string path;
  return path;
}
inline std::string& metrics_out_path() {
  static std::string path;
  return path;
}

inline void flush_observability_outputs() {
  if (!trace_out_path().empty()) {
    obs::stop_tracing();
    if (obs::write_trace_json(trace_out_path())) {
      std::fprintf(stderr, "[obs] trace written to %s\n",
                   trace_out_path().c_str());
    } else {
      std::fprintf(stderr, "[obs] FAILED to write trace to %s\n",
                   trace_out_path().c_str());
    }
  }
  if (!metrics_out_path().empty()) {
    if (obs::write_metrics_json(metrics_out_path())) {
      std::fprintf(stderr, "[obs] metrics written to %s\n",
                   metrics_out_path().c_str());
    } else {
      std::fprintf(stderr, "[obs] FAILED to write metrics to %s\n",
                   metrics_out_path().c_str());
    }
  }
}

/// Arms tracing / metrics collection per --trace-out / --metrics-out and
/// registers an atexit flusher, so every harness main() stays untouched
/// beyond its existing configure_jobs call.
inline void configure_observability(const util::CliParser& cli) {
  trace_out_path() = cli.str("trace-out");
  metrics_out_path() = cli.str("metrics-out");
  if (!trace_out_path().empty()) obs::start_tracing();
  if (!metrics_out_path().empty()) obs::set_metrics_enabled(true);
  if (trace_out_path().empty() && metrics_out_path().empty()) return;
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(flush_observability_outputs);
  }
}

/// Reads --jobs into the process-wide fan-out width and arms observability.
/// Call once after parse.
inline void configure_jobs(const util::CliParser& cli) {
  trial_jobs() = static_cast<std::size_t>(cli.integer("jobs"));
  configure_observability(cli);
}

struct BenchInstance {
  mesh::UnstructuredMesh mesh;
  dag::DirectionSet directions;
  dag::SweepInstance instance;
  partition::Graph graph;
};

/// Builds mesh + S_n directions + DAGs + adjacency graph; prints a summary.
inline BenchInstance make_instance(const std::string& mesh_name, double scale,
                                   std::size_t sn_order,
                                   std::uint64_t seed = 100) {
  SWEEP_OBS_SCOPE("bench.make_instance");
  util::Timer timer;
  mesh::UnstructuredMesh m = mesh::MeshZoo::by_name(mesh_name, scale, seed);
  dag::DirectionSet dirs = dag::level_symmetric(sn_order);
  dag::InstanceBuildStats stats;
  dag::SweepInstance inst = dag::build_instance(m, dirs, 1e-9, &stats);
  partition::Graph graph = partition::graph_from_mesh(m);
  std::printf("[setup] mesh=%s %s\n", mesh_name.c_str(),
              to_string(mesh::compute_stats(m)).c_str());
  std::printf("[setup] k=%zu directions, %zu tasks, %zu edges, "
              "%zu cycle-broken, built in %.2fs\n",
              dirs.size(), inst.n_tasks(), inst.total_edges(),
              stats.total_dropped_edges, timer.seconds());
  return BenchInstance{std::move(m), std::move(dirs), std::move(inst),
                       std::move(graph)};
}

/// The paper's block sizes (64/128/256) are calibrated to its 31k-118k cell
/// meshes. At reduced scale the same absolute block size would leave far
/// fewer blocks than processors and the figures would only show granularity
/// starvation. Scaling the block size by scale^3 keeps the number of blocks
/// (and hence blocks-per-processor) in the paper's regime at any scale.
inline std::size_t scaled_block_size(std::size_t paper_block, double scale) {
  const double scaled = static_cast<double>(paper_block) * scale * scale * scale;
  return std::max<std::size_t>(1, static_cast<std::size_t>(scaled + 0.5));
}

/// Block partition via the multilevel partitioner (the METIS substitute).
inline partition::Partition make_blocks(const partition::Graph& graph,
                                        std::size_t block_size,
                                        std::uint64_t seed = 7) {
  SWEEP_OBS_SCOPE("bench.make_blocks");
  partition::MultilevelOptions options;
  options.seed = seed;
  return partition::partition_into_blocks(graph, block_size, options);
}

/// One data point of a trial batch: run `algorithm` on `n_processors`
/// processors (block->processor assignment drawn per trial when `blocks` is
/// non-null, fresh random per-cell assignment otherwise).
struct TrialSpec {
  core::Algorithm algorithm;
  std::size_t n_processors;
  const partition::Partition* blocks = nullptr;
};

/// Runs `trials` trials of every spec, fanning the (spec, trial) points
/// across the thread pool, and returns the per-spec mean makespans.
///
/// Determinism: trial `trial` of EVERY spec seeds its own Rng with
/// `seed + trial * 1000003` — exactly the per-trial seeding the serial loop
/// used — and the Welford reduction consumes the makespans in serial trial
/// order from a buffer, so the result is bit-identical for any `jobs`
/// (0 = all cores, 1 = serial). Optionally validates every schedule and
/// aborts on infeasibility.
inline std::vector<double> parallel_trials(const dag::SweepInstance& instance,
                                           std::span<const TrialSpec> specs,
                                           std::size_t trials,
                                           std::uint64_t seed, bool validate,
                                           std::size_t jobs = 0) {
  std::vector<double> means(specs.size(), 0.0);
  if (specs.empty() || trials == 0) return means;
  SWEEP_OBS_SPAN_ARGS("bench.parallel_trials", "specs",
                      static_cast<std::int64_t>(specs.size()), "trials",
                      static_cast<std::int64_t>(trials));
  SWEEP_OBS_TIMER("bench.parallel_trials");
  // Warm the shared lazy caches serially so no worker pays the one-time
  // build inside its first trial (call_once already makes this safe).
  (void)instance.task_graph();

  std::vector<double> makespans(specs.size() * trials);
  util::parallel_for(
      makespans.size(),
      [&](std::size_t idx) {
        const TrialSpec& spec = specs[idx / trials];
        const std::size_t trial = idx % trials;
        SWEEP_OBS_SPAN_ARGS("bench.trial", "spec",
                            static_cast<std::int64_t>(idx / trials), "trial",
                            static_cast<std::int64_t>(trial));
        util::Rng rng(seed + trial * 1000003);
        core::Assignment assignment;
        if (spec.blocks != nullptr) {
          assignment =
              core::block_assignment(*spec.blocks, spec.n_processors, rng);
        }
        const core::Schedule schedule = core::run_algorithm(
            spec.algorithm, instance, spec.n_processors, rng,
            std::move(assignment));
        if (validate) {
          const auto result = core::validate_schedule(instance, schedule);
          if (!result) {
            std::fprintf(stderr, "FATAL: invalid schedule (%s, m=%zu): %s\n",
                         core::algorithm_name(spec.algorithm).c_str(),
                         spec.n_processors, result.error.c_str());
            std::abort();
          }
        }
        makespans[idx] = static_cast<double>(schedule.makespan());
        SWEEP_OBS_COUNTER_ADD("bench.trials.completed", 1);
        SWEEP_OBS_OBSERVE("bench.trial.makespan", makespans[idx]);
      },
      jobs);

  for (std::size_t s = 0; s < specs.size(); ++s) {
    util::OnlineStats stats;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      stats.add(makespans[s * trials + trial]);
    }
    means[s] = stats.mean();
  }
  return means;
}

/// Runs `algorithm` `trials` times with per-trial RNGs (and fresh random
/// assignments unless `blocks` is non-null, in which case a fresh random
/// block->processor map per trial); returns mean makespan. Optionally
/// validates each schedule and aborts on infeasibility. Trials fan out
/// across trial_jobs() workers; the result is identical to the serial loop.
inline double mean_makespan(core::Algorithm algorithm,
                            const dag::SweepInstance& instance, std::size_t m,
                            std::size_t trials, std::uint64_t seed,
                            const partition::Partition* blocks,
                            bool validate) {
  const TrialSpec spec{algorithm, m, blocks};
  return parallel_trials(instance, {&spec, 1}, trials, seed, validate,
                         trial_jobs())[0];
}

/// Records the paper's plotted quality quantities for one schedule into the
/// metrics registry (no-op unless --metrics-out armed collection), so one
/// JSON artifact carries runtime timers AND algorithmic quality:
///   quality.makespan, quality.makespan_over_lb, quality.c1_cross_edges,
///   quality.c1_fraction, quality.c2_total_delay, quality.idle_fraction.
inline void record_schedule_quality(const dag::SweepInstance& instance,
                                    const core::Schedule& schedule) {
  if (!obs::metrics_enabled()) return;
  SWEEP_OBS_SPAN("bench.record_quality");
  const auto lb =
      core::compute_lower_bounds(instance, schedule.n_processors());
  const auto makespan = static_cast<double>(schedule.makespan());
  SWEEP_OBS_OBSERVE("quality.makespan", makespan);
  if (lb.value() > 0) {
    SWEEP_OBS_OBSERVE("quality.makespan_over_lb", makespan / lb.value());
  }
  const auto c1 = core::comm_cost_c1(instance, schedule.assignment());
  SWEEP_OBS_OBSERVE("quality.c1_cross_edges",
                    static_cast<double>(c1.cross_edges));
  SWEEP_OBS_OBSERVE("quality.c1_fraction", c1.fraction());
  const auto c2 = core::comm_cost_c2(instance, schedule);
  SWEEP_OBS_OBSERVE("quality.c2_total_delay",
                    static_cast<double>(c2.total_delay));
  const double slots =
      makespan * static_cast<double>(schedule.n_processors());
  if (slots > 0) {
    SWEEP_OBS_OBSERVE("quality.idle_fraction",
                      static_cast<double>(schedule.idle_slots()) / slots);
  }
}

/// Re-runs trial 0 of each spec and records its quality metrics. Called by
/// the harnesses after their trial batches; does nothing (and costs
/// nothing) unless metrics collection is armed.
inline void record_spec_quality(const dag::SweepInstance& instance,
                                std::span<const TrialSpec> specs,
                                std::uint64_t seed) {
  if (!obs::metrics_enabled()) return;
  SWEEP_OBS_SCOPE("bench.record_spec_quality");
  for (const TrialSpec& spec : specs) {
    util::Rng rng(seed);  // trial 0's RNG, per the seeding contract
    core::Assignment assignment;
    if (spec.blocks != nullptr) {
      assignment =
          core::block_assignment(*spec.blocks, spec.n_processors, rng);
    }
    const core::Schedule schedule = core::run_algorithm(
        spec.algorithm, instance, spec.n_processors, rng,
        std::move(assignment));
    record_schedule_quality(instance, schedule);
  }
}

inline std::vector<std::int64_t> default_proc_sweep() {
  return {8, 16, 32, 64, 128, 256, 512};
}

}  // namespace sweep::bench
