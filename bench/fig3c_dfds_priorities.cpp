// Figure 3(c): DFDS priorities (Pautz) without/with random delays vs
// Algorithm 2, mesh `well_logging`, block size 128. Expected shape: equal at
// small m; DFDS wins at large m & small k; delays barely change DFDS except
// at very large m & small k.

#include "fig3_common.hpp"

#include "util/main_guard.hpp"

static int run_main(int argc, char** argv) {
  sweep::bench::Fig3Config config;
  config.figure = "fig3c";
  config.mesh = "well_logging";
  config.block_size = 128;
  config.heuristic = sweep::core::Algorithm::kDfdsPriorities;
  config.heuristic_delayed = sweep::core::Algorithm::kDfdsDelays;
  config.heuristic_label = "DFDS";
  const int rc = sweep::bench::run_fig3(config, argc, argv);
  std::printf("\nExpected shape: DFDS ~= RD at small m; DFDS ahead at large "
              "m & small k; delays help DFDS only there (Figure 3(c)).\n");
  return rc;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
