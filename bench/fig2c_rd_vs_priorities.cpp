// Figure 2(c): "Random Delays" (Algorithm 1) versus "Random Delays with
// Priorities" (Algorithm 2) on mesh `long`, for several direction counts and
// increasing processor counts. The paper reports improvements of up to 4x at
// high processor counts, and makespan always <= 3 nk/m for Algorithm 2.

#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

static int run_main(int argc, char** argv) {
  util::CliParser cli("fig2c_rd_vs_priorities",
                      "Figure 2(c): Random Delays vs Random Delays with "
                      "Priorities (mesh long, several k and m)");
  bench::add_common_options(cli);
  cli.add_option("mesh", "long", "zoo mesh name");
  cli.add_option("procs", "8,16,32,64,128,256,512", "processor counts");
  cli.add_option("orders", "2,4,6", "S_n orders (k = n(n+2): 8, 24, 48)");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const bool validate = cli.flag("validate");

  util::Table table({"k", "m", "LB=nk/m", "RandomDelays", "RD+Priorities",
                     "improvement", "RDprio/LB"});
  table.mirror_csv(cli.str("csv"));
  double worst_ratio = 0.0;
  for (std::int64_t order : cli.int_list("orders")) {
    const auto setup = bench::make_instance(
        cli.str("mesh"), bench::resolve_scale(cli),
        static_cast<std::size_t>(order));
    const std::size_t k = setup.directions.size();
    for (std::int64_t m64 : cli.int_list("procs")) {
      const auto m = static_cast<std::size_t>(m64);
      SWEEP_OBS_SPAN_ARGS("fig2c.point", "k", static_cast<std::int64_t>(k),
                          "m", m64);
      const double lb = static_cast<double>(setup.instance.n_tasks()) /
                        static_cast<double>(m);
      const double rd =
          bench::mean_makespan(core::Algorithm::kRandomDelay, setup.instance,
                               m, trials, seed, nullptr, validate);
      const double rdp =
          bench::mean_makespan(core::Algorithm::kRandomDelayPriorities,
                               setup.instance, m, trials, seed, nullptr,
                               validate);
      const bench::TrialSpec quality_specs[] = {
          {core::Algorithm::kRandomDelay, m, nullptr},
          {core::Algorithm::kRandomDelayPriorities, m, nullptr}};
      bench::record_spec_quality(setup.instance, quality_specs, seed);
      worst_ratio = std::max(worst_ratio, rdp / lb);
      table.add_row({util::Table::fmt(static_cast<std::int64_t>(k)),
                     util::Table::fmt(static_cast<std::int64_t>(m)),
                     util::Table::fmt(lb, 0), util::Table::fmt(rd, 0),
                     util::Table::fmt(rdp, 0), util::Table::fmt(rd / rdp, 2),
                     util::Table::fmt(rdp / lb, 2)});
    }
  }
  table.print("Figure 2(c): Algorithm 1 vs Algorithm 2 (" + cli.str("mesh") +
              ")");
  std::printf("\nExpected shape: priorities help more as m grows (paper "
              "reports up to 4x); RDprio/LB stays small.\n");
  std::printf("Worst RD+Priorities makespan / (nk/m) observed: %.2f "
              "(paper: always <= 3)\n", worst_ratio);
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
