// serve_latency: end-to-end request latency of the sweep_serve daemon,
// measured by the daemon itself. For each thread count the bench starts a
// real Server on a Unix socket, hammers it with one client per server
// thread, and then reads the p50/p90/p99/p99.9/max ladder of
// serve.request_ns straight off the stats wire (v2) — the same shard-merged
// histogram machinery sweep_top renders, so the numbers in the JSON report
// are exactly what an operator would see live.
//
//   serve_latency [--n 2000] [--reqs 400] [--threads 1,4,8]
//                 [--json serve_latency.json]
//
// --mode cache benches the schedule cache (DESIGN.md §15) instead: a COLD
// phase where every query is a distinct key (every request runs
// list_schedule) against a HOT phase where four clients hammer a small
// pre-warmed key set (every request is a cache hit), both measured off the
// daemon's own serve.request_ns ladder, with the hit rate read from the
// serve.cache.* stats v2 entries. The report lands in the --json path
// (committed as results/BENCH_serve_cache.json).
//
// Requires an instrumented build; under SWEEP_OBS=OFF there is no histogram
// to read and the bench exits 0 with a note.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sweep/artifact.hpp"
#include "sweep/random_dag.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

namespace {

std::vector<std::size_t> parse_threads(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto v =
        static_cast<std::size_t>(std::strtoul(item.c_str(), nullptr, 10));
    if (v > 0) out.push_back(v);
  }
  return out;
}

struct Row {
  std::size_t threads = 0;
  std::uint64_t requests = 0;
  double wall_seconds = 0.0;
  serve::StatsHistogram hist;  // serve.request_ns ladder off the wire
};

#if !defined(SWEEP_OBS_DISABLE)

std::uint64_t entry_value(const serve::StatsResponse& stats,
                          const std::string& key) {
  for (const auto& [k, v] : stats.entries) {
    if (k == key) return v;
  }
  return 0;
}

/// One measured phase of the cache bench: `clients` threads each issue
/// `reqs` level-scheme queries with seeds from `seed_for`, then the
/// serve.request_ns ladder is polled off the stats wire until it has seen
/// every request. The server must be started fresh (registry reset) by the
/// caller. Returns false on any failed request or stats mismatch.
struct PhaseResult {
  double wall_seconds = 0.0;
  serve::StatsHistogram hist;
  serve::StatsResponse stats;
};

template <typename SeedFn>
bool run_phase(const std::string& socket_path, std::size_t clients,
               std::size_t reqs, std::uint32_t m, SeedFn seed_for,
               PhaseResult& out) {
  util::Timer wall;
  std::atomic<int> io_failures{0};
  std::vector<std::thread> swarm;
  for (std::size_t w = 0; w < clients; ++w) {
    swarm.emplace_back([&, w] {
      try {
        serve::Client client(socket_path);
        for (std::size_t i = 0; i < reqs; ++i) {
          serve::Request request;
          request.type = serve::MsgType::kQuery;
          request.query.scheme = serve::Scheme::kLevel;
          request.query.m = m;
          request.query.seed = seed_for(w, i);
          if (client.call(request).status != 0) io_failures.fetch_add(1);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client: %s\n", e.what());
        io_failures.fetch_add(1000);
      }
    });
  }
  for (std::thread& t : swarm) t.join();
  out.wall_seconds = wall.seconds();

  const auto expected = static_cast<std::uint64_t>(clients) * reqs;
  serve::Client client(socket_path);
  serve::Request stats_request;
  stats_request.type = serve::MsgType::kStats;
  for (int attempt = 0; attempt < 100; ++attempt) {
    const serve::Response r = client.call(stats_request);
    if (r.status != 0) return false;
    out.hist = serve::StatsHistogram{};
    for (const serve::StatsHistogram& h : r.stats.histograms) {
      if (h.name == "serve.request_ns") out.hist = h;
    }
    out.stats = r.stats;
    if (out.hist.count >= expected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return io_failures.load() == 0 && out.hist.count >= expected;
}

/// The schedule-cache bench: cold (all-distinct keys, every request
/// computes) vs hot (pre-warmed key set, every request hits). Fresh
/// ServeService per phase so the hot phase's hit rate is its own, not
/// diluted by the cold phase's misses.
int run_cache_mode(const std::string& artifact_path, std::size_t clients,
                   std::size_t reqs, std::uint32_t m, std::size_t warm_keys,
                   std::size_t n, std::size_t k, std::uint64_t seed,
                   const std::string& json_path, const std::string& tag) {
  PhaseResult cold;
  {
    serve::ServeService service(dag::Artifact::map_file(artifact_path));
    obs::MetricsRegistry::instance().reset();
    const std::string socket_path = "/tmp/serve_cache." + tag + ".cold.sock";
    serve::ServerOptions options;
    options.socket_path = socket_path;
    options.threads = clients;
    options.slow_request_ns = 0;
    serve::Server server(service, options);
    server.start();
    const bool ok = run_phase(
        socket_path, clients, reqs, m,
        [](std::size_t w, std::size_t i) { return w * 1000003 + i + 1; },
        cold);
    {
      serve::Client client(socket_path);
      (void)client.shutdown_server();
    }
    server.wait();
    server.stop();
    if (!ok) {
      std::fprintf(stderr, "FATAL: cold phase failed\n");
      return 2;
    }
    const std::uint64_t hits = entry_value(cold.stats, "serve.cache.hits");
    if (hits != 0) {
      std::fprintf(stderr, "FATAL: cold phase saw %llu cache hits\n",
                   static_cast<unsigned long long>(hits));
      return 2;
    }
  }

  PhaseResult hot;
  std::uint64_t hot_hit_rate = 0;
  {
    serve::ServeService service(dag::Artifact::map_file(artifact_path));
    const std::string socket_path = "/tmp/serve_cache." + tag + ".hot.sock";
    serve::ServerOptions options;
    options.socket_path = socket_path;
    options.threads = clients;
    options.slow_request_ns = 0;
    serve::Server server(service, options);
    server.start();
    {
      // Warm the key set, then reset the registry while the daemon is
      // idle so the measured ladder holds hot samples only. The cache
      // counters live in the service (not the registry) and survive the
      // reset — warm misses stay visible in the reported hit rate.
      serve::Client client(socket_path);
      for (std::size_t key = 0; key < warm_keys; ++key) {
        serve::Request request;
        request.type = serve::MsgType::kQuery;
        request.query.scheme = serve::Scheme::kLevel;
        request.query.m = m;
        request.query.seed = key + 1;
        if (client.call(request).status != 0) {
          std::fprintf(stderr, "FATAL: warmup query failed\n");
          return 2;
        }
      }
      obs::MetricsRegistry::instance().reset();
    }
    const bool ok = run_phase(
        socket_path, clients, reqs, m,
        [warm_keys](std::size_t w, std::size_t i) {
          return (w + i) % warm_keys + 1;
        },
        hot);
    hot_hit_rate = entry_value(hot.stats, "serve.cache.hit_rate_pct");
    {
      serve::Client client(socket_path);
      (void)client.shutdown_server();
    }
    server.wait();
    server.stop();
    if (!ok) {
      std::fprintf(stderr, "FATAL: hot phase failed\n");
      return 2;
    }
  }

  const double speedup_p50 =
      hot.hist.p50 > 0 ? static_cast<double>(cold.hist.p50) /
                             static_cast<double>(hot.hist.p50)
                       : 0.0;
  const double speedup_p99 =
      hot.hist.p99 > 0 ? static_cast<double>(cold.hist.p99) /
                             static_cast<double>(hot.hist.p99)
                       : 0.0;
  std::printf("[cache] cold  p50 %8.1fus  p99 %8.1fus  (%llu reqs, all "
              "computed)\n",
              static_cast<double>(cold.hist.p50) / 1e3,
              static_cast<double>(cold.hist.p99) / 1e3,
              static_cast<unsigned long long>(cold.hist.count));
  std::printf("[cache] hot   p50 %8.1fus  p99 %8.1fus  (%llu reqs, "
              "hit rate %llu%%)\n",
              static_cast<double>(hot.hist.p50) / 1e3,
              static_cast<double>(hot.hist.p99) / 1e3,
              static_cast<unsigned long long>(hot.hist.count),
              static_cast<unsigned long long>(hot_hit_rate));
  std::printf("[cache] speedup  p50 %.1fx  p99 %.1fx\n", speedup_p50,
              speedup_p99);

  std::ofstream out(json_path);
  out << "{\n"
      << "  \"bench\": \"serve_cache\",\n"
      << "  \"histogram\": \"serve.request_ns\",\n"
      << "  \"instance\": {\"n_cells\": " << n << ", \"k\": " << k
      << ", \"m\": " << m << ", \"seed\": " << seed << "},\n"
      << "  \"clients\": " << clients << ",\n"
      << "  \"requests_per_client\": " << reqs << ",\n"
      << "  \"warm_keys\": " << warm_keys << ",\n"
      << "  \"cold\": {\"p50_ns\": " << cold.hist.p50 << ", \"p90_ns\": "
      << cold.hist.p90 << ", \"p99_ns\": " << cold.hist.p99
      << ", \"p999_ns\": " << cold.hist.p999 << ", \"max_ns\": "
      << cold.hist.max << ", \"count\": " << cold.hist.count
      << ", \"wall_seconds\": " << cold.wall_seconds << "},\n"
      << "  \"hot\": {\"p50_ns\": " << hot.hist.p50 << ", \"p90_ns\": "
      << hot.hist.p90 << ", \"p99_ns\": " << hot.hist.p99
      << ", \"p999_ns\": " << hot.hist.p999 << ", \"max_ns\": "
      << hot.hist.max << ", \"count\": " << hot.hist.count
      << ", \"wall_seconds\": " << hot.wall_seconds
      << ", \"hit_rate_pct\": " << hot_hit_rate << ", \"hits\": "
      << entry_value(hot.stats, "serve.cache.hits") << ", \"misses\": "
      << entry_value(hot.stats, "serve.cache.misses")
      << ", \"inflight_waits\": "
      << entry_value(hot.stats, "serve.cache.inflight_waits") << "},\n"
      << "  \"speedup\": {\"p50\": " << speedup_p50 << ", \"p99\": "
      << speedup_p99 << "}\n"
      << "}\n";
  if (!out) {
    std::fprintf(stderr, "FATAL: could not write %s\n", json_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

#endif  // !defined(SWEEP_OBS_DISABLE)

}  // namespace

static int run_main(int argc, char** argv) {
  util::CliParser cli("serve_latency",
                      "sweep_serve request latency quantiles per thread "
                      "count, read off the daemon's own stats wire");
  cli.add_option("n", "2000", "cells in the served artifact");
  cli.add_option("k", "4", "directions");
  cli.add_option("m", "8", "processors per query");
  cli.add_option("reqs", "400", "queries per client thread");
  cli.add_option("threads", "1,4,8", "server thread counts to sweep");
  cli.add_option("seed", "2024", "RNG seed");
  cli.add_option("json", "serve_latency.json", "JSON report path");
  cli.add_option("mode", "latency",
                 "latency = request-latency sweep; cache = hot (cached) vs "
                 "cold (computed) phases of the schedule cache");
  cli.add_option("clients", "4", "client threads in --mode cache");
  cli.add_option("warm-keys", "16",
                 "distinct keys the hot phase draws from (--mode cache)");
  if (!cli.parse(argc, argv)) return 1;

#if defined(SWEEP_OBS_DISABLE)
  std::printf("serve_latency: built with SWEEP_OBS=OFF — no request "
              "histograms to read; nothing to do\n");
  return 0;
#else
  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto k = static_cast<std::size_t>(cli.integer("k"));
  const auto m = static_cast<std::uint32_t>(cli.integer("m"));
  const auto reqs = static_cast<std::size_t>(cli.integer("reqs"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const std::vector<std::size_t> thread_counts =
      parse_threads(cli.str("threads"));
  if (thread_counts.empty()) {
    std::fprintf(stderr, "FATAL: --threads parsed to an empty sweep\n");
    return 1;
  }

  const std::string tag = std::to_string(static_cast<long>(::getpid()));
  const std::string artifact_path = "/tmp/serve_latency." + tag + ".sweepart";
  const dag::SweepInstance instance = dag::random_instance(n, k, 7, 2.0, seed);
  const dag::ArtifactWriteOptions pack_options;
  dag::save_artifact(instance, artifact_path, pack_options);

  obs::set_metrics_enabled(true);

  if (cli.str("mode") == "cache") {
    const int rc = run_cache_mode(
        artifact_path, static_cast<std::size_t>(cli.integer("clients")), reqs,
        m, static_cast<std::size_t>(cli.integer("warm-keys")), n, k, seed,
        cli.str("json"), tag);
    std::remove(artifact_path.c_str());
    return rc;
  }

  serve::ServeService service(dag::Artifact::map_file(artifact_path));

  std::vector<Row> rows;
  for (const std::size_t threads : thread_counts) {
    // Fresh histograms per thread count; the server is down in between, so
    // no shard is being written while we reset.
    obs::MetricsRegistry::instance().reset();

    const std::string socket_path =
        "/tmp/serve_latency." + tag + "." + std::to_string(threads) + ".sock";
    serve::ServerOptions options;
    options.socket_path = socket_path;
    options.threads = threads;
    options.slow_request_ns = 0;  // latency runs should not spam stderr
    serve::Server server(service, options);
    server.start();

    util::Timer wall;
    std::vector<std::thread> clients;
    std::atomic<int> io_failures{0};
    for (std::size_t w = 0; w < threads; ++w) {
      clients.emplace_back([&, w] {
        try {
          serve::Client client(socket_path);
          for (std::size_t i = 0; i < reqs; ++i) {
            serve::Request request;
            request.type = serve::MsgType::kQuery;
            request.query.scheme = (i % 2 == 0) ? serve::Scheme::kLevel
                                                : serve::Scheme::kRandomDelay;
            request.query.m = m;
            request.query.seed = w * 1000003 + i;
            if (client.call(request).status != 0) io_failures.fetch_add(1);
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "client: %s\n", e.what());
          io_failures.fetch_add(1000);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double wall_seconds = wall.seconds();

    Row row;
    row.threads = threads;
    row.requests = static_cast<std::uint64_t>(threads) * reqs;
    row.wall_seconds = wall_seconds;
    {
      serve::Client client(socket_path);
      serve::Request request;
      request.type = serve::MsgType::kStats;
      // The server records serve.request_ns after the response bytes hit
      // the socket, so the last request's sample can land just after the
      // clients join — poll until the histogram has seen every request.
      for (int attempt = 0; attempt < 100; ++attempt) {
        const serve::Response r = client.call(request);
        if (r.status != 0) {
          std::fprintf(stderr, "FATAL: stats frame failed at threads=%zu\n",
                       threads);
          return 2;
        }
        row.hist = serve::StatsHistogram{};
        for (const serve::StatsHistogram& h : r.stats.histograms) {
          if (h.name == "serve.request_ns") row.hist = h;
        }
        if (row.hist.count >= row.requests) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (client.shutdown_server().status != 0) {
        std::fprintf(stderr, "FATAL: shutdown refused at threads=%zu\n",
                     threads);
        return 2;
      }
    }
    server.wait();
    server.stop();

    if (io_failures.load() != 0 || row.hist.name.empty() ||
        row.hist.count < row.requests) {
      std::fprintf(stderr,
                   "FATAL: threads=%zu io_failures=%d hist_count=%llu "
                   "(expected >= %llu)\n",
                   threads, io_failures.load(),
                   static_cast<unsigned long long>(row.hist.count),
                   static_cast<unsigned long long>(row.requests));
      return 2;
    }
    std::printf("[latency] threads=%-2zu  %6llu reqs  %8.0f req/s   "
                "p50 %7.1fus  p99 %7.1fus  p99.9 %7.1fus  max %7.1fus\n",
                threads, static_cast<unsigned long long>(row.requests),
                static_cast<double>(row.requests) / wall_seconds,
                static_cast<double>(row.hist.p50) / 1e3,
                static_cast<double>(row.hist.p99) / 1e3,
                static_cast<double>(row.hist.p999) / 1e3,
                static_cast<double>(row.hist.max) / 1e3);
    rows.push_back(row);
  }
  std::remove(artifact_path.c_str());

  std::ofstream out(cli.str("json"));
  out << "{\n"
      << "  \"bench\": \"serve_latency\",\n"
      << "  \"histogram\": \"serve.request_ns\",\n"
      << "  \"instance\": {\"n_cells\": " << n << ", \"k\": " << k
      << ", \"m\": " << m << ", \"seed\": " << seed << "},\n"
      << "  \"requests_per_client\": " << reqs << ",\n"
      << "  \"threads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"threads\": " << r.threads << ", \"requests\": "
        << r.requests << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"p50_ns\": " << r.hist.p50 << ", \"p90_ns\": " << r.hist.p90
        << ", \"p99_ns\": " << r.hist.p99 << ", \"p999_ns\": " << r.hist.p999
        << ", \"max_ns\": " << r.hist.max << ", \"count\": " << r.hist.count
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "FATAL: could not write %s\n",
                 cli.str("json").c_str());
    return 2;
  }
  std::printf("wrote %s\n", cli.str("json").c_str());
  return 0;
#endif
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
