// Figure 2(a): Random Delay scheduling on mesh `tetonly` with 24 directions.
// Plots makespan vs. number of processors for the per-cell ("regular")
// random assignment and for block assignments (the paper shows block
// partitioning barely hurts makespan). We print the same series: makespan of
// Algorithm 1 for regular / block-64 / block-256 assignment, plus the nk/m
// lower bound and Algorithm 2 for reference.

#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

static int run_main(int argc, char** argv) {
  util::CliParser cli("fig2a_makespan",
                      "Figure 2(a): makespan vs processors, regular vs block "
                      "assignment (tetonly, 24 directions)");
  bench::add_common_options(cli);
  cli.add_option("mesh", "tetonly", "zoo mesh name");
  cli.add_option("procs", "8,16,32,64,128,256,512", "processor counts");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const auto setup =
      bench::make_instance(cli.str("mesh"), bench::resolve_scale(cli), 4);
  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const bool validate = cli.flag("validate");

  const auto bs64 = bench::scaled_block_size(64, bench::resolve_scale(cli));
  const auto bs256 = bench::scaled_block_size(256, bench::resolve_scale(cli));
  std::printf("[setup] effective block sizes %zu / %zu\n", bs64, bs256);
  const auto blocks64 = bench::make_blocks(setup.graph, bs64, seed);
  const auto blocks256 = bench::make_blocks(setup.graph, bs256, seed + 1);

  // Every (m, series, trial) point is independent: batch the whole figure
  // into one fan-out across the thread pool. The per-trial seeding and the
  // ordered reduction in parallel_trials keep the output byte-identical to
  // the serial loop (--jobs 1).
  const std::vector<std::int64_t> procs = cli.int_list("procs");
  std::vector<bench::TrialSpec> specs;
  specs.reserve(procs.size() * 4);
  for (std::int64_t m64 : procs) {
    const auto m = static_cast<std::size_t>(m64);
    specs.push_back({core::Algorithm::kRandomDelay, m, nullptr});
    specs.push_back({core::Algorithm::kRandomDelay, m, &blocks64});
    specs.push_back({core::Algorithm::kRandomDelay, m, &blocks256});
    specs.push_back({core::Algorithm::kRandomDelayPriorities, m, nullptr});
  }
  const std::vector<double> means = bench::parallel_trials(
      setup.instance, specs, trials, seed, validate, bench::trial_jobs());
  // With --metrics-out, fold the paper's plotted quality quantities
  // (makespan/LB, C1, C2, idle fraction) into the same registry as the
  // runtime timers, one observation per (algorithm, m, assignment) series.
  bench::record_spec_quality(setup.instance, specs, seed);

  util::Table table({"m", "LB=nk/m", "RD_cell", "RD_block64", "RD_block256",
                     "RDprio_cell", "RD_cell/LB"});
  table.mirror_csv(cli.str("csv"));
  for (std::size_t row = 0; row < procs.size(); ++row) {
    const auto m = static_cast<std::size_t>(procs[row]);
    const double lb = static_cast<double>(setup.instance.n_tasks()) /
                      static_cast<double>(m);
    const double rd_cell = means[row * 4 + 0];
    const double rd_b64 = means[row * 4 + 1];
    const double rd_b256 = means[row * 4 + 2];
    const double rdp_cell = means[row * 4 + 3];
    table.add_row({util::Table::fmt(static_cast<std::int64_t>(m)),
                   util::Table::fmt(lb, 0), util::Table::fmt(rd_cell, 0),
                   util::Table::fmt(rd_b64, 0), util::Table::fmt(rd_b256, 0),
                   util::Table::fmt(rdp_cell, 0),
                   util::Table::fmt(rd_cell / lb, 2)});
  }
  table.print("Figure 2(a): makespan vs processors (" + cli.str("mesh") +
              ", k=24)");
  std::printf("\nExpected shape: block assignment increases makespan only "
              "modestly; ratio to nk/m stays small until m is very large.\n");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
