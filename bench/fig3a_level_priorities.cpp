// Figure 3(a): the effect of the random delays — level priorities without
// delays vs Algorithm 2 (level + random delays), mesh `long`, block size 64.
// Expected shape: equal at small m; random delays win at large m.

#include "fig3_common.hpp"

#include "util/main_guard.hpp"

static int run_main(int argc, char** argv) {
  sweep::bench::Fig3Config config;
  config.figure = "fig3a";
  config.mesh = "long";
  config.block_size = 64;
  config.heuristic = sweep::core::Algorithm::kLevelPriorities;
  // "Level priorities + delays" IS Algorithm 2; the panel contrasts the
  // delayed and undelayed variants directly.
  config.heuristic_delayed = sweep::core::Algorithm::kRandomDelayPriorities;
  config.heuristic_label = "level";
  const int rc = sweep::bench::run_fig3(config, argc, argv);
  std::printf("\nExpected shape: level==RD+prio at small m; the random "
              "delays improve the makespan at high m (Figure 3(a)).\n");
  return rc;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
