// Figure 3(b): descendant priorities (Plimpton et al.) without/with random
// delays vs Algorithm 2, mesh `tetonly`, block size 256. Expected shape:
// equal at small m; descendants win at large m & small k; delays help the
// descendant heuristic only at very large m & small k.

#include "fig3_common.hpp"

#include "util/main_guard.hpp"

static int run_main(int argc, char** argv) {
  sweep::bench::Fig3Config config;
  config.figure = "fig3b";
  config.mesh = "tetonly";
  config.block_size = 256;
  config.heuristic = sweep::core::Algorithm::kDescendantPriorities;
  config.heuristic_delayed = sweep::core::Algorithm::kDescendantDelays;
  config.heuristic_label = "descendant";
  const int rc = sweep::bench::run_fig3(config, argc, argv);
  std::printf("\nExpected shape: all close at small m or large k; "
              "descendants edge out RD at large m & small k (Figure 3(b)).\n");
  return rc;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
