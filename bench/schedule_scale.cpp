// Paper-scale engine throughput report (DESIGN.md §12): drives the sharded
// work-stealing list-scheduling engine on a prismtet instance — at full
// settings (--scale 1.05 --order 8), >= 10M tasks — sweeping the engine
// worker count, and checks every configuration's schedule against
// list_schedule_reference by FNV-1a checksum. Any divergence makes the
// binary exit nonzero, so the same harness doubles as the bench_scale_smoke
// integration test at tiny scale (and runs under the tsan-concurrency
// preset to certify the stealing protocol).
//
// Output: --json PATH (default BENCH_schedule_scale.json), schema:
//   { "mesh": ..., "scale": ..., "n_cells": ..., "n_directions": ...,
//     "n_tasks": ..., "n_edges": ..., "n_processors": ...,
//     "hardware_concurrency": ...,
//     "reference": { "seconds_per_run": ..., "tasks_per_sec": ...,
//                    "checksum": "0x..." },
//     "threads": [ { "threads": T, "seconds_per_run": ...,
//                    "tasks_per_sec": ..., "speedup_vs_1thread": ...,
//                    "speedup_vs_reference": ..., "steals_per_run": ...,
//                    "checksum": "0x...", "identical": true }, ... ] }
// tasks_per_sec is the aggregate rate across all engine workers (one
// schedule run retires n_tasks tasks regardless of T). On hosts with fewer
// cores than T the thread rows still certify determinism and the stealing
// protocol; wall-clock scaling is only meaningful when
// hardware_concurrency >= T.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"

namespace {

using namespace sweep;

std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}

template <typename T>
std::uint64_t fnv1a(const std::vector<T>& values) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const T& v : values) {
    hash = fnv1a_mix(hash, static_cast<std::uint64_t>(v));
  }
  return hash;
}

struct EngineRow {
  std::size_t threads = 0;
  double seconds_per_run = 0.0;
  double steals_per_run = 0.0;
  std::uint64_t checksum = 0;
  bool identical = false;
};

/// Times fn() (one schedule run returning a checksum) `reps` times and
/// returns the fastest; every rep's checksum must agree with the first.
template <typename Fn>
double time_runs(std::size_t reps, std::uint64_t& checksum, Fn&& fn) {
  double best = -1.0;
  for (std::size_t r = 0; r < std::max<std::size_t>(reps, 1); ++r) {
    util::Timer timer;
    const std::uint64_t h = fn();
    const double s = timer.seconds();
    if (r == 0) checksum = h;
    if (h != checksum) {
      std::fprintf(stderr, "FATAL: checksum unstable across repetitions\n");
      std::exit(1);
    }
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

std::uint64_t steals_counter() {
  for (const auto& [name, value] : obs::MetricsRegistry::instance().snapshot().counters) {
    if (name == "engine.sharded.steals") return value;
  }
  return 0;
}

std::vector<std::size_t> parse_threads(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto v = static_cast<std::size_t>(std::strtoul(item.c_str(), nullptr, 10));
    if (v > 0) out.push_back(v);
  }
  return out;
}

}  // namespace

int main(int argc, const char** argv) {
  util::CliParser cli("schedule_scale",
                      "sharded engine throughput at paper scale, checksummed "
                      "against list_schedule_reference");
  bench::add_common_options(cli);
  cli.add_option("order", "8", "Sn quadrature order (8 => 80 directions)");
  cli.add_option("procs", "512", "simulated processors m");
  cli.add_option("threads", "1,2,4,8", "engine worker counts to sweep");
  cli.add_option("reps", "3", "timing repetitions per point (fastest wins)");
  cli.add_option("json", "BENCH_schedule_scale.json", "output report path");
  if (!cli.parse(argc, argv)) return 2;
  bench::configure_jobs(cli);

  const double scale = bench::resolve_scale(cli);
  const auto order = static_cast<std::size_t>(cli.integer("order"));
  const auto m = static_cast<std::size_t>(cli.integer("procs"));
  const auto reps = static_cast<std::size_t>(cli.integer("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const std::vector<std::size_t> thread_counts =
      parse_threads(cli.str("threads"));
  if (thread_counts.empty()) {
    std::fprintf(stderr, "FATAL: --threads parsed to an empty sweep\n");
    return 2;
  }

  const bench::BenchInstance bi =
      bench::make_instance("prismtet", scale, order, seed);
  const dag::SweepInstance& inst = bi.instance;
  (void)inst.task_graph();  // warm the lazy CSR outside every timer
  const double n_tasks = static_cast<double>(inst.n_tasks());

  util::Rng rng(seed);
  const core::Assignment assignment =
      core::random_assignment(inst.n_cells(), m, rng);
  const std::vector<std::int64_t> priorities = core::level_priorities(inst);

  // The oracle: the preserved per-direction-walk implementation.
  std::uint64_t reference_checksum = 0;
  double reference_seconds = 0.0;
  {
    core::ListScheduleOptions options;
    options.priorities = priorities;
    reference_seconds = time_runs(reps, reference_checksum, [&] {
      return fnv1a(
          core::list_schedule_reference(inst, assignment, m, options)
              .starts());
    });
    std::printf("[scale] reference          %8.3fs  %12.0f tasks/s\n",
                reference_seconds, n_tasks / reference_seconds);
  }

  obs::set_metrics_enabled(true);  // steal counters for the report
  std::vector<EngineRow> rows;
  bool all_identical = true;
  double serial_seconds = 0.0;
  for (const std::size_t threads : thread_counts) {
    core::ListScheduleOptions options;
    options.priorities = priorities;
    options.jobs = threads;
    obs::MetricsRegistry::instance().reset();
    EngineRow row;
    row.threads = threads;
    row.seconds_per_run = time_runs(reps, row.checksum, [&] {
      return fnv1a(list_schedule(inst, assignment, m, options).starts());
    });
    row.steals_per_run = static_cast<double>(steals_counter()) /
                         static_cast<double>(std::max<std::size_t>(reps, 1));
    row.identical = row.checksum == reference_checksum;
    all_identical = all_identical && row.identical;
    if (threads == thread_counts.front()) serial_seconds = row.seconds_per_run;
    rows.push_back(row);
    std::printf("[scale] threads=%-2zu         %8.3fs  %12.0f tasks/s  "
                "%6.0f steals/run  %s\n",
                threads, row.seconds_per_run, n_tasks / row.seconds_per_run,
                row.steals_per_run, row.identical ? "identical" : "MISMATCH");
  }

  const std::string path = cli.str("json");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"mesh\": \"prismtet\",\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"n_cells\": " << inst.n_cells() << ",\n"
      << "  \"n_directions\": " << inst.n_directions() << ",\n"
      << "  \"n_tasks\": " << inst.n_tasks() << ",\n"
      << "  \"n_edges\": " << inst.total_edges() << ",\n"
      << "  \"n_processors\": " << m << ",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"reference\": {\"seconds_per_run\": " << reference_seconds
      << ", \"tasks_per_sec\": "
      << static_cast<std::uint64_t>(n_tasks / reference_seconds)
      << ", \"checksum\": \"0x" << std::hex << reference_checksum << std::dec
      << "\"},\n"
      << "  \"threads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const EngineRow& r = rows[i];
    out << "    {\"threads\": " << r.threads << ", \"seconds_per_run\": "
        << r.seconds_per_run << ", \"tasks_per_sec\": "
        << static_cast<std::uint64_t>(n_tasks / r.seconds_per_run)
        << ", \"speedup_vs_1thread\": "
        << (r.seconds_per_run > 0.0 ? serial_seconds / r.seconds_per_run : 0.0)
        << ", \"speedup_vs_reference\": "
        << (r.seconds_per_run > 0.0 ? reference_seconds / r.seconds_per_run
                                    : 0.0)
        << ", \"steals_per_run\": " << r.steals_per_run
        << ", \"checksum\": \"0x" << std::hex << r.checksum << std::dec
        << "\", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("[scale] wrote %s\n", path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: sharded engine diverged from the reference\n");
    return 1;
  }
  return 0;
}
