// Ablation: Algorithm 1 (Random Delay) vs Algorithm 3 (Improved Random
// Delay, greedy-preprocessing) vs Algorithm 2 (priorities). Algorithm 3's
// O(log m log log log m) analysis needs width-<=m layers; this harness shows
// what the preprocessing buys in practice on geometric and adversarial
// instances.

#include "core/lower_bounds.hpp"
#include "sweep/random_dag.hpp"
#include "bench_common.hpp"

#include "util/main_guard.hpp"

using namespace sweep;

static int run_main(int argc, char** argv) {
  util::CliParser cli("ablation_improved_rd",
                      "Algorithm 1 vs Algorithm 3 vs Algorithm 2");
  bench::add_common_options(cli);
  cli.add_option("procs", "16,64,256", "processor counts");
  if (!cli.parse(argc, argv)) return 1;
  bench::configure_jobs(cli);

  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const bool validate = cli.flag("validate");

  util::Table table({"instance", "m", "LB", "Alg1_RD", "Alg3_improved",
                     "Alg2_priorities", "Alg1/Alg3"});
  table.mirror_csv(cli.str("csv"));

  auto run_rows = [&](const std::string& label,
                      const dag::SweepInstance& instance) {
    for (std::int64_t m64 : cli.int_list("procs")) {
      const auto m = static_cast<std::size_t>(m64);
      const double lb = core::compute_lower_bounds(instance, m).value();
      const double a1 =
          bench::mean_makespan(core::Algorithm::kRandomDelay, instance, m,
                               trials, seed, nullptr, validate);
      const double a3 =
          bench::mean_makespan(core::Algorithm::kImprovedRandomDelay, instance,
                               m, trials, seed, nullptr, validate);
      const double a2 =
          bench::mean_makespan(core::Algorithm::kRandomDelayPriorities,
                               instance, m, trials, seed, nullptr, validate);
      table.add_row({label, util::Table::fmt(static_cast<std::int64_t>(m)),
                     util::Table::fmt(lb, 0), util::Table::fmt(a1, 0),
                     util::Table::fmt(a3, 0), util::Table::fmt(a2, 0),
                     util::Table::fmt(a1 / a3, 2)});
    }
  };

  // Geometric instance.
  const auto setup =
      bench::make_instance("tetonly", bench::resolve_scale(cli), 4);
  run_rows("tetonly/S4", setup.instance);

  // Wide synthetic instance (few, very wide levels) — the regime where
  // Algorithm 3's width-reduction preprocessing matters most.
  const double scale = bench::resolve_scale(cli);
  const auto n_wide = static_cast<std::size_t>(4000 * scale * scale);
  const auto wide = dag::random_instance(std::max<std::size_t>(n_wide, 500),
                                         16, 5, 2.0, seed);
  run_rows("wide/random", wide);

  // Deep chain-heavy instance.
  const auto deep = dag::chain_instance(
      std::max<std::size_t>(static_cast<std::size_t>(800 * scale), 200), 16,
      seed + 1);
  run_rows("chains", deep);

  table.print("Ablation: effect of Algorithm 3 preprocessing");
  std::printf("\nExpected shape: Alg3's preprocessing trades layer width for "
              "layer count — it guarantees width<=m for the improved "
              "analysis but typically costs makespan in practice (equal on "
              "chains, where levels are already width 1). Alg2 (list "
              "compaction) beats both everywhere, matching the paper's "
              "choice to evaluate Algorithms 1-2 empirically and keep "
              "Algorithm 3 as the theoretical result.\n");
  return 0;
}

int main(int argc, char** argv) {
  return sweep::util::guarded_main([&] { return run_main(argc, argv); });
}
