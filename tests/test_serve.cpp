// Tests for the sweep_serve stack below the socket layer: wire-protocol
// round trips and malformed-frame rejection, and ServeService request
// handling — bit-identity of query responses against the in-process
// scheduling path, error statuses that keep the daemon alive, and hot swap
// through a kSwap request.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <future>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/schedule_cache.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "sweep/artifact.hpp"
#include "sweep/random_dag.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace sweep::serve {
namespace {

TEST(Wire, RequestRoundTripsEveryType) {
  {
    Request r;
    r.type = MsgType::kPing;
    EXPECT_EQ(decode_request(encode_request(r)).type, MsgType::kPing);
  }
  {
    Request r;
    r.type = MsgType::kQuery;
    r.query.scheme = Scheme::kDescendant;
    r.query.m = 12;
    r.query.seed = 0xfeedfaceULL;
    r.query.partition = 3;
    r.query.want_starts = true;
    const Request back = decode_request(encode_request(r));
    EXPECT_EQ(back.type, MsgType::kQuery);
    EXPECT_EQ(back.query.scheme, Scheme::kDescendant);
    EXPECT_EQ(back.query.m, 12u);
    EXPECT_EQ(back.query.seed, 0xfeedfaceULL);
    EXPECT_EQ(back.query.partition, 3);
    EXPECT_TRUE(back.query.want_starts);
  }
  {
    Request r;
    r.type = MsgType::kSwap;
    r.swap.path = "/tmp/with spaces and\nnewlines.sweepart";
    const Request back = decode_request(encode_request(r));
    EXPECT_EQ(back.type, MsgType::kSwap);
    EXPECT_EQ(back.swap.path, r.swap.path);
  }
  for (const MsgType t : {MsgType::kInfo, MsgType::kStats, MsgType::kShutdown}) {
    Request r;
    r.type = t;
    EXPECT_EQ(decode_request(encode_request(r)).type, t);
  }
}

TEST(Wire, ResponseRoundTrips) {
  {
    Response r;
    r.status = 0;
    r.type = MsgType::kInfo;
    r.info.name = "tet mesh";
    r.info.n_cells = 100;
    r.info.n_directions = 8;
    r.info.n_edges = 421;
    r.info.content_hash = 0x1234567890abcdefULL;
    r.info.n_partitions = 2;
    r.info.has_descendants = true;
    const Response back = decode_response(encode_response(r));
    EXPECT_EQ(back.info.name, "tet mesh");
    EXPECT_EQ(back.info.n_edges, 421u);
    EXPECT_EQ(back.info.content_hash, r.info.content_hash);
    EXPECT_TRUE(back.info.has_descendants);
  }
  {
    Response r;
    r.status = 0;
    r.type = MsgType::kQuery;
    r.query.makespan = 77;
    r.query.c1_cross_edges = 5;
    r.query.c1_total_edges = 9;
    r.query.c2_total_delay = 3;
    r.query.schedule_hash = 42;
    r.query.starts = {0, 1, 2, 7};
    const Response back = decode_response(encode_response(r));
    EXPECT_EQ(back.query.makespan, 77u);
    EXPECT_EQ(back.query.starts, r.query.starts);
  }
  {
    Response r;
    r.status = 0;
    r.type = MsgType::kStats;
    r.stats.entries = {{"serve.queries", 10}, {"serve.swaps", 1}};
    const Response back = decode_response(encode_response(r));
    EXPECT_EQ(back.stats.entries, r.stats.entries);
  }
  {
    Response r;  // error responses carry only the message
    r.status = 2;
    r.type = MsgType::kQuery;
    r.error = "no such partition";
    const Response back = decode_response(encode_response(r));
    EXPECT_EQ(back.status, 2u);
    EXPECT_EQ(back.error, "no such partition");
  }
}

TEST(Wire, MalformedFramesAreRejected) {
  EXPECT_THROW(decode_request({}), WireError);
  EXPECT_THROW(decode_response({}), WireError);

  Request query;
  query.type = MsgType::kQuery;
  const std::vector<std::byte> valid = encode_request(query);
  // Every strict prefix of a valid frame is truncated.
  for (std::size_t keep = 0; keep < valid.size(); ++keep) {
    EXPECT_THROW(
        decode_request(std::span<const std::byte>(valid.data(), keep)),
        WireError)
        << "prefix " << keep;
  }
  // Trailing bytes are malformed, not forward-compatible.
  std::vector<std::byte> padded = valid;
  padded.push_back(std::byte{0});
  EXPECT_THROW(decode_request(padded), WireError);
  // Unknown message type (0 and out-of-range).
  for (const std::uint32_t bad : {0u, 7u, 4096u}) {
    std::vector<std::byte> frame(4);
    std::memcpy(frame.data(), &bad, 4);
    EXPECT_THROW(decode_request(frame), WireError);
  }
  // Out-of-range scheme in an otherwise intact query.
  std::vector<std::byte> bad_scheme = valid;
  const std::uint32_t scheme = 3;
  std::memcpy(bad_scheme.data() + 4, &scheme, 4);
  EXPECT_THROW(decode_request(bad_scheme), WireError);
  // A string length that claims more bytes than the frame holds.
  Request swap;
  swap.type = MsgType::kSwap;
  swap.swap.path = "x";
  std::vector<std::byte> lying = encode_request(swap);
  const std::uint32_t huge = 1u << 20;
  std::memcpy(lying.data() + 4, &huge, 4);
  EXPECT_THROW(decode_request(lying), WireError);
}

// ---------------------------------------------------------------------------
// Stats wire v2 evolution. The pre-bump (v1) stats payload was exactly:
//   u32 status, u32 type, u64 count, count x (u32 len + bytes, u64 value)
// The helpers below ARE that old peer, hand-rolled byte for byte, so the
// interop tests pin the published format rather than today's code.

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

/// What a pre-bump daemon put on the wire for a kStats response.
std::vector<std::byte> v1_encode_stats(
    const std::vector<std::pair<std::string, std::uint64_t>>& entries) {
  std::vector<std::byte> out;
  put_u32(out, 0);  // status ok
  put_u32(out, static_cast<std::uint32_t>(MsgType::kStats));
  put_u64(out, entries.size());
  for (const auto& [key, value] : entries) {
    put_u32(out, static_cast<std::uint32_t>(key.size()));
    const auto* p = reinterpret_cast<const std::byte*>(key.data());
    out.insert(out.end(), p, p + key.size());
    put_u64(out, value);
  }
  return out;
}

/// What a pre-bump client did with a kStats response: read count pairs,
/// reject trailing bytes. Throws std::runtime_error on any truncation.
std::vector<std::pair<std::string, std::uint64_t>> v1_decode_stats(
    std::span<const std::byte> bytes) {
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    if (bytes.size() - pos < n) throw std::runtime_error("v1: truncated");
  };
  const auto read_u32 = [&] {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + pos, 4);
    pos += 4;
    return v;
  };
  const auto read_u64 = [&] {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + pos, 8);
    pos += 8;
    return v;
  };
  if (read_u32() != 0) throw std::runtime_error("v1: error status");
  if (read_u32() != static_cast<std::uint32_t>(MsgType::kStats)) {
    throw std::runtime_error("v1: not stats");
  }
  const std::uint64_t count = read_u64();
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t len = read_u32();
    need(len);
    std::string key(reinterpret_cast<const char*>(bytes.data() + pos), len);
    pos += len;
    entries.emplace_back(std::move(key), read_u64());
  }
  if (pos != bytes.size()) throw std::runtime_error("v1: trailing bytes");
  return entries;
}

TEST(WireV2, TypedViewsRoundTripExactly) {
  Response r;
  r.status = 0;
  r.type = MsgType::kStats;
  r.stats.proto_version = kStatsProtoVersion;
  r.stats.entries = {{"queries", 10}, {"swaps", 1}, {"errors", 2}};
  r.stats.gauges = {{"serve.open_connections", 3},
                    {"serve.inflight_requests", -1}};  // negatives survive
  StatsHistogram h;
  h.name = "serve.request_ns";
  h.count = 1000;
  h.p50 = 52000;
  h.p90 = 90000;
  h.p99 = 200000;
  h.p999 = 350000;
  h.max = 600000;
  r.stats.histograms = {h};

  const Response back = decode_response(encode_response(r));
  EXPECT_EQ(back.stats.proto_version, kStatsProtoVersion);
  EXPECT_EQ(back.stats.entries, r.stats.entries);
  EXPECT_EQ(back.stats.gauges, r.stats.gauges);
  EXPECT_EQ(back.stats.histograms, r.stats.histograms);
}

TEST(WireV2, Version1ResponseEncodesByteIdenticalToPreBumpWriter) {
  // A response that never sets proto_version >= 2 must hit the wire in the
  // exact pre-bump byte layout — no version entry, no namespaced keys.
  Response r;
  r.status = 0;
  r.type = MsgType::kStats;
  r.stats.entries = {{"queries", 7}, {"swaps", 0}};
  ASSERT_EQ(r.stats.proto_version, 1u);  // the default
  EXPECT_EQ(encode_response(r), v1_encode_stats(r.stats.entries));
}

TEST(WireV2, OldClientDecodesNewDaemon) {
  // The v1 decoder enforces expect_end(), so this passes only because the
  // new telemetry rides inside the count-prefixed list.
  Response r;
  r.status = 0;
  r.type = MsgType::kStats;
  r.stats.proto_version = kStatsProtoVersion;
  r.stats.entries = {{"queries", 5}};
  r.stats.gauges = {{"g", 1}};
  StatsHistogram h;
  h.name = "x";
  h.count = 2;
  r.stats.histograms = {h};

  const auto old_view = v1_decode_stats(encode_response(r));
  // 1 plain + 1 version + 1 gauge + 6 histogram fields.
  EXPECT_EQ(old_view.size(), 9u);
  EXPECT_EQ(old_view[0], (std::pair<std::string, std::uint64_t>{"queries", 5}));
  EXPECT_EQ(old_view[1].first, std::string(kStatsVersionKey));
  EXPECT_EQ(old_view[1].second, kStatsProtoVersion);
}

TEST(WireV2, NewClientDecodesOldDaemon) {
  const std::vector<std::pair<std::string, std::uint64_t>> legacy = {
      {"queries", 11}, {"swaps", 2}, {"errors", 0}};
  const Response back = decode_response(v1_encode_stats(legacy));
  EXPECT_EQ(back.status, 0u);
  EXPECT_EQ(back.stats.proto_version, 1u);  // never announced -> v1
  EXPECT_EQ(back.stats.entries, legacy);
  EXPECT_TRUE(back.stats.gauges.empty());
  EXPECT_TRUE(back.stats.histograms.empty());
}

TEST(WireV2, NonStatsEncodingsUnchanged) {
  // Pin the ping response layout byte for byte: the bump must not leak
  // into other message types.
  Response ping;
  ping.status = 0;
  ping.type = MsgType::kPing;
  std::vector<std::byte> expected;
  put_u32(expected, 0);
  put_u32(expected, static_cast<std::uint32_t>(MsgType::kPing));
  EXPECT_EQ(encode_response(ping), expected);

  // And a query request: u32 type, u32 scheme, u32 m, u64 seed,
  // i64 partition, u8 want_starts.
  Request query;
  query.type = MsgType::kQuery;
  query.query.scheme = Scheme::kRandomDelay;
  query.query.m = 6;
  query.query.seed = 99;
  query.query.partition = -1;
  query.query.want_starts = true;
  std::vector<std::byte> expected_q;
  put_u32(expected_q, static_cast<std::uint32_t>(MsgType::kQuery));
  put_u32(expected_q, static_cast<std::uint32_t>(Scheme::kRandomDelay));
  put_u32(expected_q, 6);
  put_u64(expected_q, 99);
  put_u64(expected_q, static_cast<std::uint64_t>(std::int64_t{-1}));
  expected_q.push_back(std::byte{1});
  EXPECT_EQ(encode_request(query), expected_q);
}

TEST(WireV2, HostileNamespacedKeysStayPlainEntries) {
  // Keys that look telemetry-ish but are not well-formed must neither
  // crash the decoder nor vanish — they stay visible as plain entries.
  const std::vector<std::pair<std::string, std::uint64_t>> hostile = {
      {"gauge.", 1},         // empty gauge name
      {"hist.", 2},          // bare prefix
      {"hist.x", 3},         // no suffix
      {"hist..p50", 4},      // empty histogram name
      {"hist.x.bogus", 5},   // unknown suffix
      {"histogram.x.p50", 6},  // wrong prefix
  };
  const Response back = decode_response(v1_encode_stats(hostile));
  EXPECT_EQ(back.stats.entries, hostile);
  EXPECT_TRUE(back.stats.gauges.empty());
  EXPECT_TRUE(back.stats.histograms.empty());

  // Duplicate well-formed keys: last write wins, nothing accumulates.
  const std::vector<std::pair<std::string, std::uint64_t>> dup = {
      {"hist.a.p50", 10}, {"hist.a.p50", 20}};
  const Response d = decode_response(v1_encode_stats(dup));
  ASSERT_EQ(d.stats.histograms.size(), 1u);
  EXPECT_EQ(d.stats.histograms[0].p50, 20u);
  EXPECT_TRUE(d.stats.entries.empty());
}

TEST(WireV2, TruncatedQuantileBlockIsRejected) {
  Response r;
  r.status = 0;
  r.type = MsgType::kStats;
  r.stats.proto_version = kStatsProtoVersion;
  r.stats.entries = {{"queries", 1}};
  StatsHistogram h;
  h.name = "serve.request_ns";
  h.count = 5;
  h.p50 = 100;
  r.stats.histograms = {h};
  const std::vector<std::byte> valid = encode_response(r);
  // Every strict prefix is truncated somewhere inside the v2 block.
  for (std::size_t keep = 8; keep < valid.size(); ++keep) {
    EXPECT_THROW(
        decode_response(std::span<const std::byte>(valid.data(), keep)),
        WireError)
        << "prefix " << keep;
  }
  // An absurd count that the remaining bytes cannot possibly satisfy.
  std::vector<std::byte> absurd = valid;
  const std::uint64_t huge = ~0ull;
  std::memcpy(absurd.data() + 8, &huge, 8);
  EXPECT_THROW(decode_response(absurd), WireError);
}

// ---------------------------------------------------------------------------
// ServeService

dag::SweepInstance make_instance() {
  return dag::random_instance(80, 3, 5, 1.8, 23);
}

ServeService make_service(const dag::SweepInstance& instance,
                          bool descendants = true,
                          ScheduleCacheOptions cache_options = {}) {
  dag::ArtifactWriteOptions options;
  options.include_descendants = descendants;
  return ServeService(
      dag::Artifact::from_memory(dag::pack_artifact(instance, options)),
      cache_options);
}

/// Cache options that disable caching entirely — the cold reference path.
ScheduleCacheOptions no_cache() {
  ScheduleCacheOptions options;
  options.max_entries = 0;
  return options;
}

std::uint64_t entry_value(const StatsResponse& stats, const std::string& key) {
  for (const auto& [k, v] : stats.entries) {
    if (k == key) return v;
  }
  return 0;
}

Request query_request(Scheme scheme, std::uint32_t m, std::uint64_t seed) {
  Request request;
  request.type = MsgType::kQuery;
  request.query.scheme = scheme;
  request.query.m = m;
  request.query.seed = seed;
  return request;
}

TEST(ServeService, QueriesAreBitIdenticalToTheInProcessPath) {
  const dag::SweepInstance instance = make_instance();
  ServeService service = make_service(instance);
  for (const Scheme scheme :
       {Scheme::kLevel, Scheme::kRandomDelay, Scheme::kDescendant}) {
    const std::uint32_t m = 4;
    const std::uint64_t seed = 99;
    // The documented recipe (serve/service.hpp).
    util::Rng rng(seed);
    const core::Assignment assignment =
        core::random_assignment(instance.n_cells(), m, rng);
    std::vector<std::int64_t> priorities;
    switch (scheme) {
      case Scheme::kLevel:
        priorities = core::level_priorities(instance);
        break;
      case Scheme::kRandomDelay: {
        const auto delays = core::random_delays(instance.n_directions(), rng);
        priorities = core::random_delay_priorities(instance, delays);
        break;
      }
      case Scheme::kDescendant:
        priorities = core::descendant_priorities(instance, rng);
        break;
    }
    core::ListScheduleOptions options;
    options.priorities = priorities;
    const core::Schedule schedule =
        core::list_schedule(instance, assignment, m, options);
    const std::uint64_t want_hash = util::fnv1a_span<core::TimeStep>(
        schedule.starts(),
        util::fnv1a_span<core::ProcessorId>(schedule.assignment()));

    Request request = query_request(scheme, m, seed);
    request.query.want_starts = true;
    const Response r = service.handle(request);
    ASSERT_EQ(r.status, 0u) << r.error;
    EXPECT_EQ(r.query.makespan, schedule.makespan());
    EXPECT_EQ(r.query.schedule_hash, want_hash);
    EXPECT_EQ(r.query.starts, schedule.starts());
    EXPECT_EQ(r.query.c1_cross_edges,
              core::comm_cost_c1(instance, assignment).cross_edges);
    EXPECT_EQ(r.query.c2_total_delay,
              core::comm_cost_c2(instance, schedule).total_delay);
  }
  EXPECT_EQ(service.queries_served(), 3u);
  EXPECT_EQ(service.errors_returned(), 0u);
}

TEST(ServeService, ErrorStatusesInsteadOfThrows) {
  const dag::SweepInstance instance = make_instance();
  ServeService service = make_service(instance, /*descendants=*/false);
  {
    const Response r = service.handle(query_request(Scheme::kLevel, 0, 1));
    EXPECT_NE(r.status, 0u);  // m == 0
    EXPECT_FALSE(r.error.empty());
  }
  {
    // Descendant scheme without the packed section.
    const Response r =
        service.handle(query_request(Scheme::kDescendant, 4, 1));
    EXPECT_NE(r.status, 0u);
  }
  {
    Request request = query_request(Scheme::kLevel, 4, 1);
    request.query.partition = 7;  // no partitions packed
    const Response r = service.handle(request);
    EXPECT_NE(r.status, 0u);
  }
  {
    Request request;
    request.type = MsgType::kSwap;
    request.swap.path = "/nonexistent/not.sweepart";
    const Response r = service.handle(request);
    EXPECT_NE(r.status, 0u);
    EXPECT_EQ(service.swaps_completed(), 0u);
  }
  // The service is still healthy after every error.
  EXPECT_EQ(service.handle(query_request(Scheme::kLevel, 4, 1)).status, 0u);
  EXPECT_GE(service.errors_returned(), 4u);
}

TEST(ServeService, InfoAndEmbeddedPartition) {
  const dag::SweepInstance instance = make_instance();
  dag::ArtifactPartition part;
  part.n_parts = 3;
  for (std::size_t v = 0; v < instance.n_cells(); ++v) {
    part.assignment.push_back(static_cast<std::uint32_t>(v % 3));
  }
  const std::vector<dag::ArtifactPartition> partitions = {part};
  dag::ArtifactWriteOptions options;
  options.partitions = &partitions;
  ServeService service(
      dag::Artifact::from_memory(dag::pack_artifact(instance, options)));

  Request info;
  info.type = MsgType::kInfo;
  const Response i = service.handle(info);
  ASSERT_EQ(i.status, 0u);
  EXPECT_EQ(i.info.n_cells, instance.n_cells());
  EXPECT_EQ(i.info.n_partitions, 1u);
  EXPECT_FALSE(i.info.has_descendants);

  // Partition queries ignore m and schedule on the embedded assignment.
  Request request = query_request(Scheme::kLevel, 0, 5);
  request.query.partition = 0;
  const Response r = service.handle(request);
  ASSERT_EQ(r.status, 0u) << r.error;
  core::ListScheduleOptions schedule_options;
  const std::vector<std::int64_t> priorities =
      core::level_priorities(instance);
  schedule_options.priorities = priorities;
  const core::Schedule schedule =
      core::list_schedule(instance, part.assignment, 3, schedule_options);
  EXPECT_EQ(r.query.makespan, schedule.makespan());
}

TEST(ServeService, SwapInstallsTheNewArtifact) {
  const dag::SweepInstance inst_a = make_instance();
  const dag::SweepInstance inst_b = dag::random_instance(50, 2, 4, 1.5, 31);
  ServeService service = make_service(inst_a);
  const std::uint64_t hash_a = service.artifact()->content_hash();

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "swap_target.sweepart")
          .string();
  dag::save_artifact(inst_b, path);

  Request request;
  request.type = MsgType::kSwap;
  request.swap.path = path;
  const Response r = service.handle(request);
  ASSERT_EQ(r.status, 0u) << r.error;
  EXPECT_EQ(service.swaps_completed(), 1u);
  EXPECT_NE(service.artifact()->content_hash(), hash_a);
  EXPECT_EQ(service.artifact()->n_cells(), inst_b.n_cells());

  // Queries now answer for B.
  const Response q = service.handle(query_request(Scheme::kLevel, 2, 1));
  ASSERT_EQ(q.status, 0u);
  util::Rng rng(1);
  const core::Assignment assignment =
      core::random_assignment(inst_b.n_cells(), 2, rng);
  core::ListScheduleOptions options;
  const std::vector<std::int64_t> priorities = core::level_priorities(inst_b);
  options.priorities = priorities;
  EXPECT_EQ(q.query.makespan,
            core::list_schedule(inst_b, assignment, 2, options).makespan());
  std::filesystem::remove(path);
}

TEST(ServeService, PingStatsAndShutdownAck) {
  ServeService service = make_service(make_instance());
  Request ping;
  ping.type = MsgType::kPing;
  EXPECT_EQ(service.handle(ping).status, 0u);
  Request stats;
  stats.type = MsgType::kStats;
  const Response s = service.handle(stats);
  ASSERT_EQ(s.status, 0u);
  EXPECT_FALSE(s.stats.entries.empty());
  EXPECT_EQ(s.stats.proto_version, kStatsProtoVersion);
  Request shutdown;
  shutdown.type = MsgType::kShutdown;
  EXPECT_EQ(service.handle(shutdown).status, 0u);
}

TEST(ServeService, ArmedStatsCarryHistogramsAndQuality) {
  // Armed metrics: queries must feed the serve-phase histograms and the
  // quality.* stats, and handle_stats must serve them over wire v2. Under
  // an obs-off build the same request path must yield empty typed views.
  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(true);
  ServeService service = make_service(make_instance());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ASSERT_EQ(service.handle(query_request(Scheme::kLevel, 4, seed)).status,
              0u);
  }
  Request stats;
  stats.type = MsgType::kStats;
  const Response s = service.handle(stats);
  obs::set_metrics_enabled(false);
  ASSERT_EQ(s.status, 0u);
  EXPECT_EQ(s.stats.proto_version, kStatsProtoVersion);
#if !defined(SWEEP_OBS_DISABLE)
  bool found_schedule_hist = false;
  for (const auto& h : s.stats.histograms) {
    EXPECT_TRUE(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.p999 &&
                h.p999 <= h.max)
        << h.name;
    if (h.name == "serve.schedule_ns") {
      found_schedule_hist = true;
      EXPECT_EQ(h.count, 5u);
      EXPECT_GT(h.p50, 0u);
    }
  }
  EXPECT_TRUE(found_schedule_hist);
  // The round-trip must preserve the views bit-exactly.
  const Response back = decode_response(encode_response(s));
  EXPECT_EQ(back.stats.entries, s.stats.entries);
  EXPECT_EQ(back.stats.gauges, s.stats.gauges);
  EXPECT_EQ(back.stats.histograms, s.stats.histograms);
  // Quality metrics landed in the in-process registry (not on the wire).
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  bool found_quality = false;
  for (const auto& v : snap.stats) {
    if (v.name == "quality.makespan_over_lb") {
      found_quality = true;
      EXPECT_EQ(v.count, 5u);
      EXPECT_GE(v.min, 1.0);  // a makespan can never beat the lower bound
    }
  }
  EXPECT_TRUE(found_quality);
#else
  EXPECT_TRUE(s.stats.histograms.empty());
  EXPECT_TRUE(s.stats.gauges.empty());
#endif
  obs::MetricsRegistry::instance().reset();
}

// ---------------------------------------------------------------------------
// ScheduleCache unit tests (DESIGN.md §15)

CacheKey test_key(std::uint64_t content_hash, std::uint64_t seed) {
  CacheKey key;
  key.content_hash = content_hash;
  key.scheme = 0;
  key.m = 4;
  key.partition = -1;
  key.seed = seed;
  return key;
}

ScheduleCache::Value test_payload(std::uint64_t makespan,
                                  std::size_t n_starts = 8) {
  auto payload = std::make_shared<QueryResponse>();
  payload->makespan = makespan;
  payload->schedule_hash = makespan * 31;
  payload->starts.assign(n_starts, 1);
  return payload;
}

TEST(ScheduleCache, SingleFlightCoalescesConcurrentProbes) {
  ScheduleCache cache{ScheduleCacheOptions{}};
  cache.invalidate(7);
  const CacheKey key = test_key(7, 1);

  constexpr int kThreads = 8;
  std::atomic<int> arrived{0};
  std::vector<std::future<std::uint64_t>> results;
  results.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    results.push_back(std::async(std::launch::async, [&] {
      arrived.fetch_add(1);
      ScheduleCache::Probe probe = cache.lookup_or_join(key);
      if (probe.kind == ScheduleCache::ProbeKind::kMiss) {
        // The leader waits for the pack so most others park on the
        // in-flight entry rather than hitting after the fill.
        while (arrived.load() < kThreads) std::this_thread::yield();
        probe.value = test_payload(42);
        cache.fill(std::move(probe.ticket), probe.value);
      }
      return probe.value->makespan;
    }));
  }
  for (auto& r : results) EXPECT_EQ(r.get(), 42u);

  const ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // exactly one computation
  EXPECT_EQ(stats.hits + stats.inflight_waits,
            static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ScheduleCache, LeaderFailurePropagatesToWaitersAndIsNotCached) {
  ScheduleCache cache{ScheduleCacheOptions{}};
  cache.invalidate(7);
  const CacheKey key = test_key(7, 2);

  ScheduleCache::Probe leader = cache.lookup_or_join(key);
  ASSERT_EQ(leader.kind, ScheduleCache::ProbeKind::kMiss);
  std::atomic<bool> parked{false};
  auto waiter = std::async(std::launch::async, [&] {
    parked.store(true);
    cache.lookup_or_join(key);  // throws the leader's exception
  });
  while (!parked.load()) std::this_thread::yield();
  cache.fail(std::move(leader.ticket),
             std::make_exception_ptr(std::runtime_error("boom")));
  try {
    waiter.get();
    FAIL() << "waiter should rethrow the leader's failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Failures are never cached: the next probe is a fresh miss.
  ScheduleCache::Probe retry = cache.lookup_or_join(key);
  EXPECT_EQ(retry.kind, ScheduleCache::ProbeKind::kMiss);
  cache.fill(std::move(retry.ticket), test_payload(1));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ScheduleCache, AbandonedTicketFailsWaitersInsteadOfHangingThem) {
  ScheduleCache cache{ScheduleCacheOptions{}};
  cache.invalidate(7);
  const CacheKey key = test_key(7, 3);
  std::optional<ScheduleCache::Probe> leader(cache.lookup_or_join(key));
  ASSERT_EQ(leader->kind, ScheduleCache::ProbeKind::kMiss);
  auto waiter = std::async(std::launch::async, [&] {
    // Parks on the leader's in-flight entry; the Ticket destructor must
    // wake it with an error — never leave it blocked forever.
    ScheduleCache::Probe probe = cache.lookup_or_join(key);
    if (probe.kind == ScheduleCache::ProbeKind::kMiss) {
      // Raced past the destruction and became a leader itself: resolve
      // the ticket so nothing leaks, and still report "did not hang".
      cache.fail(std::move(probe.ticket),
                 std::make_exception_ptr(std::runtime_error("late")));
      throw std::runtime_error("late");
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  leader.reset();  // unresolved Ticket unwinds — waiters must be failed
  EXPECT_THROW(waiter.get(), std::runtime_error);
}

TEST(ScheduleCache, EvictionRespectsEntryBound) {
  ScheduleCacheOptions options;
  options.max_entries = 8;
  options.shards = 1;  // single shard makes the bounds exact
  ScheduleCache cache{options};
  cache.invalidate(7);
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    ScheduleCache::Probe probe = cache.lookup_or_join(test_key(7, seed));
    ASSERT_EQ(probe.kind, ScheduleCache::ProbeKind::kMiss);
    cache.fill(std::move(probe.ticket), test_payload(seed));
  }
  const ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 8u);
  EXPECT_EQ(stats.evictions, 24u);
  // LRU: the most recent keys survived.
  EXPECT_EQ(cache.lookup_or_join(test_key(7, 31)).kind,
            ScheduleCache::ProbeKind::kHit);
}

TEST(ScheduleCache, EvictionRespectsByteBoundAndOversizedEntriesAreSkipped) {
  ScheduleCacheOptions options;
  options.max_entries = 1u << 20;
  options.max_bytes = 4096;
  options.shards = 1;
  ScheduleCache cache{options};
  cache.invalidate(7);
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    ScheduleCache::Probe probe = cache.lookup_or_join(test_key(7, seed));
    ASSERT_EQ(probe.kind, ScheduleCache::ProbeKind::kMiss);
    cache.fill(std::move(probe.ticket), test_payload(seed, /*n_starts=*/128));
  }
  ScheduleCacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes, 4096u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);

  // A payload bigger than the whole byte budget is never admitted (and
  // must not thrash out resident entries).
  const std::uint64_t resident = stats.entries;
  ScheduleCache::Probe big = cache.lookup_or_join(test_key(7, 999));
  ASSERT_EQ(big.kind, ScheduleCache::ProbeKind::kMiss);
  cache.fill(std::move(big.ticket), test_payload(999, /*n_starts=*/100'000));
  stats = cache.stats();
  EXPECT_EQ(stats.entries, resident);
  EXPECT_EQ(cache.lookup_or_join(test_key(7, 999)).kind,
            ScheduleCache::ProbeKind::kMiss);
}

TEST(ScheduleCache, InvalidateSweepsOldEpochAndDropsStaleFills) {
  ScheduleCache cache{ScheduleCacheOptions{}};
  cache.invalidate(1);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    ScheduleCache::Probe probe = cache.lookup_or_join(test_key(1, seed));
    cache.fill(std::move(probe.ticket), test_payload(seed));
  }
  EXPECT_EQ(cache.stats().entries, 6u);

  // A leader starts computing under hash 1, then the swap lands.
  ScheduleCache::Probe racing = cache.lookup_or_join(test_key(1, 100));
  ASSERT_EQ(racing.kind, ScheduleCache::ProbeKind::kMiss);
  cache.invalidate(2);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().invalidations, 6u);
  // The racing fill still wakes its waiters but is NOT admitted: its epoch
  // is stale, so the swap can never be beaten by an in-flight computation.
  cache.fill(std::move(racing.ticket), test_payload(100));
  EXPECT_EQ(cache.stats().entries, 0u);
  // New-epoch entries admit normally.
  ScheduleCache::Probe fresh = cache.lookup_or_join(test_key(2, 0));
  cache.fill(std::move(fresh.ticket), test_payload(0));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ScheduleCache, DisabledCacheComputesEveryProbeWithInertTickets) {
  ScheduleCache cache{no_cache()};
  EXPECT_FALSE(cache.enabled());
  for (int i = 0; i < 3; ++i) {
    ScheduleCache::Probe probe = cache.lookup_or_join(test_key(7, 1));
    EXPECT_EQ(probe.kind, ScheduleCache::ProbeKind::kMiss);
    cache.fill(std::move(probe.ticket), test_payload(1));
  }
  const ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// ---------------------------------------------------------------------------
// ServeService x ScheduleCache

TEST(ServeService, CacheHitIsByteIdenticalToTheColdPath) {
  const dag::SweepInstance instance = make_instance();
  ServeService cached = make_service(instance);
  ServeService cold = make_service(instance, true, no_cache());

  for (const Scheme scheme :
       {Scheme::kLevel, Scheme::kRandomDelay, Scheme::kDescendant}) {
    for (const bool want_starts : {false, true}) {
      Request request = query_request(scheme, 4, 17);
      request.query.want_starts = want_starts;
      const std::vector<std::byte> cold_bytes =
          encode_response(cold.handle(request));
      // First probe misses and computes; every later one must hit and
      // still put the exact same bytes on the wire.
      for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(encode_response(cached.handle(request)), cold_bytes)
            << "scheme=" << static_cast<int>(scheme)
            << " want_starts=" << want_starts << " round=" << round;
      }
    }
  }
  const ScheduleCacheStats stats = cached.cache_stats();
  // 3 schemes x (1 miss + 5 hits): the want_starts=true probe hits the
  // entry its scalar twin filled — starts are cached unconditionally.
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 15u);
  EXPECT_EQ(stats.hit_rate_pct(), 83u);
}

TEST(ServeService, ConcurrentIdenticalQueriesComputeOnce) {
  ServeService service = make_service(make_instance());
  const Request request = query_request(Scheme::kLevel, 4, 5);
  const std::vector<std::byte> expected =
      encode_response(service.handle(request));  // warm reference

  ServeService hammered = make_service(make_instance());
  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&] {
        if (encode_response(hammered.handle(request)) != expected) {
          mismatches.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  const ScheduleCacheStats stats = hammered.cache_stats();
  EXPECT_EQ(stats.misses, 1u);  // single flight: one list_schedule total
  EXPECT_EQ(stats.hits + stats.inflight_waits,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ServeService, SwapUnderHammerServesZeroStaleResponses) {
  const dag::SweepInstance inst_a = make_instance();
  const dag::SweepInstance inst_b = dag::random_instance(50, 2, 4, 1.5, 31);
  const std::string path_b =
      (std::filesystem::path(::testing::TempDir()) / "hammer_b.sweepart")
          .string();
  dag::save_artifact(inst_b, path_b);

  // Cold references: the only two byte-exact answers a query may get.
  ServeService cold_a = make_service(inst_a, true, no_cache());
  ServeService cold_b(dag::Artifact::map_file(path_b), no_cache());
  constexpr std::uint64_t kSeeds = 4;
  std::vector<std::vector<std::byte>> expect_a, expect_b;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Request request = query_request(Scheme::kLevel, 4, seed);
    expect_a.push_back(encode_response(cold_a.handle(request)));
    expect_b.push_back(encode_response(cold_b.handle(request)));
    ASSERT_NE(expect_a.back(), expect_b.back());  // the test can detect staleness
  }

  ServeService service = make_service(inst_a);
  std::atomic<bool> go{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> hammer;
  for (int t = 0; t < 4; ++t) {
    hammer.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        const auto seed = static_cast<std::uint64_t>((i + t) % kSeeds);
        const std::vector<std::byte> got = encode_response(
            service.handle(query_request(Scheme::kLevel, 4, seed)));
        // Snapshot consistency: every response is a full, correct answer
        // for ONE of the two artifacts — never a mix, never garbage.
        if (got != expect_a[seed] && got != expect_b[seed]) bad.fetch_add(1);
      }
    });
  }
  go.store(true);
  service.swap_to(path_b);
  for (auto& t : hammer) t.join();
  EXPECT_EQ(bad.load(), 0);

  // The swap has fully settled: every post-swap response must be B's —
  // a cached A-answer surviving here would be a stale serve.
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    EXPECT_EQ(encode_response(
                  service.handle(query_request(Scheme::kLevel, 4, seed))),
              expect_b[seed])
        << "stale response after swap, seed " << seed;
  }
  std::filesystem::remove(path_b);
}

TEST(ServeService, StatsCarryCacheCountersAndDisabledCacheOmitsThem) {
  ServeService service = make_service(make_instance());
  const Request request = query_request(Scheme::kLevel, 4, 9);
  ASSERT_EQ(service.handle(request).status, 0u);  // miss
  ASSERT_EQ(service.handle(request).status, 0u);  // hit
  Request stats_request;
  stats_request.type = MsgType::kStats;
  const Response s = service.handle(stats_request);
  ASSERT_EQ(s.status, 0u);
  EXPECT_EQ(entry_value(s.stats, "serve.cache.hits"), 1u);
  EXPECT_EQ(entry_value(s.stats, "serve.cache.misses"), 1u);
  EXPECT_EQ(entry_value(s.stats, "serve.cache.hit_rate_pct"), 50u);
  EXPECT_EQ(entry_value(s.stats, "serve.cache.entries"), 1u);
  EXPECT_GT(entry_value(s.stats, "serve.cache.bytes"), 0u);

  ServeService uncached = make_service(make_instance(), true, no_cache());
  EXPECT_FALSE(uncached.cache_enabled());
  ASSERT_EQ(uncached.handle(request).status, 0u);
  const Response u = uncached.handle(stats_request);
  for (const auto& [key, value] : u.stats.entries) {
    EXPECT_FALSE(key.starts_with("serve.cache.")) << key;
  }
}

// ---------------------------------------------------------------------------
// Server satellites: accept-errno classification, wire-error accounting,
// client receive deadline.

TEST(ServeServer, TransientAcceptErrnoClassification) {
  for (const int transient :
       {ECONNABORTED, EAGAIN, EMFILE, ENFILE, ENOBUFS, ENOMEM}) {
    EXPECT_TRUE(is_transient_accept_error(transient)) << transient;
  }
  for (const int fatal : {0, EBADF, EINVAL, ENOTSOCK, EOPNOTSUPP}) {
    EXPECT_FALSE(is_transient_accept_error(fatal)) << fatal;
  }
}

TEST(ServeServer, WireErrorsCountTowardTheStatsErrorsEntry) {
  // The invariant pinned here: the stats frame's `errors` entry counts
  // EVERY non-ok response the daemon puts on the wire — handler failures
  // AND malformed frames — so it agrees with serve.status.error.
  ServeService service = make_service(make_instance());
  ServerOptions options;
  options.socket_path =
      (std::filesystem::path(::testing::TempDir()) / "wire_err.sock").string();
  options.threads = 2;
#if !defined(SWEEP_OBS_DISABLE)
  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(true);
#endif
  Server server(service, options);
  server.start();

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);

  // A framed payload that cannot decode: WireError inside serve_connection.
  const std::vector<std::byte> garbage(3, std::byte{0xff});
  write_frame(fd, garbage);
  std::vector<std::byte> payload;
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_NE(decode_response(payload).status, 0u);

  // Same connection, valid stats request: the error above must be visible.
  write_frame(fd, encode_request([] {
                Request r;
                r.type = MsgType::kStats;
                return r;
              }()));
  ASSERT_TRUE(read_frame(fd, payload));
  const Response stats = decode_response(payload);
  ASSERT_EQ(stats.status, 0u);
  EXPECT_EQ(entry_value(stats.stats, "errors"), 1u);
  EXPECT_EQ(service.errors_returned(), 1u);
#if !defined(SWEEP_OBS_DISABLE)
  // The two books agree: service-level errors == wire-level status.error.
  EXPECT_EQ(entry_value(stats.stats, "errors"),
            entry_value(stats.stats, "serve.status.error"));
  obs::set_metrics_enabled(false);
  obs::MetricsRegistry::instance().reset();
#endif
  ::close(fd);
  server.stop();
}

TEST(ServeClient, ReceiveDeadlineThrowsInsteadOfHangingForever) {
  // A daemon that accepts the connection into its listen backlog but never
  // reads: without a deadline, call() blocks forever.
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "stalled.sock").string();
  ::unlink(path.c_str());
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(lfd, 4), 0);

  ClientOptions client_options;
  client_options.timeout_ms = 200;
  Client client(path, client_options);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    client.ping();
    FAIL() << "expected a receive timeout";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  ::close(lfd);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace sweep::serve
