#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace sweep::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  OnlineStats s;
  for (double v : values) s.add(v);
  double sum = 0.0;
  for (double v : values) sum += v;
  const double mu = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - mu) * (v - mu);
  EXPECT_EQ(s.count(), values.size());
  EXPECT_DOUBLE_EQ(s.mean(), mu);
  EXPECT_NEAR(s.variance(), ss / (static_cast<double>(values.size()) - 1), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(OnlineStats, MergeEqualsBulk) {
  Rng rng(3);
  OnlineStats bulk;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.next_double(-10, 10);
    bulk.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-8);
  EXPECT_EQ(a.min(), bulk.min());
  EXPECT_EQ(a.max(), bulk.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> values = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.375), 1.5);
}

TEST(Quantile, UnsortedInputAndClamping) {
  const std::vector<double> values = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(values, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(MeanStddev, SimpleValues) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  // Sample stddev of this classic set is ~2.138.
  EXPECT_NEAR(stddev(values), 2.138, 0.001);
}

TEST(Histogram, BinsAndClamping) {
  const std::vector<double> values = {-1.0, 0.1, 0.5, 0.9, 2.0};
  const auto h = histogram(values, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -1 clamps into bin 0; 0.1 lands there
  EXPECT_EQ(h[1], 3u);  // 0.5 and 0.9 in bin 1; 2.0 clamps into bin 1
}

TEST(Histogram, DegenerateRange) {
  const std::vector<double> values = {1.0, 2.0};
  const auto h = histogram(values, 5.0, 5.0, 4);
  ASSERT_EQ(h.size(), 4u);
  for (auto c : h) EXPECT_EQ(c, 0u);
}

TEST(Histogram, SkipsNonFiniteValues) {
  // NaN / ±inf have no defined bin (and casting them to an integer is UB);
  // they must be dropped, leaving the finite values binned as usual.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> values = {nan, 0.1, inf, 0.9, -inf, nan};
  const auto h = histogram(values, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 1u);
}

TEST(Histogram, NonFiniteValuesAreCounted) {
  // The dropped values are not silently lost: the metrics registry counts
  // them under stats.histogram.non_finite when collection is armed.
  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(true);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> values = {nan, 0.5, inf, -inf};
  (void)histogram(values, 0.0, 1.0, 4);
  obs::set_metrics_enabled(false);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  std::uint64_t counted = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "stats.histogram.non_finite") counted = value;
  }
#if defined(SWEEP_OBS_DISABLE)
  EXPECT_EQ(counted, 0u);  // compiled-out instrumentation records nothing
#else
  EXPECT_EQ(counted, 3u);
#endif
}

TEST(Summarize, MentionsAllFields) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const std::string s = summarize(values);
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("mean=2"), std::string::npos);
  EXPECT_NE(s.find("min=1"), std::string::npos);
  EXPECT_NE(s.find("max=3"), std::string::npos);
}

}  // namespace
}  // namespace sweep::util
