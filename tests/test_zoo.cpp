#include "mesh/zoo.hpp"

#include <gtest/gtest.h>

#include "mesh/mesh_stats.hpp"

namespace sweep::mesh {
namespace {

TEST(MeshZoo, NamesAreThePapersMeshes) {
  const auto& names = MeshZoo::names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "tetonly");
  EXPECT_EQ(names[1], "well_logging");
  EXPECT_EQ(names[2], "long");
  EXPECT_EQ(names[3], "prismtet");
}

TEST(MeshZoo, ByNameDispatchesAndRejectsUnknown) {
  const UnstructuredMesh m = MeshZoo::by_name("tetonly", 0.3);
  EXPECT_EQ(m.name(), "tetonly");
  EXPECT_THROW(MeshZoo::by_name("nope"), std::invalid_argument);
}

// Full-scale cell counts should land near the paper's mesh sizes
// (tetonly 31,481; well_logging 43,012; long 61,737; prismtet 118,211).
TEST(MeshZoo, FullScaleCountsNearPaper) {
  EXPECT_NEAR(static_cast<double>(MeshZoo::tetonly_like(1.0).n_cells()),
              31481.0, 31481.0 * 0.1);
  EXPECT_NEAR(static_cast<double>(MeshZoo::well_logging_like(1.0).n_cells()),
              43012.0, 43012.0 * 0.1);
  EXPECT_NEAR(static_cast<double>(MeshZoo::long_like(1.0).n_cells()),
              61737.0, 61737.0 * 0.1);
  EXPECT_NEAR(static_cast<double>(MeshZoo::prismtet_like(1.0).n_cells()),
              118211.0, 118211.0 * 0.1);
}

class ZooSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooSweep, SmallScaleInstancesAreSane) {
  const UnstructuredMesh m = MeshZoo::by_name(GetParam(), 0.35);
  const MeshStats s = compute_stats(m);
  EXPECT_GT(s.n_cells, 50u);
  EXPECT_GT(s.min_volume, 0.0);
  EXPECT_GE(s.min_degree, 1u);
  EXPECT_LE(s.max_degree, 5u);  // tets <= 4, prisms <= 5
  EXPECT_TRUE(is_connected(m));
  EXPECT_EQ(m.name(), GetParam());
}

TEST_P(ZooSweep, SeedChangesGeometryNotTopologyScale) {
  const UnstructuredMesh a = MeshZoo::by_name(GetParam(), 0.3, 1);
  const UnstructuredMesh b = MeshZoo::by_name(GetParam(), 0.3, 2);
  EXPECT_EQ(a.n_cells(), b.n_cells());
  // Jitter differs, so at least one centroid moves.
  bool any_different = false;
  for (CellId c = 0; c < a.n_cells() && !any_different; ++c) {
    any_different = !(a.centroid(c) == b.centroid(c));
  }
  EXPECT_TRUE(any_different);
}

TEST_P(ZooSweep, ScaleGrowsCellCount) {
  const UnstructuredMesh small = MeshZoo::by_name(GetParam(), 0.25);
  const UnstructuredMesh big = MeshZoo::by_name(GetParam(), 0.5);
  EXPECT_GT(big.n_cells(), small.n_cells());
}

INSTANTIATE_TEST_SUITE_P(AllMeshes, ZooSweep,
                         ::testing::Values("tetonly", "well_logging", "long",
                                           "prismtet"));

}  // namespace
}  // namespace sweep::mesh
