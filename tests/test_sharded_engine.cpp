#include "core/sharded_schedule.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "core/validate.hpp"
#include "obs/obs.hpp"
#include "sweep/dag_builder.hpp"
#include "sweep/directions.hpp"
#include "sweep/random_dag.hpp"
#include "test_helpers.hpp"

namespace sweep::core {
namespace {

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const char* name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

TEST(ShardMap, InvertsContiguousBlockBoundaries) {
  for (std::size_t m : {1u, 2u, 3u, 5u, 7u, 64u, 100u}) {
    for (std::size_t W = 1; W <= m; ++W) {
      for (std::size_t w = 0; w < W; ++w) {
        const std::size_t lo = w * m / W;
        const std::size_t hi = (w + 1) * m / W;
        for (std::size_t p = lo; p < hi; ++p) {
          EXPECT_EQ(detail::shard_of_processor(p, m, W), w)
              << "m=" << m << " W=" << W << " p=" << p;
        }
      }
    }
  }
}

TEST(ShardMap, ResolveWorkersClampsToProcessors) {
  EXPECT_EQ(detail::resolve_engine_workers(1, 100), 1u);
  EXPECT_EQ(detail::resolve_engine_workers(8, 100), 8u);
  EXPECT_EQ(detail::resolve_engine_workers(8, 3), 3u);
  EXPECT_EQ(detail::resolve_engine_workers(5, 1), 1u);
  // jobs = 0 resolves to the machine's executor count, still >= 1.
  EXPECT_GE(detail::resolve_engine_workers(0, 100), 1u);
  EXPECT_EQ(detail::resolve_engine_workers(0, 1), 1u);
}

void expect_matches_reference(const dag::SweepInstance& inst,
                              const Assignment& assignment, std::size_t m,
                              ListScheduleOptions options, const char* what) {
  options.jobs = 1;
  const Schedule reference =
      list_schedule_reference(inst, assignment, m, options);
  for (std::size_t jobs : {0u, 2u, 3u, 8u}) {
    options.jobs = jobs;
    const Schedule sharded = list_schedule(inst, assignment, m, options);
    ASSERT_EQ(sharded.n_tasks(), reference.n_tasks());
    for (TaskId t = 0; t < reference.n_tasks(); ++t) {
      ASSERT_EQ(sharded.start(t), reference.start(t))
          << what << ": jobs=" << jobs << " diverges at task " << t;
    }
  }
}

TEST(ShardedEngine, RandomInstancesMatchReference) {
  const auto inst = dag::random_instance(120, 5, 9, 2.0, 41);
  for (std::size_t m : {2u, 7u, 32u}) {
    util::Rng rng(m);
    const Assignment assignment = random_assignment(inst.n_cells(), m, rng);
    expect_matches_reference(inst, assignment, m, {}, "no priorities");

    ListScheduleOptions options;
    const auto level = level_priorities(inst);
    options.priorities = level;
    expect_matches_reference(inst, assignment, m, options, "level");

    const auto dfds = dfds_priorities(inst, assignment);
    options.priorities = dfds;
    expect_matches_reference(inst, assignment, m, options, "DFDS");
  }
}

TEST(ShardedEngine, GeometricInstanceMatchesReference) {
  const auto mesh = test::small_tet_mesh(5, 5, 3);
  const auto inst = dag::build_instance(mesh, dag::level_symmetric(2));
  util::Rng rng(3);
  const Assignment assignment = random_assignment(inst.n_cells(), 8, rng);
  ListScheduleOptions options;
  const auto level = level_priorities(inst);
  options.priorities = level;
  expect_matches_reference(inst, assignment, 8, options, "geometric");
}

TEST(ShardedEngine, NegativePrioritiesMatchReference) {
  const auto inst = dag::random_instance(60, 3, 6, 1.5, 19);
  util::Rng rng(4);
  const Assignment assignment = random_assignment(inst.n_cells(), 6, rng);
  std::vector<std::int64_t> negative(inst.n_tasks());
  for (std::size_t t = 0; t < negative.size(); ++t) {
    negative[t] = -static_cast<std::int64_t>(t % 13);
  }
  ListScheduleOptions options;
  options.priorities = negative;
  expect_matches_reference(inst, assignment, 6, options, "negative");
}

TEST(ShardedEngine, RepeatedRunsAreDeterministic) {
  // Stealing may interleave differently on every run; the schedule must not.
  const auto inst = dag::random_instance(150, 4, 10, 2.0, 67);
  util::Rng rng(11);
  const Assignment assignment = random_assignment(inst.n_cells(), 16, rng);
  ListScheduleOptions options;
  const auto level = level_priorities(inst);
  options.priorities = level;
  options.jobs = 8;
  const Schedule first = list_schedule(inst, assignment, 16, options);
  for (int run = 0; run < 5; ++run) {
    const Schedule again = list_schedule(inst, assignment, 16, options);
    ASSERT_EQ(again.starts(), first.starts()) << "run " << run;
  }
}

TEST(ShardedEngine, TakesShardedPathAndCountsRuns) {
  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(true);
  const auto inst = dag::random_instance(80, 4, 8, 2.0, 13);
  util::Rng rng(7);
  const Assignment assignment = random_assignment(inst.n_cells(), 8, rng);
  ListScheduleOptions options;
  options.jobs = 4;
  const Schedule s = list_schedule(inst, assignment, 8, options);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  obs::set_metrics_enabled(false);
  EXPECT_TRUE(s.complete());
#if !defined(SWEEP_OBS_DISABLE)
  EXPECT_EQ(counter_value(snap, "engine.sharded.runs"), 1u);
  EXPECT_EQ(counter_value(snap, "engine.pops"), inst.n_tasks());
#else
  (void)snap;
#endif
}

TEST(ShardedEngine, GatedCallsUseSerialEngines) {
  // jobs != 1 with release times must not take the sharded path (and must
  // still match the reference).
  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(true);
  const auto inst = dag::random_instance(50, 3, 6, 1.8, 23);
  util::Rng rng(9);
  const Assignment assignment = random_assignment(inst.n_cells(), 4, rng);
  std::vector<TimeStep> releases(inst.n_tasks(), 0);
  releases[0] = 4;
  ListScheduleOptions options;
  options.release_times = releases;
  options.jobs = 8;
  const Schedule gated = list_schedule(inst, assignment, 4, options);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  obs::set_metrics_enabled(false);
  EXPECT_EQ(counter_value(snap, "engine.sharded.runs"), 0u);
  const Schedule reference =
      list_schedule_reference(inst, assignment, 4, options);
  EXPECT_EQ(gated.starts(), reference.starts());
}

TEST(ShardedEngine, WidePriorityRangeUsesSerialEngines) {
  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(true);
  const auto inst = dag::random_instance(40, 2, 5, 1.5, 3);
  util::Rng rng(1);
  const Assignment assignment = random_assignment(inst.n_cells(), 4, rng);
  std::vector<std::int64_t> wide(inst.n_tasks());
  for (std::size_t t = 0; t < wide.size(); ++t) {
    wide[t] = static_cast<std::int64_t>(t) * 1000000;
  }
  ListScheduleOptions options;
  options.priorities = wide;
  options.jobs = 4;
  const Schedule s = list_schedule(inst, assignment, 4, options);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  obs::set_metrics_enabled(false);
  EXPECT_EQ(counter_value(snap, "engine.sharded.runs"), 0u);
  EXPECT_EQ(s.starts(),
            list_schedule_reference(inst, assignment, 4, options).starts());
}

TEST(ShardedEngine, OutboxCapacityIsRetainedAcrossSupersteps) {
  // The per-(worker, dest shard) outboxes and the resolve batch live in
  // thread-local scratch: after a warm-up run on the same shape, a second
  // run must not reallocate them mid-superstep. engine.sharded.outbox_growths
  // counts capacity increases observed *within* one run, so the warm run
  // must report zero.
  const auto inst = dag::random_instance(200, 5, 10, 2.2, 57);
  util::Rng rng(31);
  const Assignment assignment = random_assignment(inst.n_cells(), 16, rng);
  ListScheduleOptions options;
  const auto level = level_priorities(inst);
  options.priorities = level;
  options.jobs = 4;
  (void)list_schedule(inst, assignment, 16, options);  // warm the scratch

  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(true);
  (void)list_schedule(inst, assignment, 16, options);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  obs::set_metrics_enabled(false);
#if !defined(SWEEP_OBS_DISABLE)
  EXPECT_EQ(counter_value(snap, "engine.sharded.runs"), 1u);
  EXPECT_EQ(counter_value(snap, "engine.sharded.outbox_growths"), 0u);
#else
  (void)snap;
#endif
}

TEST(ShardedEngine, HighFanInPastPackedCapMatchesReference) {
  // A funnel whose hub indegree (399) exceeds the serial slot engines'
  // 255 cap: the sharded engine keeps a full u32 indegree lane, so it must
  // stay on the sharded path and still match the reference — this also
  // sends one hub id hundreds of times into a single resolve batch, the
  // SIMD kernel's duplicate-collapse worst case.
  std::vector<std::pair<dag::NodeId, dag::NodeId>> edges;
  for (dag::NodeId src = 0; src < 399; ++src) edges.push_back({src, 399});
  std::vector<dag::SweepDag> dags;
  dags.emplace_back(400, edges);
  dags.emplace_back(400, edges);
  const auto inst = dag::SweepInstance(400, std::move(dags), "fanin");
  util::Rng rng(13);
  const Assignment assignment = random_assignment(inst.n_cells(), 8, rng);
  expect_matches_reference(inst, assignment, 8, {}, "fan-in");
}

TEST(ShardedEngine, ThrowsOnCyclicInstance) {
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(3, {{0, 1}, {1, 2}, {2, 0}}));
  auto inst = dag::SweepInstance(3, std::move(dags), "cycle");
  ListScheduleOptions options;
  options.jobs = 2;
  EXPECT_THROW(list_schedule(inst, Assignment{0, 1, 0}, 2, options),
               std::logic_error);
}

TEST(ShardedEngine, ValidatesLargeFanOut) {
  // A wider instance where stealing actually has work to move around.
  const auto inst = dag::random_instance(400, 6, 12, 2.5, 101);
  util::Rng rng(23);
  const Assignment assignment = random_assignment(inst.n_cells(), 48, rng);
  ListScheduleOptions options;
  const auto level = level_priorities(inst);
  options.priorities = level;
  options.jobs = 8;
  const Schedule s = list_schedule(inst, assignment, 48, options);
  const auto valid = validate_schedule(inst, s);
  EXPECT_TRUE(valid) << valid.error;
  EXPECT_EQ(s.starts(),
            list_schedule_reference(inst, assignment, 48, options).starts());
}

}  // namespace
}  // namespace sweep::core
