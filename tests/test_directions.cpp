#include "sweep/directions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

namespace sweep::dag {
namespace {

constexpr double kFourPi = 4.0 * std::numbers::pi;

void expect_unit_vectors(const DirectionSet& set) {
  for (const Vec3& d : set.directions) {
    EXPECT_NEAR(mesh::norm(d), 1.0, 1e-12);
  }
}

void expect_weights_sum_to_four_pi(const DirectionSet& set) {
  double sum = 0.0;
  for (double w : set.weights) sum += w;
  EXPECT_NEAR(sum, kFourPi, 1e-9);
}

TEST(LevelSymmetric, CountsFollowNFormula) {
  EXPECT_EQ(level_symmetric(2).size(), 8u);
  EXPECT_EQ(level_symmetric(4).size(), 24u);
  EXPECT_EQ(level_symmetric(6).size(), 48u);
  EXPECT_EQ(level_symmetric(8).size(), 80u);
}

TEST(LevelSymmetric, UnitVectorsAndWeights) {
  for (std::size_t order : {2u, 4u, 6u, 8u}) {
    const DirectionSet set = level_symmetric(order);
    expect_unit_vectors(set);
    expect_weights_sum_to_four_pi(set);
  }
}

TEST(LevelSymmetric, FullOctantSymmetry) {
  const DirectionSet set = level_symmetric(4);
  // For every direction, all 8 sign flips are present.
  std::set<std::array<long long, 3>> keys;
  auto key = [](const Vec3& v) {
    return std::array<long long, 3>{std::llround(v.x * 1e12),
                                    std::llround(v.y * 1e12),
                                    std::llround(v.z * 1e12)};
  };
  for (const Vec3& d : set.directions) keys.insert(key(d));
  for (const Vec3& d : set.directions) {
    for (int sx : {1, -1}) {
      for (int sy : {1, -1}) {
        for (int sz : {1, -1}) {
          EXPECT_TRUE(keys.count(key({d.x * sx, d.y * sy, d.z * sz})));
        }
      }
    }
  }
}

TEST(LevelSymmetric, FirstMomentVanishes) {
  // Odd moments of a symmetric quadrature must vanish.
  const DirectionSet set = level_symmetric(6);
  Vec3 first{};
  for (std::size_t i = 0; i < set.size(); ++i) {
    first += set.directions[i] * set.weights[i];
  }
  EXPECT_NEAR(mesh::norm(first), 0.0, 1e-9);
}

TEST(LevelSymmetric, RejectsOddOrSmallOrders) {
  EXPECT_THROW(level_symmetric(0), std::invalid_argument);
  EXPECT_THROW(level_symmetric(3), std::invalid_argument);
}

TEST(FibonacciSphere, SpreadsDirections) {
  const DirectionSet set = fibonacci_sphere(100);
  EXPECT_EQ(set.size(), 100u);
  expect_unit_vectors(set);
  expect_weights_sum_to_four_pi(set);
  // Min pairwise angle should not collapse (uniform-ish spread).
  double min_dot = -1.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      min_dot = std::max(min_dot, dot(set.directions[i], set.directions[j]));
    }
  }
  EXPECT_LT(min_dot, 0.999);  // no near-duplicates
}

TEST(FibonacciSphere, RejectsZero) {
  EXPECT_THROW(fibonacci_sphere(0), std::invalid_argument);
}

TEST(RandomDirections, DeterministicAndUnit) {
  const DirectionSet a = random_directions(50, 7);
  const DirectionSet b = random_directions(50, 7);
  EXPECT_EQ(a.directions, b.directions);
  expect_unit_vectors(a);
  const DirectionSet c = random_directions(50, 8);
  EXPECT_NE(a.directions, c.directions);
}

TEST(AxisDirections, SixAxes) {
  const DirectionSet set = axis_directions();
  EXPECT_EQ(set.size(), 6u);
  expect_unit_vectors(set);
  expect_weights_sum_to_four_pi(set);
}

TEST(SnOrderFor, SmallestOrderCoveringK) {
  EXPECT_EQ(sn_order_for(1), 2u);
  EXPECT_EQ(sn_order_for(8), 2u);
  EXPECT_EQ(sn_order_for(9), 4u);
  EXPECT_EQ(sn_order_for(24), 4u);
  EXPECT_EQ(sn_order_for(25), 6u);
  EXPECT_EQ(sn_order_for(48), 6u);
  EXPECT_EQ(sn_order_for(80), 8u);
}

}  // namespace
}  // namespace sweep::dag
