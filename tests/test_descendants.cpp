#include "sweep/descendants.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sweep/random_dag.hpp"
#include "test_helpers.hpp"

namespace sweep::dag {
namespace {

TEST(ExactDescendants, HandcraftedDag) {
  // 0 -> {1,2}, 1 -> 3, 2 -> 3: desc(0)=3, desc(1)=1, desc(2)=1, desc(3)=0.
  const SweepDag g = test::make_dag(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto counts = exact_descendant_counts(g);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
}

TEST(ExactDescendants, SharedDescendantsNotDoubleCounted) {
  // Diamond into a long tail: naive child-sum would overcount the tail.
  const SweepDag g = test::make_dag(
      6, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  const auto counts = exact_descendant_counts(g);
  EXPECT_EQ(counts[0], 5u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 3u);
  EXPECT_EQ(counts[3], 2u);
}

TEST(ExactDescendants, Chain) {
  util::Rng rng(1);
  const SweepDag g = chain_dag(20, rng);
  const auto counts = exact_descendant_counts(g);
  std::vector<std::uint64_t> sorted(counts);
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ExactDescendants, RefusesHugeGraphs) {
  const SweepDag g = test::make_dag(100, {{0, 1}});
  EXPECT_THROW(exact_descendant_counts(g, 50), std::invalid_argument);
  EXPECT_THROW(exact_descendant_counts_reference(g, 50), std::invalid_argument);
}

TEST(ExactDescendants, TiledMatchesReferenceOnRandomDags) {
  // Node counts straddle the strip width (kTileWords * 64 = 512 columns)
  // and the 64-bit word width: below/at/past one word, below/at/past one
  // strip, and a multi-strip graph not a multiple of either.
  for (const std::size_t n : {1u, 63u, 64u, 65u, 511u, 512u, 513u, 1200u}) {
    util::Rng rng(n);
    const SweepDag g =
        random_layered_dag(n, std::max<std::size_t>(n / 20, 2), 2.5, rng);
    EXPECT_EQ(exact_descendant_counts(g), exact_descendant_counts_reference(g))
        << "n=" << n;
  }
}

TEST(ExactDescendants, TiledStatsReportBoundedScratch) {
  // The tiled counter's working set is kTileWords words (one cache line)
  // per node, reused across strips: n * tile_width / 8 = 64n bytes,
  // independent of the strip count (DESIGN.md §11).
  util::Rng rng(4);
  const SweepDag g = random_layered_dag(1500, 12, 2.0, rng);
  TiledCountStats stats;
  const auto tiled = exact_descendant_counts(g, 1u << 14, &stats);
  EXPECT_EQ(stats.strips, (1500 + kTileWords * 64 - 1) / (kTileWords * 64));
  EXPECT_GE(stats.strips, 2u);  // actually exercises strip reuse
  EXPECT_EQ(stats.scratch_bytes_per_worker,
            1500 * kTileWords * sizeof(std::uint64_t));
  EXPECT_EQ(tiled, exact_descendant_counts_reference(g));
}

TEST(ExactDescendants, TiledEmptyDag) {
  const SweepDag g = test::make_dag(0, {});
  TiledCountStats stats;
  EXPECT_TRUE(exact_descendant_counts(g, 1u << 14, &stats).empty());
  EXPECT_EQ(stats.strips, 0u);
}

TEST(EstimatedDescendants, RejectsTooFewRounds) {
  const SweepDag g = test::make_dag(3, {{0, 1}});
  util::Rng rng(2);
  EXPECT_THROW(estimated_descendant_counts(g, rng, 1), std::invalid_argument);
}

TEST(EstimatedDescendants, CloseToExactOnRandomDags) {
  util::Rng rng(3);
  const SweepDag g = random_layered_dag(600, 20, 2.5, rng);
  const auto exact = exact_descendant_counts(g);
  // Within one labeling run the errors of overlapping reachable sets are
  // strongly correlated, so average several independent estimator runs
  // before comparing per-node.
  std::vector<double> estimated(g.n_nodes(), 0.0);
  constexpr int kRuns = 4;
  for (int run = 0; run < kRuns; ++run) {
    util::Rng est_rng(100 + static_cast<std::uint64_t>(run));
    const auto one = estimated_descendant_counts(g, est_rng, 48);
    for (std::size_t v = 0; v < g.n_nodes(); ++v) estimated[v] += one[v] / kRuns;
  }
  for (std::size_t v = 0; v < g.n_nodes(); ++v) {
    const double truth = static_cast<double>(exact[v]);
    if (truth >= 20.0) {
      EXPECT_NEAR(estimated[v], truth, truth * 0.35) << "node " << v;
    } else {
      EXPECT_LE(estimated[v], 60.0) << "node " << v;
    }
  }
}

TEST(EstimatedDescendants, PreservesCoarseRanking) {
  // Spearman-style check: top-descendant nodes by estimate should be
  // mostly the true top nodes.
  util::Rng rng(5);
  const SweepDag g = random_layered_dag(400, 15, 2.0, rng);
  const auto exact = exact_descendant_counts(g);
  util::Rng est_rng(6);
  const auto estimated = estimated_descendant_counts(g, est_rng, 32);

  auto top_decile = [&](auto&& values) {
    std::vector<std::size_t> ids(g.n_nodes());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      return values[a] > values[b];
    });
    ids.resize(g.n_nodes() / 10);
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  const auto true_top = top_decile(exact);
  const auto est_top = top_decile(estimated);
  std::vector<std::size_t> overlap;
  std::set_intersection(true_top.begin(), true_top.end(), est_top.begin(),
                        est_top.end(), std::back_inserter(overlap));
  EXPECT_GE(overlap.size(), true_top.size() / 2);
}

TEST(DescendantCounts, AdaptiveSwitchesImplementations) {
  util::Rng rng(7);
  const SweepDag small = random_layered_dag(100, 10, 2.0, rng);
  util::Rng rng2(8);
  const auto adaptive = descendant_counts(small, rng2);
  const auto exact = exact_descendant_counts(small);
  for (std::size_t v = 0; v < small.n_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(adaptive[v], static_cast<double>(exact[v]));
  }
  // Force the estimator path with a tiny threshold.
  util::Rng rng3(9);
  const auto estimated = descendant_counts(small, rng3, /*exact_threshold=*/10);
  bool any_nonzero = false;
  for (double c : estimated) any_nonzero = any_nonzero || c > 0.0;
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace sweep::dag
