#include "partition/simple_partitioners.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "partition/multilevel.hpp"
#include "test_helpers.hpp"

namespace sweep::partition {
namespace {

TEST(RandomPartition, RangeAndDeterminism) {
  const Partition a = random_partition(1000, 7, 3);
  const Partition b = random_partition(1000, 7, 3);
  EXPECT_EQ(a, b);
  for (std::uint32_t p : a) EXPECT_LT(p, 7u);
  EXPECT_EQ(count_blocks(a), 7u);
  EXPECT_THROW(random_partition(10, 0, 1), std::invalid_argument);
}

TEST(BfsBlocks, ExactBlockSizes) {
  const Graph g = graph_from_mesh(test::small_tet_mesh(6, 6, 3));
  const std::size_t block_size = 32;
  const Partition part = bfs_blocks(g, block_size);
  std::vector<std::size_t> sizes(count_blocks(part), 0);
  for (std::uint32_t b : part) ++sizes[b];
  // All blocks exactly block_size except possibly the last.
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], block_size);
  }
  EXPECT_LE(sizes.back(), block_size);
  EXPECT_THROW(bfs_blocks(g, 0), std::invalid_argument);
}

TEST(BfsBlocks, LocalityBeatsRandom) {
  const Graph g = graph_from_mesh(test::small_tet_mesh(8, 8, 3));
  const Partition bfs = bfs_blocks(g, 64);
  const std::size_t blocks = count_blocks(bfs);
  const Partition random = random_partition(g.n_vertices(), blocks, 5);
  EXPECT_LT(edge_cut(g, bfs), edge_cut(g, random));
}

TEST(CoordinateBisection, BalancedAndLocal) {
  const mesh::UnstructuredMesh m = test::small_tet_mesh(8, 8, 3);
  const Graph g = graph_from_mesh(m);
  for (std::size_t k : {2u, 5u, 16u}) {
    const Partition part = coordinate_bisection(m.centroids(), k);
    EXPECT_EQ(count_blocks(part), k);
    std::vector<std::size_t> sizes(k, 0);
    for (std::uint32_t b : part) ++sizes[b];
    const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_LE(*mx, *mn + *mn / 2 + 2) << "k=" << k;
    // Geometric locality: better cut than random.
    const Partition random = random_partition(m.n_cells(), k, 31);
    EXPECT_LT(edge_cut(g, part), edge_cut(g, random)) << "k=" << k;
  }
  EXPECT_THROW(coordinate_bisection(m.centroids(), 0), std::invalid_argument);
}

TEST(Partitioners, MultilevelBeatsBaselinesOnCut) {
  const mesh::UnstructuredMesh m = test::small_tet_mesh(9, 9, 4);
  const Graph g = graph_from_mesh(m);
  constexpr std::size_t kParts = 8;
  MultilevelOptions opts;
  opts.n_parts = kParts;
  opts.seed = 9;
  const auto ml_cut = edge_cut(g, multilevel_partition(g, opts));
  const auto rcb_cut = edge_cut(g, coordinate_bisection(m.centroids(), kParts));
  const auto rnd_cut = edge_cut(g, random_partition(g.n_vertices(), kParts, 3));
  EXPECT_LT(ml_cut, rnd_cut);
  // RCB is a strong geometric baseline; multilevel should be at least
  // competitive (within 25%).
  EXPECT_LT(static_cast<double>(ml_cut), static_cast<double>(rcb_cut) * 1.25);
}

}  // namespace
}  // namespace sweep::partition
