#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "sweep/random_dag.hpp"
#include "test_helpers.hpp"

namespace sweep::core {
namespace {

dag::SweepInstance diamond() {
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}));
  return dag::SweepInstance(4, std::move(dags), "diamond");
}

TEST(Validate, AcceptsEngineOutput) {
  const auto inst = diamond();
  const Schedule s = list_schedule(inst, Assignment{0, 1, 0, 1}, 2);
  const auto result = validate_schedule(inst, s);
  EXPECT_TRUE(result);
  EXPECT_TRUE(result.error.empty());
}

TEST(Validate, DetectsUnscheduledTask) {
  const auto inst = diamond();
  Schedule s(4, 1, 2, Assignment{0, 1, 0, 1});
  s.set_start(0, 0);
  const auto result = validate_schedule(inst, s);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("never scheduled"), std::string::npos);
}

TEST(Validate, DetectsPrecedenceViolation) {
  const auto inst = diamond();
  Schedule s = list_schedule(inst, Assignment{0, 1, 0, 1}, 2);
  // Move the sink before its predecessors.
  s.set_start(task_id(3, 0, 4), 0);
  const auto result = validate_schedule(inst, s);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("precedence"), std::string::npos);
}

TEST(Validate, DetectsEqualTimesOnDependentTasks) {
  const auto inst = diamond();
  Schedule s(4, 1, 4, Assignment{0, 1, 2, 3});
  s.set_start(task_id(0, 0, 4), 0);
  s.set_start(task_id(1, 0, 4), 0);  // same time as its predecessor
  s.set_start(task_id(2, 0, 4), 1);
  s.set_start(task_id(3, 0, 4), 2);
  const auto result = validate_schedule(inst, s);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("precedence"), std::string::npos);
}

TEST(Validate, DetectsDoubleBookedProcessor) {
  // Two independent cells on one processor at the same time.
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(2, {}));
  auto inst = dag::SweepInstance(2, std::move(dags), "pair");
  Schedule s(2, 1, 1, Assignment{0, 0});
  s.set_start(0, 0);
  s.set_start(1, 0);
  const auto result = validate_schedule(inst, s);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("same timestep"), std::string::npos);
}

TEST(Validate, DetectsOutOfRangeProcessor) {
  const auto inst = diamond();
  Schedule s(4, 1, 2, Assignment{0, 1, 0, 7});
  const auto result = validate_schedule(inst, s);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("out-of-range"), std::string::npos);
}

TEST(Validate, DetectsShapeMismatch) {
  const auto inst = diamond();
  const Schedule s(3, 1, 2, Assignment{0, 1, 0});
  EXPECT_FALSE(validate_schedule(inst, s));
}

}  // namespace
}  // namespace sweep::core
