#include "mesh/mesh.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/mesh_stats.hpp"
#include "test_helpers.hpp"

namespace sweep::mesh {
namespace {

/// Two unit cubes sharing the x=1 face (hand-built two-cell mesh).
UnstructuredMesh two_cell_mesh() {
  std::vector<Vec3> centroids = {{0.5, 0.5, 0.5}, {1.5, 0.5, 0.5}};
  std::vector<double> volumes = {1.0, 1.0};
  std::vector<Face> faces;
  Face shared;
  shared.cell_a = 0;
  shared.cell_b = 1;
  shared.unit_normal = {1, 0, 0};
  shared.area = 1.0;
  shared.centroid = {1.0, 0.5, 0.5};
  faces.push_back(shared);
  // One boundary face per cell (left of cell 0, right of cell 1).
  Face left;
  left.cell_a = 0;
  left.unit_normal = {-1, 0, 0};
  left.area = 1.0;
  left.centroid = {0.0, 0.5, 0.5};
  faces.push_back(left);
  Face right;
  right.cell_a = 1;
  right.unit_normal = {1, 0, 0};
  right.area = 1.0;
  right.centroid = {2.0, 0.5, 0.5};
  faces.push_back(right);
  return UnstructuredMesh(std::move(centroids), std::move(volumes),
                          std::move(faces), "two_cells");
}

TEST(UnstructuredMesh, BasicAccessors) {
  const UnstructuredMesh m = two_cell_mesh();
  EXPECT_EQ(m.n_cells(), 2u);
  EXPECT_EQ(m.n_faces(), 3u);
  EXPECT_EQ(m.n_interior_faces(), 1u);
  EXPECT_EQ(m.n_boundary_faces(), 2u);
  EXPECT_EQ(m.name(), "two_cells");
  EXPECT_DOUBLE_EQ(m.total_volume(), 2.0);
  EXPECT_EQ(m.degree(0), 1u);
  EXPECT_EQ(m.degree(1), 1u);
}

TEST(UnstructuredMesh, NeighborAndNormalOrientation) {
  const UnstructuredMesh m = two_cell_mesh();
  // Find the interior face.
  FaceId shared = 0;
  for (FaceId f = 0; f < m.n_faces(); ++f) {
    if (!m.face(f).is_boundary()) shared = f;
  }
  EXPECT_EQ(m.neighbor_across(0, shared), 1u);
  EXPECT_EQ(m.neighbor_across(1, shared), 0u);
  // Outward normal from cell 0 points +x, from cell 1 points -x.
  EXPECT_GT(m.outward_normal(0, shared).x, 0.0);
  EXPECT_LT(m.outward_normal(1, shared).x, 0.0);
}

TEST(UnstructuredMesh, AdjacencyCsr) {
  const UnstructuredMesh m = two_cell_mesh();
  const auto adj = m.adjacency();
  ASSERT_EQ(adj.offsets.size(), 3u);
  EXPECT_EQ(adj.offsets[2], 2u);  // one interior face -> two half-edges
  EXPECT_EQ(adj.neighbors[adj.offsets[0]], 1u);
  EXPECT_EQ(adj.neighbors[adj.offsets[1]], 0u);
}

TEST(UnstructuredMesh, RejectsMalformedInput) {
  std::vector<Vec3> centroids = {{0, 0, 0}};
  std::vector<double> volumes = {1.0};

  {  // cell id out of range
    Face f;
    f.cell_a = 5;
    f.unit_normal = {1, 0, 0};
    f.area = 1.0;
    EXPECT_THROW(UnstructuredMesh(centroids, volumes, {f}),
                 std::invalid_argument);
  }
  {  // self-adjacent
    Face f;
    f.cell_a = 0;
    f.cell_b = 0;
    f.unit_normal = {1, 0, 0};
    f.area = 1.0;
    EXPECT_THROW(UnstructuredMesh(centroids, volumes, {f}),
                 std::invalid_argument);
  }
  {  // non-unit normal
    Face f;
    f.cell_a = 0;
    f.unit_normal = {2, 0, 0};
    f.area = 1.0;
    EXPECT_THROW(UnstructuredMesh(centroids, volumes, {f}),
                 std::invalid_argument);
  }
  {  // volume/centroid size mismatch
    EXPECT_THROW(UnstructuredMesh(centroids, {}, {}), std::invalid_argument);
  }
}

TEST(UnstructuredMesh, CentroidBounds) {
  const UnstructuredMesh m = two_cell_mesh();
  const auto [lo, hi] = m.centroid_bounds();
  EXPECT_DOUBLE_EQ(lo.x, 0.5);
  EXPECT_DOUBLE_EQ(hi.x, 1.5);
}

TEST(MeshStats, GeneratedMeshIsSane) {
  const UnstructuredMesh m = test::small_tet_mesh();
  const MeshStats s = compute_stats(m);
  EXPECT_EQ(s.n_cells, m.n_cells());
  EXPECT_GE(s.min_degree, 1u);
  EXPECT_LE(s.max_degree, 4u);  // tets have at most 4 neighbors
  EXPECT_GT(s.min_volume, 0.0);
  EXPECT_NEAR(s.total_volume, 0.6, 1e-9);  // 1 x 1 x 0.6 box
  EXPECT_TRUE(is_connected(m));
  const std::string text = to_string(s);
  EXPECT_NE(text.find("cells="), std::string::npos);
}

TEST(MeshStats, MixedMeshHasPrismDegrees) {
  const UnstructuredMesh m = test::small_mixed_mesh();
  const MeshStats s = compute_stats(m);
  // Prism cells have up to 5 neighbors.
  EXPECT_EQ(s.max_degree, 5u);
  EXPECT_TRUE(is_connected(m));
}

}  // namespace
}  // namespace sweep::mesh
