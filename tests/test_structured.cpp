#include "mesh/structured.hpp"

#include <gtest/gtest.h>

#include "mesh/mesh_stats.hpp"
#include "sweep/dag_builder.hpp"

namespace sweep::mesh {
namespace {

TEST(StructuredGrid, CountsAndVolume) {
  const StructuredDims dims{4, 3, 2};
  const UnstructuredMesh m = make_structured_grid(dims, 4.0, 3.0, 2.0);
  EXPECT_EQ(m.n_cells(), 24u);
  EXPECT_NEAR(m.total_volume(), 24.0, 1e-12);
  // Faces: interior = (nx-1)nynz + nx(ny-1)nz + nxny(nz-1) = 18+16+12 = 46;
  // boundary = 2(nynz + nxnz + nxny) = 2(6+8+12) = 52.
  EXPECT_EQ(m.n_interior_faces(), 46u);
  EXPECT_EQ(m.n_boundary_faces(), 52u);
  EXPECT_TRUE(is_connected(m));
}

TEST(StructuredGrid, CoordsRoundTrip) {
  const StructuredDims dims{5, 4, 3};
  for (CellId c = 0; c < dims.n_cells(); ++c) {
    const auto [i, j, k] = structured_cell_coords(c, dims);
    EXPECT_EQ(c, static_cast<CellId>(i + dims.nx * (j + dims.ny * k)));
  }
}

TEST(StructuredGrid, DegreesAreGridLike) {
  const StructuredDims dims{4, 4, 4};
  const UnstructuredMesh m = make_structured_grid(dims);
  const MeshStats s = compute_stats(m);
  EXPECT_EQ(s.min_degree, 3u);  // corner cells
  EXPECT_EQ(s.max_degree, 6u);  // interior cells
}

TEST(StructuredGrid, AxisSweepDagIsRegularWavefront) {
  // Direction (1,1,1)/sqrt(3): level of cell (i,j,k) must be i+j+k.
  const StructuredDims dims{4, 4, 4};
  const UnstructuredMesh m = make_structured_grid(dims);
  const Vec3 dir = normalized({1, 1, 1});
  const auto result = dag::build_sweep_dag(m, dir);
  EXPECT_EQ(result.dropped_edges, 0u);
  const auto levels = result.dag.levels();
  for (CellId c = 0; c < m.n_cells(); ++c) {
    const auto [i, j, k] = structured_cell_coords(c, dims);
    EXPECT_EQ(levels[c], i + j + k) << "cell " << c;
  }
}

TEST(StructuredGrid, RejectsDegenerate) {
  EXPECT_THROW(make_structured_grid({0, 2, 2}), std::invalid_argument);
  EXPECT_THROW(make_structured_grid({2, 2, 2}, -1.0, 1.0, 1.0),
               std::invalid_argument);
}

TEST(StructuredGrid, SingleCell) {
  const UnstructuredMesh m = make_structured_grid({1, 1, 1});
  EXPECT_EQ(m.n_cells(), 1u);
  EXPECT_EQ(m.n_boundary_faces(), 6u);
  EXPECT_EQ(m.n_interior_faces(), 0u);
}

}  // namespace
}  // namespace sweep::mesh
