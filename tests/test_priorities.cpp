#include "core/priorities.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sweep/random_dag.hpp"
#include "test_helpers.hpp"

namespace sweep::core {
namespace {

dag::SweepInstance two_dag_instance() {
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::figure1_dag());
  dags.push_back(test::make_dag(9, {{8, 7}, {7, 6}, {6, 5}}));
  return dag::SweepInstance(9, std::move(dags), "two");
}

TEST(RandomDelays, InRangeAndDeterministic) {
  util::Rng rng(1);
  const auto delays = random_delays(24, rng);
  ASSERT_EQ(delays.size(), 24u);
  for (TimeStep x : delays) EXPECT_LT(x, 24u);
  util::Rng rng2(1);
  EXPECT_EQ(random_delays(24, rng2), delays);
}

TEST(RandomDelays, CoversRange) {
  util::Rng rng(2);
  std::vector<int> seen(8, 0);
  for (int trial = 0; trial < 200; ++trial) {
    for (TimeStep x : random_delays(8, rng)) ++seen[x];
  }
  for (int s : seen) EXPECT_GT(s, 0);
}

TEST(LevelPriorities, MatchDagLevels) {
  const auto inst = two_dag_instance();
  const auto prio = level_priorities(inst);
  const auto& levels = inst.levels();
  for (DirectionId i = 0; i < 2; ++i) {
    for (CellId v = 0; v < 9; ++v) {
      EXPECT_EQ(prio[task_id(v, i, 9)], levels[i][v]);
    }
  }
}

TEST(RandomDelayPriorities, ShiftLevelsByDelay) {
  const auto inst = two_dag_instance();
  const std::vector<TimeStep> delays = {3, 11};
  const auto prio = random_delay_priorities(inst, delays);
  const auto base = level_priorities(inst);
  for (DirectionId i = 0; i < 2; ++i) {
    for (CellId v = 0; v < 9; ++v) {
      EXPECT_EQ(prio[task_id(v, i, 9)],
                base[task_id(v, i, 9)] + delays[i]);
    }
  }
  EXPECT_THROW(random_delay_priorities(inst, {1}), std::invalid_argument);
}

TEST(DescendantPriorities, MoreDescendantsRunFirst) {
  const auto inst = two_dag_instance();
  util::Rng rng(3);
  const auto prio = descendant_priorities(inst, rng);
  // In the chain 8->7->6->5, node 8 has 3 descendants, 5 has none.
  EXPECT_LT(prio[task_id(8, 1, 9)], prio[task_id(5, 1, 9)]);
  // Figure-1 DAG: node 1 (4 descendants) before node 8 (none).
  EXPECT_LT(prio[task_id(1, 0, 9)], prio[task_id(8, 0, 9)]);
}

TEST(DfdsPriorities, MatchesPaperRulesOnHandcraftedCase) {
  // Chain 0->1->2->3 with assignment {0,0,1,1}: the off-processor edge is
  // 1->2. b-levels: 4,3,2,1; depth C=4.
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(4, {{0, 1}, {1, 2}, {2, 3}}));
  auto inst = dag::SweepInstance(4, std::move(dags), "chain");
  const Assignment assignment = {0, 0, 1, 1};
  const auto prio = dfds_priorities(inst, assignment);
  // Engine convention negates: recover the paper's values.
  // Node 1 has off-processor child 2 (b-level 2): prio = C + 2 = 6.
  EXPECT_EQ(-prio[task_id(1, 0, 4)], 6);
  // Node 0: no off-proc children, child 1 has prio 6 -> 5.
  EXPECT_EQ(-prio[task_id(0, 0, 4)], 5);
  // Nodes 2,3: no off-processor descendants -> 0.
  EXPECT_EQ(-prio[task_id(2, 0, 4)], 0);
  EXPECT_EQ(-prio[task_id(3, 0, 4)], 0);
}

TEST(DfdsPriorities, AllOnOneProcessorIsAllZero) {
  const auto inst = two_dag_instance();
  const auto prio = dfds_priorities(inst, Assignment(9, 0));
  for (std::int64_t p : prio) EXPECT_EQ(p, 0);
}

TEST(DfdsPriorities, RejectsBadAssignment) {
  const auto inst = two_dag_instance();
  EXPECT_THROW(dfds_priorities(inst, Assignment{0, 1}), std::invalid_argument);
}

TEST(DelayReleaseTimes, PerDirectionConstants) {
  const auto inst = two_dag_instance();
  const std::vector<TimeStep> delays = {4, 9};
  const auto releases = delay_release_times(inst, delays);
  for (CellId v = 0; v < 9; ++v) {
    EXPECT_EQ(releases[task_id(v, 0, 9)], 4u);
    EXPECT_EQ(releases[task_id(v, 1, 9)], 9u);
  }
  EXPECT_THROW(delay_release_times(inst, {1, 2, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace sweep::core
