#include "core/comm_cost.hpp"

#include <gtest/gtest.h>

#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "sweep/random_dag.hpp"
#include "test_helpers.hpp"

namespace sweep::core {
namespace {

dag::SweepInstance chain4() {
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(4, {{0, 1}, {1, 2}, {2, 3}}));
  return dag::SweepInstance(4, std::move(dags), "chain4");
}

TEST(C1, HandcraftedCounts) {
  const auto inst = chain4();
  EXPECT_EQ(comm_cost_c1(inst, {0, 0, 0, 0}).cross_edges, 0u);
  EXPECT_EQ(comm_cost_c1(inst, {0, 0, 1, 1}).cross_edges, 1u);
  EXPECT_EQ(comm_cost_c1(inst, {0, 1, 0, 1}).cross_edges, 3u);
  EXPECT_EQ(comm_cost_c1(inst, {0, 1, 0, 1}).total_edges, 3u);
  EXPECT_DOUBLE_EQ(comm_cost_c1(inst, {0, 1, 0, 1}).fraction(), 1.0);
  EXPECT_THROW(comm_cost_c1(inst, {0, 1}), std::invalid_argument);
}

TEST(C1, RandomAssignmentFractionNearMMinus1OverM) {
  // Section 5.1 observation 1: per-cell random assignment crosses about
  // (m-1)/m of all edges.
  const auto inst = dag::random_instance(800, 6, 10, 2.0, 3);
  for (std::size_t m : {2u, 8u, 32u}) {
    util::Rng rng(4);
    const auto a = random_assignment(800, m, rng);
    const double expected = static_cast<double>(m - 1) / static_cast<double>(m);
    EXPECT_NEAR(comm_cost_c1(inst, a).fraction(), expected, 0.03) << "m=" << m;
  }
}

TEST(C2, SingleProcessorIsFree) {
  const auto inst = chain4();
  const Schedule s = list_schedule(inst, Assignment(4, 0), 1);
  const auto c2 = comm_cost_c2(inst, s);
  EXPECT_EQ(c2.total_delay, 0u);
  EXPECT_EQ(c2.max_step_degree, 0u);
  EXPECT_EQ(c2.busy_steps, 0u);
}

TEST(C2, HandcraftedAlternatingChain) {
  // Chain 0->1->2->3 with alternating processors: every step (except the
  // last) sends exactly one message; the round length is always 1.
  const auto inst = chain4();
  const Assignment a = {0, 1, 0, 1};
  const Schedule s = list_schedule(inst, a, 2);
  const auto c2 = comm_cost_c2(inst, s);
  EXPECT_EQ(c2.total_delay, 3u);
  EXPECT_EQ(c2.max_step_degree, 1u);
  EXPECT_EQ(c2.busy_steps, 3u);
}

TEST(C2, CountsParallelSendsFromOneProcessor) {
  // Star: 0 -> {1,2,3}, all children elsewhere. When 0 finishes it must send
  // 3 messages in one round.
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(4, {{0, 1}, {0, 2}, {0, 3}}));
  auto inst = dag::SweepInstance(4, std::move(dags), "star");
  const Assignment a = {0, 1, 1, 2};
  const Schedule s = list_schedule(inst, a, 3);
  const auto c2 = comm_cost_c2(inst, s);
  EXPECT_EQ(c2.max_step_degree, 3u);
}

TEST(C2, RejectsIncompleteSchedule) {
  const auto inst = chain4();
  Schedule s(4, 1, 2, Assignment{0, 1, 0, 1});
  s.set_start(0, 0);  // others unscheduled
  EXPECT_THROW(comm_cost_c2(inst, s), std::invalid_argument);
}

TEST(C2, RejectsZeroProcessorSchedule) {
  // A zero-processor schedule would divide by zero in the (step, sender)
  // key arithmetic.
  const auto inst = chain4();
  Schedule s(4, 1, 0, Assignment{0, 0, 0, 0});
  for (TaskId t = 0; t < 4; ++t) s.set_start(t, static_cast<TimeStep>(t));
  EXPECT_THROW(comm_cost_c2(inst, s), std::invalid_argument);
}

TEST(C2, RejectsTruncatedSchedule) {
  // Schedule built for 3 cells against a 4-cell instance: reading task 3
  // would run off the end of the start/assignment arrays.
  const auto inst = chain4();
  Schedule s(3, 1, 2, Assignment{0, 1, 0});
  for (TaskId t = 0; t < 3; ++t) s.set_start(t, static_cast<TimeStep>(t));
  EXPECT_THROW(comm_cost_c2(inst, s), std::invalid_argument);
}

TEST(C2, RejectsForeignDirectionCount) {
  // Right cell count, wrong direction count: n_tasks mismatch must throw
  // rather than index the task graph with foreign task ids.
  const auto inst = chain4();
  Schedule s(4, 2, 2, Assignment{0, 1, 0, 1});
  for (TaskId t = 0; t < 8; ++t) s.set_start(t, 0);
  EXPECT_THROW(comm_cost_c2(inst, s), std::invalid_argument);
}

TEST(C1, ParallelMatchesReferenceForAnyJobs) {
  const auto inst = dag::random_instance(400, 4, 8, 2.0, 5);
  for (const std::size_t m : {2u, 7u, 16u}) {
    util::Rng rng(m);
    const auto a = random_assignment(400, m, rng);
    const auto reference = comm_cost_c1_reference(inst, a);
    for (const std::size_t jobs : {0u, 1u, 2u, 8u}) {
      const auto parallel = comm_cost_c1(inst, a, jobs);
      EXPECT_EQ(parallel.cross_edges, reference.cross_edges)
          << "m=" << m << " jobs=" << jobs;
      EXPECT_EQ(parallel.total_edges, reference.total_edges);
    }
  }
}

TEST(C2, FlatMatchesReferenceOnRandomInstances) {
  // The sort-based accumulator must agree with the preserved unordered_map
  // implementation on every field.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto inst = dag::random_instance(300, 3, 6, 2.0, seed);
    util::Rng rng(seed + 50);
    const std::size_t m = 2 + seed * 3;
    const auto a = random_assignment(300, m, rng);
    const Schedule s = list_schedule(inst, a, m);
    const auto flat = comm_cost_c2(inst, s);
    const auto reference = comm_cost_c2_reference(inst, s);
    EXPECT_EQ(flat.total_delay, reference.total_delay) << "seed=" << seed;
    EXPECT_EQ(flat.max_step_degree, reference.max_step_degree);
    EXPECT_EQ(flat.busy_steps, reference.busy_steps);
  }
}

TEST(C2, RejectsKeySpaceOverflow) {
  // A schedule whose makespan * n_processors exceeds 2^64 cannot pack its
  // (step, sender) pairs into the 64-bit key; it must be rejected up front
  // instead of wrapping and silently merging unrelated send records. The
  // horizon here is the TimeStep maximum (~2^32) and m is 2^33, so the
  // product overflows while each value alone is representable.
  const auto inst = chain4();
  Schedule s(4, 1, std::size_t{1} << 33, Assignment{0, 1, 0, 1});
  for (TaskId t = 0; t < 4; ++t) {
    s.set_start(t, kUnscheduled - 1);  // horizon = 2^32 - 1
  }
  EXPECT_THROW(comm_cost_c2(inst, s), std::invalid_argument);
}

TEST(C2, HugeSparseHorizonStaysCheap) {
  // Starts near the top of the TimeStep range: the flat accumulator must
  // handle a ~2^32 horizon without allocating a dense per-step array (the
  // reference would need 16 GiB here). Also pins the grouped reduction on a
  // sparse far-apart step pattern.
  const auto inst = chain4();
  Schedule s(4, 1, 2, Assignment{0, 1, 0, 1});
  for (TaskId t = 0; t < 4; ++t) {
    s.set_start(t, static_cast<TimeStep>(1000000000u * (t + 1)));
  }
  const auto c2 = comm_cost_c2(inst, s);
  EXPECT_EQ(c2.total_delay, 3u);
  EXPECT_EQ(c2.max_step_degree, 1u);
  EXPECT_EQ(c2.busy_steps, 3u);
}

TEST(C2, MuchSmallerThanC1OnRealInstances) {
  // The paper's Section 5.1 observation 2: C2 is far below C1.
  const auto m = test::small_tet_mesh(6, 6, 3);
  const auto inst = dag::build_instance(m, dag::level_symmetric(2));
  util::Rng rng(9);
  const auto a = random_assignment(m.n_cells(), 8, rng);
  const Schedule s = list_schedule(inst, a, 8);
  const auto c1 = comm_cost_c1(inst, a);
  const auto c2 = comm_cost_c2(inst, s);
  EXPECT_LT(c2.total_delay, c1.cross_edges / 2);
}

}  // namespace
}  // namespace sweep::core
