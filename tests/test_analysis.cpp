#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "core/list_scheduler.hpp"
#include "core/assignment.hpp"
#include "core/random_delay.hpp"
#include "sweep/random_dag.hpp"
#include "test_helpers.hpp"

namespace sweep::core {
namespace {

TEST(Analysis, ListSchedulesHaveNoAvoidableIdle) {
  // Work conservation is THE property of Algorithm 2; the analyzer must
  // report zero avoidable idle slots for every list schedule.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = dag::random_instance(80, 4, 8, 2.0, seed);
    util::Rng rng(seed * 17);
    const auto schedule = run_algorithm(Algorithm::kRandomDelayPriorities,
                                        inst, 8, rng);
    const auto analysis = analyze_schedule(inst, schedule);
    EXPECT_EQ(analysis.avoidable_idle_slots, 0u) << "seed " << seed;
    EXPECT_EQ(analysis.makespan, schedule.makespan());
    EXPECT_EQ(analysis.total_idle_slots, schedule.idle_slots());
  }
}

TEST(Analysis, LayerSynchronousAlgorithmHasAvoidableIdle) {
  // Algorithm 1 processes layers synchronously, so processors with light
  // layers wait — the compaction headroom the paper exploits in Algorithm 2.
  const auto mesh = test::small_tet_mesh(7, 7, 3);
  const auto inst = dag::build_instance(mesh, dag::level_symmetric(2));
  util::Rng rng(3);
  const auto result = random_delay_schedule(inst, 16, rng);
  const auto analysis = analyze_schedule(inst, result.schedule);
  EXPECT_GT(analysis.avoidable_idle_slots, 0u);
}

TEST(Analysis, LoadsAndUtilization) {
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(4, {}));
  dag::SweepInstance inst(4, std::move(dags), "indep");
  const Schedule s = list_schedule(inst, Assignment{0, 0, 0, 1}, 2);
  const auto analysis = analyze_schedule(inst, s);
  EXPECT_EQ(analysis.min_load, 1u);
  EXPECT_EQ(analysis.max_load, 3u);
  EXPECT_EQ(analysis.makespan, 3u);
  EXPECT_NEAR(analysis.mean_utilization, 4.0 / 6.0, 1e-12);
}

TEST(Analysis, RealizedCriticalPathOnChain) {
  const auto inst = dag::chain_instance(10, 1, 7);
  util::Rng rng(8);
  const auto assignment = random_assignment(10, 3, rng);
  const Schedule s = list_schedule(inst, assignment, 3);
  const auto analysis = analyze_schedule(inst, s);
  // A chain executes back-to-back: the realized critical path is all of it.
  EXPECT_EQ(analysis.realized_critical_path, 10u);
  ASSERT_EQ(analysis.direction_finish.size(), 1u);
  EXPECT_EQ(analysis.direction_finish[0], 10u);
}

TEST(Analysis, DirectionFinishTimesAreOrderedByDelay) {
  const auto mesh = test::small_tet_mesh(5, 5, 2);
  const auto inst = dag::build_instance(mesh, dag::level_symmetric(2));
  util::Rng rng(9);
  const auto schedule =
      run_algorithm(Algorithm::kRandomDelayPriorities, inst, 4, rng);
  const auto analysis = analyze_schedule(inst, schedule);
  ASSERT_EQ(analysis.direction_finish.size(), 8u);
  for (std::size_t finish : analysis.direction_finish) {
    EXPECT_GT(finish, 0u);
    EXPECT_LE(finish, analysis.makespan);
  }
  // At least one direction finishes strictly before the makespan (pipelining).
  bool any_early = false;
  for (std::size_t finish : analysis.direction_finish) {
    any_early = any_early || finish < analysis.makespan;
  }
  EXPECT_TRUE(any_early);
}

TEST(Analysis, RejectsIncompleteSchedule) {
  const auto inst = dag::random_instance(5, 1, 2, 1.0, 10);
  Schedule s(5, 1, 2, Assignment(5, 0));
  EXPECT_THROW(analyze_schedule(inst, s), std::invalid_argument);
}

TEST(Analysis, ToStringMentionsKeyFields) {
  const auto inst = dag::random_instance(20, 2, 4, 1.5, 11);
  util::Rng rng(12);
  const auto schedule =
      run_algorithm(Algorithm::kLevelPriorities, inst, 4, rng);
  const std::string text = to_string(analyze_schedule(inst, schedule));
  EXPECT_NE(text.find("makespan="), std::string::npos);
  EXPECT_NE(text.find("avoidable"), std::string::npos);
  EXPECT_NE(text.find("utilization="), std::string::npos);
}

}  // namespace
}  // namespace sweep::core
