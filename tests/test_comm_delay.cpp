// Tests for the communication-delay extension of the list-scheduling engine
// (ListScheduleOptions::cross_message_delay): the P|prec,c|Cmax-style model
// from the paper's Related Work, under the sweep same-processor constraint.

#include <gtest/gtest.h>

#include "core/assignment.hpp"
#include "core/list_scheduler.hpp"
#include "core/priorities.hpp"
#include "core/validate.hpp"
#include "partition/multilevel.hpp"
#include "sweep/random_dag.hpp"
#include "test_helpers.hpp"

namespace sweep::core {
namespace {

dag::SweepInstance chain4() {
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(4, {{0, 1}, {1, 2}, {2, 3}}));
  return dag::SweepInstance(4, std::move(dags), "chain4");
}

TEST(CommDelay, ZeroDelayMatchesBaseline) {
  const auto inst = dag::random_instance(80, 4, 8, 2.0, 11);
  util::Rng rng(12);
  const auto assignment = random_assignment(80, 8, rng);
  ListScheduleOptions base;
  ListScheduleOptions delayed;
  delayed.cross_message_delay = 0;
  const Schedule a = list_schedule(inst, assignment, 8, base);
  const Schedule b = list_schedule(inst, assignment, 8, delayed);
  EXPECT_EQ(a.starts(), b.starts());
}

TEST(CommDelay, CrossEdgesWaitExactlyC) {
  // Alternating chain: every edge crosses processors, so each hop costs
  // 1 (compute) + c (message): makespan = n + (n-1)*c.
  const auto inst = chain4();
  const Assignment alternating = {0, 1, 0, 1};
  for (TimeStep c : {0u, 1u, 3u, 10u}) {
    ListScheduleOptions options;
    options.cross_message_delay = c;
    const Schedule s = list_schedule(inst, alternating, 2, options);
    EXPECT_EQ(s.makespan(), 4u + 3u * c) << "c=" << c;
    const auto valid = validate_schedule(inst, s);
    EXPECT_TRUE(valid) << valid.error;
  }
}

TEST(CommDelay, SameProcessorEdgesAreFree) {
  const auto inst = chain4();
  ListScheduleOptions options;
  options.cross_message_delay = 100;
  const Schedule s = list_schedule(inst, Assignment(4, 0), 1, options);
  EXPECT_EQ(s.makespan(), 4u);  // no cross edges, no delay
}

TEST(CommDelay, MakespanMonotoneInC) {
  const auto inst = dag::random_instance(150, 4, 10, 2.0, 21);
  util::Rng rng(22);
  const auto assignment = random_assignment(150, 8, rng);
  std::size_t prev = 0;
  for (TimeStep c : {0u, 1u, 2u, 4u, 8u}) {
    ListScheduleOptions options;
    options.cross_message_delay = c;
    const Schedule s = list_schedule(inst, assignment, 8, options);
    EXPECT_GE(s.makespan(), prev) << "c=" << c;
    prev = s.makespan();
    const auto valid = validate_schedule(inst, s);
    ASSERT_TRUE(valid) << valid.error;
  }
}

TEST(CommDelay, LatencyHidingKeepsDelayImpactSublinear) {
  // With many ready tasks per processor, list scheduling overlaps messages
  // with computation: the makespan must grow far slower than (1 + c).
  const auto mesh = test::small_tet_mesh(8, 8, 3);
  const auto inst = dag::build_instance(mesh, dag::level_symmetric(2));
  const std::size_t m = 8;
  util::Rng rng(31);
  const auto assignment = random_assignment(mesh.n_cells(), m, rng);
  const auto priorities = level_priorities(inst);
  ListScheduleOptions base;
  base.priorities = priorities;
  const double t0 = static_cast<double>(list_schedule(inst, assignment, m, base).makespan());
  ListScheduleOptions delayed = base;
  delayed.cross_message_delay = 8;
  const double t8 = static_cast<double>(list_schedule(inst, assignment, m, delayed).makespan());
  EXPECT_LT(t8, 2.0 * t0);  // not 9x: latency is hidden by parallel work
  EXPECT_GE(t8, t0);
}

TEST(CommDelay, LocalityWinsWhenThereIsNothingToHideBehind) {
  // A single chain has no latency hiding: every cross edge stalls the whole
  // computation for c steps. Contiguous blocks (few boundaries) must beat
  // random assignment (~(m-1)/m of edges cross).
  const std::size_t n = 200;
  std::vector<std::pair<dag::NodeId, dag::NodeId>> edges;
  for (dag::NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  std::vector<dag::SweepDag> dags;
  dags.push_back(dag::SweepDag(n, edges));
  auto inst = dag::SweepInstance(n, std::move(dags), "path");

  const std::size_t m = 4;
  Assignment contiguous(n);
  for (std::size_t v = 0; v < n; ++v) {
    contiguous[v] = static_cast<ProcessorId>(v * m / n);
  }
  util::Rng rng(41);
  const Assignment random = random_assignment(n, m, rng);

  ListScheduleOptions options;
  options.cross_message_delay = 5;
  const Schedule s_contig = list_schedule(inst, contiguous, m, options);
  const Schedule s_random = list_schedule(inst, random, m, options);
  // Contiguous: n + c*(m-1) hops; random: n + c * ~3/4 * (n-1).
  EXPECT_EQ(s_contig.makespan(), n + 5 * (m - 1));
  EXPECT_GT(s_random.makespan(), s_contig.makespan() * 2);
}

TEST(CommDelay, InteractsCorrectlyWithReleaseTimes) {
  const auto inst = chain4();
  const std::vector<TimeStep> releases = {0, 50, 0, 0};
  ListScheduleOptions options;
  options.release_times = releases;
  options.cross_message_delay = 2;
  const Schedule s = list_schedule(inst, Assignment{0, 1, 0, 1}, 2, options);
  // Task 1 waits for max(release 50, finish(0)+1+c).
  EXPECT_GE(s.start(1, 0), 50u);
  // Downstream tasks still respect both precedence and delay.
  EXPECT_GE(s.start(2, 0), s.start(1, 0) + 1 + 2);
  const auto valid = validate_schedule(inst, s);
  EXPECT_TRUE(valid) << valid.error;
}

TEST(BLevelPriorities, CriticalPathFirst) {
  // Node 0 heads a long chain, node 4 is isolated: 0 must run first.
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(5, {{0, 1}, {1, 2}, {2, 3}}));
  auto inst = dag::SweepInstance(5, std::move(dags), "bl");
  const auto prio = blevel_priorities(inst);
  EXPECT_LT(prio[task_id(0, 0, 5)], prio[task_id(4, 0, 5)]);
  EXPECT_LT(prio[task_id(0, 0, 5)], prio[task_id(1, 0, 5)]);
}

}  // namespace
}  // namespace sweep::core
