#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/list_scheduler.hpp"
#include "partition/multilevel.hpp"
#include "sweep/random_dag.hpp"
#include "test_helpers.hpp"

namespace sweep::sim {
namespace {

using core::Assignment;

dag::SweepInstance chain4() {
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(4, {{0, 1}, {1, 2}, {2, 3}}));
  return dag::SweepInstance(4, std::move(dags), "chain4");
}

TEST(MachineSim, ZeroCommMatchesMakespan) {
  const auto inst = dag::random_instance(80, 4, 8, 2.0, 5);
  util::Rng rng(6);
  const auto schedule = core::run_algorithm(
      core::Algorithm::kRandomDelayPriorities, inst, 8, rng);
  MachineModel model;
  model.latency = 0.0;
  model.byte_time = 0.0;
  const auto result = simulate_execution(inst, schedule, model);
  // With free communication, replaying the schedule cannot take longer than
  // the step count, and work conservation means it cannot take less than
  // the critical-path-respecting compaction of the same order.
  EXPECT_LE(result.completion_time,
            static_cast<double>(schedule.makespan()) + 1e-9);
  EXPECT_GT(result.completion_time, 0.0);
  EXPECT_DOUBLE_EQ(result.total_blocked_time, 0.0);
  EXPECT_EQ(result.messages_sent,
            core::comm_cost_c1(inst, schedule.assignment()).cross_edges);
}

TEST(MachineSim, SingleProcessorIsPureCompute) {
  const auto inst = dag::random_instance(30, 2, 5, 1.5, 7);
  const auto schedule = core::list_schedule(inst, Assignment(30, 0), 1);
  const auto result = simulate_execution(inst, schedule, MachineModel{});
  EXPECT_DOUBLE_EQ(result.completion_time, 60.0);  // 60 unit tasks
  EXPECT_EQ(result.messages_sent, 0u);
  EXPECT_DOUBLE_EQ(result.total_wait_time, 0.0);
  EXPECT_DOUBLE_EQ(result.efficiency(1), 1.0);
}

TEST(MachineSim, AlternatingChainPaysFullLatencyPerHop) {
  const auto inst = chain4();
  const auto schedule = core::list_schedule(inst, Assignment{0, 1, 0, 1}, 2);
  MachineModel model;
  model.task_time = 1.0;
  model.latency = 2.0;
  model.byte_time = 0.5;
  const auto result = simulate_execution(inst, schedule, model);
  // Each of the 3 hops costs 1 (compute) + 0.5 (transfer) + 2 (latency);
  // final task adds its own compute: 3 * 3.5 + 1 = 11.5.
  EXPECT_NEAR(result.completion_time, 11.5, 1e-9);
  EXPECT_EQ(result.messages_sent, 3u);
  // Wait accounting: task i's wait is measured against when its processor
  // became free, so the two processors accumulate 3.5 + 6 + 6 = 15.5.
  EXPECT_NEAR(result.total_wait_time, 15.5, 1e-9);
}

TEST(MachineSim, SynchronousSendsBlockTheCpu) {
  // Star 0 -> {1,2,3} with every child elsewhere plus a second local task on
  // the sender's processor: with sends_in_flight=0 the sender must wait for
  // all three deliveries before running its next task.
  std::vector<dag::SweepDag> dags;
  dags.push_back(test::make_dag(5, {{0, 1}, {0, 2}, {0, 3}}));
  auto inst = dag::SweepInstance(5, std::move(dags), "star+");
  const Assignment assignment = {0, 1, 2, 3, 0};  // cell 4 also on proc 0
  const auto schedule = core::list_schedule(inst, assignment, 4);
  MachineModel blocking;
  blocking.latency = 1.0;
  blocking.byte_time = 1.0;
  blocking.sends_in_flight = 0;
  MachineModel overlapped = blocking;
  overlapped.sends_in_flight = 8;
  const auto sync = simulate_execution(inst, schedule, blocking);
  const auto async = simulate_execution(inst, schedule, overlapped);
  EXPECT_GT(sync.total_blocked_time, 0.0);
  EXPECT_DOUBLE_EQ(async.total_blocked_time, 0.0);
  EXPECT_LE(async.completion_time, sync.completion_time);
}

TEST(MachineSim, MonotoneInLatencyAndBandwidth) {
  const auto mesh = test::small_tet_mesh(6, 6, 3);
  const auto inst = dag::build_instance(mesh, dag::level_symmetric(2));
  util::Rng rng(8);
  const auto schedule = core::run_algorithm(
      core::Algorithm::kRandomDelayPriorities, inst, 8, rng);
  double prev = 0.0;
  for (double latency : {0.0, 0.05, 0.2, 1.0}) {
    MachineModel model;
    model.latency = latency;
    model.byte_time = latency / 10.0;
    const auto result = simulate_execution(inst, schedule, model);
    EXPECT_GE(result.completion_time, prev);
    prev = result.completion_time;
  }
}

TEST(MachineSim, BlockAssignmentWinsOnRealMachine) {
  // The end-to-end justification of Section 5.1's partitioning: on a machine
  // with nonzero per-message cost, the block schedule (fewer messages)
  // finishes sooner even though its zero-comm makespan is a bit worse.
  const auto mesh = test::small_tet_mesh(8, 8, 3);
  const auto inst = dag::build_instance(mesh, dag::level_symmetric(2));
  const std::size_t m = 8;
  util::Rng rng(9);
  const auto cell_schedule = core::run_algorithm(
      core::Algorithm::kRandomDelayPriorities, inst, m, rng);

  const auto graph = partition::graph_from_mesh(mesh);
  const auto blocks =
      partition::partition_into_blocks(graph, mesh.n_cells() / (m * 8));
  util::Rng rng2(9);
  const auto block_assignment = core::block_assignment(blocks, m, rng2);
  util::Rng rng3(9);
  const auto block_schedule =
      core::run_algorithm(core::Algorithm::kRandomDelayPriorities, inst, m,
                          rng3, block_assignment);

  // Bandwidth-bound regime: per-processor message volume exceeds its
  // compute, so the NIC is the bottleneck and message count decides.
  MachineModel expensive;
  expensive.latency = 0.2;
  expensive.byte_time = 1.5;
  expensive.sends_in_flight = 4;
  const auto cell_time = simulate_execution(inst, cell_schedule, expensive);
  const auto block_time = simulate_execution(inst, block_schedule, expensive);
  EXPECT_LT(block_time.messages_sent, cell_time.messages_sent);
  EXPECT_LT(block_time.completion_time, cell_time.completion_time);
}

TEST(MachineSim, RejectsBadInput) {
  const auto inst = chain4();
  core::Schedule incomplete(4, 1, 2, Assignment{0, 1, 0, 1});
  EXPECT_THROW(simulate_execution(inst, incomplete, MachineModel{}),
               std::invalid_argument);
  const auto schedule = core::list_schedule(inst, Assignment{0, 1, 0, 1}, 2);
  MachineModel bad;
  bad.task_time = 0.0;
  EXPECT_THROW(simulate_execution(inst, schedule, bad), std::invalid_argument);
}

}  // namespace
}  // namespace sweep::sim
