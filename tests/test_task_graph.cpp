#include "sweep/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/types.hpp"
#include "sweep/dag_builder.hpp"
#include "sweep/directions.hpp"
#include "sweep/instance.hpp"
#include "sweep/random_dag.hpp"
#include "test_helpers.hpp"

namespace sweep::dag {
namespace {

/// The TaskGraph must agree edge-for-edge with walking the per-direction
/// SweepDags and translating node ids by hand — on every instance shape.
void expect_matches_dags(const SweepInstance& inst) {
  const TaskGraph& tg = inst.task_graph();
  const std::size_t n = inst.n_cells();
  ASSERT_EQ(tg.n_tasks(), inst.n_tasks());
  ASSERT_EQ(tg.n_cells(), n);
  ASSERT_EQ(tg.n_directions(), inst.n_directions());
  ASSERT_EQ(tg.n_edges(), inst.total_edges());

  std::uint32_t max_level = 0;
  std::uint32_t max_indegree = 0;
  for (std::size_t i = 0; i < inst.n_directions(); ++i) {
    const SweepDag& g = inst.dag(i);
    const auto& levels = inst.levels()[i];
    const std::size_t base = i * n;
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t t = base + v;
      // Successors: same direction, node ids shifted into task-id space.
      std::vector<TaskGraph::Task> expected;
      for (NodeId w : g.successors(v)) {
        expected.push_back(static_cast<TaskGraph::Task>(base + w));
      }
      const auto got = tg.successors(t);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), expected.begin(),
                             expected.end()))
          << "direction " << i << " cell " << v;
      EXPECT_EQ(tg.out_degree(t), expected.size());
      EXPECT_EQ(tg.in_degree(t), g.in_degree(v));
      EXPECT_EQ(tg.level(t), levels[v]);
      EXPECT_EQ(tg.cell(t), v);
      max_level = std::max(max_level, levels[v]);
      max_indegree =
          std::max(max_indegree, static_cast<std::uint32_t>(g.in_degree(v)));
    }
  }
  EXPECT_EQ(tg.max_level(), max_level);
  EXPECT_EQ(tg.max_indegree(), max_indegree);

  // The contiguous arrays are just flat views of the same data.
  for (std::size_t t = 0; t < tg.n_tasks(); ++t) {
    EXPECT_EQ(tg.indegrees()[t], tg.in_degree(t));
    EXPECT_EQ(tg.levels()[t], tg.level(t));
    EXPECT_EQ(tg.cells()[t], tg.cell(t));
  }
}

TEST(TaskGraph, MatchesGeometricInstance) {
  const auto mesh = test::small_tet_mesh(5, 5, 3);
  const auto inst = build_instance(mesh, level_symmetric(2));
  expect_matches_dags(inst);
}

TEST(TaskGraph, MatchesRandomInstance) {
  expect_matches_dags(random_instance(80, 5, 7, 2.0, 42));
}

TEST(TaskGraph, MatchesChainInstance) {
  const auto inst = chain_instance(25, 3, 4);
  expect_matches_dags(inst);
  // A chain's structure is fully known: indegree 1 except sources.
  EXPECT_EQ(inst.task_graph().max_indegree(), 1u);
}

TEST(TaskGraph, CachedOnInstance) {
  const auto inst = random_instance(30, 2, 4, 1.5, 7);
  const TaskGraph* first = &inst.task_graph();
  EXPECT_EQ(first, &inst.task_graph());
}

TEST(TaskGraph, CopyGetsFreshCache) {
  const auto inst = random_instance(30, 2, 4, 1.5, 7);
  const TaskGraph* original = &inst.task_graph();
  const SweepInstance copy = inst;  // NOLINT(performance-unnecessary-copy)
  const TaskGraph* copied = &copy.task_graph();
  EXPECT_NE(original, copied);
  EXPECT_EQ(original->n_edges(), copied->n_edges());
}

TEST(TaskGraph, ConcurrentFirstAccessBuildsOnce) {
  const auto inst = random_instance(60, 4, 6, 2.0, 11);
  std::vector<const TaskGraph*> seen(8, nullptr);
  {
    std::vector<std::thread> threads;
    threads.reserve(seen.size());
    for (std::size_t i = 0; i < seen.size(); ++i) {
      threads.emplace_back([&, i] { seen[i] = &inst.task_graph(); });
    }
    for (auto& t : threads) t.join();
  }
  for (const TaskGraph* p : seen) EXPECT_EQ(p, seen[0]);
}

TEST(TaskGraph, BuildRejectsMismatchedLevels) {
  const auto inst = random_instance(10, 2, 3, 1.0, 3);
  std::vector<std::vector<std::uint32_t>> too_few(1);
  EXPECT_THROW(TaskGraph::build(inst.n_cells(), inst.dags(), too_few),
               std::invalid_argument);
}

}  // namespace
}  // namespace sweep::dag
