#include "core/assignment.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "partition/multilevel.hpp"
#include "test_helpers.hpp"

namespace sweep::core {
namespace {

TEST(RandomAssignment, RangeAndRoughBalance) {
  util::Rng rng(1);
  const Assignment a = random_assignment(10000, 16, rng);
  for (ProcessorId p : a) EXPECT_LT(p, 16u);
  const auto loads = assignment_loads(a, 16);
  // Each processor expects 625 cells; allow 4 sigma ~ +-100.
  for (std::size_t load : loads) {
    EXPECT_GT(load, 500u);
    EXPECT_LT(load, 750u);
  }
  EXPECT_THROW(random_assignment(10, 0, rng), std::invalid_argument);
}

TEST(BlockAssignment, CellsInSameBlockShareProcessor) {
  const partition::Partition blocks = {0, 0, 1, 1, 2, 2, 2};
  util::Rng rng(2);
  const Assignment a = block_assignment(blocks, 4, rng);
  EXPECT_EQ(a[0], a[1]);
  EXPECT_EQ(a[2], a[3]);
  EXPECT_EQ(a[4], a[5]);
  EXPECT_EQ(a[5], a[6]);
  for (ProcessorId p : a) EXPECT_LT(p, 4u);
  EXPECT_THROW(block_assignment(blocks, 0, rng), std::invalid_argument);
}

TEST(BlockAssignment, WorksWithRealPartition) {
  const auto m = test::small_tet_mesh(6, 6, 3);
  const auto g = partition::graph_from_mesh(m);
  const auto blocks = partition::partition_into_blocks(g, 32);
  util::Rng rng(3);
  const Assignment a = block_assignment(blocks, 8, rng);
  ASSERT_EQ(a.size(), m.n_cells());
  for (std::size_t v = 0; v < a.size(); ++v) {
    for (std::size_t w = v + 1; w < a.size(); ++w) {
      if (blocks[v] == blocks[w]) {
        ASSERT_EQ(a[v], a[w]);
      }
    }
    if (v > 50) break;  // spot check, O(n^2) otherwise
  }
}

TEST(RoundRobinBlockAssignment, Deterministic) {
  const partition::Partition blocks = {0, 1, 2, 3, 4};
  const Assignment a = round_robin_block_assignment(blocks, 3);
  EXPECT_EQ(a, (Assignment{0, 1, 2, 0, 1}));
  EXPECT_THROW(round_robin_block_assignment(blocks, 0), std::invalid_argument);
}

TEST(AssignmentLoads, Histogram) {
  const Assignment a = {0, 0, 1, 2, 2, 2};
  const auto loads = assignment_loads(a, 4);
  EXPECT_EQ(loads, (std::vector<std::size_t>{2, 1, 3, 0}));
}

}  // namespace
}  // namespace sweep::core
