#include "sweep/dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_helpers.hpp"

namespace sweep::dag {
namespace {

TEST(SweepDag, EmptyGraph) {
  const SweepDag g(0, {});
  EXPECT_EQ(g.n_nodes(), 0u);
  EXPECT_EQ(g.n_edges(), 0u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.depth(), 0u);
}

TEST(SweepDag, CsrAdjacency) {
  const SweepDag g = test::make_dag(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(g.n_nodes(), 4u);
  EXPECT_EQ(g.n_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_EQ(g.in_degree(3), 2u);
  const auto succ0 = g.successors(0);
  EXPECT_EQ(std::set<NodeId>(succ0.begin(), succ0.end()),
            (std::set<NodeId>{1, 2}));
  const auto pred3 = g.predecessors(3);
  EXPECT_EQ(std::set<NodeId>(pred3.begin(), pred3.end()),
            (std::set<NodeId>{1, 2}));
}

TEST(SweepDag, RejectsOutOfRangeEdges) {
  std::vector<std::pair<NodeId, NodeId>> edges = {{0, 5}};
  EXPECT_THROW(SweepDag(3, edges), std::invalid_argument);
}

TEST(SweepDag, AcyclicityDetection) {
  EXPECT_TRUE(test::make_dag(3, {{0, 1}, {1, 2}}).is_acyclic());
  EXPECT_FALSE(test::make_dag(3, {{0, 1}, {1, 2}, {2, 0}}).is_acyclic());
  EXPECT_FALSE(test::make_dag(2, {{0, 1}, {1, 0}}).is_acyclic());
}

TEST(SweepDag, LevelsAreLongestPathFromRoots) {
  const SweepDag g = test::figure1_dag();
  const auto levels = g.levels();
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 0u);
  EXPECT_EQ(levels[3], 0u);
  EXPECT_EQ(levels[6], 0u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[4], 1u);
  EXPECT_EQ(levels[5], 2u);
  EXPECT_EQ(levels[7], 2u);
  EXPECT_EQ(levels[8], 3u);
  EXPECT_EQ(g.depth(), 4u);
}

TEST(SweepDag, LevelsSkipEdges) {
  // Edge 0->3 skips a level: levels are longest paths, so 3 sits at level 2.
  const SweepDag g = test::make_dag(4, {{0, 1}, {1, 3}, {0, 3}, {0, 2}});
  const auto levels = g.levels();
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[3], 2u);
}

TEST(SweepDag, LevelsThrowOnCycle) {
  const SweepDag g = test::make_dag(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_THROW(g.levels(), std::logic_error);
  EXPECT_THROW(g.b_levels(), std::logic_error);
  EXPECT_THROW(g.topological_order(), std::logic_error);
}

TEST(SweepDag, BLevelsCountNodesToSink) {
  const SweepDag g = test::figure1_dag();
  const auto b = g.b_levels();
  EXPECT_EQ(b[8], 1u);  // sink
  EXPECT_EQ(b[5], 2u);
  EXPECT_EQ(b[7], 2u);
  EXPECT_EQ(b[2], 3u);
  EXPECT_EQ(b[4], 3u);
  EXPECT_EQ(b[0], 4u);
  EXPECT_EQ(b[1], 4u);
  EXPECT_EQ(b[6], 3u);
}

TEST(SweepDag, TopologicalOrderRespectsEdges) {
  const SweepDag g = test::figure1_dag();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 9u);
  std::vector<std::size_t> pos(9);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId u = 0; u < 9; ++u) {
    for (NodeId v : g.successors(u)) {
      EXPECT_LT(pos[u], pos[v]);
    }
  }
}

TEST(SweepDag, IsolatedNodesAreRootsAndLeaves) {
  const SweepDag g = test::make_dag(3, {{0, 1}});
  const auto levels = g.levels();
  EXPECT_EQ(levels[2], 0u);
  EXPECT_EQ(g.b_levels()[2], 1u);
}

TEST(GroupByLevel, PartitionsNodes) {
  const SweepDag g = test::figure1_dag();
  const auto groups = group_by_level(g.levels());
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(std::set<NodeId>(groups[0].begin(), groups[0].end()),
            (std::set<NodeId>{0, 1, 3, 6}));
  EXPECT_EQ(std::set<NodeId>(groups[1].begin(), groups[1].end()),
            (std::set<NodeId>{2, 4}));
  EXPECT_EQ(std::set<NodeId>(groups[2].begin(), groups[2].end()),
            (std::set<NodeId>{5, 7}));
  EXPECT_EQ(std::set<NodeId>(groups[3].begin(), groups[3].end()),
            (std::set<NodeId>{8}));
  std::size_t total = 0;
  for (const auto& g2 : groups) total += g2.size();
  EXPECT_EQ(total, 9u);
}

}  // namespace
}  // namespace sweep::dag
