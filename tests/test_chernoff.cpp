// Tests for the tail-bound machinery of Lemma 1 / Eq. (3) — including the
// key empirical check that the bounds actually dominate simulated
// balls-in-bins maxima (Corollary 2(b)), which is the engine behind the
// paper's layer-load lemmas.

#include "util/chernoff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace sweep::util {
namespace {

TEST(ChernoffG, AtMostOneAndDecreasingInDelta) {
  double prev = 1.0;
  for (double delta = 0.1; delta < 10.0; delta += 0.1) {
    const double g = chernoff_g(5.0, delta);
    EXPECT_LE(g, prev + 1e-12);
    EXPECT_LE(g, 1.0);
    EXPECT_GE(g, 0.0);
    prev = g;
  }
}

TEST(ChernoffG, DegenerateInputsReturnOne) {
  EXPECT_EQ(chernoff_g(0.0, 1.0), 1.0);
  EXPECT_EQ(chernoff_g(5.0, 0.0), 1.0);
  EXPECT_EQ(chernoff_g(-1.0, 1.0), 1.0);
}

TEST(ChernoffG, MatchesClosedFormSpotCheck) {
  // G(mu=1, delta=e-1) = (e^(e-1) / e^e)^1 = e^-1.
  const double e = std::exp(1.0);
  EXPECT_NEAR(chernoff_g(1.0, e - 1.0), 1.0 / e, 1e-12);
}

TEST(ChernoffTail, DominatesEmpiricalBinomialTail) {
  // X ~ Binomial(n=200, p=0.05), mu = 10. Empirical Pr[X >= mu(1+delta)]
  // must stay below the Chernoff bound for several deltas.
  Rng rng(21);
  constexpr int kTrials = 4000;
  constexpr int kN = 200;
  constexpr double kP = 0.05;
  constexpr double kMu = kN * kP;
  std::vector<int> samples(kTrials);
  for (auto& s : samples) {
    int x = 0;
    for (int i = 0; i < kN; ++i) x += rng.next_double() < kP ? 1 : 0;
    s = x;
  }
  for (double delta : {0.5, 1.0, 2.0}) {
    const double threshold = kMu * (1.0 + delta);
    int exceed = 0;
    for (int s : samples) {
      if (s >= threshold) ++exceed;
    }
    const double empirical = static_cast<double>(exceed) / kTrials;
    EXPECT_LE(empirical, chernoff_tail(kMu, delta) + 0.01)
        << "delta=" << delta;
  }
}

TEST(Lemma1F, AtLeastMuAndMonotoneInMu) {
  double prev = 0.0;
  for (double mu = 0.1; mu < 50.0; mu *= 1.5) {
    const double f = lemma1_f(mu, 1e-4);
    EXPECT_GE(f, mu);
    EXPECT_GE(f, prev - 1e-9) << "mu=" << mu;
    prev = f;
  }
}

TEST(Lemma1F, SmallerPGivesLargerThreshold) {
  EXPECT_GT(lemma1_f(5.0, 1e-8), lemma1_f(5.0, 1e-2));
  EXPECT_GT(lemma1_f(0.5, 1e-8), lemma1_f(0.5, 1e-2));
}

TEST(Lemma1F, ThresholdActuallyBoundsTheTail) {
  // Throw 64 balls into 64 bins; Pr[bin 0 load > F(1, p)] should be < p
  // with a healthy margin at p = 1/64^2 when checked empirically.
  Rng rng(22);
  constexpr int kTrials = 3000;
  const double f = lemma1_f(1.0, 1.0 / (64.0 * 64.0));
  int exceed = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    int load = 0;
    for (int ball = 0; ball < 64; ++ball) {
      if (rng.next_below(64) == 0) ++load;
    }
    if (load > f) ++exceed;
  }
  EXPECT_LE(exceed, 2);
}

TEST(ImprovedH, ConcaveInMuBySampling) {
  // Concavity (Corollary 2(a)) is what lets the analysis use Jensen; verify
  // the midpoint inequality H((a+b)/2) >= (H(a)+H(b))/2 on a grid.
  const double p = 1.0 / (128.0 * 128.0);
  for (double a = 0.05; a < 20.0; a *= 1.4) {
    for (double b = a * 1.2; b < 25.0; b *= 1.6) {
      const double mid = improved_h((a + b) / 2.0, p);
      const double avg = (improved_h(a, p) + improved_h(b, p)) / 2.0;
      EXPECT_GE(mid, avg - 1e-9) << "a=" << a << " b=" << b;
    }
  }
}

TEST(ImprovedH, NonDecreasingInMu) {
  const double p = 1e-4;
  double prev = 0.0;
  for (double mu = 0.01; mu < 100.0; mu *= 1.3) {
    const double h = improved_h(mu, p);
    EXPECT_GE(h, prev - 1e-9);
    prev = h;
  }
}

TEST(ExpectedMaxLoadBound, DominatesSimulatedBallsInBins) {
  // Corollary 2(b): E[max load] <= H(t/m, 1/m^2) + t/m. Simulate for
  // several (balls, bins) combinations.
  Rng rng(23);
  struct Case { int balls; int bins; };
  for (const auto& c : {Case{32, 32}, Case{256, 32}, Case{32, 256},
                        Case{1000, 100}}) {
    double mean_max = 0.0;
    constexpr int kTrials = 300;
    std::vector<int> load(static_cast<std::size_t>(c.bins));
    for (int trial = 0; trial < kTrials; ++trial) {
      std::fill(load.begin(), load.end(), 0);
      for (int ball = 0; ball < c.balls; ++ball) {
        ++load[rng.next_below(static_cast<std::uint64_t>(c.bins))];
      }
      mean_max += *std::max_element(load.begin(), load.end());
    }
    mean_max /= kTrials;
    EXPECT_LE(mean_max, expected_max_load_bound(c.balls, c.bins))
        << "balls=" << c.balls << " bins=" << c.bins;
  }
}

}  // namespace
}  // namespace sweep::util
