#include "core/schedule.hpp"

#include <gtest/gtest.h>

namespace sweep::core {
namespace {

TEST(TaskIds, RoundTrip) {
  constexpr std::size_t kN = 100;
  for (CellId v : {0u, 5u, 99u}) {
    for (DirectionId i : {0u, 3u, 7u}) {
      const TaskId t = task_id(v, i, kN);
      EXPECT_EQ(task_cell(t, kN), v);
      EXPECT_EQ(task_direction(t, kN), i);
    }
  }
}

TEST(Schedule, EmptyAndCompleteness) {
  Schedule s(3, 2, 4, Assignment{0, 1, 2});
  EXPECT_EQ(s.n_tasks(), 6u);
  EXPECT_FALSE(s.complete());
  EXPECT_EQ(s.makespan(), 0u);
  for (TaskId t = 0; t < 6; ++t) s.set_start(t, static_cast<TimeStep>(t / 2));
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.makespan(), 3u);
}

TEST(Schedule, ProcessorOfFollowsAssignment) {
  const Schedule s(3, 2, 4, Assignment{0, 3, 1});
  EXPECT_EQ(s.processor_of_cell(1), 3u);
  // Same cell, any direction -> same processor (the sweep constraint).
  EXPECT_EQ(s.processor_of(task_id(1, 0, 3)), 3u);
  EXPECT_EQ(s.processor_of(task_id(1, 1, 3)), 3u);
}

TEST(Schedule, IdleSlotsAndLoads) {
  // 2 cells x 1 direction on 2 processors; both tasks at t=0 -> no idle.
  Schedule s(2, 1, 2, Assignment{0, 1});
  s.set_start(0, 0);
  s.set_start(1, 0);
  EXPECT_EQ(s.idle_slots(), 0u);
  const auto loads = s.processor_loads();
  EXPECT_EQ(loads[0], 1u);
  EXPECT_EQ(loads[1], 1u);

  // Stretch task 1 to t=4: makespan 5, 10 slots, 2 used -> 8 idle.
  s.set_start(1, 4);
  EXPECT_EQ(s.makespan(), 5u);
  EXPECT_EQ(s.idle_slots(), 8u);
}

TEST(Schedule, StartByCellDirection) {
  Schedule s(2, 2, 1, Assignment{0, 0});
  s.set_start(task_id(1, 1, 2), 7);
  EXPECT_EQ(s.start(1, 1), 7u);
  EXPECT_EQ(s.start(0, 0), kUnscheduled);
}

}  // namespace
}  // namespace sweep::core
