// Cross-module integration tests: the paper's empirical claims, end to end
// on (scaled-down) zoo meshes.

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "core/assignment.hpp"
#include "core/comm_cost.hpp"
#include "core/validate.hpp"
#include "mesh/zoo.hpp"
#include "partition/multilevel.hpp"
#include "sweep/instance.hpp"

namespace sweep {
namespace {

struct ZooFixture {
  mesh::UnstructuredMesh mesh;
  dag::SweepInstance instance;

  explicit ZooFixture(const std::string& name, double scale = 0.3,
                      std::size_t sn = 4)
      : mesh(mesh::MeshZoo::by_name(name, scale)),
        instance(dag::build_instance(mesh, dag::level_symmetric(sn))) {}
};

class ZooIntegration : public ::testing::TestWithParam<const char*> {};

// The paper's headline empirical claim (Section 2, observation 3): the
// schedule length is always at most 3nk/m. Checked for Algorithm 2 across a
// processor sweep on every zoo mesh.
TEST_P(ZooIntegration, MakespanAtMostThreeTimesAverageLoad) {
  const ZooFixture fx(GetParam());
  for (std::size_t m : {2u, 8u, 32u, 128u}) {
    util::Rng rng(101);
    const auto schedule = core::run_algorithm(
        core::Algorithm::kRandomDelayPriorities, fx.instance, m, rng);
    const auto valid = core::validate_schedule(fx.instance, schedule);
    ASSERT_TRUE(valid) << valid.error;
    const double avg_load = static_cast<double>(fx.instance.n_tasks()) /
                            static_cast<double>(m);
    EXPECT_LE(static_cast<double>(schedule.makespan()), 3.0 * avg_load)
        << GetParam() << " m=" << m;
  }
}

// Section 5.1 observation 2: block assignment slashes C1 while the makespan
// grows only modestly.
TEST_P(ZooIntegration, BlockAssignmentCutsCommunication) {
  // Larger scale so there are several blocks per processor; with too few
  // blocks the random block->processor map is badly load-imbalanced, which
  // is a real effect but not the one this test probes.
  const ZooFixture fx(GetParam(), 0.45);
  const std::size_t m = 16;
  const auto graph = partition::graph_from_mesh(fx.mesh);
  const auto blocks = partition::partition_into_blocks(graph, 64);

  util::Rng rng(7);
  const core::Assignment per_cell =
      core::random_assignment(fx.mesh.n_cells(), m, rng);
  const core::Assignment per_block = core::block_assignment(blocks, m, rng);

  const auto c1_cell = core::comm_cost_c1(fx.instance, per_cell);
  const auto c1_block = core::comm_cost_c1(fx.instance, per_block);
  EXPECT_LT(c1_block.cross_edges, c1_cell.cross_edges / 3) << GetParam();

  util::Rng rng_a(11);
  const auto sched_cell =
      core::run_algorithm(core::Algorithm::kRandomDelayPriorities, fx.instance,
                          m, rng_a, per_cell);
  util::Rng rng_b(11);
  const auto sched_block =
      core::run_algorithm(core::Algorithm::kRandomDelayPriorities, fx.instance,
                          m, rng_b, per_block);
  // Makespan may grow, but stays bounded (the paper reports "not too much"
  // at 31k+ cells; at test scale the block granularity is much coarser
  // relative to m, so allow 3x — the bench harness demonstrates the paper's
  // milder growth at realistic scale).
  EXPECT_LE(static_cast<double>(sched_block.makespan()),
            3.0 * static_cast<double>(sched_cell.makespan()))
      << GetParam();
}

// Every algorithm produces feasible schedules on every zoo mesh.
TEST_P(ZooIntegration, AllAlgorithmsValid) {
  const ZooFixture fx(GetParam(), 0.25, 2);
  for (core::Algorithm algorithm : core::all_algorithms()) {
    util::Rng rng(23);
    const auto schedule = core::run_algorithm(algorithm, fx.instance, 12, rng);
    const auto valid = core::validate_schedule(fx.instance, schedule);
    EXPECT_TRUE(valid) << GetParam() << "/"
                       << core::algorithm_name(algorithm) << ": "
                       << valid.error;
  }
}

INSTANTIATE_TEST_SUITE_P(AllZooMeshes, ZooIntegration,
                         ::testing::Values("tetonly", "well_logging", "long",
                                           "prismtet"));

// Linear-speedup shape: doubling processors keeps the ratio to the lower
// bound bounded, i.e. makespan keeps dropping nearly proportionally while
// nk/m dominates the bound.
TEST(Scaling, NearLinearSpeedupWhileLoadDominates) {
  const ZooFixture fx("tetonly", 0.35);
  double prev_makespan = 1e300;
  for (std::size_t m : {2u, 4u, 8u, 16u, 32u}) {
    util::Rng rng(31);
    const auto schedule = core::run_algorithm(
        core::Algorithm::kRandomDelayPriorities, fx.instance, m, rng);
    const auto makespan = static_cast<double>(schedule.makespan());
    EXPECT_LT(makespan, prev_makespan) << "m=" << m;
    // At least 1.6x improvement per doubling in this regime.
    EXPECT_LT(makespan, prev_makespan / 1.6) << "m=" << m;
    prev_makespan = makespan;
  }
}

}  // namespace
}  // namespace sweep
