#include "sweep/dag_builder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sweep/instance.hpp"
#include "test_helpers.hpp"

namespace sweep::dag {
namespace {

TEST(DagBuilder, GeometricInductionIsAcyclicOnGeneratedMeshes) {
  const mesh::UnstructuredMesh m = test::small_tet_mesh();
  for (const Vec3& d : level_symmetric(4).directions) {
    const DagBuildResult r = build_sweep_dag(m, d);
    EXPECT_TRUE(r.dag.is_acyclic());
    EXPECT_EQ(r.dropped_edges, 0u);
    EXPECT_EQ(r.dag.n_nodes(), m.n_cells());
    // Every interior face induces at most one edge.
    EXPECT_LE(r.dag.n_edges(), m.n_interior_faces());
  }
}

TEST(DagBuilder, EdgesFollowUpwindGeometry) {
  const mesh::UnstructuredMesh m = test::small_tet_mesh(5, 5, 2);
  const Vec3 d{1.0, 0.0, 0.0};
  const DagBuildResult r = build_sweep_dag(m, d);
  // Every edge u->v must have the centroid of v downstream of u... not
  // exactly (normals, not centroids, decide), but overwhelmingly so; verify
  // the face-normal criterion directly instead: reconstruct from faces.
  std::size_t expected_edges = 0;
  for (const mesh::Face& f : m.faces()) {
    if (!f.is_boundary() && std::abs(dot(f.unit_normal, d)) > 1e-9) {
      ++expected_edges;
    }
  }
  EXPECT_EQ(r.dag.n_edges(), expected_edges);
}

TEST(DagBuilder, OppositeDirectionReversesDag) {
  const mesh::UnstructuredMesh m = test::small_tet_mesh(5, 5, 2);
  const Vec3 d = mesh::normalized({0.3, -0.7, 0.2});
  const SweepDag forward = build_sweep_dag(m, d).dag;
  const SweepDag backward = build_sweep_dag(m, -d).dag;
  ASSERT_EQ(forward.n_edges(), backward.n_edges());
  for (NodeId u = 0; u < forward.n_nodes(); ++u) {
    for (NodeId v : forward.successors(u)) {
      // v -> u must exist in the reversed DAG.
      bool found = false;
      for (NodeId w : backward.successors(v)) {
        found = found || w == u;
      }
      EXPECT_TRUE(found) << u << "->" << v;
    }
  }
}

TEST(DagBuilder, MixedPrismTetMeshWorks) {
  const mesh::UnstructuredMesh m = test::small_mixed_mesh();
  for (const Vec3& d : axis_directions().directions) {
    const DagBuildResult r = build_sweep_dag(m, d);
    EXPECT_TRUE(r.dag.is_acyclic());
  }
}

/// Hand-built 3-cell "pinwheel" whose face normals form a directed cycle for
/// the direction (0,0,1)-perpendicular plane: normals at 120-degree spacing
/// in the xy plane all with positive component along the cycle.
mesh::UnstructuredMesh cyclic_mesh() {
  using mesh::Face;
  using mesh::Vec3;
  std::vector<Vec3> centroids = {{1.0, 0.0, 0.0},
                                 {-0.5, 0.866, 0.0},
                                 {-0.5, -0.866, 0.0}};
  std::vector<double> volumes = {1.0, 1.0, 1.0};
  auto mk = [](mesh::CellId a, mesh::CellId b, const Vec3& n) {
    Face f;
    f.cell_a = a;
    f.cell_b = b;
    f.unit_normal = mesh::normalized(n);
    f.area = 1.0;
    f.centroid = Vec3{0, 0, 0};
    return f;
  };
  // Normals chosen so that for direction dir = (1, 0.1, 0) each face induces
  // the cyclic orientation 0->1->2->0.
  std::vector<Face> faces = {
      mk(0, 1, {0.1, 1.0, 0.0}),    // dot > 0 for dir -> edge 0->1
      mk(1, 2, {0.1, -1.0, 0.0}),   // dot > 0? 0.1*1 + (-1)(0.1) = 0 -> adjust
      mk(2, 0, {1.0, 0.5, 0.0}),
  };
  faces[1] = mk(1, 2, {0.2, -1.0, 0.0});
  return mesh::UnstructuredMesh(std::move(centroids), std::move(volumes),
                                std::move(faces), "pinwheel");
}

TEST(DagBuilder, BreaksCyclesAndReportsDrops) {
  const mesh::UnstructuredMesh m = cyclic_mesh();
  const Vec3 dir = mesh::normalized({1.0, 0.1, 0.0});
  // Verify the raw induction really is cyclic: all three dots positive.
  int positive = 0;
  for (const mesh::Face& f : m.faces()) {
    if (dot(f.unit_normal, dir) > 1e-9) ++positive;
  }
  ASSERT_EQ(positive, 3);

  const DagBuildResult r = build_sweep_dag(m, dir);
  EXPECT_TRUE(r.dag.is_acyclic());
  EXPECT_EQ(r.induced_edges, 3u);
  EXPECT_GE(r.dropped_edges, 1u);
  EXPECT_LT(r.dropped_edges, 3u);
  // Still schedulable: levels computable.
  EXPECT_NO_THROW(r.dag.levels());
}

TEST(BuildInstance, ProducesOneDagPerDirection) {
  const mesh::UnstructuredMesh m = test::small_tet_mesh(5, 5, 2);
  const DirectionSet dirs = level_symmetric(2);
  InstanceBuildStats stats;
  const SweepInstance instance = build_instance(m, dirs, 1e-9, &stats);
  EXPECT_EQ(instance.n_directions(), 8u);
  EXPECT_EQ(instance.n_cells(), m.n_cells());
  EXPECT_EQ(instance.n_tasks(), 8 * m.n_cells());
  EXPECT_EQ(stats.total_dropped_edges, 0u);
  EXPECT_GT(stats.total_induced_edges, 0u);
  EXPECT_EQ(instance.total_edges(), stats.total_induced_edges);
  EXPECT_GE(instance.max_depth(), 2u);
  EXPECT_EQ(instance.name(), m.name());
}

TEST(BuildInstance, OppositePairsShareDepth) {
  // Level-symmetric sets come in +/- pairs; reversed DAGs have equal depth.
  const mesh::UnstructuredMesh m = test::small_tet_mesh(4, 4, 2);
  const Vec3 d = mesh::normalized({0.5, 0.5, 0.7});
  const SweepDag a = build_sweep_dag(m, d).dag;
  const SweepDag b = build_sweep_dag(m, -d).dag;
  EXPECT_EQ(a.depth(), b.depth());
}

}  // namespace
}  // namespace sweep::dag
